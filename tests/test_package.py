"""Package-level tests: public API surface, errors, stats utilities."""

import pytest

import repro
from repro.cache.stats import CacheStats
from repro.errors import (
    CacheConfigError,
    GraphFormatError,
    LayoutError,
    PolicyError,
    ReproError,
    SimulationError,
)
from repro.popt.arch import PoptCounters


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_subpackages_importable(self):
        for name in ("graph", "memory", "cache", "policies", "popt",
                     "apps", "sim"):
            assert hasattr(repro, name)

    def test_all_exports_resolve(self):
        import repro.graph
        import repro.cache
        import repro.policies
        import repro.popt
        import repro.apps
        import repro.sim

        for module in (repro, repro.graph, repro.cache, repro.policies,
                       repro.popt, repro.apps, repro.sim):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name}"


class TestErrors:
    def test_hierarchy(self):
        for error_cls in (GraphFormatError, LayoutError, CacheConfigError,
                          PolicyError, SimulationError):
            assert issubclass(error_cls, ReproError)
            with pytest.raises(ReproError):
                raise error_cls("x")


class TestCacheStats:
    def test_counting(self):
        stats = CacheStats("x")
        stats.record_hit()
        stats.record_miss()
        stats.record_miss()
        assert stats.accesses == 3
        assert stats.miss_rate == pytest.approx(2 / 3)
        assert stats.hit_rate == pytest.approx(1 / 3)

    def test_mpki(self):
        stats = CacheStats("x")
        for _ in range(10):
            stats.record_miss()
        assert stats.mpki(1000) == pytest.approx(10.0)
        assert stats.mpki(0) == 0.0

    def test_empty(self):
        stats = CacheStats("x")
        assert stats.miss_rate == 0.0
        assert stats.hit_rate == 0.0

    def test_merge(self):
        a = CacheStats("x", accesses=10, hits=6, misses=4, evictions=2)
        b = CacheStats("x", accesses=5, hits=1, misses=4, evictions=3)
        merged = a.merged_with(b)
        assert merged.accesses == 15
        assert merged.hits == 7
        assert merged.evictions == 5

    def test_as_dict(self):
        stats = CacheStats("x")
        stats.record_miss()
        d = stats.as_dict()
        assert d["misses"] == 1
        assert d["miss_rate"] == 1.0


class TestPoptCounters:
    def test_tie_rate(self):
        counters = PoptCounters()
        assert counters.tie_rate() == 0.0
        counters.replacements = 10
        counters.ties = 3
        assert counters.tie_rate() == pytest.approx(0.3)

    def test_as_dict(self):
        counters = PoptCounters(replacements=4, ties=1, rm_lookups=20)
        d = counters.as_dict()
        assert d["replacements"] == 4
        assert d["tie_rate"] == 0.25
        assert d["rm_lookups"] == 20
