"""Tests for the multi-level hierarchy and NUCA bank mapping."""

import pytest

from repro.cache import (
    AccessContext,
    BankMapper,
    CacheConfig,
    CacheHierarchy,
    HierarchyConfig,
    LEVEL_DRAM,
    LEVEL_L1,
    LEVEL_L2,
    LEVEL_LLC,
    paper_table1,
    scaled_hierarchy,
)
from repro.errors import CacheConfigError
from repro.memory import AddressSpace
from repro.policies import LRU
from repro.popt.arch import nuca_locality_report


def tiny_hierarchy():
    return HierarchyConfig(
        l1=CacheConfig("L1", num_sets=2, num_ways=2),
        l2=CacheConfig("L2", num_sets=4, num_ways=2),
        llc=CacheConfig("LLC", num_sets=8, num_ways=2),
    )


class TestHierarchy:
    def test_miss_everywhere_then_l1_hit(self):
        h = CacheHierarchy(tiny_hierarchy(), LRU())
        ctx = AccessContext()
        assert h.access(0, ctx) == LEVEL_DRAM
        assert h.access(0, ctx) == LEVEL_L1

    def test_l2_hit_after_l1_eviction(self):
        h = CacheHierarchy(tiny_hierarchy(), LRU())
        ctx = AccessContext()
        # L1 has 2 sets x 2 ways; five lines mapping to set 0 evict line 0
        # from L1 but not from the larger L2.
        for line in [0, 2, 4, 6, 8]:
            h.access(line << 6, ctx)
        level = h.access(0, ctx)
        assert level in (LEVEL_L2, LEVEL_LLC)
        assert level != LEVEL_DRAM

    def test_level_counts_sum(self):
        h = CacheHierarchy(tiny_hierarchy(), LRU())
        ctx = AccessContext()
        for i in range(100):
            h.access((i % 13) << 6, ctx)
        assert sum(h.level_counts) == 100

    def test_llc_only_mode(self):
        config = HierarchyConfig(
            llc=CacheConfig("LLC", num_sets=8, num_ways=2)
        )
        h = CacheHierarchy(config, LRU())
        ctx = AccessContext()
        assert h.access(0, ctx) == LEVEL_DRAM
        assert h.access(0, ctx) == LEVEL_LLC
        assert h.l1 is None and h.l2 is None

    def test_line_sharing(self):
        h = CacheHierarchy(tiny_hierarchy(), LRU())
        ctx = AccessContext()
        h.access(100, ctx)
        assert h.access(101, ctx) == LEVEL_L1  # same 64 B line

    def test_mismatched_line_sizes_rejected(self):
        with pytest.raises(CacheConfigError):
            HierarchyConfig(
                l1=CacheConfig("L1", num_sets=2, num_ways=2, line_size=32),
                llc=CacheConfig("LLC", num_sets=4, num_ways=2),
            )

    def test_paper_table1_geometry(self):
        config = paper_table1()
        assert config.l1.capacity_bytes == 32 * 1024
        assert config.l2.capacity_bytes == 256 * 1024
        assert config.llc.capacity_bytes == 8 * 3 * 1024 * 1024
        assert config.llc.num_ways == 16
        assert config.dram_latency_cycles == 392  # 173 ns * 2.266 GHz

    def test_scaled_profiles_monotonic(self):
        sizes = [
            scaled_hierarchy(s).llc.capacity_bytes
            for s in ("tiny", "small", "medium", "large")
        ]
        assert sizes == sorted(sizes)
        with pytest.raises(CacheConfigError):
            scaled_hierarchy("galactic")


class TestNUCA:
    def test_default_striping(self):
        mapper = BankMapper(num_banks=8)
        banks = [mapper.default_bank(line * 64) for line in range(16)]
        assert banks == [b % 8 for b in range(16)]

    def test_modified_mapping_is_block_interleaved(self):
        mapper = BankMapper(num_banks=8)
        base = 1 << 30
        # All 64 lines of a block map to one bank.
        first = mapper.irreg_bank(base, base)
        for line in range(64):
            assert mapper.irreg_bank(base + line * 64, base) == first
        assert mapper.irreg_bank(base + 64 * 64, base) == (first + 1) % 8

    def test_rm_locality_invariant(self):
        # Section V-E: under the modified mapping every irregData line's
        # RM entry is bank-local; under default striping almost none are.
        mapper = BankMapper(num_banks=8)
        space = AddressSpace()
        span = space.alloc("irregData", 64 * 1024, 32, irregular=True)
        report = nuca_locality_report(mapper, span)
        assert report["modified"] == 1.0
        assert report["default"] < 0.25

    def test_single_bank_always_local(self):
        mapper = BankMapper(num_banks=1)
        space = AddressSpace()
        span = space.alloc("irregData", 4096, 32, irregular=True)
        report = nuca_locality_report(mapper, span)
        assert report["default"] == 1.0

    def test_rejects_bad_banks(self):
        with pytest.raises(CacheConfigError):
            BankMapper(num_banks=0)
