"""Mutation tests for the cache sanitizer: seed corruption, catch it.

Each unit test fabricates exactly one violation of an invariant the
sanitizer owns and asserts :class:`~repro.errors.SanitizerError` names
it. The integration tests then pin the two contracts ``sanitize=True``
ships with: a sanitized replay is bit-identical to an unsanitized one,
and the default path does not construct a sanitizer at all.
"""

import dataclasses

import pytest

from repro.apps import PageRank
from repro.cache import (
    DEFAULT_INTERVAL,
    AccessContext,
    CacheConfig,
    CacheSanitizer,
    CacheStats,
    SetAssociativeCache,
    scaled_hierarchy,
)
from repro.cache.cache import INVALID_TAG
from repro.errors import ReproError, SanitizerError
from repro.graph import uniform_random
from repro.policies import LRU
from repro.sim import prepare_run, simulate_prepared
from repro.sim.engine import build_private_filter


def small_cache(num_sets=4, num_ways=2):
    config = CacheConfig(
        name="LLC", num_sets=num_sets, num_ways=num_ways, line_size=64
    )
    return SetAssociativeCache(config, LRU())


def warm_cache():
    cache = small_cache()
    ctx = AccessContext()
    for line in range(12):
        cache.access(line, ctx)
    return cache


class TestCacheChecks:
    def test_healthy_cache_passes(self):
        CacheSanitizer().check_cache(warm_cache())

    def test_duplicate_tag_detected(self):
        cache = warm_cache()
        cache.tags[0][1] = cache.tags[0][0]
        with pytest.raises(SanitizerError, match="duplicate tags"):
            CacheSanitizer().check_cache(cache)

    def test_dirty_but_invalid_detected(self):
        cache = warm_cache()
        cache.tags[1][0] = INVALID_TAG
        cache.dirty[1][0] = True
        with pytest.raises(SanitizerError, match="dirty but invalid"):
            CacheSanitizer().check_cache(cache)

    def test_way_overflow_detected(self):
        cache = warm_cache()
        cache.tags[2].append(99)
        with pytest.raises(SanitizerError, match="ways"):
            CacheSanitizer().check_cache(cache)


class TestStatsChecks:
    def test_healthy_stats_pass(self):
        stats = CacheStats("LLC", accesses=10, hits=6, misses=4,
                           evictions=3, writebacks=1)
        CacheSanitizer().check_stats(stats)

    def test_double_counted_hit_detected(self):
        stats = CacheStats("LLC", accesses=10, hits=7, misses=4)
        with pytest.raises(SanitizerError, match="accesses"):
            CacheSanitizer().check_stats(stats)

    def test_evictions_exceeding_misses_detected(self):
        stats = CacheStats("LLC", accesses=10, hits=6, misses=4,
                           evictions=5)
        with pytest.raises(SanitizerError, match="evictions"):
            CacheSanitizer().check_stats(stats)

    def test_eviction_bound_waived_for_prefetch_paths(self):
        stats = CacheStats("LLC", accesses=10, hits=6, misses=4,
                           evictions=5, writebacks=2)
        CacheSanitizer().check_stats(stats, demand_only=False)

    def test_writebacks_exceeding_evictions_detected(self):
        stats = CacheStats("LLC", accesses=10, hits=6, misses=4,
                           evictions=2, writebacks=3)
        with pytest.raises(SanitizerError, match="writebacks"):
            CacheSanitizer().check_stats(stats)

    def test_negative_counter_detected(self):
        stats = CacheStats("LLC", accesses=2, hits=3, misses=-1)
        with pytest.raises(SanitizerError, match="negative"):
            CacheSanitizer().check_stats(stats)


class TestPolicyStateCheck:
    def test_healthy_policy_passes(self):
        CacheSanitizer().check_policy_state(warm_cache())

    def test_stale_per_set_state_detected(self):
        """State built for another geometry — the __init__-vs-reset bug."""
        cache = warm_cache()
        cache.policy.stale = [[0] for _ in range(cache.num_sets + 3)]
        with pytest.raises(SanitizerError, match="stale metadata"):
            CacheSanitizer().check_policy_state(cache)

    def test_rebound_policy_with_init_state_detected(self):
        class Sticky(LRU):
            """Builds per-set state once, in __init__ — never refreshed."""

            def __init__(self):
                super().__init__()
                self.frozen = [[0] for _ in range(4)]

            def reset(self):
                super().reset()

        bigger = SetAssociativeCache(
            CacheConfig(name="LLC", num_sets=8, num_ways=2, line_size=64),
            Sticky(),
        )
        with pytest.raises(SanitizerError, match="stale metadata"):
            CacheSanitizer().check_policy_state(bigger)


class TestLevelChain:
    def test_consistent_chain_passes(self):
        levels = [
            CacheStats("L1", accesses=100, hits=60, misses=40),
            CacheStats("L2", accesses=40, hits=10, misses=30),
            CacheStats("LLC", accesses=30, hits=5, misses=25),
        ]
        CacheSanitizer().check_level_chain(levels, 100)

    def test_broken_chain_detected(self):
        levels = [
            CacheStats("L1", accesses=100, hits=60, misses=40),
            CacheStats("L2", accesses=39, hits=9, misses=30),
        ]
        with pytest.raises(SanitizerError, match="L2"):
            CacheSanitizer().check_level_chain(levels, 100)


class TestFilterCheck:
    def make_filter(self):
        graph = uniform_random(256, avg_degree=4.0, seed=11)
        prepared = prepare_run(PageRank(), graph)
        return build_private_filter(
            prepared.trace, scaled_hierarchy("tiny")
        )

    def test_real_filter_passes(self):
        CacheSanitizer().check_filter(self.make_filter())

    def test_dropped_channel_entry_detected(self):
        filt = self.make_filter()
        broken = dataclasses.replace(filt, lines=filt.lines[:-1])
        with pytest.raises(SanitizerError, match="lines"):
            CacheSanitizer().check_filter(broken)

    def test_non_monotonic_indices_detected(self):
        filt = self.make_filter()
        indices = list(filt.indices)
        indices[0], indices[1] = indices[1], indices[0]
        broken = dataclasses.replace(filt, indices=indices)
        with pytest.raises(SanitizerError, match="increasing"):
            CacheSanitizer().check_filter(broken)

    def test_corrupted_private_stats_detected(self):
        filt = self.make_filter()
        l1 = filt.l1_stats.copy()
        l1.misses += 1  # breaks accesses == hits + misses
        broken = dataclasses.replace(filt, l1_stats=l1)
        with pytest.raises(SanitizerError):
            CacheSanitizer().check_filter(broken)


class TestBeladyBound:
    def test_policy_beating_opt_detected(self):
        sanitizer = CacheSanitizer()
        records = {}
        sanitizer.record_llc_misses(records, "geomA", "OPT", 100)
        with pytest.raises(SanitizerError, match="Belady"):
            sanitizer.record_llc_misses(records, "geomA", "LRU", 90)

    def test_opt_recorded_after_offender_detected(self):
        sanitizer = CacheSanitizer()
        records = {}
        sanitizer.record_llc_misses(records, "geomA", "LRU", 90)
        with pytest.raises(SanitizerError, match="Belady"):
            sanitizer.record_llc_misses(records, "geomA", "OPT", 100)

    def test_matching_and_worse_policies_pass(self):
        sanitizer = CacheSanitizer()
        records = {}
        sanitizer.record_llc_misses(records, "geomA", "OPT", 100)
        sanitizer.record_llc_misses(records, "geomA", "LRU", 100)
        sanitizer.record_llc_misses(records, "geomA", "DRRIP", 130)

    def test_bound_is_per_geometry(self):
        """P-OPT's way reservation replays a different LLC geometry, so
        its misses must not be compared against full-geometry OPT."""
        sanitizer = CacheSanitizer()
        records = {}
        sanitizer.record_llc_misses(records, "geomA", "OPT", 100)
        sanitizer.record_llc_misses(records, "geomB", "P-OPT", 80)


class TestConstruction:
    def test_sanitizer_error_is_a_repro_error(self):
        assert issubclass(SanitizerError, ReproError)

    def test_interval_must_be_positive(self):
        with pytest.raises(SanitizerError):
            CacheSanitizer(interval=0)

    def test_default_interval(self):
        assert CacheSanitizer().interval == DEFAULT_INTERVAL


# ----------------------------------------------------------------------
# Integration: sanitize=True on real replays
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def prepared_run():
    graph = uniform_random(512, avg_degree=6.0, seed=7)
    return prepare_run(PageRank(), graph)


class TestSanitizedReplay:
    POLICIES = ("LRU", "DRRIP", "OPT", "P-OPT")

    def test_bit_identical_to_unsanitized(self, prepared_run):
        hierarchy = scaled_hierarchy("tiny")
        for name in self.POLICIES:
            clean = simulate_prepared(prepared_run, name, hierarchy)
            sane = simulate_prepared(
                prepared_run, name, hierarchy, sanitize=True
            )
            assert clean.levels == sane.levels, name
            assert clean.cycles == sane.cycles, name

    def test_sanitizer_report_in_details(self, prepared_run):
        result = simulate_prepared(
            prepared_run, "LRU", scaled_hierarchy("tiny"), sanitize=True
        )
        report = result.details["sanitizer"]
        assert report["interval"] == DEFAULT_INTERVAL
        assert report["cache_checks"] >= 1
        assert report["stats_checks"] >= 1
        assert report["bound_checks"] == 1

    def test_default_path_builds_no_sanitizer(self, prepared_run):
        result = simulate_prepared(
            prepared_run, "LRU", scaled_hierarchy("tiny")
        )
        assert "sanitizer" not in result.details

    def test_small_interval_forces_mid_replay_checks(self, prepared_run):
        sanitizer = CacheSanitizer(interval=64)
        result = simulate_prepared(
            prepared_run, "LRU", scaled_hierarchy("tiny"),
            sanitizer=sanitizer,
        )
        assert result.details["sanitizer"]["cache_checks"] > 1

    def test_belady_bound_enforced_across_sweep(self, prepared_run):
        """OPT then every other policy on the same geometry: the shared
        records on the PreparedRun must all satisfy the bound."""
        hierarchy = scaled_hierarchy("tiny")
        results = {
            name: simulate_prepared(
                prepared_run, name, hierarchy, sanitize=True
            )
            for name in ("OPT", "LRU", "DRRIP", "SRRIP")
        }
        opt_misses = results["OPT"].llc.misses
        for name, result in results.items():
            assert result.llc.misses >= opt_misses, name

    def test_seeded_miss_undercount_is_caught(self, prepared_run):
        """Corrupt the recorded sweep as a buggy policy would: fewer
        misses than OPT on the identical replay trips the bound."""
        hierarchy = scaled_hierarchy("tiny")
        simulate_prepared(prepared_run, "OPT", hierarchy, sanitize=True)
        key, bucket = next(
            (k, v) for k, v in prepared_run.sanitizer_records.items()
            if "OPT" in v
        )
        sanitizer = CacheSanitizer()
        with pytest.raises(SanitizerError, match="Belady"):
            sanitizer.record_llc_misses(
                prepared_run.sanitizer_records, key, "Buggy",
                bucket["OPT"] - 1,
            )
