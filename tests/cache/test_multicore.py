"""Tests for the multi-core shared-LLC model."""

import numpy as np
import pytest

from repro.apps import PageRank, epoch_serial_parallel_order
from repro.cache import AccessContext, CacheConfig, HierarchyConfig
from repro.cache.multicore import MultiCoreHierarchy, replay_multicore
from repro.errors import CacheConfigError
from repro.graph import uniform_random
from repro.memory.trace import MemoryTrace
from repro.policies import DRRIP, LRU
from repro.popt.rereference import epoch_geometry
from repro.sim import prepare_run, simulate_prepared


def tiny_config():
    return HierarchyConfig(
        l1=CacheConfig("L1", num_sets=2, num_ways=2),
        l2=CacheConfig("L2", num_sets=4, num_ways=2),
        llc=CacheConfig("LLC", num_sets=8, num_ways=4),
    )


def make_trace(lines, vertices=None):
    n = len(lines)
    return MemoryTrace(
        addresses=np.asarray(lines, np.int64) * 64,
        pcs=np.ones(n, np.uint8),
        writes=np.zeros(n, bool),
        vertices=np.asarray(
            vertices if vertices is not None else [0] * n, np.int32
        ),
    )


class TestMultiCore:
    def test_rejects_zero_cores(self):
        with pytest.raises(CacheConfigError):
            MultiCoreHierarchy(tiny_config(), LRU(), num_cores=0)

    def test_private_caches_isolated(self):
        h = MultiCoreHierarchy(tiny_config(), LRU(), num_cores=2)
        ctx = AccessContext()
        h.access(0, 0, ctx)
        # Core 1 misses its own (cold) L1 even though core 0 has the line;
        # the shared LLC serves it.
        level = h.access(1, 0, ctx)
        assert level == 3  # LLC hit, not L1

    def test_shared_llc(self):
        h = MultiCoreHierarchy(tiny_config(), LRU(), num_cores=2)
        ctx = AccessContext()
        assert h.access(0, 4096, ctx) == 4  # DRAM
        assert h.access(1, 4096, ctx) == 3  # LLC (filled by core 0)

    def test_replay_consumes_everything(self):
        h = MultiCoreHierarchy(tiny_config(), LRU(), num_cores=3)
        traces = [
            make_trace(list(range(i, 50 + i))) for i in range(3)
        ]
        replay_multicore(traces, h, chunk=8)
        assert sum(h.level_counts) == sum(len(t) for t in traces)

    def test_uneven_trace_lengths(self):
        h = MultiCoreHierarchy(tiny_config(), LRU(), num_cores=2)
        traces = [make_trace([1, 2, 3]), make_trace(list(range(40)))]
        replay_multicore(traces, h, chunk=4)
        assert sum(h.level_counts) == 43

    def test_multicore_popt_close_to_serial(self):
        """8 cores sharing a P-OPT LLC under epoch-serial scheduling land
        near the single-stream miss rate (the Table I configuration)."""
        graph = uniform_random(4096, avg_degree=8.0, seed=12)
        config = tiny_config()
        serial = prepare_run(PageRank(), graph)
        serial_result = simulate_prepared(serial, "P-OPT", config)

        # Deal each epoch's chunks to 4 cores, then give each core its
        # own sub-trace (its chunks, in order).
        __, epoch_size, __ = epoch_geometry(graph.num_vertices, 8)
        num_cores = 4
        per_core_orders = [[] for _ in range(num_cores)]
        for epoch_start in range(0, graph.num_vertices, epoch_size):
            vertices = list(
                range(
                    epoch_start,
                    min(epoch_start + epoch_size, graph.num_vertices),
                )
            )
            chunks = [vertices[i:i + 4] for i in range(0, len(vertices), 4)]
            for i, chunk_vertices in enumerate(chunks):
                per_core_orders[i % num_cores].extend(chunk_vertices)
        traces = [
            prepare_run(
                PageRank(), graph, order=np.array(order, np.int64)
            ).trace
            for order in per_core_orders
        ]
        from repro.sim.driver import _build_popt_policy

        policy, __ = _build_popt_policy(serial, "inter_intra", 8, 64)
        h = MultiCoreHierarchy(config, policy, num_cores=num_cores)
        replay_multicore(traces, h, chunk=16)
        llc_rate = h.llc.stats.miss_rate
        assert llc_rate == pytest.approx(
            serial_result.llc.miss_rate, abs=0.12
        )
