"""Cross-validation of the cache simulator against independent reference
models (the same role Sniper validation plays in Section VI)."""

from collections import OrderedDict

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import AccessContext, CacheConfig, SetAssociativeCache
from repro.policies import LRU, BeladyOPT
from repro.memory.trace import MemoryTrace


class ReferenceLRUCache:
    """Oracle LRU implementation with OrderedDicts, one per set."""

    def __init__(self, num_sets, num_ways):
        self.num_sets = num_sets
        self.num_ways = num_ways
        self.sets = [OrderedDict() for _ in range(num_sets)]

    def access(self, line):
        group = self.sets[line % self.num_sets]
        if line in group:
            group.move_to_end(line)
            return True
        if len(group) >= self.num_ways:
            group.popitem(last=False)
        group[line] = True
        return False


@given(
    st.integers(1, 4).map(lambda k: 1 << k),  # sets: 2..16
    st.integers(1, 8),                        # ways
    st.lists(st.integers(0, 60), min_size=1, max_size=500),
)
@settings(max_examples=60, deadline=None)
def test_lru_matches_ordereddict_reference(num_sets, num_ways, lines):
    cache = SetAssociativeCache(
        CacheConfig("t", num_sets=num_sets, num_ways=num_ways), LRU()
    )
    reference = ReferenceLRUCache(num_sets, num_ways)
    ctx = AccessContext()
    for index, line in enumerate(lines):
        ctx.index = index
        assert cache.access(line, ctx) == reference.access(line), (
            f"divergence at access {index} (line {line})"
        )


def exhaustive_optimal_hits(lines, num_ways):
    """Exact offline-optimal hit count for a single fully-associative set
    via memoized search (exponential; only for tiny inputs)."""
    from functools import lru_cache

    lines = tuple(lines)

    @lru_cache(maxsize=None)
    def best(index, contents):
        if index == len(lines):
            return 0
        line = lines[index]
        if line in contents:
            return 1 + best(index + 1, contents)
        if len(contents) < num_ways:
            return best(
                index + 1, tuple(sorted(contents + (line,)))
            )
        outcomes = []
        for victim in contents:
            kept = tuple(
                sorted(c for c in contents if c != victim) + [line]
            )
            outcomes.append(best(index + 1, kept))
        return max(outcomes)

    return best(0, ())


@given(st.lists(st.integers(0, 5), min_size=1, max_size=14))
@settings(max_examples=40, deadline=None)
def test_belady_matches_exhaustive_optimum(lines):
    """Belady's greedy furthest-next-use rule is provably optimal; our
    implementation must match an exhaustive search on tiny traces."""
    num_ways = 2
    trace = MemoryTrace(
        addresses=np.array(lines, np.int64) * 64,
        pcs=np.ones(len(lines), np.uint8),
        writes=np.zeros(len(lines), bool),
        vertices=np.zeros(len(lines), np.int32),
    )
    policy = BeladyOPT(trace.next_use_indices())
    cache = SetAssociativeCache(
        CacheConfig("t", num_sets=1, num_ways=num_ways), policy
    )
    ctx = AccessContext()
    hits = 0
    for index, line in enumerate(lines):
        ctx.index = index
        hits += cache.access(line, ctx)
    assert hits == exhaustive_optimal_hits(lines, num_ways)
