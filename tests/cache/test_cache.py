"""Unit tests for the set-associative cache core."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import AccessContext, CacheConfig, SetAssociativeCache
from repro.errors import CacheConfigError, PolicyError
from repro.policies import LRU, BitPLRU, RandomReplacement


def make_cache(num_sets=4, num_ways=2, policy=None):
    cfg = CacheConfig("test", num_sets=num_sets, num_ways=num_ways)
    return SetAssociativeCache(cfg, policy if policy else LRU())


class TestConfig:
    def test_capacity(self):
        cfg = CacheConfig("x", num_sets=16, num_ways=4)
        assert cfg.capacity_bytes == 16 * 4 * 64
        assert cfg.way_bytes == 16 * 64

    def test_non_power_of_two_sets_use_modulo(self):
        # Paper footnote 3: non-power-of-two set counts index by modulo.
        cfg = CacheConfig("x", num_sets=12, num_ways=4)
        assert cfg.set_index(13) == 1
        with pytest.raises(CacheConfigError):
            CacheConfig("x", num_sets=0, num_ways=4)

    def test_rejects_zero_ways(self):
        with pytest.raises(CacheConfigError):
            CacheConfig("x", num_sets=4, num_ways=0)

    def test_rejects_bad_line_size(self):
        with pytest.raises(CacheConfigError):
            CacheConfig("x", num_sets=4, num_ways=2, line_size=100)

    def test_with_ways(self):
        cfg = CacheConfig("x", num_sets=4, num_ways=16)
        assert cfg.with_ways(14).num_ways == 14
        assert cfg.with_ways(14).num_sets == 4

    def test_set_index(self):
        cfg = CacheConfig("x", num_sets=8, num_ways=2)
        assert cfg.set_index(0) == 0
        assert cfg.set_index(9) == 1


class TestBasicBehaviour:
    def test_cold_miss_then_hit(self):
        cache = make_cache()
        ctx = AccessContext()
        assert cache.access(100, ctx) is False
        assert cache.access(100, ctx) is True
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1

    def test_set_conflict_eviction(self):
        cache = make_cache(num_sets=1, num_ways=2)
        ctx = AccessContext()
        cache.access(0, ctx)
        cache.access(1, ctx)
        cache.access(2, ctx)  # evicts line 0 under LRU
        assert cache.access(1, ctx) is True
        assert cache.access(0, ctx) is False
        assert cache.stats.evictions >= 1

    def test_different_sets_no_conflict(self):
        cache = make_cache(num_sets=4, num_ways=1)
        ctx = AccessContext()
        for line in range(4):
            cache.access(line, ctx)
        for line in range(4):
            assert cache.access(line, ctx) is True

    def test_probe_does_not_mutate(self):
        cache = make_cache()
        ctx = AccessContext()
        cache.access(5, ctx)
        hits_before = cache.stats.hits
        assert cache.probe(5) is True
        assert cache.probe(6) is False
        assert cache.stats.hits == hits_before

    def test_dirty_tracking_and_writeback(self):
        cache = make_cache(num_sets=1, num_ways=1)
        ctx = AccessContext()
        ctx.write = True
        cache.access(0, ctx)
        ctx.write = False
        cache.access(1, ctx)  # evict dirty line 0
        assert cache.stats.writebacks == 1

    def test_flush(self):
        cache = make_cache()
        ctx = AccessContext()
        cache.access(3, ctx)
        cache.flush()
        assert cache.probe(3) is False
        assert cache.occupancy() == 0.0

    def test_occupancy(self):
        cache = make_cache(num_sets=2, num_ways=2)
        ctx = AccessContext()
        cache.access(0, ctx)
        cache.access(1, ctx)
        assert cache.occupancy() == pytest.approx(0.5)

    def test_invalid_victim_rejected(self):
        class BadPolicy(LRU):
            def choose_victim(self, set_idx, ctx):
                return 99

        cache = make_cache(num_sets=1, num_ways=1, policy=BadPolicy())
        ctx = AccessContext()
        cache.access(0, ctx)
        with pytest.raises(PolicyError):
            cache.access(1, ctx)


class TestInclusionOfAllPolicies:
    @pytest.mark.parametrize(
        "policy_factory", [LRU, BitPLRU, RandomReplacement]
    )
    def test_working_set_fits(self, policy_factory):
        # Any sane policy keeps a working set that fits in the cache.
        cache = make_cache(num_sets=4, num_ways=4, policy=policy_factory())
        ctx = AccessContext()
        lines = list(range(16))
        for _ in range(3):
            for line in lines:
                cache.access(line, ctx)
        # After warmup, everything hits.
        assert all(cache.probe(line) for line in lines)

    @given(st.lists(st.integers(0, 63), min_size=1, max_size=400))
    @settings(max_examples=30, deadline=None)
    def test_stats_invariants_random_stream(self, lines):
        cache = make_cache(num_sets=4, num_ways=2)
        ctx = AccessContext()
        for line in lines:
            cache.access(line, ctx)
        stats = cache.stats
        assert stats.hits + stats.misses == stats.accesses == len(lines)
        assert stats.evictions <= stats.misses
        resident = cache.resident_lines()
        assert len(resident) == len(set(resident))  # no duplicate tags
        assert len(resident) <= 8
