"""Tests for the banked S-NUCA LLC (Section V-E dynamic model)."""

import numpy as np
import pytest

from repro.apps import PageRank
from repro.cache import AccessContext, CacheConfig
from repro.cache.banked import BankedLLC
from repro.errors import CacheConfigError
from repro.graph import uniform_random
from repro.policies import LRU, DRRIP
from repro.popt.policy import POPT, PoptStream
from repro.popt.rereference import build_rereference_matrix
from repro.sim import prepare_run


def make_banked(num_banks=4, num_sets=16, num_ways=2, spans=(),
                modified=True, policy=LRU):
    return BankedLLC(
        CacheConfig("LLC", num_sets=num_sets, num_ways=num_ways),
        num_banks=num_banks,
        policy_factory=lambda bank: policy(),
        irreg_spans=spans,
        modified_irreg_mapping=modified,
    )


class TestRouting:
    def test_default_striping(self):
        llc = make_banked(num_banks=4)
        for line in range(16):
            bank, local = llc.route(line)
            assert bank == line % 4
            assert local == line // 4

    def test_rejects_uneven_banks(self):
        with pytest.raises(CacheConfigError):
            make_banked(num_banks=3, num_sets=16)

    def test_modified_mapping_blocks(self):
        from repro.memory import AddressSpace

        space = AddressSpace()
        span = space.alloc("irr", 64 * 1024, 32, irregular=True)
        llc = make_banked(num_banks=4, spans=[span])
        base_line = span.base // 64
        first_bank, __ = llc.route(base_line)
        # 64 consecutive irregData lines share a bank...
        for offset in range(64):
            bank, __ = llc.route(base_line + offset)
            assert bank == first_bank
        # ...and the next block rotates.
        next_bank, __ = llc.route(base_line + 64)
        assert next_bank == (first_bank + 1) % 4

    def test_local_indices_unique_per_bank(self):
        from repro.memory import AddressSpace

        space = AddressSpace()
        span = space.alloc("irr", 16 * 1024, 32, irregular=True)
        llc = make_banked(num_banks=4, spans=[span])
        base_line = span.base // 64
        seen = {}
        for offset in range(span.num_lines):
            bank, local = llc.route(base_line + offset)
            key = (bank, local)
            assert key not in seen, "two lines collided on one frame"
            seen[key] = offset


class TestBehaviour:
    def test_hit_after_fill(self):
        llc = make_banked()
        ctx = AccessContext()
        assert llc.access(100, ctx) is False
        assert llc.access(100, ctx) is True
        stats = llc.aggregate_stats()
        assert stats.hits == 1 and stats.misses == 1

    def test_banks_isolated(self):
        # Thrash bank 0's sets; bank 1 contents must survive.
        llc = make_banked(num_banks=2, num_sets=4, num_ways=1)
        ctx = AccessContext()
        llc.access(1, ctx)  # bank 1
        for line in range(0, 64, 2):  # all bank 0
            llc.access(line, ctx)
        assert llc.access(1, ctx) is True

    def test_load_roughly_balanced_on_streams(self):
        llc = make_banked(num_banks=4, num_sets=32)
        ctx = AccessContext()
        for line in range(4000):
            llc.access(line, ctx)
        load = llc.bank_load()
        assert max(load) - min(load) <= 4


class TestRmLocality:
    def _run_popt(self, modified):
        graph = uniform_random(4096, avg_degree=8.0, seed=7)
        prepared = prepare_run(PageRank(), graph)
        span = prepared.irregular_streams[0].span
        matrix = build_rereference_matrix(
            graph, elems_per_line=span.elems_per_line,
            num_lines=span.num_lines,
        )

        def factory(bank):
            return POPT([PoptStream(span=span, matrix=matrix)])

        llc = BankedLLC(
            CacheConfig("LLC", num_sets=32, num_ways=4),
            num_banks=4,
            policy_factory=factory,
            irreg_spans=[span],
            modified_irreg_mapping=modified,
        )
        ctx = AccessContext()
        lines = (prepared.trace.addresses >> 6).tolist()
        vertices = prepared.trace.vertices.tolist()
        for index in range(len(lines)):
            ctx.index = index
            ctx.vertex = vertices[index]
            llc.access(lines[index], ctx)
        return llc

    def test_modified_mapping_fully_local(self):
        llc = self._run_popt(modified=True)
        assert llc.rm_locality() == 1.0
        assert llc.local_rm_lookups > 0

    def test_default_striping_mostly_remote(self):
        llc = self._run_popt(modified=False)
        assert llc.rm_locality() < 0.5

    def test_aggregate_miss_rate_close_to_uca(self):
        """Banking partitions capacity but shouldn't wreck locality."""
        graph = uniform_random(4096, avg_degree=8.0, seed=7)
        prepared = prepare_run(PageRank(), graph)
        lines = (prepared.trace.addresses >> 6).tolist()

        from repro.cache import SetAssociativeCache

        uca = SetAssociativeCache(
            CacheConfig("LLC", num_sets=32, num_ways=4), DRRIP()
        )
        ctx = AccessContext()
        for index, line in enumerate(lines):
            ctx.index = index
            uca.access(line, ctx)
        banked = make_banked(
            num_banks=4, num_sets=32, num_ways=4, policy=DRRIP
        )
        ctx = AccessContext()
        for index, line in enumerate(lines):
            ctx.index = index
            banked.access(line, ctx)
        uca_rate = uca.stats.miss_rate
        banked_rate = banked.aggregate_stats().miss_rate
        assert banked_rate == pytest.approx(uca_rate, abs=0.05)
