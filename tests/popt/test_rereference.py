"""Tests for the Rereference Matrix and Algorithm 2."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PolicyError
from repro.graph import from_edges, uniform_random
from repro.popt import build_rereference_matrix, epoch_geometry


class TestEpochGeometry:
    def test_paper_default(self):
        # Section V-C: 8-bit quantization over numVertices vertices gives
        # EpochSize = ceil(numVertices/256), SubEpochSize = ceil(E/127).
        num_epochs, epoch_size, sub_epoch_size = epoch_geometry(
            33_550_000, 8
        )
        assert epoch_size == -(-33_550_000 // 256)
        assert sub_epoch_size == -(-epoch_size // 127)
        assert num_epochs == 256

    def test_small_graph_fewer_epochs(self):
        num_epochs, epoch_size, __ = epoch_geometry(5, 3)
        assert epoch_size == 1
        assert num_epochs == 5

    def test_se_has_coarser_subepochs(self):
        __, __, sub_default = epoch_geometry(100_000, 8, "inter_intra")
        __, __, sub_se = epoch_geometry(100_000, 8, "single_epoch")
        assert sub_se >= sub_default  # 63 vs 127 sub-epochs

    def test_validation(self):
        with pytest.raises(PolicyError):
            epoch_geometry(10, 8, "bogus")
        with pytest.raises(PolicyError):
            epoch_geometry(10, 2)
        with pytest.raises(PolicyError):
            epoch_geometry(10, 32)


@pytest.fixture
def paper_matrix(paper_example_graph):
    # One srcData element per line, 3-bit entries -> 1 vertex per epoch,
    # which makes every quantized distance exact.
    return build_rereference_matrix(
        paper_example_graph, elems_per_line=1, entry_bits=3
    )


class TestPaperExample:
    """Distances checked by hand against Fig. 5's epoch view."""

    def test_line0_distances(self, paper_matrix):
        # S0's out-neighbors are {2}: distances 2,1,0 then never (sentinel 3).
        assert [paper_matrix.find_next_ref(0, v) for v in range(5)] == [
            2, 1, 0, 3, 3,
        ]

    def test_line2_distances(self, paper_matrix):
        # S2's out-neighbors are {0, 1, 3}.
        assert [paper_matrix.find_next_ref(2, v) for v in range(5)] == [
            0, 0, 1, 0, 3,
        ]

    def test_geometry(self, paper_matrix):
        assert paper_matrix.num_lines == 5
        assert paper_matrix.num_epochs == 5
        assert paper_matrix.column_bytes() == 5
        assert paper_matrix.resident_columns() == 2
        assert paper_matrix.resident_bytes() == 10

    def test_scenario_b(self, paper_example_graph):
        # Fig. 3 scenario B: processing D1, S2's next ref (D3) is further
        # than S4's (D2)... at epoch granularity: S1 (not referenced in
        # epoch 1, next at D4) ranks above S2 (referenced in epoch 1).
        matrix = build_rereference_matrix(
            paper_example_graph, elems_per_line=1, entry_bits=3
        )
        s1 = matrix.find_next_ref(1, 1)
        s2 = matrix.find_next_ref(2, 1)
        assert s1 > s2


def brute_force_next_epoch_distance(graph, line, epoch, matrix):
    """Exact distance (in epochs) from `epoch` to the line's next
    referencing epoch, ignoring intra-epoch position."""
    epl = matrix.elems_per_line
    refs = set()
    for v in range(line * epl, min((line + 1) * epl, graph.num_vertices)):
        refs.update(int(d) // matrix.epoch_size
                    for d in graph.out_neighbors(v))
    future = [e for e in refs if e >= epoch]
    if not future:
        return None
    return min(future) - epoch


class TestAgainstBruteForce:
    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_inter_only_distances_exact(self, seed):
        graph = uniform_random(64, avg_degree=4.0, seed=seed)
        matrix = build_rereference_matrix(
            graph, elems_per_line=4, entry_bits=6, variant="inter_only"
        )
        for line in range(matrix.num_lines):
            for epoch in range(matrix.num_epochs):
                expected = brute_force_next_epoch_distance(
                    graph, line, epoch, matrix
                )
                got = matrix.entries[line, epoch]
                sentinel = (1 << matrix.entry_bits) - 1
                if expected is None:
                    assert got == sentinel
                else:
                    assert got == min(expected, sentinel)

    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_inter_intra_msb_encodes_presence(self, seed):
        graph = uniform_random(64, avg_degree=4.0, seed=seed)
        matrix = build_rereference_matrix(
            graph, elems_per_line=4, entry_bits=8
        )
        msb = 1 << 7
        for line in range(matrix.num_lines):
            for epoch in range(matrix.num_epochs):
                expected = brute_force_next_epoch_distance(
                    graph, line, epoch, matrix
                )
                entry = int(matrix.entries[line, epoch])
                if expected == 0:
                    assert not entry & msb  # referenced this epoch
                else:
                    assert entry & msb

    @given(st.integers(0, 10_000), st.integers(0, 63))
    @settings(max_examples=20, deadline=None)
    def test_find_next_ref_consistent_with_exact(self, seed, vertex):
        """Algorithm 2's answer is the exact distance whenever the exact
        distance is nonzero (intra-epoch loss only affects distance-0)."""
        graph = uniform_random(64, avg_degree=4.0, seed=seed)
        matrix = build_rereference_matrix(
            graph, elems_per_line=4, entry_bits=8
        )
        epoch = vertex // matrix.epoch_size
        for line in range(matrix.num_lines):
            exact = brute_force_next_epoch_distance(
                graph, line, epoch, matrix
            )
            got = matrix.find_next_ref(line, vertex)
            if exact is None:
                assert got >= matrix.num_epochs - epoch - 1 or got >= 127
            elif exact > 1:
                # No reference this epoch or next: Algorithm 2 must report
                # the exact inter-epoch distance.
                assert got == exact
            else:
                assert got <= max(exact, 1) + 127  # bounded by sentinel path


class TestIntraEpochTracking:
    def test_past_final_access_reports_next_epoch(self):
        # Element 0 referenced at vertices 0 and 8; with epoch size 1
        # those are epochs 0 and 8.
        graph = from_edges([(0, 0), (0, 8)], num_vertices=12)
        matrix = build_rereference_matrix(
            graph, elems_per_line=1, entry_bits=4
        )
        assert matrix.epoch_size == 1
        assert matrix.find_next_ref(0, 0) == 0
        # In epoch 1 there is no reference; distance to epoch 8 is 7.
        assert matrix.find_next_ref(0, 1) == 7
        assert matrix.find_next_ref(0, 7) == 1
        assert matrix.find_next_ref(0, 8) == 0

    def test_within_epoch_before_final_access(self):
        # Epoch covers vertices 0..15 (entry_bits=4 -> 16 epochs over 256
        # vertices); element referenced at vertices 3 and 12 -> while the
        # execution is before 12's sub-epoch, distance is 0.
        graph = from_edges([(0, 3), (0, 12), (0, 200)], num_vertices=256)
        matrix = build_rereference_matrix(
            graph, elems_per_line=1, entry_bits=4
        )
        assert matrix.epoch_size == 16
        assert matrix.find_next_ref(0, 0) == 0
        assert matrix.find_next_ref(0, 11) == 0

    def test_inter_only_cannot_see_final_access(self):
        # The Fig. 5 design's quantization loss: after the final access in
        # an epoch it still reports distance 0.
        graph = from_edges([(0, 0), (0, 200)], num_vertices=256)
        inter = build_rereference_matrix(
            graph, elems_per_line=1, entry_bits=4, variant="inter_only"
        )
        both = build_rereference_matrix(
            graph, elems_per_line=1, entry_bits=4, variant="inter_intra"
        )
        late_in_epoch0 = 15
        assert inter.find_next_ref(0, late_in_epoch0) == 0
        assert both.find_next_ref(0, late_in_epoch0) >= 1


class TestSingleEpochVariant:
    def test_one_resident_column(self):
        graph = uniform_random(128, avg_degree=4.0, seed=1)
        se = build_rereference_matrix(
            graph, elems_per_line=4, entry_bits=8, variant="single_epoch"
        )
        full = build_rereference_matrix(
            graph, elems_per_line=4, entry_bits=8
        )
        assert se.resident_columns() == 1
        assert full.resident_columns() == 2
        assert se.resident_bytes() == full.resident_bytes() // 2

    def test_next_epoch_bit(self):
        # Element referenced at vertices 0 and 1 with epoch size 1: in
        # epoch 0, past the final access, SE must know "accessed next
        # epoch" and return 1.
        graph = from_edges([(0, 0), (0, 1)], num_vertices=16)
        se = build_rereference_matrix(
            graph, elems_per_line=1, entry_bits=5, variant="single_epoch"
        )
        assert se.epoch_size == 1
        assert se.find_next_ref(0, 0) == 0
        assert se.find_next_ref(0, 1) == 0

    def test_distance_range_halved(self):
        __, __, sub = epoch_geometry(10_000, 8, "single_epoch")
        graph = from_edges([(0, 0)], num_vertices=10_000)
        se = build_rereference_matrix(
            graph, elems_per_line=1, entry_bits=8, variant="single_epoch"
        )
        # Distance field is 6 bits: sentinel 63, not 127.
        assert int(se.entries.max()) <= 255
        far = se.find_next_ref(0, 9_999)
        assert far <= 63


class TestEntryWidths:
    @pytest.mark.parametrize("bits", [4, 8, 16])
    def test_width_round_trip(self, bits):
        graph = uniform_random(256, avg_degree=4.0, seed=2)
        matrix = build_rereference_matrix(
            graph, elems_per_line=16, entry_bits=bits
        )
        assert matrix.entry_bytes == (1 if bits <= 8 else 2)
        assert matrix.entries.max() < (1 << bits)
        # Spot-check decode stays within the representable range.
        for vertex in (0, graph.num_vertices // 2, graph.num_vertices - 1):
            for line in range(0, matrix.num_lines, 5):
                distance = matrix.find_next_ref(line, vertex)
                assert 0 <= distance < (1 << bits)

    def test_column_bytes_scale_with_width(self):
        graph = uniform_random(256, avg_degree=4.0, seed=2)
        narrow = build_rereference_matrix(graph, 16, entry_bits=8)
        wide = build_rereference_matrix(graph, 16, entry_bits=16)
        assert wide.column_bytes() == 2 * narrow.column_bytes()

    def test_bad_elems_per_line(self):
        graph = uniform_random(16, avg_degree=2.0, seed=2)
        with pytest.raises(PolicyError):
            build_rereference_matrix(graph, 0)
