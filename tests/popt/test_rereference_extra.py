"""Additional Rereference Matrix coverage: storage fallback, vectorized
decode, geometry edge cases."""

import numpy as np
import pytest

from repro.graph import from_edges, uniform_random
from repro.popt import build_rereference_matrix
from repro.popt.rereference import RereferenceMatrix


class TestStorageFallback:
    def test_large_matrix_uses_numpy_rows(self):
        """Matrices past the list-conversion threshold keep numpy storage
        and must decode identically."""
        graph = uniform_random(512, avg_degree=4.0, seed=1)
        matrix = build_rereference_matrix(graph, elems_per_line=4)
        # Force the numpy path on a copy and compare decodes.
        forced = RereferenceMatrix(
            entries=matrix.entries,
            variant=matrix.variant,
            entry_bits=matrix.entry_bits,
            epoch_size=matrix.epoch_size,
            sub_epoch_size=matrix.sub_epoch_size,
            elems_per_line=matrix.elems_per_line,
            num_vertices=matrix.num_vertices,
        )
        forced._rows = forced.entries  # numpy fallback representation
        for line in range(0, matrix.num_lines, 7):
            for vertex in range(0, graph.num_vertices, 97):
                assert matrix.find_next_ref(line, vertex) == int(
                    forced.find_next_ref(line, vertex)
                )

    def test_threshold_respected(self):
        graph = from_edges([(0, 1)], num_vertices=8)
        matrix = build_rereference_matrix(graph, elems_per_line=1)
        assert isinstance(matrix._rows, list)  # small -> python lists


class TestVectorizedDecode:
    def test_matches_scalar(self):
        graph = uniform_random(128, avg_degree=4.0, seed=2)
        matrix = build_rereference_matrix(graph, elems_per_line=4)
        lines = np.arange(matrix.num_lines)
        for vertex in (0, 31, 127):
            vector = matrix.find_next_ref_vector(lines, vertex)
            scalar = [
                matrix.find_next_ref(int(line), vertex) for line in lines
            ]
            assert vector.tolist() == scalar


class TestGeometryEdgeCases:
    def test_single_vertex_graph(self):
        graph = from_edges([], num_vertices=1)
        matrix = build_rereference_matrix(graph, elems_per_line=1)
        assert matrix.num_lines == 1
        # Never referenced: sentinel everywhere.
        sentinel = matrix.find_next_ref(0, 0)
        assert sentinel == (1 << (matrix.entry_bits - 1)) - 1

    def test_out_of_range_vertex(self):
        graph = from_edges([(0, 1)], num_vertices=4)
        matrix = build_rereference_matrix(graph, elems_per_line=1)
        # Vertices past the last epoch decode to the sentinel.
        assert matrix.find_next_ref(0, 10_000) == matrix._low_mask

    def test_dense_self_referencing(self):
        # Every vertex references every line in every epoch: distance 0
        # at every (line, vertex).
        edges = [(s, d) for s in range(8) for d in range(8) if s != d]
        graph = from_edges(edges, num_vertices=8)
        matrix = build_rereference_matrix(
            graph, elems_per_line=1, entry_bits=3
        )
        for line in range(8):
            for vertex in range(7):  # last epoch has no future ref
                if vertex == line:
                    # No self loops: element `line` is not referenced at
                    # its own iteration; next ref is one epoch away.
                    assert matrix.find_next_ref(line, vertex) == 1
                else:
                    assert matrix.find_next_ref(line, vertex) == 0

    def test_epoch_of(self):
        graph = from_edges([(0, 1)], num_vertices=1000)
        matrix = build_rereference_matrix(graph, elems_per_line=16)
        assert matrix.epoch_of(0) == 0
        assert (
            matrix.epoch_of(matrix.epoch_size) == 1
        )
