"""Tests for the next-ref engine latency model (Section V-C)."""

import pytest

from repro.cache import CacheConfig, HierarchyConfig, paper_table1
from repro.popt.engine import NextRefEngineModel


class TestSearchLatency:
    def test_streaming_only_is_classification(self):
        model = NextRefEngineModel()
        assert model.search_latency(16, 0) == 16

    def test_single_irregular_way(self):
        model = NextRefEngineModel()
        expected = (
            16  # classify every way
            + model.rm_fetch_cycles + model.compute_cycles  # no overlap
            + 1  # select
        )
        assert model.search_latency(16, 1) == expected

    def test_pipeline_overlap(self):
        model = NextRefEngineModel()
        two = model.search_latency(16, 2)
        one = model.search_latency(16, 1)
        # Adding a way costs the initiation interval + select, NOT a full
        # fetch+compute: that's the pipelining.
        interval = max(model.rm_fetch_cycles, model.compute_cycles)
        assert two - one == interval + model.select_cycles_per_way
        assert interval < model.rm_fetch_cycles + model.compute_cycles

    def test_monotone_in_irregular_ways(self):
        model = NextRefEngineModel()
        latencies = [model.search_latency(16, k) for k in range(17)]
        assert latencies == sorted(latencies)

    def test_validation(self):
        model = NextRefEngineModel()
        with pytest.raises(ValueError):
            model.search_latency(4, 5)


class TestPaperClaim:
    def test_hidden_on_the_paper_machine(self):
        """Section V-C: on Table I's machine (16-way LLC, 392-cycle DRAM,
        7-cycle banks) the worst-case search hides under the DRAM fetch."""
        model = NextRefEngineModel()
        config = paper_table1()
        assert model.worst_case_latency(config.llc) < 200
        assert model.hidden_by_dram(config)
        assert model.slack_cycles(config) > 0

    def test_not_hidden_at_extreme_associativity(self):
        # The claim has limits: a 64-way LLC would outrun the DRAM window.
        model = NextRefEngineModel()
        config = HierarchyConfig(
            llc=CacheConfig("LLC", num_sets=1024, num_ways=64)
        )
        assert not model.hidden_by_dram(config)
