"""Property tests on P-OPT's victim-selection invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import AccessContext, CacheConfig, SetAssociativeCache
from repro.graph import from_edges
from repro.memory import AddressSpace
from repro.popt import POPT, PoptStream, build_rereference_matrix


def build_policy(num_elems, edges, entry_bits=8):
    graph = from_edges(edges, num_vertices=num_elems, dedup=True)
    space = AddressSpace()
    span = space.alloc("irr", num_elems, 512, irregular=True)  # 1/line
    matrix = build_rereference_matrix(
        graph, elems_per_line=1, entry_bits=entry_bits,
        num_lines=span.num_lines,
    )
    return POPT([PoptStream(span=span, matrix=matrix)]), span, matrix


def graph_cases():
    return st.integers(4, 24).flatmap(
        lambda n: st.tuples(
            st.just(n),
            st.lists(
                st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
                min_size=1, max_size=80,
            ),
            st.lists(
                st.integers(0, n - 1), min_size=2, max_size=8,
                unique=True,
            ),
            st.integers(0, n - 1),
        )
    )


@given(graph_cases())
@settings(max_examples=60, deadline=None)
def test_victim_has_maximal_next_ref(case):
    """Among irregular candidates (no streaming lines present), the
    chosen victim's decoded next reference is the set's maximum."""
    n, edges, resident_elems, current_vertex = case
    policy, span, matrix = build_policy(n, edges)
    cache = SetAssociativeCache(
        CacheConfig("LLC", num_sets=1, num_ways=len(resident_elems)),
        policy,
    )
    ctx = AccessContext(vertex=current_vertex)
    base_line = span.base >> 6
    for element in resident_elems:
        cache.access(base_line + element, ctx)
    victim = policy.choose_victim(0, ctx)
    decoded = [
        matrix.find_next_ref(element, current_vertex)
        for element in resident_elems
    ]
    victim_element = cache.tags[0][victim] - base_line
    assert matrix.find_next_ref(victim_element, current_vertex) == max(
        decoded
    )


@given(graph_cases())
@settings(max_examples=40, deadline=None)
def test_streaming_always_preferred(case):
    """Any streaming line present must be chosen before irregData."""
    n, edges, resident_elems, current_vertex = case
    policy, span, __ = build_policy(n, edges)
    ways = len(resident_elems) + 1
    cache = SetAssociativeCache(
        CacheConfig("LLC", num_sets=1, num_ways=ways), policy
    )
    ctx = AccessContext(vertex=current_vertex)
    base_line = span.base >> 6
    streaming_line = (span.bound >> 6) + 1000
    for element in resident_elems:
        cache.access(base_line + element, ctx)
    cache.access(streaming_line, ctx)
    victim = policy.choose_victim(0, ctx)
    assert cache.tags[0][victim] == streaming_line


@given(graph_cases())
@settings(max_examples=30, deadline=None)
def test_counters_account_every_replacement(case):
    n, edges, resident_elems, current_vertex = case
    policy, span, __ = build_policy(n, edges)
    ways = max(2, len(resident_elems) - 1)
    cache = SetAssociativeCache(
        CacheConfig("LLC", num_sets=1, num_ways=ways), policy
    )
    ctx = AccessContext(vertex=current_vertex)
    base_line = span.base >> 6
    rng = np.random.default_rng(0)
    for element in rng.integers(0, n, size=60):
        cache.access(base_line + int(element), ctx)
    counters = policy.counters
    assert counters.replacements == cache.stats.evictions
    assert counters.ties <= counters.replacements
    assert counters.rm_lookups >= counters.replacements
