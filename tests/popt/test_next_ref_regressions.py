"""Regression tests for the next-ref engine fixes that rode along with
the replay kernels: variant-correct past-end sentinels, the true
vectorized Algorithm 2, policy state surviving ``reset()``, the
epoch-geometry contract, and the CSR line-reference flattening."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import PageRank
from repro.cache import CacheConfig, HierarchyConfig
from repro.errors import PolicyError
from repro.graph import from_edges, uniform_random
from repro.memory import AddressSpace
from repro.popt import (
    POPT,
    TOPT,
    IrregularStream,
    PoptStream,
    build_line_reference_csr,
    build_line_references,
    build_rereference_matrix,
)
from repro.sim import ReplayEngine, prepare_run

VARIANTS = ("inter_only", "inter_intra", "single_epoch")

#: distance-field width per variant (MSB flag and next-epoch bit carved
#: off the entry) — the past-end sentinel is all-ones in this field.
FIELD_BITS = {
    "inter_only": lambda bits: bits,
    "inter_intra": lambda bits: bits - 1,
    "single_epoch": lambda bits: bits - 2,
}


class TestPastEndSentinel:
    """Algorithm 2 past the last epoch must report the same "never
    referenced again" sentinel the builder writes into the matrix —
    derived from the variant's distance-field width, not a fixed mask."""

    @pytest.mark.parametrize("variant", VARIANTS)
    @pytest.mark.parametrize("entry_bits", [4, 8])
    def test_sentinel_matches_field_width(self, variant, entry_bits):
        # Element 0 referenced once at vertex 0; element 1 never.
        graph = from_edges([(0, 0)], num_vertices=64)
        matrix = build_rereference_matrix(
            graph, elems_per_line=1, entry_bits=entry_bits, variant=variant
        )
        sentinel = (1 << FIELD_BITS[variant](entry_bits)) - 1
        past_end = matrix.num_epochs * matrix.epoch_size
        for line in range(2):
            assert matrix.find_next_ref(line, past_end) == sentinel
            assert matrix.find_next_ref(line, past_end + 100) == sentinel

    @pytest.mark.parametrize("variant", VARIANTS)
    def test_sentinel_matches_never_referenced_entry(self, variant):
        # The past-end return and the in-matrix never-referenced decode
        # must agree: both mean "no future reference".
        graph = from_edges([(0, 0)], num_vertices=64)
        matrix = build_rereference_matrix(
            graph, elems_per_line=1, entry_bits=8, variant=variant
        )
        last_vertex = matrix.num_epochs * matrix.epoch_size - 1
        never = matrix.find_next_ref(1, last_vertex)  # line 1: no refs
        assert matrix.find_next_ref(1, last_vertex + 1) == never

    @pytest.mark.parametrize("variant", VARIANTS)
    def test_boundary_epoch_continuous(self, variant):
        # Crossing from the final in-range epoch to past-end must not
        # jump through an out-of-range mask value (the inter_only
        # regression: a 7-bit sentinel on an 8-bit raw entry).
        graph = from_edges([(0, 0)], num_vertices=64)
        matrix = build_rereference_matrix(
            graph, elems_per_line=1, entry_bits=8, variant=variant
        )
        sentinel = (1 << FIELD_BITS[variant](8)) - 1
        past_end = matrix.num_epochs * matrix.epoch_size
        for line in range(matrix.num_lines):
            assert matrix.find_next_ref(line, past_end) == sentinel
            within = matrix.find_next_ref(line, past_end - 1)
            assert 0 <= within <= sentinel


class TestVectorDecode:
    """The batched Algorithm 2 must agree with the scalar decode
    entry-for-entry across variants, widths, and epoch boundaries."""

    @given(
        seed=st.integers(0, 1_000),
        variant=st.sampled_from(VARIANTS),
        entry_bits=st.sampled_from([4, 8, 16]),
    )
    @settings(max_examples=30, deadline=None)
    def test_matches_scalar(self, seed, variant, entry_bits):
        graph = uniform_random(96, avg_degree=4.0, seed=seed)
        matrix = build_rereference_matrix(
            graph, elems_per_line=4, entry_bits=entry_bits, variant=variant
        )
        lines = np.arange(matrix.num_lines, dtype=np.int64)
        epoch = matrix.epoch_size
        probes = sorted({
            0, 1, epoch - 1, epoch, epoch + 1,
            (matrix.num_epochs // 2) * epoch,
            matrix.num_epochs * epoch - 1,   # last in-range vertex
            matrix.num_epochs * epoch,       # first past-end vertex
            matrix.num_epochs * epoch + 7,
        })
        for vertex in probes:
            if vertex < 0:
                continue
            got = matrix.find_next_ref_vector(lines, vertex)
            expected = [
                matrix.find_next_ref(int(line), vertex) for line in lines
            ]
            assert got.tolist() == expected, (variant, entry_bits, vertex)

    def test_returns_int64_array(self):
        graph = uniform_random(64, avg_degree=4.0, seed=0)
        matrix = build_rereference_matrix(graph, elems_per_line=4)
        out = matrix.find_next_ref_vector([0, 1, 2], 0)
        assert out.dtype == np.int64
        assert out.shape == (3,)


def popt_for(graph, variant="inter_intra", entry_bits=8):
    space = AddressSpace()
    span = space.alloc("srcData", graph.num_vertices, 512, irregular=True)
    matrix = build_rereference_matrix(
        graph, elems_per_line=span.elems_per_line, entry_bits=entry_bits,
        variant=variant, num_lines=span.num_lines,
    )
    return POPT([PoptStream(span=span, matrix=matrix)])


class TestPolicyReuse:
    """bind()/reset() must not leak one replay's epoch position or
    engine-cost counters into the next: two runs of the same policy
    instance produce identical stats AND counters."""

    @pytest.fixture(scope="class")
    def prepared(self):
        return prepare_run(
            PageRank(), uniform_random(256, avg_degree=6.0, seed=9)
        )

    @pytest.fixture(scope="class")
    def hierarchy(self):
        return HierarchyConfig(
            l1=CacheConfig("L1", num_sets=2, num_ways=8),
            llc=CacheConfig("LLC", num_sets=4, num_ways=8),
        )

    @pytest.mark.parametrize("variant", VARIANTS)
    def test_popt_two_replays_identical(self, prepared, hierarchy, variant):
        graph = uniform_random(256, avg_degree=6.0, seed=9)
        policy = popt_for(graph, variant=variant)
        engine = ReplayEngine(prepared, hierarchy)
        first = engine.run(policy)
        first_counters = policy.counters
        second = engine.run(policy)
        llc_a, llc_b = first.levels[-1], second.levels[-1]
        assert (llc_a.hits, llc_a.misses, llc_a.evictions) == (
            llc_b.hits, llc_b.misses, llc_b.evictions
        )
        assert policy.counters == first_counters

    def test_popt_reset_clears_state(self):
        graph = uniform_random(128, avg_degree=4.0, seed=2)
        policy = popt_for(graph)
        policy._current_epoch = 17
        policy.counters.rm_lookups = 5
        policy.reset()
        assert policy._current_epoch == -1
        assert policy.counters.rm_lookups == 0
        assert policy.counters.epoch_transitions == 0

    def test_topt_two_replays_identical(self, prepared, hierarchy):
        graph = uniform_random(256, avg_degree=6.0, seed=9)
        policy = TOPT(prepared.irregular_streams, line_size=64)
        engine = ReplayEngine(prepared, hierarchy)
        first = engine.run(policy)
        first_stats = (policy.replacements, policy.transpose_walk_elements)
        second = engine.run(policy)
        llc_a, llc_b = first.levels[-1], second.levels[-1]
        assert (llc_a.hits, llc_a.misses) == (llc_b.hits, llc_b.misses)
        assert (
            policy.replacements, policy.transpose_walk_elements
        ) == first_stats

    def test_topt_reset_clears_counters(self, paper_example_graph):
        space = AddressSpace()
        span = space.alloc("srcData", 5, 512, irregular=True)
        policy = TOPT(
            [IrregularStream(span=span, reference_graph=paper_example_graph)]
        )
        policy.replacements = 3
        policy.transpose_walk_elements = 11
        policy.reset()
        assert policy.replacements == 0
        assert policy.transpose_walk_elements == 0


class TestEpochGeometryContract:
    def test_mismatched_epoch_sizes_raise(self):
        # entry_bits 8 vs 4 over 512 vertices give epoch sizes 2 vs 32.
        graph = uniform_random(512, avg_degree=4.0, seed=1)
        space = AddressSpace()
        a = space.alloc("a", 512, 512, irregular=True)
        b = space.alloc("b", 512, 512, irregular=True)
        wide = build_rereference_matrix(
            graph, elems_per_line=a.elems_per_line, entry_bits=8,
            num_lines=a.num_lines,
        )
        narrow = build_rereference_matrix(
            graph, elems_per_line=b.elems_per_line, entry_bits=4,
            num_lines=b.num_lines,
        )
        assert wide.epoch_size != narrow.epoch_size
        with pytest.raises(PolicyError, match="epoch geometry"):
            POPT([
                PoptStream(span=a, matrix=wide),
                PoptStream(span=b, matrix=narrow),
            ])

    def test_matching_epoch_sizes_accepted(self):
        graph = uniform_random(512, avg_degree=4.0, seed=1)
        space = AddressSpace()
        a = space.alloc("a", 512, 512, irregular=True)
        b = space.alloc("b", 512, 512, irregular=True)
        streams = []
        for span in (a, b):
            matrix = build_rereference_matrix(
                graph, elems_per_line=span.elems_per_line, entry_bits=8,
                num_lines=span.num_lines,
            )
            streams.append(PoptStream(span=span, matrix=matrix))
        policy = POPT(streams)
        assert policy._epoch_size == streams[0].matrix.epoch_size


class TestLineReferenceCSR:
    """The flattened (offsets, refs) pair is the same data the per-line
    list builder produces."""

    @pytest.mark.parametrize("seed", [0, 3, 7])
    def test_matches_list_builder(self, seed):
        graph = uniform_random(128, avg_degree=5.0, seed=seed)
        num_lines = 16
        lists = build_line_references(
            graph, elems_per_line=8, num_lines=num_lines
        )
        offsets, refs = build_line_reference_csr(
            graph, elems_per_line=8, num_lines=num_lines
        )
        assert offsets.dtype == np.int64 and refs.dtype == np.int64
        assert offsets.shape == (num_lines + 1,)
        assert offsets[0] == 0 and offsets[-1] == refs.size
        for line in range(num_lines):
            lo, hi = int(offsets[line]), int(offsets[line + 1])
            assert refs[lo:hi].tolist() == lists[line]

    def test_empty_and_sorted(self):
        graph = from_edges([(0, 3), (1, 3), (0, 1)], num_vertices=16)
        offsets, refs = build_line_reference_csr(
            graph, elems_per_line=2, num_lines=8
        )
        assert refs[offsets[0]:offsets[1]].tolist() == [1, 3]
        assert offsets[4] == offsets[5]  # unreferenced line is empty
        for line in range(8):
            seg = refs[offsets[line]:offsets[line + 1]]
            assert np.all(np.diff(seg) > 0) if seg.size > 1 else True
