"""Tests for the prefetching package (baselines + transpose-driven)."""

import numpy as np
import pytest

from repro.apps import PageRank
from repro.cache import (
    AccessContext,
    CacheConfig,
    CacheHierarchy,
    HierarchyConfig,
    scaled_hierarchy,
)
from repro.graph import uniform_random
from repro.memory.trace import AccessKind, MemoryTrace
from repro.policies import DRRIP, LRU
from repro.prefetch import (
    IndirectPrefetcher,
    NextLinePrefetcher,
    PrefetchStats,
    StridePrefetcher,
    TransposePrefetcher,
    replay_with_prefetcher,
)
from repro.sim import prepare_run


def make_trace(lines, pcs=None, vertices=None):
    n = len(lines)
    return MemoryTrace(
        addresses=np.asarray(lines, np.int64) * 64,
        pcs=np.asarray(pcs if pcs else [1] * n, np.uint8),
        writes=np.zeros(n, bool),
        vertices=np.asarray(vertices if vertices else [0] * n, np.int32),
    )


def llc_only():
    return CacheHierarchy(
        HierarchyConfig(llc=CacheConfig("LLC", num_sets=4, num_ways=4)),
        LRU(),
    )


class TestStats:
    def test_accuracy(self):
        stats = PrefetchStats(issued=10, useful=6, useless=4)
        assert stats.accuracy == pytest.approx(0.6)
        assert PrefetchStats().accuracy == 0.0

    def test_as_dict(self):
        d = PrefetchStats(requested=5, issued=3).as_dict()
        assert d["requested"] == 5 and d["issued"] == 3


class TestNextLine:
    def test_prefetches_sequential(self):
        hierarchy = llc_only()
        trace = make_trace([0, 1, 2, 3])
        stats = replay_with_prefetcher(
            trace, hierarchy, NextLinePrefetcher(degree=1)
        )
        # Each access prefetches its successor, which then demand-hits.
        assert stats.useful == 3

    def test_degree(self):
        assert NextLinePrefetcher(degree=3).observe(10, None) == [
            11, 12, 13,
        ]


class TestStride:
    def test_learns_constant_stride(self):
        prefetcher = StridePrefetcher(degree=1, threshold=2)
        ctx = AccessContext(pc=4)
        out = []
        for line in (0, 5, 10, 15, 20):
            out.append(prefetcher.observe(line, ctx))
        assert out[-1] == [25]

    def test_zero_stride_neutral(self):
        prefetcher = StridePrefetcher(degree=1, threshold=2)
        ctx = AccessContext(pc=4)
        for line in (0, 1, 1, 1, 2, 2, 3):
            last = prefetcher.observe(line, ctx)
        assert last == [4]  # the repeated lines did not reset confidence

    def test_irregular_never_confirms(self):
        prefetcher = StridePrefetcher(degree=1, threshold=2)
        ctx = AccessContext(pc=4)
        rng = np.random.default_rng(0)
        fired = []
        for line in rng.integers(0, 1000, size=200):
            fired.extend(prefetcher.observe(int(line), ctx))
        assert len(fired) < 10


class TestTransposePrefetcher:
    def test_prefetches_upcoming_in_neighbors(self, paper_example_graph):
        from repro.memory import AddressSpace

        csc = paper_example_graph.transpose()
        space = AddressSpace()
        span = space.alloc("srcData", 5, 512, irregular=True)  # 1/line
        prefetcher = TransposePrefetcher(csc, span, lookahead=1)
        ctx = AccessContext(vertex=0)
        lines = prefetcher.observe(0, ctx)
        base = span.base >> 6
        # Iteration 1's in-neighbors are srcData elements {2, 3}.
        expected = {base + int(s) for s in csc.out_neighbors(1)}
        assert set(lines) == expected

    def test_only_fires_on_vertex_advance(self, paper_example_graph):
        from repro.memory import AddressSpace

        csc = paper_example_graph.transpose()
        space = AddressSpace()
        span = space.alloc("srcData", 5, 512, irregular=True)
        prefetcher = TransposePrefetcher(csc, span, lookahead=1)
        ctx = AccessContext(vertex=0)
        assert prefetcher.observe(0, ctx)
        assert prefetcher.observe(1, ctx) == []  # same vertex

    def test_end_of_graph(self, paper_example_graph):
        from repro.memory import AddressSpace

        csc = paper_example_graph.transpose()
        space = AddressSpace()
        span = space.alloc("srcData", 5, 512, irregular=True)
        prefetcher = TransposePrefetcher(csc, span, lookahead=3)
        ctx = AccessContext(vertex=4)
        assert prefetcher.observe(0, ctx) == []


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def setup(self):
        graph = uniform_random(8192, avg_degree=4.0, seed=3)
        prepared = prepare_run(PageRank(), graph)
        return graph, prepared

    def _run(self, prepared, prefetcher):
        hierarchy = CacheHierarchy(scaled_hierarchy("tiny"), DRRIP())
        stats = replay_with_prefetcher(
            prepared.trace, hierarchy, prefetcher
        )
        return hierarchy.llc.stats.misses, stats

    def test_transpose_prefetch_cuts_demand_misses(self, setup):
        graph, prepared = setup
        csc = graph.transpose()
        span = prepared.layout["srcData"]
        base_misses, __ = self._run(prepared, None)
        pf_misses, stats = self._run(
            prepared, TransposePrefetcher(csc, span, lookahead=4)
        )
        assert pf_misses < base_misses * 0.95
        assert stats.useful > 0

    def test_indirect_beats_next_line_accuracy(self, setup):
        graph, prepared = setup
        csc = graph.transpose()
        __, nl_stats = self._run(prepared, NextLinePrefetcher())
        __, imp_stats = self._run(
            prepared,
            IndirectPrefetcher(
                prepared.layout["csc_neighbors"],
                csc.neighbors,
                prepared.layout["srcData"],
                delta=16,
            ),
        )
        assert imp_stats.accuracy > nl_stats.accuracy

    def test_usefulness_settles(self, setup):
        __, prepared = setup
        __, stats = self._run(prepared, NextLinePrefetcher())
        assert stats.useful + stats.useless == stats.issued


class TestInstallStaysClean:
    """Regression: a prefetched line must install clean — it moves data,
    it does not write it — so it can never inherit a preceding demand
    store's write flag and inflate writebacks when later evicted."""

    def test_install_ignores_inherited_write_flag(self):
        from repro.cache.cache import SetAssociativeCache
        from repro.policies.lru import LRU

        cache = SetAssociativeCache(
            CacheConfig("LLC", num_sets=1, num_ways=2), LRU()
        )
        dirty_ctx = AccessContext(write=True)  # stale demand-store flag
        assert cache.install(5, dirty_ctx)
        assert dirty_ctx.write is True  # caller's context is untouched
        # Evict line 5 with demand reads: no writeback may appear.
        read_ctx = AccessContext()
        for line in (1, 2, 3):
            cache.access(line, read_ctx)
        assert 5 not in cache.resident_lines()
        assert cache.stats.writebacks == 0

    def test_prefetched_line_after_demand_store_not_written_back(self):
        hierarchy = llc_only()
        # A demand store to line 0; the next-line prefetcher installs
        # line 1 right after it from the same observation.
        trace = MemoryTrace(
            addresses=np.array([0], np.int64),
            pcs=np.ones(1, np.uint8),
            writes=np.ones(1, bool),
            vertices=np.zeros(1, np.int32),
        )
        replay_with_prefetcher(trace, hierarchy, NextLinePrefetcher())
        llc = hierarchy.llc
        assert sorted(llc.resident_lines()) == [0, 1]
        # Force both lines out: only the demand store's line is dirty.
        ctx = AccessContext()
        for line in range(2, 2 + 4 * 4 * 2):
            llc.access(line, ctx)
        assert llc.stats.writebacks == 1
