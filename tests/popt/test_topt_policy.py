"""Tests for T-OPT, the P-OPT policy, and the architecture model."""

import numpy as np
import pytest

from repro.cache import (
    AccessContext,
    CacheConfig,
    HierarchyConfig,
    SetAssociativeCache,
)
from repro.errors import CacheConfigError, LayoutError, PolicyError
from repro.graph import from_edges, uniform_random
from repro.memory import AddressSpace
from repro.memory.trace import AccessKind, MemoryTrace
from repro.popt import (
    POPT,
    TOPT,
    IrregularStream,
    PoptRegisters,
    PoptStream,
    build_line_references,
    build_rereference_matrix,
    effective_llc,
    reserved_ways,
)
from repro.popt.policy import PoptStream
from repro.apps import PageRank
from repro.sim import prepare_run, simulate_prepared


def irregular_only_trace(graph, span):
    """Per-edge srcData accesses of a pull execution (the Fig. 3 model:
    only irregular accesses enter the cache)."""
    csc = graph.transpose()
    sources = csc.neighbors.astype(np.int64)
    destinations = np.repeat(
        np.arange(graph.num_vertices, dtype=np.int64), csc.degrees()
    )
    return MemoryTrace(
        addresses=span.addr_of(sources),
        pcs=np.full(len(sources), AccessKind.IRREG_DATA, np.uint8),
        writes=np.zeros(len(sources), bool),
        vertices=destinations.astype(np.int32),
    )


def run_llc_only(policy, trace, num_sets=1, num_ways=2):
    cache = SetAssociativeCache(
        CacheConfig("LLC", num_sets=num_sets, num_ways=num_ways), policy
    )
    ctx = AccessContext()
    lines = (trace.addresses >> 6).tolist()
    vertices = trace.vertices.tolist()
    hits = 0
    for index in range(len(lines)):
        ctx.index = index
        ctx.vertex = vertices[index]
        hits += cache.access(lines[index], ctx)
    return cache, hits


class TestLineReferences:
    def test_union_of_vertices(self, paper_example_graph):
        refs = build_line_references(
            paper_example_graph, elems_per_line=2, num_lines=3
        )
        # Line 0 covers S0 (out: {2}) and S1 (out: {0, 4}).
        assert refs[0] == [0, 2, 4]
        # Line 2 covers S4 (out: {0, 2}).
        assert refs[2] == [0, 2]

    def test_deduplicated_and_sorted(self):
        g = from_edges([(0, 3), (1, 3), (0, 1)], num_vertices=4)
        refs = build_line_references(g, elems_per_line=2, num_lines=2)
        assert refs[0] == [1, 3]
        assert all(refs[line] == sorted(set(refs[line])) for line in range(2))

    def test_unreferenced_line_empty(self):
        g = from_edges([(0, 1)], num_vertices=8)
        refs = build_line_references(g, elems_per_line=2, num_lines=4)
        assert refs[3] == []


class TestTOPTReplacement:
    def test_paper_fig3_scenario_a(self, paper_example_graph):
        """The paper's worked example: a 2-way cache holding srcData[S1]
        and srcData[S2] at D0 must evict S1 (next ref D4 vs D1)."""
        space = AddressSpace()
        span = space.alloc("srcData", 5, 512, irregular=True)  # 1/line
        policy = TOPT(
            [IrregularStream(span=span, reference_graph=paper_example_graph)]
        )
        cache = SetAssociativeCache(
            CacheConfig("LLC", num_sets=1, num_ways=2), policy
        )
        ctx = AccessContext(vertex=0)
        line_base = span.base >> 6
        cache.access(line_base + 1, ctx)  # srcData[S1]
        cache.access(line_base + 2, ctx)  # srcData[S2]
        victim = policy.choose_victim(0, ctx)
        assert cache.tags[0][victim] == line_base + 1  # S1 evicted

    def test_streaming_evicted_first(self, paper_example_graph):
        space = AddressSpace()
        span = space.alloc("srcData", 5, 512, irregular=True)
        stream_span = space.alloc("stream", 64, 512)
        policy = TOPT(
            [IrregularStream(span=span, reference_graph=paper_example_graph)]
        )
        cache = SetAssociativeCache(
            CacheConfig("LLC", num_sets=1, num_ways=2), policy
        )
        ctx = AccessContext(vertex=0)
        cache.access(span.base >> 6, ctx)
        cache.access(stream_span.base >> 6, ctx)
        victim = policy.choose_victim(0, ctx)
        assert cache.tags[0][victim] == stream_span.base >> 6

    def test_requires_streams(self):
        with pytest.raises(PolicyError):
            TOPT([])

    def test_walk_cost_accounted(self, paper_example_graph):
        space = AddressSpace()
        span = space.alloc("srcData", 5, 512, irregular=True)
        policy = TOPT(
            [IrregularStream(span=span, reference_graph=paper_example_graph)]
        )
        trace = irregular_only_trace(paper_example_graph, span)
        run_llc_only(policy, trace, num_ways=2)
        assert policy.replacements > 0
        assert policy.transpose_walk_elements >= policy.replacements


class TestTOPTOptimality:
    def test_topt_close_to_belady_on_irregular_stream(self):
        """On an irregular-only trace T-OPT must track Belady's MIN
        closely (it has the same information at outer-vertex granularity)
        and beat LRU clearly."""
        from repro.policies import LRU, BeladyOPT

        graph = uniform_random(256, avg_degree=8.0, seed=5)
        space = AddressSpace()
        span = space.alloc("srcData", 256, 512, irregular=True)
        trace = irregular_only_trace(graph, span)

        opt = BeladyOPT(trace.next_use_indices())
        __, opt_hits = run_llc_only(opt, trace, num_sets=4, num_ways=8)
        topt = TOPT([IrregularStream(span=span, reference_graph=graph)])
        __, topt_hits = run_llc_only(topt, trace, num_sets=4, num_ways=8)
        lru = LRU()
        __, lru_hits = run_llc_only(lru, trace, num_sets=4, num_ways=8)

        assert opt_hits >= topt_hits  # MIN is optimal
        # T-OPT works at outer-vertex granularity: lines whose next
        # references fall under the same destination tie, so it trails
        # position-exact MIN slightly.
        assert topt_hits >= 0.85 * opt_hits
        assert topt_hits > lru_hits


class TestPOPTPolicy:
    def make_popt(self, graph, entry_bits=8, variant="inter_intra",
                  elems_per_line=1):
        space = AddressSpace()
        span = space.alloc(
            "srcData", graph.num_vertices, 512 // elems_per_line,
            irregular=True,
        )
        matrix = build_rereference_matrix(
            graph,
            elems_per_line=span.elems_per_line,
            entry_bits=entry_bits,
            variant=variant,
            num_lines=span.num_lines,
        )
        return POPT([PoptStream(span=span, matrix=matrix)]), span

    def test_requires_streams(self):
        with pytest.raises(PolicyError):
            POPT([])

    def test_variant_names(self, paper_example_graph):
        for variant, name in (
            ("inter_intra", "P-OPT"),
            ("inter_only", "P-OPT-Inter"),
            ("single_epoch", "P-OPT-SE"),
        ):
            policy, __ = self.make_popt(
                paper_example_graph, variant=variant
            )
            assert policy.name == name

    def test_streaming_victim_preferred(self, paper_example_graph):
        policy, span = self.make_popt(paper_example_graph)
        space_line = span.base >> 6
        cache = SetAssociativeCache(
            CacheConfig("LLC", num_sets=1, num_ways=2), policy
        )
        ctx = AccessContext(vertex=0)
        cache.access(space_line, ctx)
        cache.access(1 << 40, ctx)  # some streaming line
        victim = policy.choose_victim(0, ctx)
        assert cache.tags[0][victim] == 1 << 40
        assert policy.counters.streaming_evictions >= 1

    def test_epoch_transition_streams_columns(self, paper_example_graph):
        policy, span = self.make_popt(paper_example_graph, entry_bits=3)
        cache = SetAssociativeCache(
            CacheConfig("LLC", num_sets=1, num_ways=2), policy
        )
        ctx = AccessContext()
        for vertex in range(5):
            ctx.vertex = vertex
            cache.access(span.base >> 6, ctx)
        assert policy.counters.epoch_transitions == 4
        assert (
            policy.counters.bytes_streamed
            == 4 * policy.streams[0].matrix.column_bytes()
        )

    def test_tie_break_uses_drrip(self, paper_example_graph):
        policy, span = self.make_popt(paper_example_graph)
        cache = SetAssociativeCache(
            CacheConfig("LLC", num_sets=1, num_ways=2), policy
        )
        base_line = span.base >> 6
        ctx = AccessContext(vertex=0)
        # Two lines referenced in the current epoch tie at distance 0.
        cache.access(base_line + 1, ctx)
        cache.access(base_line + 2, ctx)
        victim = policy.choose_victim(0, ctx)
        assert victim in (0, 1)
        assert policy.counters.ties >= 1

    def test_end_to_end_beats_drrip(self):
        graph = uniform_random(4096, avg_degree=8.0, seed=6)
        prepared = prepare_run(PageRank(), graph)
        hierarchy = HierarchyConfig(
            l1=CacheConfig("L1", num_sets=2, num_ways=8),
            l2=CacheConfig("L2", num_sets=4, num_ways=8),
            llc=CacheConfig("LLC", num_sets=8, num_ways=16),
        )
        drrip = simulate_prepared(prepared, "DRRIP", hierarchy)
        popt = simulate_prepared(prepared, "P-OPT", hierarchy)
        topt = simulate_prepared(prepared, "T-OPT", hierarchy)
        assert popt.llc.misses < drrip.llc.misses
        assert topt.llc.misses <= popt.llc.misses * 1.05
        assert popt.reserved_llc_ways >= 1


class TestArch:
    def test_reserved_ways_paper_example(self):
        # Section V-A: 32 M vertices, 4 B elements -> 2 M lines, 2 MB per
        # column, 2 columns = 4 MB. With the paper's 24 MiB 16-way LLC a
        # way is 1.5 MiB -> 3 ways.
        llc = CacheConfig("LLC", num_sets=24576, num_ways=16)
        assert reserved_ways(4 * 1024 * 1024, llc) == 3

    def test_reserved_zero_for_empty(self):
        llc = CacheConfig("LLC", num_sets=16, num_ways=16)
        assert reserved_ways(0, llc) == 0
        with pytest.raises(CacheConfigError):
            reserved_ways(-1, llc)

    def test_effective_llc(self):
        llc = CacheConfig("LLC", num_sets=16, num_ways=16)
        shrunk = effective_llc(llc, 2 * llc.way_bytes)
        assert shrunk.num_ways == 14

    def test_effective_llc_exhausted(self):
        llc = CacheConfig("LLC", num_sets=16, num_ways=4)
        with pytest.raises(CacheConfigError):
            effective_llc(llc, 4 * llc.way_bytes)

    def test_registers_stream_of(self):
        space = AddressSpace()
        a = space.alloc("a", 64, 32, irregular=True)
        b = space.alloc("b", 64, 32, irregular=True)
        registers = PoptRegisters(
            irreg_spans=[a, b], epoch_size=4, sub_epoch_size=1
        )
        assert registers.stream_of(a.base // 64) == 0
        assert registers.stream_of(b.base // 64) == 1
        assert registers.stream_of((b.bound // 64) + 10) == -1

    def test_registers_require_spans(self):
        with pytest.raises(LayoutError):
            PoptRegisters(irreg_spans=[], epoch_size=1, sub_epoch_size=1)


class TestContextSwitch:
    def test_save_restore_refetches_columns(self, paper_example_graph):
        """Section V-F: on resume the streaming engine refetches the
        resident RM columns; register state survives the switch."""
        space = AddressSpace()
        span = space.alloc("srcData", 5, 512, irregular=True)
        matrix = build_rereference_matrix(
            paper_example_graph, elems_per_line=1, entry_bits=3,
            num_lines=span.num_lines,
        )
        policy = POPT([PoptStream(span=span, matrix=matrix)])
        cache = SetAssociativeCache(
            CacheConfig("LLC", num_sets=1, num_ways=2), policy
        )
        ctx = AccessContext(vertex=2)
        cache.access(span.base >> 6, ctx)
        saved = policy.save_context()
        before = policy.counters.bytes_streamed
        policy.restore_context(saved)
        assert policy._current_epoch == saved["epoch"]
        assert (
            policy.counters.bytes_streamed
            == before + matrix.resident_bytes()
        )
