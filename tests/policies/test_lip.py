"""Tests for LIP/BIP insertion policies."""

from repro.cache import AccessContext, CacheConfig, SetAssociativeCache
from repro.policies import BIP, LIP, LRU


def run(policy, lines, num_ways=4):
    cache = SetAssociativeCache(
        CacheConfig("t", num_sets=1, num_ways=num_ways), policy
    )
    ctx = AccessContext()
    return cache, [cache.access(line, ctx) for line in lines]


class TestLIP:
    def test_thrash_resistance_beats_lru(self):
        # Cyclic scan over ways+2 lines: LIP keeps a stable subset.
        lines = list(range(6)) * 20
        __, lip_hits = run(LIP(), lines)
        __, lru_hits = run(LRU(), lines)
        assert sum(lip_hits) > sum(lru_hits)

    def test_new_fill_is_next_victim_without_reuse(self):
        policy = LIP()
        cache, __ = run(policy, [0, 1, 2, 3, 4])
        # Line 4 filled at LRU; the next fill (5) evicts it, not line 0.
        ctx = AccessContext()
        cache.access(5, ctx)
        assert cache.probe(0)
        assert not cache.probe(4)

    def test_hit_promotes(self):
        policy = LIP()
        cache, __ = run(policy, [0, 1, 2, 3, 4, 4, 5])
        # 4 was promoted by its hit, so fill 5 evicted something else.
        assert cache.probe(4)


class TestBIP:
    def test_epsilon_mru_insertions(self):
        policy = BIP(seed=7)
        cache, __ = run(policy, list(range(200)))
        stamps = policy._stamps[0]
        # With epsilon=1/32 over 200 fills, some fill got an MRU stamp.
        assert max(stamps) > 0

    def test_deterministic(self):
        a_cache, a = run(BIP(seed=3), list(range(50)) * 2)
        b_cache, b = run(BIP(seed=3), list(range(50)) * 2)
        assert a == b
