"""Tests for the dead-block prediction policies (SDBP, Leeway)."""

import pytest

from repro.cache import AccessContext, CacheConfig, SetAssociativeCache
from repro.policies import LRU, Leeway, SDBP


def replay(policy, accesses, num_sets=1, num_ways=4):
    cache = SetAssociativeCache(
        CacheConfig("t", num_sets=num_sets, num_ways=num_ways), policy
    )
    ctx = AccessContext()
    results = []
    for index, (line, pc) in enumerate(accesses):
        ctx.index = index
        ctx.pc = pc
        results.append(cache.access(line, ctx))
    return cache, results


class TestSDBP:
    def test_scan_pc_trained_dead(self):
        policy = SDBP(sample_every=1)
        # PC 9 emits a long one-shot scan; PC 2's lines (0, 1) are hot.
        accesses = []
        for i in range(300):
            accesses.append((0, 2))
            accesses.append((1, 2))
            accesses.append((100 + i, 9))
        cache, _ = replay(policy, accesses, num_ways=4)
        assert policy._predictor[9] >= policy.DEAD_THRESHOLD
        assert policy._predictor[2] < policy.DEAD_THRESHOLD
        assert cache.probe(0) and cache.probe(1)

    def test_dead_lines_preferred_victims(self):
        policy = SDBP(sample_every=1)
        cache = SetAssociativeCache(
            CacheConfig("t", num_sets=1, num_ways=4), policy
        )
        ctx = AccessContext()
        for line, pc in [(0, 2), (1, 2), (2, 9), (3, 9)]:
            ctx.pc = pc
            cache.access(line, ctx)
        # Saturate PC 9's dead counter and re-touch line 2 so its dead
        # bit refreshes (the sampler's live-training on that reuse costs
        # one counter step, hence saturation first).
        policy._predictor[9] = policy.COUNTER_MAX
        ctx.pc = 9
        cache.access(2, ctx)
        victim = policy.choose_victim(0, ctx)
        # Victim is the predicted-dead line 2, even though line 0 is
        # older in LRU terms.
        assert cache.tags[0][victim] == 2

    def test_reuse_trains_live(self):
        policy = SDBP(sample_every=1)
        # PC 5's lines are always reused promptly.
        accesses = []
        for i in range(50):
            accesses.append((i % 3, 5))
        replay(policy, accesses, num_ways=4)
        assert policy._predictor[5] < policy.DEAD_THRESHOLD

    def test_falls_back_to_lru(self):
        """With an untrained predictor SDBP must behave exactly like LRU."""
        import random

        rng = random.Random(1)
        accesses = [(rng.randrange(12), rng.randrange(2)) for _ in range(60)]
        # Use unsampled sets only so no training ever happens.
        sdbp = SDBP(sample_every=64)
        cache_a, results_a = replay(sdbp, accesses, num_sets=2)
        # sample_every=64 > num_sets means set 0 is still sampled; force
        # comparison on pure LRU instead via the dead-bit state:
        cache_b, results_b = replay(LRU(), accesses, num_sets=2)
        # With DEAD_THRESHOLD unreached the victim rule is min-stamp = LRU.
        assert results_a == results_b


class TestLeeway:
    def test_live_distance_rises_on_deep_hits(self):
        policy = Leeway()
        # Line 0 is reused after 3 intervening lines: depth 3 hits.
        pattern = [(0, 7), (1, 7), (2, 7), (3, 7)] * 20
        replay(policy, pattern, num_ways=4)
        assert policy._live_distance[7] >= 3

    def test_live_distance_shrinks_hesitantly(self):
        policy = Leeway()
        policy.bind(
            SetAssociativeCache(
                CacheConfig("t", num_sets=1, num_ways=4), LRU()
            )
        )
        # Directly exercise the update rule: repeated shallow lifetimes.
        policy._live_distance[3] = 10
        ctx = AccessContext(pc=3)
        for i in range(policy.SHRINK_HESITATION - 1):
            policy._line_pc[0][0] = 3
            policy._line_max_depth[0][0] = 0
            policy.on_evict(0, 0, ctx)
        assert policy._live_distance[3] == 10  # not yet
        policy._line_pc[0][0] = 3
        policy._line_max_depth[0][0] = 0
        policy.on_evict(0, 0, ctx)
        assert policy._live_distance[3] == 9  # one hesitant step

    def test_dead_line_evicted_before_lru(self):
        policy = Leeway()
        cache = SetAssociativeCache(
            CacheConfig("t", num_sets=1, num_ways=4), policy
        )
        ctx = AccessContext()
        for line, pc in [(0, 1), (1, 1), (2, 1), (3, 1)]:
            ctx.pc = pc
            cache.access(line, ctx)
        # Declare PC 1's lines dead past depth 1: victim should be the
        # LRU-most line (depth 3 > 1).
        policy._live_distance[1] = 1
        victim = policy.choose_victim(0, ctx)
        assert cache.tags[0][victim] == 0

    def test_defaults_to_lru_when_all_live(self):
        policy = Leeway()
        cache, _ = replay(policy, [(i, 1) for i in range(4)])
        victim = policy.choose_victim(0, AccessContext())
        assert cache.tags[0][victim] == 0  # oldest


class TestOnGraphWorkload:
    @pytest.mark.parametrize("policy_name", ["SDBP", "Leeway"])
    def test_between_catastrophe_and_popt(self, policy_name):
        """On PageRank the dead-block predictors must stay in LRU's
        neighborhood (Section VIII: they can't find graph dead lines, but
        they must not melt down either) and lose clearly to P-OPT."""
        from repro.apps import PageRank
        from repro.cache import scaled_hierarchy
        from repro.graph import uniform_random
        from repro.sim import prepare_run, simulate_prepared

        graph = uniform_random(4096, avg_degree=8.0, seed=4)
        hierarchy = scaled_hierarchy("tiny")
        prepared = prepare_run(PageRank(), graph)
        lru = simulate_prepared(prepared, "LRU", hierarchy)
        dead = simulate_prepared(prepared, policy_name, hierarchy)
        popt = simulate_prepared(prepared, "P-OPT", hierarchy)
        assert dead.llc.misses < lru.llc.misses * 1.15
        assert popt.llc.misses < dead.llc.misses
