"""Behavioral tests for LRU, Bit-PLRU, Random, and the RRIP family."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import AccessContext, CacheConfig, SetAssociativeCache
from repro.errors import PolicyError
from repro.policies import (
    BRRIP,
    DRRIP,
    LRU,
    BitPLRU,
    RandomReplacement,
    ReplacementPolicy,
    SRRIP,
)


def run_stream(policy, lines, num_sets=1, num_ways=4):
    cache = SetAssociativeCache(
        CacheConfig("t", num_sets=num_sets, num_ways=num_ways), policy
    )
    ctx = AccessContext()
    results = []
    for index, line in enumerate(lines):
        ctx.index = index
        results.append(cache.access(line, ctx))
    return cache, results


class TestBase:
    def test_choose_victim_not_implemented(self):
        policy = ReplacementPolicy()
        cache = SetAssociativeCache(
            CacheConfig("t", num_sets=1, num_ways=1), policy
        )
        ctx = AccessContext()
        cache.access(0, ctx)
        with pytest.raises(PolicyError):
            cache.access(1, ctx)


class TestLRU:
    def test_evicts_least_recent(self):
        # Fill 0,1,2,3; touch 0; insert 4 -> victim must be 1.
        cache, _ = run_stream(LRU(), [0, 1, 2, 3, 0, 4])
        assert cache.probe(0)
        assert not cache.probe(1)

    def test_sequential_scan_thrashes(self):
        # Classic LRU pathology: a cyclic scan of ways+1 lines never hits.
        lines = [0, 1, 2, 3, 4] * 10
        _, results = run_stream(LRU(), lines)
        assert not any(results)

    def test_repeated_line_hits(self):
        _, results = run_stream(LRU(), [7, 7, 7, 7])
        assert results == [False, True, True, True]


class TestBitPLRU:
    def test_victim_has_clear_mru_bit(self):
        cache, _ = run_stream(BitPLRU(), [0, 1, 2, 3])
        policy = cache.policy
        bits = policy._mru[0]
        victim = policy.choose_victim(0, AccessContext())
        assert bits[victim] is False

    def test_recent_line_protected(self):
        cache, _ = run_stream(BitPLRU(), [0, 1, 2, 3, 3, 4])
        assert cache.probe(3)

    def test_approximates_lru_on_small_reuse(self):
        lines = [0, 1, 0, 1, 0, 1] * 5
        _, results = run_stream(BitPLRU(), lines, num_ways=2)
        assert all(results[2:])


class TestRandom:
    def test_deterministic_given_seed(self):
        lines = [random.Random(1).randrange(16) for _ in range(200)]
        cache_a, _ = run_stream(RandomReplacement(seed=5), lines)
        cache_b, _ = run_stream(RandomReplacement(seed=5), lines)
        assert cache_a.tags == cache_b.tags

    def test_valid_way_range(self):
        policy = RandomReplacement(seed=0)
        cache, _ = run_stream(policy, list(range(8)))
        for _ in range(50):
            assert 0 <= policy.choose_victim(0, AccessContext()) < 4


class TestSRRIP:
    def test_scan_resistance(self):
        # A reused working set survives a one-shot scan better than LRU.
        working = [0, 1]
        scan = list(range(10, 16))
        pattern = (working * 4) + scan + (working * 4)
        _, srrip_results = run_stream(SRRIP(), pattern, num_ways=4)
        _, lru_results = run_stream(LRU(), pattern, num_ways=4)
        srrip_hits = sum(srrip_results[-8:])
        lru_hits = sum(lru_results[-8:])
        assert srrip_hits >= lru_hits

    def test_hit_promotes_to_zero(self):
        cache, _ = run_stream(SRRIP(), [0, 0])
        assert cache.policy._rrpv[0][0] == 0

    def test_insertion_at_long(self):
        policy = SRRIP()
        cache, _ = run_stream(policy, [0])
        assert policy._rrpv[0][0] == policy.rrpv_max - 1

    def test_aging_terminates(self):
        # choose_victim must terminate even when all RRPVs are 0.
        policy = SRRIP()
        cache, _ = run_stream(policy, [0, 0, 1, 1, 2, 2, 3, 3])
        victim = policy.choose_victim(0, AccessContext())
        assert 0 <= victim < 4


class TestBRRIP:
    def test_insertion_mostly_distant(self):
        policy = BRRIP(seed=3)
        cache = SetAssociativeCache(
            CacheConfig("t", num_sets=1, num_ways=16), policy
        )
        ctx = AccessContext()
        for line in range(16):
            cache.access(line, ctx)
        distant = sum(
            1 for v in policy._rrpv[0] if v == policy.rrpv_max
        )
        assert distant >= 12  # 1/32 trickle leaves most at max


class TestDRRIP:
    def test_leader_sets_assigned(self):
        policy = DRRIP()
        SetAssociativeCache(
            CacheConfig("t", num_sets=64, num_ways=4), policy
        )
        roles = policy._leader
        assert roles.count(1) == 2  # 64 sets / 32 period
        assert roles.count(2) == 2

    def test_psel_moves_on_leader_misses(self):
        policy = DRRIP(leader_period=2)
        cache = SetAssociativeCache(
            CacheConfig("t", num_sets=2, num_ways=1), policy
        )
        ctx = AccessContext()
        start = policy._psel
        # Set 0 leads SRRIP; misses there push PSEL up.
        for line in range(0, 40, 2):
            cache.access(line, ctx)
        assert policy._psel > start

    def test_followers_obey_psel(self):
        policy = DRRIP(leader_period=32)
        SetAssociativeCache(
            CacheConfig("t", num_sets=64, num_ways=4), policy
        )
        follower_set = 1  # neither leader
        policy._psel = policy.psel_max  # BRRIP winning
        insertions = {
            policy.insertion_rrpv(follower_set) for _ in range(64)
        }
        assert policy.rrpv_max in insertions  # mostly distant
        policy._psel = 0  # SRRIP winning
        assert policy.insertion_rrpv(follower_set) == policy.rrpv_max - 1

    def test_brrip_thrash_pattern_better_than_lru(self):
        # Cyclic scan over ways+2 lines: BRRIP-style insertion keeps a
        # subset resident, LRU keeps nothing. (This is the behaviour
        # DRRIP's dueling selects under thrash.)
        lines = list(range(6)) * 30
        _, brrip_results = run_stream(BRRIP(seed=1), lines, num_ways=4)
        _, lru_results = run_stream(LRU(), lines, num_ways=4)
        assert sum(brrip_results) > sum(lru_results)


@given(st.lists(st.integers(0, 30), min_size=1, max_size=300))
@settings(max_examples=25, deadline=None)
def test_all_policies_keep_tag_policy_state_consistent(lines):
    for policy in (LRU(), BitPLRU(), SRRIP(), BRRIP(), DRRIP()):
        cache, results = run_stream(policy, lines, num_sets=2, num_ways=4)
        assert len(results) == len(lines)
        stats = cache.stats
        assert stats.hits + stats.misses == len(lines)
