"""Registry hardening: duplicate rejection, deterministic name order."""

import pytest

from repro.errors import PolicyError
from repro.policies import LRU
from repro.policies.registry import (
    _FACTORIES,
    PolicyContext,
    make_policy,
    policy_names,
    register_policy,
)


class TestRegisterPolicy:
    def test_duplicate_name_rejected(self):
        with pytest.raises(PolicyError, match="already registered"):
            register_policy("LRU")(lambda ctx: LRU())
        # The original factory survives the failed registration.
        assert isinstance(make_policy("LRU", PolicyContext()), LRU)

    def test_replace_opt_in(self, monkeypatch):
        monkeypatch.setattr(
            "repro.policies.registry._FACTORIES", dict(_FACTORIES)
        )
        sentinel = LRU()
        register_policy("LRU", replace=True)(lambda ctx: sentinel)
        assert make_policy("LRU", PolicyContext()) is sentinel

    def test_new_name_registers(self, monkeypatch):
        monkeypatch.setattr(
            "repro.policies.registry._FACTORIES", dict(_FACTORIES)
        )
        register_policy("Test-Only")(lambda ctx: LRU())
        assert "Test-Only" in policy_names()


class TestPolicyNames:
    def test_sorted_and_duplicate_free(self):
        names = policy_names()
        assert names == sorted(set(names))

    def test_unknown_name_lists_choices(self):
        with pytest.raises(PolicyError, match="unknown policy"):
            make_policy("No-Such-Policy", PolicyContext())
