"""Tests for SHiP, Hawkeye, Belady OPT, and GRASP."""

import numpy as np
import pytest

from repro.cache import AccessContext, CacheConfig, SetAssociativeCache
from repro.errors import PolicyError
from repro.memory.trace import MemoryTrace
from repro.policies import GRASP, BeladyOPT, Hawkeye, SHiP, ship_mem, ship_pc
from repro.policies.registry import PolicyContext, make_policy, policy_names


def replay(policy, accesses, num_sets=1, num_ways=4):
    """accesses: list of (line, pc)."""
    cache = SetAssociativeCache(
        CacheConfig("t", num_sets=num_sets, num_ways=num_ways), policy
    )
    ctx = AccessContext()
    results = []
    for index, (line, pc) in enumerate(accesses):
        ctx.index = index
        ctx.pc = pc
        results.append(cache.access(line, ctx))
    return cache, results


class TestSHiP:
    def test_signature_validation(self):
        with pytest.raises(ValueError):
            SHiP(signature="bogus")

    def test_names(self):
        assert ship_pc().name == "SHiP-PC"
        assert ship_mem().name == "SHiP-Mem"

    def test_dead_pc_learns_distant_insertion(self):
        policy = ship_pc()
        # PC 7 only produces lines that are never reused; PC 3's lines are
        # hot. After training, PC 7 fills insert at distant RRPV.
        accesses = []
        for round_index in range(40):
            accesses.append((round_index + 100, 7))  # never reused
            accesses.append((0, 3))
            accesses.append((1, 3))
        cache, results = replay(policy, accesses, num_ways=4)
        assert policy._shct[7] == 0
        assert policy._shct[3] > 0
        # Hot lines survive the dead-line stream.
        assert cache.probe(0) and cache.probe(1)

    def test_ship_mem_tracks_regions(self):
        policy = ship_mem(region_lines=1)
        accesses = [(5, 1), (5, 2), (6, 1)] * 10
        replay(policy, accesses)
        assert policy._shct[5] > 0

    def test_outcome_reset_on_fill(self):
        policy = ship_pc()
        cache, _ = replay(policy, [(0, 1), (0, 1)])
        assert policy._line_reused[0][0] is True
        # New fill resets the reuse bit.
        replayed_ctx = AccessContext(pc=1)
        cache.access(1, replayed_ctx)
        way = cache.tags[0].index(1)
        assert policy._line_reused[0][way] is False


class TestHawkeye:
    def test_friendly_pc_protected(self):
        policy = Hawkeye(sample_every=1)
        # PC 2's line (0) is reused constantly; PC 9 produces a scan.
        accesses = []
        for i in range(60):
            accesses.append((0, 2))
            accesses.append((100 + i, 9))
        cache, results = replay(policy, accesses, num_ways=4)
        assert policy._predictor[2] >= 4
        assert cache.probe(0)

    def test_averse_pc_detrained(self):
        policy = Hawkeye(sample_every=1)
        # One-shot lines from PC 9 overflow the set; OPTgen sees no reuse.
        accesses = [(i, 9) for i in range(200)]
        replay(policy, accesses, num_ways=4)
        assert policy._predictor[9] < 4

    def test_history_window_bounded(self):
        policy = Hawkeye(sample_every=1, history_factor=2)
        accesses = [(i % 3, 1) for i in range(500)]
        replay(policy, accesses, num_ways=2)
        history = policy._histories[0]
        assert len(history.occupancy) <= history.window


class TestBeladyOPT:
    def test_requires_1d_array(self):
        with pytest.raises(PolicyError):
            BeladyOPT(np.zeros((2, 2), dtype=np.int64))

    def test_optimal_on_classic_pattern(self):
        # Lines: A B C A B C with 2 ways. OPT keeps A then B: 2 hits.
        # LRU gets 0 hits on this pattern.
        lines = [0, 1, 2, 0, 1, 2]
        trace = MemoryTrace(
            addresses=np.array(lines, np.int64) * 64,
            pcs=np.ones(6, np.uint8),
            writes=np.zeros(6, bool),
            vertices=np.zeros(6, np.int32),
        )
        policy = BeladyOPT(trace.next_use_indices())
        cache, results = replay(
            policy, [(line, 1) for line in lines], num_ways=2
        )
        assert sum(results) >= 2

    def test_opt_never_worse_than_lru(self):
        from repro.policies import LRU

        rng = np.random.default_rng(4)
        lines = rng.integers(0, 20, size=600).tolist()
        trace = MemoryTrace(
            addresses=np.array(lines, np.int64) * 64,
            pcs=np.ones(len(lines), np.uint8),
            writes=np.zeros(len(lines), bool),
            vertices=np.zeros(len(lines), np.int32),
        )
        opt_policy = BeladyOPT(trace.next_use_indices())
        _, opt_results = replay(
            opt_policy, [(line, 1) for line in lines], num_sets=2,
            num_ways=4,
        )
        _, lru_results = replay(
            LRU(), [(line, 1) for line in lines], num_sets=2, num_ways=4
        )
        assert sum(opt_results) >= sum(lru_results)

    def test_index_beyond_trace_rejected(self):
        policy = BeladyOPT(np.array([1], dtype=np.int64))
        cache = SetAssociativeCache(
            CacheConfig("t", num_sets=1, num_ways=1), policy
        )
        ctx = AccessContext()
        ctx.index = 5
        with pytest.raises(PolicyError):
            cache.access(0, ctx)


class TestGRASP:
    def test_hot_lines_protected(self):
        policy = GRASP(hot_range=(0, 4), warm_range=(4, 8))
        # Hot lines 0-3 compete with a cold scan.
        accesses = [(0, 1), (1, 1), (2, 1), (3, 1)]
        accesses += [(100 + i, 1) for i in range(20)]
        cache, _ = replay(policy, accesses, num_ways=4)
        # Cold lines insert at distant RRPV, so after the first aging
        # event each new cold miss replaces the previous cold line: at
        # most one hot line is sacrificed, the rest stay resident.
        survivors = sum(cache.probe(line) for line in (0, 1, 2, 3))
        assert survivors >= 3

    def test_cold_promotion_gradual(self):
        policy = GRASP(hot_range=(0, 1))
        cache, _ = replay(policy, [(50, 1), (50, 1)])
        way = cache.tags[0].index(50)
        # Cold lines insert distant and earn one step per hit — they never
        # jump straight to re-reference-imminent like hot lines do.
        assert policy._rrpv[0][way] == policy.rrpv_max - 1
        cache2, _ = replay(policy, [(0, 1), (0, 1)])
        way2 = cache2.tags[0].index(0)
        assert policy._rrpv[0][way2] == 0

    def test_region_classification(self):
        policy = GRASP(hot_range=(10, 20), warm_range=(20, 30))
        assert policy._region(15) == 0
        assert policy._region(25) == 1
        assert policy._region(35) == 2


class TestRegistry:
    def test_known_policies(self):
        names = policy_names()
        for expected in (
            "LRU",
            "DRRIP",
            "SHiP-PC",
            "SHiP-Mem",
            "Hawkeye",
            "OPT",
            "GRASP",
        ):
            assert expected in names

    def test_unknown_policy(self):
        with pytest.raises(PolicyError):
            make_policy("NOPE")

    def test_opt_needs_trace(self):
        with pytest.raises(PolicyError):
            make_policy("OPT", PolicyContext())

    def test_grasp_needs_ranges(self):
        with pytest.raises(PolicyError):
            make_policy("GRASP", PolicyContext())

    def test_opt_from_trace(self):
        trace = MemoryTrace(
            addresses=np.array([0, 64], np.int64),
            pcs=np.ones(2, np.uint8),
            writes=np.zeros(2, bool),
            vertices=np.zeros(2, np.int32),
        )
        policy = make_policy("OPT", PolicyContext(trace=trace))
        assert policy.name == "OPT"
