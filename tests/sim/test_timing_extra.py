"""Extra timing-model coverage: writebacks, engine modes, config knobs."""

import pytest

from repro.cache import CacheConfig, HierarchyConfig, scaled_hierarchy
from repro.cache.hierarchy import LEVEL_DRAM, LEVEL_L1
from repro.sim.timing import TimingModel


@pytest.fixture
def config():
    return scaled_hierarchy("tiny")


class TestTimingKnobs:
    def test_writeback_traffic_costs_bandwidth(self, config):
        model = TimingModel(config)
        base = model.cycles([0, 10, 0, 0, 0], instructions=35)
        with_wb = model.cycles(
            [0, 10, 0, 0, 0], instructions=35, llc_writebacks=100
        )
        expected_extra = 100 * 64 / model.dram_bandwidth_bytes_per_cycle
        assert with_wb == pytest.approx(base + expected_extra)

    def test_rm_lookup_cost_mode(self, config):
        overlapped = TimingModel(config, rm_lookup_cycles=0.0)
        pessimistic = TimingModel(config, rm_lookup_cycles=4.0)
        counts = [0, 10, 0, 0, 0]
        assert pessimistic.cycles(
            counts, 35, popt_rm_lookups=100
        ) == pytest.approx(
            overlapped.cycles(counts, 35, popt_rm_lookups=100) + 400
        )

    def test_mlp_divides_dram_latency(self, config):
        low_mlp = TimingModel(config, dram_mlp=1.0)
        high_mlp = TimingModel(config, dram_mlp=4.0)
        counts = [0, 0, 0, 0, 1000]
        assert low_mlp.cycles(counts, 0) > high_mlp.cycles(counts, 0)

    def test_llc_only_config(self):
        config = HierarchyConfig(
            llc=CacheConfig("LLC", num_sets=8, num_ways=2)
        )
        model = TimingModel(config)
        # No L1/L2: their latency contribution is zero by construction.
        counts = [0, 0, 0, 0, 0]
        counts[LEVEL_L1] = 50
        assert model.cycles(counts, 0) == 0.0

    def test_dram_latency_matches_table1(self, config):
        model = TimingModel(config, dram_mlp=1.0, base_cpi=0.0)
        counts = [0, 0, 0, 0, 0]
        counts[LEVEL_DRAM] = 1
        assert model.cycles(counts, 0) == pytest.approx(
            config.dram_latency_cycles
        )
