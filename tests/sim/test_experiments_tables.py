"""Smoke + shape tests for the experiment harnesses and paper tables.

Full-shape validation happens at the ``small`` scale in the benchmarks;
here the harnesses run at ``tiny`` scale to verify wiring, row schemas,
and the invariants that hold at any scale.
"""

import pytest

from repro.sim import experiments as exp
from repro.sim.tables import (
    format_table,
    table1_rows,
    table2_rows,
    table3_rows,
)


class TestTables:
    def test_table1_components(self):
        rows = table1_rows()
        components = [row["component"] for row in rows]
        assert components == ["L1(D/I)", "L2", "LLC", "DRAM"]
        llc = rows[2]
        assert "24576KB" in llc["geometry"]
        assert llc["policy"] == "DRRIP"

    def test_table2_apps(self):
        rows = table2_rows()
        assert [row["app"] for row in rows] == [
            "PR", "CC", "PR-Delta", "Radii", "MIS",
        ]
        by_app = {row["app"]: row for row in rows}
        assert by_app["PR"]["style"] == "pull"
        assert by_app["CC"]["style"] == "push"
        assert by_app["CC"]["transpose"] == "CSC"
        assert by_app["Radii"]["frontier"] == "Y"

    def test_table3_graphs(self):
        rows = table3_rows()
        assert [row["graph"] for row in rows] == [
            "DBP", "UK-02", "KRON", "URAND", "HBUBL",
        ]
        assert rows[2]["paper_vertices_M"] == 33.55

    def test_format_table(self):
        text = format_table([{"a": 1, "b": "x"}], title="T")
        assert "T" in text and "a" in text and "x" in text
        assert format_table([], title="E").startswith("E")


class TestGeomean:
    def test_values(self):
        assert exp.geomean([1.0, 4.0]) == pytest.approx(2.0)
        assert exp.geomean([]) == 0.0
        assert exp.geomean([0.0, 2.0]) == pytest.approx(2.0)


@pytest.mark.slow
class TestHarnessSmoke:
    """Each harness runs end-to-end at tiny scale with one or two graphs."""

    def test_fig02(self):
        rows = exp.fig02_sota_mpki(scale="tiny", graphs=("URAND",))
        assert len(rows) == 1
        assert {"LRU", "DRRIP", "SHiP-PC", "SHiP-Mem", "Hawkeye"} <= set(
            rows[0]
        )

    def test_fig04(self):
        rows = exp.fig04_topt_mpki(scale="tiny", graphs=("URAND",))
        assert "T-OPT" in rows[0]

    def test_fig07(self):
        rows = exp.fig07_rereference_designs(scale="tiny", graphs=("DBP",))
        assert "P-OPT-INTER+INTRA" in rows[0]

    def test_fig10(self):
        from repro.apps import PageRank

        rows = exp.fig10_main_result(
            scale="tiny", graphs=("URAND",), apps=[PageRank()]
        )
        assert rows[0]["app"] == "PR"
        assert "P-OPT_speedup_vs_DRRIP" in rows[0]

    def test_fig10_radii_skips_hbubl(self):
        from repro.apps import Radii

        rows = exp.fig10_main_result(
            scale="tiny", graphs=("HBUBL",), apps=[Radii()]
        )
        assert rows == []

    def test_fig11(self):
        rows = exp.fig11_popt_se_scaling(
            vertex_counts=(1024, 2048), scale="tiny"
        )
        assert len(rows) == 2
        assert rows[0]["P-OPT_ways"] is not None

    def test_fig12a(self):
        rows = exp.fig12a_grasp(scale="tiny", graphs=("DBP",))
        assert "GRASP_missred" in rows[0]

    def test_fig12b(self):
        rows = exp.fig12b_hats(scale="tiny", graphs=("UK-02",))
        assert "HATS-BDFS_missred" in rows[0]

    def test_fig13(self):
        rows = exp.fig13_tiling(
            scale="tiny", graphs=("URAND",), tile_counts=(1, 2)
        )
        assert len(rows) == 2
        untiled = rows[0]
        assert untiled["DRRIP_norm_misses"] == pytest.approx(1.0)

    def test_fig14(self):
        rows = exp.fig14_pb_phi(scale="tiny", graphs=("DBP",))
        assert rows[0]["PB+DRRIP"] == pytest.approx(1.0)
        assert "PHI+P-OPT" in rows[0]

    def test_fig15(self):
        rows = exp.fig15_quantization(
            scale="tiny", graphs=("URAND",), entry_bit_choices=(4, 8)
        )
        assert "4b_tie_rate" in rows[0]

    def test_fig16(self):
        rows = exp.fig16_llc_sensitivity(
            scale="tiny",
            graphs=("URAND",),
            set_counts=(8, 16),
            way_counts=(8,),
        )
        sweeps = {row["sweep"] for row in rows}
        assert sweeps == {"capacity", "associativity"}

    def test_table4(self):
        rows = exp.table4_preprocessing(scale="tiny", graphs=("URAND",))
        assert rows[0]["popt_preprocessing_s"] >= 0
        assert rows[0]["pagerank_execution_s"] > 0
