"""Tests for the worker mutable-state registry and drift guard."""

import pytest

from repro.sim import worker_state
from repro.sim.worker_state import (
    GUARD_ENV,
    StateEntry,
    WorkerStateError,
    WorkerStateGuard,
    guard_boundary,
    register_worker_state,
    registered_cache_names,
    registered_state,
    reset_guard,
)


def _import_fabric():
    """Load every module that registers worker state at import time."""
    from repro import cli  # noqa: F401  (pulls parallel/spec/kernels)
    from repro.policies import registry  # noqa: F401
    from repro.sim import artifacts, ckernels  # noqa: F401


class TestRegistry:
    def test_fabric_registrations_present(self):
        _import_fabric()
        names = {entry.name for entry in registered_state()}
        assert {
            "repro.policies.registry._FACTORIES",
            "repro.policies.registry._REPLAY_KERNELS",
            "repro.sim.artifacts._STORES",
            "repro.sim.ckernels._LIB",
            "repro.sim.ckernels._BUILD_ERROR",
            "repro.sim.kernels.KERNEL_TABLE",
            "repro.sim.parallel.APP_FACTORIES",
            "repro.sim.parallel._PREPARED_CACHE",
            "repro.sim.spec.SPEC_HARNESSES",
            "repro.sim.spec.REPORTERS",
        } <= names

    def test_kinds_partition_caches_from_frozen(self):
        _import_fabric()
        caches = registered_cache_names()
        assert "repro.sim.parallel._PREPARED_CACHE" in caches
        assert "repro.sim.parallel.APP_FACTORIES" not in caches
        assert "repro.sim.kernels.KERNEL_TABLE" not in caches

    def test_every_entry_resolves(self):
        # A registration that no longer resolves is exactly the drift
        # par-allowlist-stale exists for; the live tree must have none.
        _import_fabric()
        for entry in registered_state():
            entry.resolve()

    def test_every_entry_has_a_note(self):
        _import_fabric()
        for entry in registered_state():
            assert entry.note, f"{entry.name} registered without a note"

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError):
            register_worker_state("x.y", kind="mutable")


class TestStructuralHash:
    def test_dict_of_classes_is_stable_across_copies(self):
        # repr() would embed memory addresses; _describe must not.
        table = {"lru": TestRegistry, "opt": TestStructuralHash}
        assert worker_state._digest(table) == worker_state._digest(
            dict(table)
        )

    def test_value_change_changes_digest(self):
        assert worker_state._digest({"a": 1}) != worker_state._digest(
            {"a": 2}
        )

    def test_key_order_is_irrelevant(self):
        assert worker_state._digest({"a": 1, "b": 2}) == \
            worker_state._digest({"b": 2, "a": 1})


class TestGuard:
    @pytest.fixture(autouse=True)
    def _clean_guard(self):
        reset_guard()
        yield
        reset_guard()

    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv(GUARD_ENV, raising=False)
        assert not WorkerStateGuard.enabled()
        guard_boundary("task-start")  # no-op, no baseline recorded
        assert worker_state._GUARD is None

    def test_detects_frozen_drift(self, monkeypatch):
        state = {"k": 1}
        monkeypatch.setitem(
            worker_state._REGISTRY,
            "test.drifting",
            StateEntry(
                name="test.drifting", kind="frozen", note="test",
                getter=lambda: state,
            ),
        )
        monkeypatch.setenv(GUARD_ENV, "1")
        guard_boundary("task-start")   # baseline
        guard_boundary("task-end")     # unchanged: fine
        state["k"] = 2
        with pytest.raises(WorkerStateError, match="test.drifting"):
            guard_boundary("task-start")

    def test_cache_mutation_is_ignored(self, monkeypatch):
        state = {"k": 1}
        monkeypatch.setitem(
            worker_state._REGISTRY,
            "test.cache",
            StateEntry(
                name="test.cache", kind="cache", note="test",
                getter=lambda: state,
            ),
        )
        monkeypatch.setenv(GUARD_ENV, "1")
        guard_boundary("task-start")
        state["k"] = 2
        guard_boundary("task-end")  # caches legally vary: no raise

    def test_unresolvable_entry_skipped(self, monkeypatch):
        def boom():
            raise ImportError("gone")

        monkeypatch.setitem(
            worker_state._REGISTRY,
            "test.gone",
            StateEntry(
                name="test.gone", kind="frozen", note="test", getter=boom
            ),
        )
        monkeypatch.setenv(GUARD_ENV, "1")
        guard_boundary("task-start")
        guard_boundary("task-end")


class TestGuardedSweep:
    def test_sweep_runs_clean_under_guard(self, monkeypatch):
        # The real fabric passes its own purity bar: a tiny sweep with
        # the guard on completes without WorkerStateError.
        from repro.sim.parallel import SweepTask, run_task

        monkeypatch.setenv(GUARD_ENV, "1")
        reset_guard()
        try:
            rows = [
                run_task(SweepTask(
                    app="PR", graph="URAND", policies=("LRU",),
                    scale="tiny", seed=42,
                ))
            ]
        finally:
            reset_guard()
        assert rows and rows[0]
