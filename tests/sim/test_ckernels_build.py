"""Build-failure diagnostics for the optional compiled kernels.

The compiled path is allowed to be unavailable (pure-Python kernels are
the reference), but a toolchain that exists and *fails* must surface:
once as a RuntimeWarning at first use, and persistently through
``build_error()`` so ``python -m repro.analysis`` can report it.
"""

import subprocess
import warnings

import pytest

from repro.sim import ckernels


@pytest.fixture
def isolated_build(tmp_path, monkeypatch):
    """Point the build cache at a tmpdir and restore memoized state."""
    monkeypatch.setenv("REPRO_CKERNELS_DIR", str(tmp_path))
    monkeypatch.delenv(ckernels.PURE_ENV, raising=False)
    ckernels.reset()
    yield tmp_path
    ckernels.reset()


class TestBuildFailure:
    def test_failing_compiler_warns_and_records(
        self, isolated_build, monkeypatch
    ):
        monkeypatch.setenv(ckernels.CC_ENV, "/bin/false")
        with pytest.warns(RuntimeWarning, match="falling back"):
            assert ckernels.lib() is None
        assert not ckernels.available()
        error = ckernels.build_error()
        assert error is not None
        assert "/bin/false" in error
        assert "status 1" in error

    def test_failure_is_memoized_and_warned_once(
        self, isolated_build, monkeypatch
    ):
        monkeypatch.setenv(ckernels.CC_ENV, "/bin/false")
        with pytest.warns(RuntimeWarning):
            ckernels.lib()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert ckernels.lib() is None

    def test_unrunnable_compiler_is_reported(
        self, isolated_build, monkeypatch
    ):
        missing = str(isolated_build / "no-such-cc")
        monkeypatch.setenv(ckernels.CC_ENV, missing)
        with pytest.warns(RuntimeWarning, match="could not run"):
            assert ckernels.lib() is None
        assert "could not run" in (ckernels.build_error() or "")

    def test_stderr_first_line_is_captured(
        self, isolated_build, monkeypatch
    ):
        fake_cc = isolated_build / "fake-cc"
        fake_cc.write_text(
            "#!/bin/sh\necho 'kernels.c:1:1: error: boom' >&2\nexit 1\n"
        )
        fake_cc.chmod(0o755)
        monkeypatch.setenv(ckernels.CC_ENV, str(fake_cc))
        with pytest.warns(RuntimeWarning, match="boom"):
            ckernels.lib()
        assert "error: boom" in (ckernels.build_error() or "")

    def test_reset_clears_recorded_failure(
        self, isolated_build, monkeypatch
    ):
        monkeypatch.setenv(ckernels.CC_ENV, "/bin/false")
        with pytest.warns(RuntimeWarning):
            ckernels.lib()
        assert ckernels.build_error() is not None
        ckernels.reset()
        assert ckernels.build_error() is None

    def test_pure_env_is_not_a_failure(self, isolated_build, monkeypatch):
        monkeypatch.setenv(ckernels.PURE_ENV, "1")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert ckernels.lib() is None
        assert ckernels.build_error() is None


class TestWorkingToolchain:
    def test_real_toolchain_builds_without_error(self, isolated_build):
        if ckernels._compiler() is None:
            pytest.skip("no C compiler on this machine")
        try:
            subprocess.run(
                [ckernels._compiler() or "cc", "--version"],
                check=True, capture_output=True,
            )
        except (OSError, subprocess.CalledProcessError):
            pytest.skip("toolchain present but not runnable")
        assert ckernels.available()
        assert ckernels.build_error() is None
