"""Declarative experiment-spec tests.

Three pillars:

- **Golden regression** — the six migrated figure harnesses must emit
  rows bit-identical (values *and* key order) to fixtures captured from
  the hand-rolled pre-spec implementations (``tests/sim/golden/``).
- **Plan determinism** — ``expand()`` and the per-unit content hashes
  must be stable across processes (and across ``PYTHONHASHSEED``), since
  artifact keys derive from them.
- **Execution identity** — ``run_spec(jobs=N)`` equals ``jobs=1``, and
  reporters are pure functions of the row stream.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.sim import experiments
from repro.sim.spec import (
    ExperimentSpec,
    SPEC_HARNESSES,
    fig02_spec,
    fig10_spec,
    report_rows,
    run_spec,
    scenario_matrix,
)

GOLDEN_DIR = Path(__file__).parent / "golden"

#: harness callable + kwargs matching how each golden fixture was
#: captured from the pre-spec implementation (all at tiny scale).
GOLDEN_CASES = {
    "fig02": (experiments.fig02_sota_mpki,
              {"scale": "tiny", "graphs": ("URAND", "DBP")}),
    "fig04": (experiments.fig04_topt_mpki,
              {"scale": "tiny", "graphs": ("URAND",)}),
    "fig10": (experiments.fig10_main_result,
              {"scale": "tiny", "graphs": ("URAND", "KRON"),
               "apps": ("PR", "CC")}),
    "fig13": (experiments.fig13_tiling,
              {"scale": "tiny", "graphs": ("URAND",),
               "tile_counts": (1, 2)}),
    "fig14": (experiments.fig14_pb_phi,
              {"scale": "tiny", "graphs": ("DBP",)}),
    "fig16": (experiments.fig16_llc_sensitivity,
              {"scale": "tiny", "graphs": ("URAND",),
               "set_counts": (8, 16), "way_counts": (8,)}),
}


class TestGoldenRegression:
    @pytest.mark.parametrize("figure", sorted(GOLDEN_CASES))
    def test_rows_bit_identical_to_pre_spec_harness(self, figure):
        fn, kwargs = GOLDEN_CASES[figure]
        golden = json.loads(
            (GOLDEN_DIR / f"{figure}_tiny.json").read_text()
        )
        rows = fn(**kwargs)
        assert rows == golden
        # Key *order* matters too: format_table derives its columns
        # from insertion order, so a reordered dict is a changed table.
        for row, want in zip(rows, golden):
            assert list(row.keys()) == list(want.keys())


class TestSpecValidation:
    def test_empty_axes_rejected(self):
        with pytest.raises(ValueError):
            ExperimentSpec(name="x", graphs=(), policies=("LRU",))
        with pytest.raises(ValueError):
            ExperimentSpec(name="x", graphs=("URAND",), policies=())

    def test_bad_order_rejected(self):
        with pytest.raises(ValueError):
            ExperimentSpec(name="x", graphs=("URAND",),
                           policies=("LRU",), order=("graph", "app"))

    def test_unknown_app_and_technique_rejected(self):
        with pytest.raises(ValueError):
            ExperimentSpec(name="x", graphs=("URAND",),
                           policies=("LRU",), apps=("NOPE",))
        with pytest.raises(ValueError):
            ExperimentSpec(name="x", graphs=("URAND",),
                           policies=("LRU",), techniques=("blocked",))


class TestPlanExpansion:
    def test_policy_is_innermost_axis(self):
        spec = ExperimentSpec(
            name="x", graphs=("URAND", "KRON"),
            policies=("LRU", "DRRIP"), scale="tiny",
        )
        units = spec.expand()
        assert [(u.graph, u.policy) for u in units] == [
            ("URAND", "LRU"), ("URAND", "DRRIP"),
            ("KRON", "LRU"), ("KRON", "DRRIP"),
        ]

    def test_exclude_filters_bound_units(self):
        spec = ExperimentSpec(
            name="x", graphs=("URAND", "KRON"), policies=("LRU",),
            scale="tiny",
            exclude=((("graph", "KRON"),),),
        )
        assert [u.graph for u in spec.expand()] == ["URAND"]

    def test_tasks_group_consecutive_same_prepare(self):
        spec = ExperimentSpec(
            name="x", graphs=("URAND",),
            policies=("LRU", "DRRIP", "OPT"), scale="tiny",
            chunk_size=2,
        )
        tasks = spec.tasks()
        assert [t.policies for t in tasks] == [
            ("LRU", "DRRIP"), ("OPT",)
        ]
        assert all(t.graph == "URAND" for t in tasks)

    def test_expansion_deterministic_across_processes(self):
        """Unit hashes and the plan digest survive hash randomization.

        Artifact keys derive from these hashes; if they varied with
        ``PYTHONHASHSEED`` the cache would never warm across runs.
        """
        script = (
            "from repro.sim.spec import fig02_spec\n"
            "spec = fig02_spec(scale='tiny', graphs=('URAND', 'DBP'))\n"
            "units = spec.expand()\n"
            "print(spec.plan_digest())\n"
            "print(','.join(u.content_hash() for u in units))\n"
        )
        outs = set()
        for seed in ("0", "1", "271828"):
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True,
                env={
                    "PYTHONPATH": str(
                        Path(__file__).resolve().parents[2] / "src"
                    ),
                    "PYTHONHASHSEED": seed,
                },
                check=True,
            )
            outs.add(proc.stdout)
        assert len(outs) == 1

    def test_plan_digest_tracks_spec_changes(self):
        base = fig02_spec(scale="tiny", graphs=("URAND",))
        same = fig02_spec(scale="tiny", graphs=("URAND",))
        other = fig02_spec(scale="tiny", graphs=("DBP",))
        assert base.plan_digest() == same.plan_digest()
        assert base.plan_digest() != other.plan_digest()


class TestRunSpec:
    def test_jobs_identity_and_streaming(self):
        spec = fig02_spec(scale="tiny", graphs=("URAND",))
        streamed = []
        serial = run_spec(spec, jobs=1, stream=streamed.append)
        fanned = run_spec(spec, jobs=2)
        assert serial == fanned
        assert streamed == serial

    def test_report_rows_is_pure(self):
        spec = fig02_spec(scale="tiny", graphs=("URAND",))
        rows = run_spec(spec)
        assert report_rows(spec, rows) == report_rows(spec, list(rows))


class TestScenarioMatrix:
    def test_matrix_crosses_all_axes(self):
        spec = scenario_matrix(
            scale="tiny", graphs=("URAND",),
            techniques=("none", "tiling:4"), llc_factors=(1, 2),
        )
        units = spec.expand()
        # 1 graph x 2 techniques x 1 app x 2 LLC points x 4 policies
        assert len(units) == 16
        assert {u.technique for u in units} == {"none", "tiling:4"}
        assert len({u.llc for u in units}) == 2
        assert {u.policy for u in units} == {
            "LRU", "DRRIP", "T-OPT", "P-OPT"
        }

    def test_unit_hashes_unique(self):
        spec = scenario_matrix(scale="tiny", graphs=("URAND",))
        hashes = [u.content_hash() for u in spec.expand()]
        assert len(hashes) == len(set(hashes))

    def test_registered_in_spec_harnesses(self):
        assert "scenario_matrix" in SPEC_HARNESSES
        for figure in GOLDEN_CASES:
            assert any(name.startswith(figure) for name in SPEC_HARNESSES)


class TestSpecBackedHarnessEquivalence:
    def test_fig10_harness_equals_spec_pipeline(self):
        spec = fig10_spec(scale="tiny", graphs=("URAND",),
                          apps=("PR",))
        via_spec = report_rows(spec, run_spec(spec))
        via_harness = experiments.fig10_main_result(
            scale="tiny", graphs=("URAND",), apps=("PR",)
        )
        assert via_spec == via_harness
