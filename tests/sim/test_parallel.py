"""Parallel sweep tests: worker results are bit-identical to serial,
ordering is deterministic, and the CLI plumbs ``--jobs`` through."""

import pytest

from repro.sim import parallel
from repro.sim.parallel import (
    APP_FACTORIES,
    SweepTask,
    policy_chunks,
    run_sweep,
    run_task,
    sweep_rows,
)

POLICIES = ("LRU", "SRRIP", "DRRIP", "OPT")


class TestPolicyChunks:
    def test_chunks_cover_in_order(self):
        chunks = policy_chunks(list(POLICIES), chunk_size=3)
        assert chunks == [("LRU", "SRRIP", "DRRIP"), ("OPT",)]

    def test_chunk_size_one(self):
        assert policy_chunks(["A", "B"], 1) == [("A",), ("B",)]

    def test_invalid_chunk_size(self):
        with pytest.raises(ValueError):
            policy_chunks(["A"], 0)


class TestRunTask:
    def test_rows_are_plain_primitives(self):
        task = SweepTask(graph="URAND", policies=("LRU", "DRRIP"))
        rows = run_task(task)
        assert [row["policy"] for row in rows] == ["LRU", "DRRIP"]
        for row in rows:
            for value in row.values():
                assert isinstance(value, (str, int, float, bool))
            assert row["llc_hits"] + row["llc_misses"] == row["llc_accesses"]

    def test_prepared_run_cached_across_tasks(self):
        from repro.sim import parallel

        before = dict(parallel._PREPARED_CACHE)
        try:
            parallel._PREPARED_CACHE.clear()
            run_task(SweepTask(graph="URAND", policies=("LRU",)))
            run_task(SweepTask(graph="URAND", policies=("SRRIP",)))
            assert len(parallel._PREPARED_CACHE) == 1
        finally:
            parallel._PREPARED_CACHE.clear()
            parallel._PREPARED_CACHE.update(before)


class TestSweepDeterminism:
    """jobs=N output must be byte-identical to jobs=1 output."""

    def test_jobs_parallel_matches_serial(self):
        serial = sweep_rows(
            ["URAND", "KRON"], POLICIES, scale="small", jobs=1
        )
        parallel = sweep_rows(
            ["URAND", "KRON"], POLICIES, scale="small", jobs=4
        )
        assert serial == parallel
        # Ordering: graph-major, then policy order as declared.
        assert [r["policy"] for r in serial[: len(POLICIES)]] == list(
            POLICIES
        )
        assert serial[0]["graph"] == "URAND"
        assert serial[len(POLICIES)]["graph"] == "KRON"

    def test_single_task_stays_serial(self):
        tasks = [SweepTask(graph="URAND", policies=("LRU",))]
        assert run_sweep(tasks, jobs=8) == run_sweep(tasks, jobs=1)

    def test_spawn_matches_serial(self, monkeypatch):
        # spawn workers rebuild state from imports rather than a forked
        # snapshot; identical rows prove nothing leans on fork-captured
        # module state (the property the simlint par family guards).
        serial = sweep_rows(["URAND"], ("LRU", "DRRIP"), scale="tiny",
                            jobs=1)
        monkeypatch.setenv(parallel.START_METHOD_ENV, "spawn")
        spawned = sweep_rows(["URAND"], ("LRU", "DRRIP"), scale="tiny",
                             jobs=2, chunk_size=1)
        assert spawned == serial

    def test_pool_context_invalid_method_raises(self, monkeypatch):
        monkeypatch.setenv(parallel.START_METHOD_ENV, "bogus")
        with pytest.raises(ValueError):
            parallel.pool_context()

    def test_pool_context_default_is_none(self, monkeypatch):
        monkeypatch.delenv(parallel.START_METHOD_ENV, raising=False)
        assert parallel.pool_context() is None


class TestExperimentsJobs:
    def test_mpki_rows_jobs_identical(self):
        from repro.sim.experiments import fig02_sota_mpki

        serial = fig02_sota_mpki(graphs=("URAND",), jobs=1)
        fanned = fig02_sota_mpki(graphs=("URAND",), jobs=2)
        assert serial == fanned


class TestCLIJobs:
    def test_compare_jobs_matches_serial(self, capsys):
        from repro.cli import main

        args = [
            "compare", "--app", "PR", "--graph", "URAND",
            "--policies", "LRU,DRRIP",
        ]
        assert main(args) == 0
        serial_out = capsys.readouterr().out
        assert main(args + ["--jobs", "2"]) == 0
        parallel_out = capsys.readouterr().out
        assert parallel_out == serial_out

    def test_sanitize_forces_serial(self, capsys):
        from repro.cli import main

        args = [
            "compare", "--app", "PR", "--graph", "URAND",
            "--policies", "LRU", "--sanitize", "--jobs", "4",
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "--jobs 1" in out

    def test_app_factories_shared_with_cli(self):
        from repro import cli

        assert cli.APP_FACTORIES is APP_FACTORIES


class TestChunkEdgeCases:
    def test_empty_policy_list_yields_no_chunks(self):
        assert policy_chunks([], chunk_size=3) == []

    def test_chunk_size_larger_than_policy_count(self):
        assert policy_chunks(["LRU", "DRRIP"], chunk_size=8) == [
            ("LRU", "DRRIP")
        ]

    def test_sweep_rows_empty_policies(self):
        assert sweep_rows(["URAND"], [], scale="tiny") == []

    def test_sweep_rows_single_task(self):
        rows = sweep_rows(
            ["URAND"], ["LRU"], scale="tiny", jobs=1, chunk_size=8
        )
        assert [row["policy"] for row in rows] == ["LRU"]
        assert rows == sweep_rows(
            ["URAND"], ["LRU"], scale="tiny", jobs=2, chunk_size=8
        )


class TestPreparedCacheBound:
    """The per-process prepared-run cache is a bounded LRU (satellite:
    long multi-geometry sweeps must not grow worker RSS without limit)."""

    def test_cache_evicts_oldest_beyond_cap(self, monkeypatch):
        from repro.sim import parallel

        before = dict(parallel._PREPARED_CACHE)
        monkeypatch.setenv(parallel.PREPARED_CACHE_ENV, "2")
        try:
            parallel._PREPARED_CACHE.clear()
            for graph in ("URAND", "KRON", "DBP"):
                run_task(
                    SweepTask(graph=graph, policies=("LRU",), scale="tiny")
                )
            assert len(parallel._PREPARED_CACHE) == 2
            cached_graphs = {
                key[1] for key in parallel._PREPARED_CACHE
            }
            # Oldest entry (URAND) evicted, most recent two retained.
            assert cached_graphs == {"KRON", "DBP"}
        finally:
            parallel._PREPARED_CACHE.clear()
            parallel._PREPARED_CACHE.update(before)

    def test_lru_order_refreshed_on_hit(self, monkeypatch):
        from repro.sim import parallel

        before = dict(parallel._PREPARED_CACHE)
        monkeypatch.setenv(parallel.PREPARED_CACHE_ENV, "2")
        try:
            parallel._PREPARED_CACHE.clear()
            run_task(SweepTask(graph="URAND", policies=("LRU",),
                               scale="tiny"))
            run_task(SweepTask(graph="KRON", policies=("LRU",),
                               scale="tiny"))
            # Touch URAND again: it becomes most-recent, so adding DBP
            # must evict KRON, not URAND.
            run_task(SweepTask(graph="URAND", policies=("DRRIP",),
                               scale="tiny"))
            run_task(SweepTask(graph="DBP", policies=("LRU",),
                               scale="tiny"))
            cached_graphs = {
                key[1] for key in parallel._PREPARED_CACHE
            }
            assert cached_graphs == {"URAND", "DBP"}
        finally:
            parallel._PREPARED_CACHE.clear()
            parallel._PREPARED_CACHE.update(before)

    def test_default_cap_when_env_unset(self, monkeypatch):
        from repro.sim import parallel

        monkeypatch.delenv(parallel.PREPARED_CACHE_ENV, raising=False)
        assert parallel._prepared_cache_cap() == (
            parallel.DEFAULT_PREPARED_CACHE_SIZE
        )
        monkeypatch.setenv(parallel.PREPARED_CACHE_ENV, "junk")
        assert parallel._prepared_cache_cap() == (
            parallel.DEFAULT_PREPARED_CACHE_SIZE
        )
        monkeypatch.setenv(parallel.PREPARED_CACHE_ENV, "0")
        assert parallel._prepared_cache_cap() == 1


class TestTechniqueValidation:
    def test_known_techniques_pass(self):
        from repro.sim.parallel import validate_technique

        for technique in ("none", "tiling:4", "pb", "phi", "dbg:8",
                          "hats"):
            validate_technique(technique)

    def test_unknown_technique_rejected(self):
        from repro.sim.parallel import validate_technique

        with pytest.raises(ValueError):
            validate_technique("blocking")
        with pytest.raises(ValueError):
            validate_technique("pb:4")
        with pytest.raises(ValueError):
            validate_technique("tiling:0")
        with pytest.raises(ValueError):
            validate_technique("tiling:x")
