"""Fused front-end tests: the single-pass ``k_private_filter`` build is
bit-identical to the pure decode+replay construction across odd
geometries, survives the artifact-store round trip, and the kernel path
never materializes decode list views."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.sim.engine as engine_mod
from repro.apps import PageRank
from repro.cache import CacheConfig, HierarchyConfig
from repro.graph import uniform_random
from repro.memory.trace import DecodedTrace, MemoryTrace
from repro.sim import artifacts, build_private_filter, prepare_run, \
    simulate_prepared
from repro.sim.artifacts import ArtifactStore


def make_trace(lines, writes=None, pcs=None, vertices=None):
    n = len(lines)
    rng = np.random.default_rng(abs(hash(tuple(lines))) % 2**32)
    return MemoryTrace(
        addresses=np.asarray(lines, np.int64) * 64,
        pcs=np.asarray(
            pcs if pcs is not None else rng.integers(1, 6, n), np.uint8
        ),
        writes=np.asarray(
            writes if writes is not None else rng.random(n) < 0.3
        ),
        vertices=np.asarray(
            vertices if vertices is not None else rng.integers(0, 16, n),
            np.int32,
        ),
    )


# Geometry corners: direct-mapped, single-set, non-power-of-two sets
# (the paper's footnote-3 modulo indexing), each private level alone,
# and no private levels at all.
GEOMETRIES = {
    "pow2": ((2, 8), (4, 8)),
    "one_way": ((4, 1), (8, 1)),
    "single_set": ((1, 4), (1, 8)),
    "odd_sets": ((3, 2), (5, 4)),
    "l1_only": ((2, 4), None),
    "l2_only": (None, (4, 4)),
    "no_private": (None, None),
}


def hierarchy_for(geometry):
    l1, l2 = GEOMETRIES[geometry]
    return HierarchyConfig(
        l1=CacheConfig("L1", num_sets=l1[0], num_ways=l1[1]) if l1 else None,
        l2=CacheConfig("L2", num_sets=l2[0], num_ways=l2[1]) if l2 else None,
        llc=CacheConfig("LLC", num_sets=8, num_ways=4),
    )


def pure_filter(trace, config):
    """build_private_filter with the fused compiled pass disabled."""
    with pytest.MonkeyPatch.context() as mp:
        mp.setattr(engine_mod, "fused_private_filter", lambda *a: None)
        return build_private_filter(trace, config)


def assert_stats_equal(a, b):
    assert (a is None) == (b is None)
    if a is None:
        return
    for field in ("accesses", "hits", "misses", "evictions", "writebacks"):
        assert getattr(a, field) == getattr(b, field), field


def assert_filters_equal(fused, pure):
    assert fused.num_accesses == pure.num_accesses
    assert np.array_equal(fused.mask, pure.mask)
    for channel, dtype in (
        ("lines", np.int64),
        ("pcs", np.uint8),
        ("writes", np.bool_),
        ("vertices", np.int32),
        ("indices", np.int64),
    ):
        left = np.asarray(getattr(fused, channel))
        right = np.asarray(getattr(pure, channel))
        assert np.array_equal(left, right), channel
        assert left.dtype == right.dtype == dtype, channel
    assert_stats_equal(fused.l1_stats, pure.l1_stats)
    assert_stats_equal(fused.l2_stats, pure.l2_stats)
    assert fused.l1_hits == pure.l1_hits
    assert fused.l2_hits == pure.l2_hits


class TestFusedEquivalence:
    """Fused C pass == pure decode+replay construction, channel by
    channel, on every geometry corner."""

    @settings(max_examples=30, deadline=None)
    @given(
        lines=st.lists(st.integers(0, 40), min_size=1, max_size=200),
        geometry=st.sampled_from(sorted(GEOMETRIES)),
    )
    def test_all_channels_match(self, lines, geometry):
        trace = make_trace(lines)
        config = hierarchy_for(geometry)
        assert_filters_equal(
            build_private_filter(trace, config), pure_filter(trace, config)
        )

    @pytest.mark.parametrize("geometry", sorted(GEOMETRIES))
    def test_empty_trace(self, geometry):
        trace = make_trace([])
        config = hierarchy_for(geometry)
        fused = build_private_filter(trace, config)
        assert_filters_equal(fused, pure_filter(trace, config))
        assert fused.llc_visible == 0
        assert len(fused.mask) == 0

    @pytest.mark.parametrize("geometry", sorted(GEOMETRIES))
    def test_pure_env_leg(self, geometry, monkeypatch):
        # REPRO_PURE_KERNELS must route to the same construction the
        # fused-disabled monkeypatch exercises (identical filters).
        trace = make_trace(list(range(30)) * 3)
        config = hierarchy_for(geometry)
        compiled = build_private_filter(trace, config)
        monkeypatch.setenv("REPRO_PURE_KERNELS", "1")
        pure = build_private_filter(trace, config)
        assert_filters_equal(compiled, pure)

    def test_phase_seconds_populated(self):
        trace = make_trace(list(range(50)) * 4)
        config = hierarchy_for("pow2")
        filt = build_private_filter(trace, config)
        assert filt.filter_seconds > 0
        assert filt.decode_seconds >= 0
        # Pure construction splits the decode out of the filter phase.
        pure = pure_filter(trace, config)
        assert pure.decode_seconds > 0
        assert pure.filter_seconds > 0


class TestRehydratedFilter:
    def test_store_round_trip_matches_fresh_build(self, tmp_path):
        store = ArtifactStore(tmp_path / "arts")
        graph = uniform_random(256, avg_degree=5.0, seed=9)
        prepared = prepare_run(PageRank(), graph)
        config = hierarchy_for("pow2")
        built = build_private_filter(prepared.trace, config)
        artifacts.store_filter(store, prepared.trace, config, built)
        loaded = artifacts.cached_filter(store, prepared.trace, config)
        assert loaded is not None
        assert_filters_equal(built, loaded)
        # Rehydrated filters replay the provenance timings, not zeros.
        assert loaded.filter_seconds == built.filter_seconds
        # The pure construction agrees with the rehydrated copy too.
        assert_filters_equal(loaded, pure_filter(prepared.trace, config))


class TestKernelPathSkipsDecodeLists:
    def test_sweep_never_boxes_decode_channels(self, monkeypatch):
        # A kernel-path sweep must never call ``.tolist()`` on the
        # decode: the fused front-end replaces the decoded channel
        # arrays outright, and the replay kernels box only the filter's
        # own (much shorter) LLC-visible channels.
        def forbidden(self, *args):
            raise AssertionError(
                "kernel path materialized decode list views"
            )

        monkeypatch.setattr(DecodedTrace, "as_lists", forbidden)
        monkeypatch.setattr(DecodedTrace, "channel_lists", forbidden)
        graph = uniform_random(256, avg_degree=5.0, seed=9)
        prepared = prepare_run(PageRank(), graph)
        config = hierarchy_for("pow2")
        for policy in ("LRU", "DRRIP", "SHiP-PC", "Hawkeye", "OPT"):
            result = simulate_prepared(
                prepared, policy, config, engine="fast"
            )
            assert result.details["engine"]["kernel"] is not None
            assert result.llc.accesses > 0
