"""Tests for the simulation driver and timing model."""

import numpy as np
import pytest

from repro.apps import PageRank
from repro.cache import CacheConfig, HierarchyConfig, scaled_hierarchy
from repro.errors import SimulationError
from repro.graph import uniform_random
from repro.policies.registry import PolicyContext
from repro.sim import (
    SimResult,
    prepare_dbg_run,
    grasp_ranges_for,
    prepare_run,
    simulate,
    simulate_prepared,
)
from repro.sim.driver import llc_filtered_next_use
from repro.sim.timing import TimingModel


@pytest.fixture(scope="module")
def graph():
    return uniform_random(2048, avg_degree=8.0, seed=31)


@pytest.fixture(scope="module")
def hierarchy():
    return HierarchyConfig(
        l1=CacheConfig("L1", num_sets=2, num_ways=8),
        l2=CacheConfig("L2", num_sets=4, num_ways=8),
        llc=CacheConfig("LLC", num_sets=8, num_ways=16),
    )


@pytest.fixture(scope="module")
def prepared(graph):
    return prepare_run(PageRank(), graph)


class TestSimulate:
    def test_stats_consistent(self, prepared, hierarchy):
        result = simulate_prepared(prepared, "LRU", hierarchy)
        assert result.num_accesses == len(prepared.trace)
        assert sum(result.level_counts) == result.num_accesses
        llc = result.llc
        assert llc.hits + llc.misses == llc.accesses
        assert result.llc_mpki > 0
        assert result.cycles > 0

    def test_same_trace_same_policy_deterministic(self, prepared, hierarchy):
        a = simulate_prepared(prepared, "DRRIP", hierarchy)
        b = simulate_prepared(prepared, "DRRIP", hierarchy)
        assert a.llc.misses == b.llc.misses
        assert a.cycles == b.cycles

    def test_one_call_convenience(self, graph, hierarchy):
        result = simulate(PageRank(), graph, "LRU", hierarchy)
        assert isinstance(result, SimResult)

    def test_speedup_and_missred_identities(self, prepared, hierarchy):
        lru = simulate_prepared(prepared, "LRU", hierarchy)
        assert lru.speedup_over(lru) == pytest.approx(1.0)
        assert lru.miss_reduction_over(lru) == pytest.approx(0.0)

    def test_llc_only_hierarchy(self, prepared):
        config = HierarchyConfig(
            llc=CacheConfig("LLC", num_sets=8, num_ways=16)
        )
        result = simulate_prepared(prepared, "LRU", config)
        assert result.level_counts[1] == 0  # no L1
        assert result.llc.accesses == result.num_accesses


class TestOracleFiltering:
    def test_filtered_next_use_skips_private_hits(self, hierarchy):
        from repro.memory.trace import MemoryTrace

        # Line 0 accessed three times back-to-back: accesses 1 and 2 hit
        # L1 and never reach the LLC, so access 0's next LLC use is inf.
        trace = MemoryTrace(
            addresses=np.array([0, 0, 0], np.int64),
            pcs=np.ones(3, np.uint8),
            writes=np.zeros(3, bool),
            vertices=np.zeros(3, np.int32),
        )
        next_use = llc_filtered_next_use(trace, hierarchy)
        assert next_use[0] == 3

    def test_opt_beats_or_matches_every_heuristic(self, prepared, hierarchy):
        opt = simulate_prepared(prepared, "OPT", hierarchy)
        for policy in ("LRU", "DRRIP", "SHiP-PC", "Hawkeye", "T-OPT"):
            other = simulate_prepared(prepared, policy, hierarchy)
            # 2% slack: OPT's oracle is exact for LLC-visible accesses but
            # private-level fill side effects can perturb single accesses.
            assert opt.llc.misses <= other.llc.misses * 1.02, policy


class TestPOPTCapacityAccounting:
    def test_reserved_ways_reduce_app_visible_llc(self, prepared, hierarchy):
        with_cost = simulate_prepared(prepared, "P-OPT", hierarchy)
        without = simulate_prepared(
            prepared, "P-OPT", hierarchy, account_capacity=False
        )
        assert with_cost.reserved_llc_ways >= 1
        assert without.reserved_llc_ways == 0
        assert without.llc.misses <= with_cost.llc.misses

    def test_reservation_exhaustion_raises(self, graph):
        # A tiny LLC cannot hold the Rereference Matrix columns at all.
        tiny = HierarchyConfig(
            llc=CacheConfig("LLC", num_sets=2, num_ways=2)
        )
        prepared = prepare_run(PageRank(), graph)
        with pytest.raises(SimulationError):
            simulate_prepared(prepared, "P-OPT", tiny)

    def test_se_reserves_less(self, prepared, hierarchy):
        full = simulate_prepared(prepared, "P-OPT", hierarchy)
        single = simulate_prepared(prepared, "P-OPT-SE", hierarchy)
        assert single.reserved_llc_ways <= full.reserved_llc_ways

    def test_popt_counters_present(self, prepared, hierarchy):
        result = simulate_prepared(prepared, "P-OPT", hierarchy)
        counters = result.popt_counters
        assert counters["replacements"] > 0
        assert counters["rm_lookups"] > 0
        assert 0 <= counters["tie_rate"] <= 1
        assert result.preprocessing_seconds > 0


class TestGraspWiring:
    def test_ranges_cover_hot_group(self, graph):
        prepared, layout_info = prepare_dbg_run(PageRank(), graph)
        hot, warm = grasp_ranges_for(prepared, layout_info)
        assert hot[0] <= hot[1]
        assert warm[0] <= warm[1]
        span = prepared.irregular_streams[0].span
        assert hot[0] >= span.base // 64

    def test_grasp_simulation_runs(self, graph, hierarchy):
        prepared, layout_info = prepare_dbg_run(PageRank(), graph)
        hot, warm = grasp_ranges_for(prepared, layout_info)
        result = simulate_prepared(
            prepared,
            "GRASP",
            hierarchy,
            policy_context=PolicyContext(hot_range=hot, warm_range=warm),
        )
        assert result.llc.accesses > 0


class TestTimingModel:
    def test_dram_dominates(self, hierarchy):
        model = TimingModel(hierarchy)
        base = model.cycles([0, 100, 0, 0, 0], instructions=350)
        memory_bound = model.cycles([0, 0, 0, 0, 100], instructions=350)
        assert memory_bound > 5 * base

    def test_streaming_cost_added(self, hierarchy):
        model = TimingModel(hierarchy)
        without = model.cycles([0, 10, 0, 0, 0], instructions=35)
        with_streaming = model.cycles(
            [0, 10, 0, 0, 0], instructions=35, popt_bytes_streamed=16000
        )
        assert with_streaming == pytest.approx(without + 1000)

    def test_fewer_dram_accesses_faster(self, prepared, hierarchy):
        drrip = simulate_prepared(prepared, "DRRIP", hierarchy)
        topt = simulate_prepared(prepared, "T-OPT", hierarchy)
        if topt.llc.misses < drrip.llc.misses * 0.95:
            assert topt.cycles < drrip.cycles
