"""Artifact-store tests: content-hash keys, round-trips, bit-identical
replay from rehydrated artifacts, cache counters, corruption handling."""

import numpy as np
import pytest

from repro.cache import scaled_hierarchy
from repro.graph import datasets
from repro.sim import artifacts
from repro.sim.artifacts import (
    ArtifactStore,
    canonical_json,
    content_digest,
    graph_sha,
    trace_sha,
)
from repro.sim import prepare_run, simulate_prepared
from repro.sim.parallel import APP_FACTORIES, SweepTask, run_task


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "arts")


class TestKeys:
    def test_canonical_json_is_order_insensitive(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json(
            {"a": 2, "b": 1}
        )

    def test_canonical_json_handles_numpy_scalars(self):
        assert canonical_json({"n": np.int64(3)}) == canonical_json(
            {"n": 3}
        )

    def test_digest_depends_on_kind_and_key(self):
        key = {"graph": "URAND", "scale": "tiny"}
        assert content_digest("graph", key) == content_digest("graph", key)
        assert content_digest("graph", key) != content_digest(
            "prepared", key
        )
        assert content_digest("graph", key) != content_digest(
            "graph", {**key, "scale": "small"}
        )

    def test_trace_sha_memoized_and_content_keyed(self):
        graph = datasets.load("URAND", scale="tiny")
        prepared = prepare_run(APP_FACTORIES["PR"](), graph)
        first = trace_sha(prepared.trace)
        assert trace_sha(prepared.trace) == first  # memo hit
        rebuilt = prepare_run(
            APP_FACTORIES["PR"](), datasets.load("URAND", scale="tiny")
        )
        assert trace_sha(rebuilt.trace) == first  # seed-deterministic

    def test_graph_sha_distinguishes_graphs(self):
        a = datasets.load("URAND", scale="tiny")
        b = datasets.load("KRON", scale="tiny")
        assert graph_sha(a) != graph_sha(b)


class TestStoreRoundTrip:
    def test_get_miss_then_put_then_hit(self, store):
        key = {"k": 1}
        assert store.get("graph", key) is None
        store.put("graph", key,
                  arrays={"data": np.arange(4, dtype=np.int64)},
                  meta={"n": 2})
        entry = store.get("graph", key)
        assert entry["meta"]["n"] == 2
        np.testing.assert_array_equal(entry["arrays"]["data"],
                                      np.arange(4))
        stats = store.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["writes"] == 1

    def test_arrays_load_as_mmap(self, store):
        store.put("graph", {"k": 2},
                  arrays={"data": np.arange(8, dtype=np.float64)})
        entry = store.get("graph", {"k": 2})
        assert isinstance(entry["arrays"]["data"], np.memmap)

    def test_corrupt_meta_is_a_miss(self, store):
        key = {"k": 3}
        store.put("graph", key)
        meta_path = store.entry_dir("graph", key) / "meta.json"
        meta_path.write_text("{not json")
        assert store.get("graph", key) is None

    def test_graph_round_trip(self, store):
        graph = datasets.load("URAND", scale="tiny", seed=42)
        artifacts.store_graph(store, "URAND", "tiny", 42, graph)
        cached = artifacts.cached_graph(store, "URAND", "tiny", 42)
        assert cached is not None
        assert graph_sha(cached) == graph_sha(graph)
        assert artifacts.cached_graph(store, "URAND", "tiny", 7) is None


class TestPreparedRoundTrip:
    def test_rehydrated_run_simulates_bit_identically(self, store):
        graph = datasets.load("URAND", scale="tiny")
        prepared = prepare_run(APP_FACTORIES["PR"](), graph)
        task = SweepTask(graph="URAND", policies=("LRU",), scale="tiny")
        artifacts.store_prepared(store, task.artifact_key(), prepared)
        rehydrated = artifacts.cached_prepared(store, task.artifact_key())
        assert rehydrated is not None
        hierarchy = scaled_hierarchy("tiny")
        for policy in ("LRU", "DRRIP", "P-OPT", "T-OPT"):
            a = simulate_prepared(prepared, policy, hierarchy)
            b = simulate_prepared(rehydrated, policy, hierarchy)
            assert (a.llc.misses, a.llc.hits, a.cycles) == (
                b.llc.misses, b.llc.hits, b.cycles
            )


class TestRowsCache:
    def test_run_task_serves_cached_rows(self, tmp_path, monkeypatch):
        monkeypatch.setenv(artifacts.DIR_ENV,
                           str(tmp_path / "arts"))
        artifacts._STORES.clear()
        task = SweepTask(graph="URAND", policies=("LRU", "DRRIP"),
                         scale="tiny")
        cold = run_task(task)
        store = artifacts.get_store()
        assert store.counters["rows"]["writes"] == 1
        warm = run_task(task)
        assert warm == cold
        # Warm rows came from disk, key order intact (format_table
        # derives columns from the first row's insertion order).
        assert store.counters["rows"]["hits"] == 1
        assert list(warm[0].keys()) == list(cold[0].keys())

    def test_rows_cache_disable_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(artifacts.DIR_ENV,
                           str(tmp_path / "arts"))
        monkeypatch.setenv("REPRO_ARTIFACTS_ROWS", "0")
        artifacts._STORES.clear()
        task = SweepTask(graph="URAND", policies=("LRU",), scale="tiny")
        run_task(task)
        run_task(task)
        store = artifacts.get_store()
        assert store.counters.get("rows", {}).get("writes", 0) == 0


class TestAtomicity:
    def test_lost_race_discards_tmp(self, store):
        key = {"k": 9}
        store.put("graph", key, meta={"v": 1})
        # A second writer for the same key loses the rename race (the
        # entry already exists) and must leave no .tmp litter behind.
        store.put("graph", key, meta={"v": 2})
        entry_parent = store.entry_dir("graph", key).parent
        leftovers = [p for p in entry_parent.iterdir()
                     if p.name.startswith(".tmp")]
        assert leftovers == []
        assert store.get("graph", key)["meta"]["v"] == 1
