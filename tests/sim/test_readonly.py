"""Read-only contract for shared arrays (filter/decode/store buffers).

Everything memoized across policy replays or rehydrated from the
artifact store is frozen (``writeable=False``) at creation: in-place
mutation — the race the simlint ``par`` family flags statically — must
raise immediately at runtime too. ``.copy()`` is the documented escape
hatch and must stay writeable.
"""

import numpy as np
import pytest

from repro.apps import PageRank
from repro.cache import CacheConfig, HierarchyConfig
from repro.graph import uniform_random
from repro.memory.trace import decode_trace
from repro.sim import build_private_filter, prepare_run
from repro.sim.artifacts import ArtifactStore
from repro.sim.engine import get_private_filter


def small_hierarchy():
    return HierarchyConfig(
        l1=CacheConfig("L1", num_sets=2, num_ways=8),
        l2=CacheConfig("L2", num_sets=4, num_ways=8),
        llc=CacheConfig("LLC", num_sets=8, num_ways=16),
    )


@pytest.fixture(scope="module")
def prepared():
    return prepare_run(PageRank(), uniform_random(256, avg_degree=5.0,
                                                  seed=3))


@pytest.fixture(scope="module")
def filt(prepared):
    return get_private_filter(prepared, small_hierarchy())


class TestFilterChannels:
    def test_channels_are_read_only(self, filt):
        for channel in (filt.mask, filt.lines, filt.pcs, filt.writes,
                        filt.vertices, filt.indices):
            assert not channel.flags.writeable
            with pytest.raises(ValueError):
                channel[0] = 0

    def test_memoized_products_are_read_only(self, filt):
        config = small_hierarchy().llc
        products = [
            filt.compact_next_use(),
            filt.set_index_array(config),
            filt.set_partition_vertices(config),
            *[
                arr for arr in filt.set_partition_arrays(config)
                if isinstance(arr, np.ndarray)
            ],
            *filt.stream_membership(((0, 4),)),
        ]
        for product in products:
            assert not product.flags.writeable
            with pytest.raises(ValueError):
                product[...] = 0

    def test_copy_is_writeable(self, filt):
        scratch = filt.lines.copy()
        assert scratch.flags.writeable
        scratch[0] = 99  # no raise


class TestDecodeChannels:
    def test_decode_products_read_only(self, prepared):
        decoded = decode_trace(prepared.trace, 6)
        for channel in (decoded.lines, decoded.pcs, decoded.writes,
                        decoded.vertices):
            assert not channel.flags.writeable
            with pytest.raises(ValueError):
                channel[0] = 0


class TestStoreLoads:
    def test_loaded_arrays_read_only(self, tmp_path):
        store = ArtifactStore(tmp_path / "arts")
        store.put("graph", {"k": 1},
                  arrays={"data": np.arange(8, dtype=np.int64)})
        entry = store.get("graph", {"k": 1})
        data = entry["arrays"]["data"]
        assert not data.flags.writeable
        with pytest.raises(ValueError):
            data[0] = 7
        assert data.copy().flags.writeable

    def test_rehydrated_filter_read_only(self, tmp_path, prepared):
        from repro.sim import artifacts

        store = ArtifactStore(tmp_path / "arts")
        config = small_hierarchy()
        built = build_private_filter(prepared.trace, config)
        artifacts.store_filter(store, prepared.trace, config, built)
        loaded = artifacts.cached_filter(store, prepared.trace, config)
        assert loaded is not None
        for channel in (loaded.mask, loaded.lines, loaded.writes):
            assert not channel.flags.writeable
            with pytest.raises(ValueError):
                channel[0] = 0
