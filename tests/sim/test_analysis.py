"""Tests for stack-distance analysis, validated against the simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import AccessContext, CacheConfig, SetAssociativeCache
from repro.memory.trace import MemoryTrace
from repro.policies import LRU
from repro.sim.analysis import (
    COLD,
    miss_rate_curve,
    per_site_reuse_stats,
    reuse_distances,
)


def make_trace(lines, pcs=None):
    n = len(lines)
    return MemoryTrace(
        addresses=np.asarray(lines, np.int64) * 64,
        pcs=np.asarray(pcs if pcs else [1] * n, np.uint8),
        writes=np.zeros(n, bool),
        vertices=np.zeros(n, np.int32),
    )


class TestReuseDistances:
    def test_known_pattern(self):
        # A B A B B C A
        trace = make_trace([0, 1, 0, 1, 1, 2, 0])
        d = reuse_distances(trace).tolist()
        assert d == [COLD, COLD, 1, 1, 0, COLD, 2]

    def test_all_cold(self):
        trace = make_trace([0, 1, 2, 3])
        assert (reuse_distances(trace) == COLD).all()

    def test_by_pc_grouping(self):
        trace = make_trace([0, 0, 1], pcs=[5, 5, 6])
        grouped = reuse_distances(trace, by_pc=True)
        assert grouped[5].tolist() == [COLD, 0]
        assert grouped[6].tolist() == [COLD]

    def test_matches_naive_stack(self):
        rng = np.random.default_rng(3)
        lines = rng.integers(0, 30, size=400).tolist()
        trace = make_trace(lines)
        fast = reuse_distances(trace)
        # Naive O(n^2) recomputation.
        for i, line in enumerate(lines):
            previous = None
            for j in range(i - 1, -1, -1):
                if lines[j] == line:
                    previous = j
                    break
            if previous is None:
                assert fast[i] == COLD
            else:
                distinct = len(set(lines[previous + 1:i]) - {line})
                assert fast[i] == distinct, i


class TestMissRateCurve:
    @given(st.lists(st.integers(0, 40), min_size=5, max_size=400),
           st.integers(1, 5).map(lambda k: 2 ** k))
    @settings(max_examples=30, deadline=None)
    def test_matches_fully_associative_lru(self, lines, capacity):
        """Stack-distance MRC must equal a real fully-associative LRU
        simulation at every capacity (Mattson's inclusion property)."""
        trace = make_trace(lines)
        curve = miss_rate_curve(trace, [capacity])
        cache = SetAssociativeCache(
            CacheConfig("t", num_sets=1, num_ways=capacity), LRU()
        )
        ctx = AccessContext()
        misses = 0
        for index, line in enumerate(lines):
            ctx.index = index
            if not cache.access(line, ctx):
                misses += 1
        assert curve[capacity] == pytest.approx(misses / len(lines))

    def test_monotone_in_capacity(self):
        rng = np.random.default_rng(5)
        trace = make_trace(rng.integers(0, 100, size=1000).tolist())
        curve = miss_rate_curve(trace, [4, 16, 64, 256])
        values = [curve[c] for c in (4, 16, 64, 256)]
        assert values == sorted(values, reverse=True)

    def test_empty_trace(self):
        trace = make_trace([])
        assert miss_rate_curve(trace, [8]) == {8: 0.0}


class TestPerSiteStats:
    def test_irregular_site_has_large_spread(self):
        from repro.apps import PageRank
        from repro.graph import uniform_random
        from repro.memory.trace import AccessKind
        from repro.sim import prepare_run

        graph = uniform_random(2048, avg_degree=8.0, seed=6)
        prepared = prepare_run(PageRank(), graph)
        profiles = {
            p.pc: p for p in per_site_reuse_stats(prepared.trace)
        }
        irregular = profiles[AccessKind.IRREG_DATA]
        streaming = profiles[AccessKind.NEIGHBORS]
        # The irregular site's typical reuse distance dwarfs streaming's.
        assert irregular.median_distance > 20 * max(
            streaming.median_distance, 1
        )

    def test_rows_printable(self):
        trace = make_trace([0, 0, 1, 1], pcs=[1, 1, 2, 2])
        rows = [p.as_row() for p in per_site_reuse_stats(trace)]
        assert rows[0]["pc"] == 1
        assert "cold%" in rows[0]
