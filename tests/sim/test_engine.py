"""Replay-engine tests: equivalence with the reference path, filter
caching, vectorized set-index and next-use computation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import PageRank
from repro.cache import CacheConfig, HierarchyConfig
from repro.cache.cache import AccessContext, SetAssociativeCache
from repro.graph import power_law, uniform_random
from repro.policies.lru import LRU
from repro.policies.plru import BitPLRU
from repro.policies.registry import PolicyContext, policy_names
from repro.sim import (
    ReplayEngine,
    build_private_filter,
    prepare_dbg_run,
    grasp_ranges_for,
    prepare_run,
    simulate_prepared,
)
from repro.sim.driver import POPT_POLICIES, llc_filtered_next_use


def small_hierarchy():
    return HierarchyConfig(
        l1=CacheConfig("L1", num_sets=2, num_ways=8),
        l2=CacheConfig("L2", num_sets=4, num_ways=8),
        llc=CacheConfig("LLC", num_sets=8, num_ways=16),
    )


@pytest.fixture(scope="module")
def hierarchy():
    return small_hierarchy()


@pytest.fixture(scope="module", params=["urand", "plaw"])
def prepared(request):
    if request.param == "urand":
        graph = uniform_random(512, avg_degree=6.0, seed=7)
    else:
        graph = power_law(512, avg_degree=6.0, seed=11)
    return prepare_run(PageRank(), graph)


def assert_results_match(fast, reference):
    assert fast.level_counts == reference.level_counts
    assert len(fast.levels) == len(reference.levels)
    for a, b in zip(fast.levels, reference.levels):
        assert a.name == b.name
        assert a.accesses == b.accesses
        assert a.hits == b.hits
        assert a.misses == b.misses
        assert a.evictions == b.evictions
        assert a.writebacks == b.writebacks
    assert fast.cycles == reference.cycles


class TestEngineEquivalence:
    """The fast engine reproduces the reference path bit-for-bit."""

    @pytest.mark.parametrize(
        "policy", sorted(set(policy_names()) - {"GRASP"})
    )
    def test_registry_policies(self, prepared, hierarchy, policy):
        fast = simulate_prepared(prepared, policy, hierarchy, engine="fast")
        ref = simulate_prepared(
            prepared, policy, hierarchy, engine="reference"
        )
        assert_results_match(fast, ref)

    @pytest.mark.parametrize("policy", POPT_POLICIES)
    def test_topt_and_popt_variants(self, prepared, hierarchy, policy):
        fast = simulate_prepared(prepared, policy, hierarchy, engine="fast")
        ref = simulate_prepared(
            prepared, policy, hierarchy, engine="reference"
        )
        assert_results_match(fast, ref)

    def test_grasp(self, hierarchy):
        graph = uniform_random(512, avg_degree=6.0, seed=7)
        prepared_dbg, layout_info = prepare_dbg_run(PageRank(), graph)
        hot, warm = grasp_ranges_for(prepared_dbg, layout_info)
        results = [
            simulate_prepared(
                prepared_dbg,
                "GRASP",
                hierarchy,
                policy_context=PolicyContext(hot_range=hot, warm_range=warm),
                engine=engine,
            )
            for engine in ("fast", "reference")
        ]
        assert_results_match(*results)

    def test_llc_only_hierarchy(self, prepared):
        config = HierarchyConfig(
            llc=CacheConfig("LLC", num_sets=8, num_ways=16)
        )
        fast = simulate_prepared(prepared, "LRU", config, engine="fast")
        ref = simulate_prepared(prepared, "LRU", config, engine="reference")
        assert_results_match(fast, ref)
        assert fast.llc.accesses == fast.num_accesses

    def test_unknown_engine_rejected(self, prepared, hierarchy):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            simulate_prepared(prepared, "LRU", hierarchy, engine="warp")


class TestFilterCaching:
    def test_policy_sweep_replays_private_levels_once(self, hierarchy):
        graph = uniform_random(512, avg_degree=6.0, seed=3)
        prepared = prepare_run(PageRank(), graph)
        policies = ("LRU", "DRRIP", "SRRIP", "Bit-PLRU", "SHiP-PC")
        for policy in policies:
            result = simulate_prepared(
                prepared, policy, hierarchy, engine="fast"
            )
        assert prepared.filter_counters["built"] == 1
        assert prepared.filter_counters["reused"] == len(policies) - 1
        engine_details = result.details["engine"]
        assert engine_details["name"] == "fast"
        assert engine_details["filters_built"] == 1
        assert engine_details["accesses_per_second"] > 0

    def test_distinct_geometries_build_distinct_filters(self):
        graph = uniform_random(512, avg_degree=6.0, seed=3)
        prepared = prepare_run(PageRank(), graph)
        simulate_prepared(prepared, "LRU", small_hierarchy(), engine="fast")
        bigger = HierarchyConfig(
            l1=CacheConfig("L1", num_sets=4, num_ways=8),
            l2=CacheConfig("L2", num_sets=8, num_ways=8),
            llc=CacheConfig("LLC", num_sets=8, num_ways=16),
        )
        simulate_prepared(prepared, "LRU", bigger, engine="fast")
        assert prepared.filter_counters["built"] == 2
        # A different LLC behind the same private levels reuses the filter.
        wider_llc = HierarchyConfig(
            l1=bigger.l1,
            l2=bigger.l2,
            llc=CacheConfig("LLC", num_sets=16, num_ways=8),
        )
        simulate_prepared(prepared, "LRU", wider_llc, engine="fast")
        assert prepared.filter_counters["built"] == 2
        assert prepared.filter_counters["reused"] == 1

    def test_opt_shares_filter_with_replay(self, hierarchy):
        graph = uniform_random(512, avg_degree=6.0, seed=3)
        prepared = prepare_run(PageRank(), graph)
        simulate_prepared(prepared, "OPT", hierarchy, engine="fast")
        # One build total: the Belady oracle and the LLC replay share it.
        assert prepared.filter_counters["built"] == 1


class TestPrivateFilterExactness:
    """The per-set vectorized filter equals a straight-line replay of
    SetAssociativeCache + BitPLRU private levels."""

    def reference_filter(self, trace, config):
        shift = config.line_size.bit_length() - 1
        lines = (trace.addresses >> shift).tolist()
        writes = trace.writes.tolist()
        levels = [
            SetAssociativeCache(cfg, BitPLRU())
            for cfg in (config.l1, config.l2)
            if cfg is not None
        ]
        reaches_llc = np.ones(len(lines), dtype=bool)
        ctx = AccessContext()
        for index, line in enumerate(lines):
            ctx.index = index
            ctx.write = writes[index]
            hit = False
            for level in levels:
                if level.access(line, ctx):
                    hit = True
                    break
            reaches_llc[index] = not hit
        return reaches_llc, levels

    def test_mask_and_stats_match_reference(self, prepared, hierarchy):
        filt = build_private_filter(prepared.trace, hierarchy)
        mask, levels = self.reference_filter(prepared.trace, hierarchy)
        assert np.array_equal(filt.mask, mask)
        for fast_stats, level in zip(
            (filt.l1_stats, filt.l2_stats), levels
        ):
            ref_stats = level.stats
            assert fast_stats.accesses == ref_stats.accesses
            assert fast_stats.hits == ref_stats.hits
            assert fast_stats.misses == ref_stats.misses
            assert fast_stats.evictions == ref_stats.evictions
            assert fast_stats.writebacks == ref_stats.writebacks

    @settings(max_examples=25, deadline=None)
    @given(
        lines=st.lists(st.integers(0, 40), min_size=1, max_size=200),
        l1_sets=st.sampled_from([1, 2, 3, 4]),
        l1_ways=st.sampled_from([1, 2, 4]),
    )
    def test_random_traces(self, lines, l1_sets, l1_ways):
        from repro.memory.trace import MemoryTrace

        n = len(lines)
        rng = np.random.default_rng(abs(hash((tuple(lines), l1_sets))) % 2**32)
        trace = MemoryTrace(
            addresses=np.asarray(lines, np.int64) * 64,
            pcs=np.ones(n, np.uint8),
            writes=rng.random(n) < 0.3,
            vertices=np.zeros(n, np.int32),
        )
        config = HierarchyConfig(
            l1=CacheConfig("L1", num_sets=l1_sets, num_ways=l1_ways),
            llc=CacheConfig("LLC", num_sets=4, num_ways=4),
        )
        filt = build_private_filter(trace, config)
        mask, (l1,) = self.reference_filter(trace, config)
        assert np.array_equal(filt.mask, mask)
        assert filt.l1_stats.writebacks == l1.stats.writebacks
        assert filt.l1_stats.evictions == l1.stats.evictions


class TestSetIndexProperty:
    """Vectorized set indices agree with the scalar path, including the
    paper's footnote-3 modulo indexing for non-power-of-two set counts."""

    @settings(max_examples=100, deadline=None)
    @given(
        num_sets=st.integers(min_value=1, max_value=24576),
        lines=st.lists(
            st.integers(min_value=0, max_value=2**48), max_size=50
        ),
    )
    def test_vectorized_matches_scalar(self, num_sets, lines):
        config = CacheConfig("X", num_sets=num_sets, num_ways=2)
        cache = SetAssociativeCache(config, LRU())
        vectorized = cache.set_indices(np.asarray(lines, np.int64))
        assert vectorized.tolist() == [
            config.set_index(line) for line in lines
        ]
        assert vectorized.tolist() == [
            cache.set_index(line) for line in lines
        ]
        if lines:
            assert int(vectorized.min()) >= 0
            assert int(vectorized.max()) < num_sets


class TestFilteredNextUse:
    def test_matches_backward_scan(self, prepared, hierarchy):
        trace = prepared.trace
        next_use = llc_filtered_next_use(trace, hierarchy)
        # Reference: the original backward dict scan over the mask.
        filt = build_private_filter(trace, hierarchy)
        lines = (trace.addresses >> 6).tolist()
        n = len(trace)
        expected = np.full(n, n, dtype=np.int64)
        last_seen = {}
        for index in range(n - 1, -1, -1):
            if not filt.mask[index]:
                continue
            line = lines[index]
            if line in last_seen:
                expected[index] = last_seen[line]
            last_seen[line] = index
        assert np.array_equal(next_use, expected)

    def test_private_hits_get_infinity(self, hierarchy):
        from repro.memory.trace import MemoryTrace

        # Line 0 accessed three times back-to-back: accesses 1 and 2 hit
        # L1 and never reach the LLC, so access 0's next LLC use is inf.
        trace = MemoryTrace(
            addresses=np.zeros(3, np.int64),
            pcs=np.ones(3, np.uint8),
            writes=np.zeros(3, bool),
            vertices=np.zeros(3, np.int32),
        )
        next_use = llc_filtered_next_use(trace, hierarchy)
        assert next_use[0] == 3
        assert next_use[1] == 3 and next_use[2] == 3

    def test_empty_trace(self, hierarchy):
        from repro.memory.trace import MemoryTrace

        empty = np.empty(0)
        trace = MemoryTrace(
            addresses=empty.astype(np.int64),
            pcs=empty.astype(np.uint8),
            writes=empty.astype(bool),
            vertices=empty.astype(np.int32),
        )
        assert len(llc_filtered_next_use(trace, hierarchy)) == 0


class TestEngineRunShape:
    def test_run_reports_throughput(self, prepared, hierarchy):
        engine = ReplayEngine(prepared, hierarchy)
        run = engine.run(LRU())
        # LRU advertises a replay kernel, so no cache object is built.
        assert run.kernel == "lru"
        assert run.llc is None
        assert run.seconds > 0
        assert run.accesses_per_second > 0
        assert run.filter.llc_visible == run.levels[-1].accesses
        assert sum(run.level_counts) == len(prepared.trace)

    def test_generic_run_builds_cache(self, prepared, hierarchy):
        engine = ReplayEngine(prepared, hierarchy)
        run = engine.run(LRU(), use_kernel=False)
        assert run.kernel is None
        assert run.llc is not None
        assert run.filter.llc_visible == run.llc.stats.accesses


# Policies whose replay has a dedicated kernel (KERNEL_TABLE coverage).
KERNEL_POLICIES = (
    "LRU", "LIP", "Bit-PLRU", "Random", "SRRIP", "BRRIP", "DRRIP", "OPT",
    "SHiP-PC", "Hawkeye",
)


def synthetic_prepared(lines, writes):
    """A minimal PreparedRun around a hand-built trace."""
    from repro.apps.base import PreparedRun
    from repro.memory.trace import MemoryTrace

    n = len(lines)
    trace = MemoryTrace(
        addresses=np.asarray(lines, np.int64) * 64,
        pcs=np.ones(n, np.uint8),
        writes=np.asarray(writes, bool),
        vertices=np.zeros(n, np.int32),
    )
    return PreparedRun(
        app_name="synthetic",
        layout=None,
        trace=trace,
        irregular_streams=[],
    )


class TestKernelEquivalence:
    """Replay kernels are bit-identical to the generic and reference
    paths — on real app traces and on adversarial geometries."""

    @pytest.mark.parametrize("policy", KERNEL_POLICIES)
    def test_three_engines_agree(self, prepared, hierarchy, policy):
        fast = simulate_prepared(prepared, policy, hierarchy, engine="fast")
        generic = simulate_prepared(
            prepared, policy, hierarchy, engine="generic"
        )
        ref = simulate_prepared(
            prepared, policy, hierarchy, engine="reference"
        )
        assert_results_match(fast, generic)
        assert_results_match(fast, ref)
        assert fast.details["engine"]["kernel"] is not None
        assert generic.details["engine"]["kernel"] is None

    @pytest.mark.parametrize("policy", KERNEL_POLICIES)
    def test_pure_python_matches_compiled(
        self, prepared, hierarchy, policy, monkeypatch
    ):
        compiled = simulate_prepared(
            prepared, policy, hierarchy, engine="fast"
        )
        monkeypatch.setenv("REPRO_PURE_KERNELS", "1")
        pure = simulate_prepared(prepared, policy, hierarchy, engine="fast")
        assert pure.details["engine"]["kernel"] is not None
        assert_results_match(pure, compiled)

    def test_bip_gets_no_kernel(self, prepared, hierarchy):
        # BIP subclasses LIP; the exact-type kernel table must not let it
        # inherit LIP's kernel (their insertion rules differ).
        result = simulate_prepared(prepared, "BIP", hierarchy, engine="fast")
        assert result.details["engine"]["kernel"] is None

    def test_sanitize_forces_generic_path(self, prepared, hierarchy):
        plain = simulate_prepared(prepared, "LRU", hierarchy, engine="fast")
        sanitized = simulate_prepared(
            prepared, "LRU", hierarchy, engine="fast", sanitize=True
        )
        assert sanitized.details["engine"]["kernel"] is None
        assert_results_match(sanitized, plain)

    @settings(max_examples=20, deadline=None)
    @given(
        lines=st.lists(st.integers(0, 60), min_size=1, max_size=250),
        llc_sets=st.sampled_from([1, 3, 8]),   # incl. non-power-of-two
        llc_ways=st.sampled_from([1, 2, 4]),   # incl. direct-mapped
        policy=st.sampled_from(
            ["LRU", "LIP", "Bit-PLRU", "Random", "SRRIP", "DRRIP", "OPT"]
        ),
    )
    def test_odd_geometries(self, lines, llc_sets, llc_ways, policy):
        rng = np.random.default_rng(
            abs(hash((tuple(lines), llc_sets, llc_ways))) % 2**32
        )
        prepared = synthetic_prepared(lines, rng.random(len(lines)) < 0.3)
        config = HierarchyConfig(
            l1=CacheConfig("L1", num_sets=1, num_ways=1),
            llc=CacheConfig("LLC", num_sets=llc_sets, num_ways=llc_ways),
        )
        fast = simulate_prepared(prepared, policy, config, engine="fast")
        generic = simulate_prepared(
            prepared, policy, config, engine="generic"
        )
        ref = simulate_prepared(prepared, policy, config, engine="reference")
        assert fast.details["engine"]["kernel"] is not None
        assert_results_match(fast, generic)
        assert_results_match(fast, ref)


@pytest.fixture(scope="module")
def small_prepared():
    return prepare_run(PageRank(), uniform_random(128, avg_degree=4.0, seed=3))


class TestPoptKernelEquivalence:
    """The next-ref kernels (T-OPT, P-OPT) are bit-identical to the
    generic and reference paths — in per-level stats AND the engine-cost
    counters the timing model and Fig. 15 consume — in both compiled and
    pure-Python form, across odd geometries and way reservation."""

    @pytest.mark.parametrize("policy", POPT_POLICIES)
    def test_three_engines_agree_with_counters(
        self, prepared, hierarchy, policy
    ):
        fast = simulate_prepared(prepared, policy, hierarchy, engine="fast")
        generic = simulate_prepared(
            prepared, policy, hierarchy, engine="generic"
        )
        ref = simulate_prepared(
            prepared, policy, hierarchy, engine="reference"
        )
        assert_results_match(fast, generic)
        assert_results_match(fast, ref)
        assert fast.details["engine"]["kernel"] is not None
        assert generic.details["engine"]["kernel"] is None
        assert fast.popt_counters == generic.popt_counters
        assert fast.popt_counters == ref.popt_counters

    @pytest.mark.parametrize("policy", POPT_POLICIES)
    def test_pure_python_matches_compiled(
        self, prepared, hierarchy, policy, monkeypatch
    ):
        compiled = simulate_prepared(
            prepared, policy, hierarchy, engine="fast"
        )
        monkeypatch.setenv("REPRO_PURE_KERNELS", "1")
        pure = simulate_prepared(prepared, policy, hierarchy, engine="fast")
        assert pure.details["engine"]["kernel"] is not None
        assert_results_match(pure, compiled)
        assert pure.popt_counters == compiled.popt_counters

    def test_topt_counters_across_engines(self, prepared, hierarchy):
        # T-OPT's walk-cost counters live on the policy instance
        # (SimResult only carries P-OPT's), so compare via the engine API.
        from repro.popt.topt import TOPT

        engine = ReplayEngine(prepared, hierarchy)
        runs = {}
        for use_kernel in (True, False):
            policy = TOPT(
                prepared.irregular_streams, line_size=hierarchy.line_size
            )
            run = engine.run(policy, use_kernel=use_kernel)
            runs[use_kernel] = (
                run, policy.replacements, policy.transpose_walk_elements
            )
        fast_run, fast_repl, fast_walk = runs[True]
        generic_run, generic_repl, generic_walk = runs[False]
        assert fast_run.kernel == "t-opt"
        assert generic_run.kernel is None
        assert fast_run.levels[-1].misses == generic_run.levels[-1].misses
        assert (fast_repl, fast_walk) == (generic_repl, generic_walk)
        # choose_victim only runs on full sets, so replacements track
        # evictions exactly in both paths.
        assert fast_repl == fast_run.levels[-1].evictions

    def test_popt_non_drrip_tie_break_stays_generic(
        self, prepared, hierarchy
    ):
        from repro.popt.policy import POPT
        from repro.sim.driver import _build_popt_policy

        policy, _ = _build_popt_policy(
            prepared, "inter_intra", 8, hierarchy.line_size
        )
        assert policy.replay_kernel() == "p-opt"
        lru_tied = POPT(
            policy.streams, line_size=hierarchy.line_size, tie_break=LRU()
        )
        assert lru_tied.replay_kernel() is None
        run = ReplayEngine(prepared, hierarchy).run(lru_tied)
        assert run.kernel is None

    def test_way_reservation_configs(self, prepared, hierarchy):
        # fig11's effective-LLC sweep points: kernel vs generic under
        # geometries shrunk by way reservation, down to a single way.
        from repro.popt.arch import effective_llc
        from repro.sim.driver import _build_popt_policy

        way_bytes = hierarchy.llc.num_sets * hierarchy.line_size
        engine = ReplayEngine(prepared, hierarchy)
        for reserve in (1, 4, hierarchy.llc.num_ways - 1):
            llc = effective_llc(hierarchy.llc, reserve * way_bytes)
            assert llc.num_ways == hierarchy.llc.num_ways - reserve
            outcome = {}
            for use_kernel in (True, False):
                policy, _ = _build_popt_policy(
                    prepared, "inter_intra", 8, hierarchy.line_size
                )
                run = engine.run(
                    policy, llc_config=llc, use_kernel=use_kernel
                )
                outcome[use_kernel] = (run, policy.counters)
            fast_run, fast_counters = outcome[True]
            generic_run, generic_counters = outcome[False]
            assert fast_run.kernel == "p-opt"
            assert generic_run.kernel is None
            fast_llc = fast_run.levels[-1]
            generic_llc = generic_run.levels[-1]
            assert fast_llc.hits == generic_llc.hits
            assert fast_llc.misses == generic_llc.misses
            assert fast_llc.evictions == generic_llc.evictions
            assert fast_llc.writebacks == generic_llc.writebacks
            assert fast_counters == generic_counters

    @settings(max_examples=12, deadline=None)
    @given(
        llc_sets=st.sampled_from([1, 3, 8]),   # incl. non-power-of-two
        llc_ways=st.sampled_from([1, 2, 5]),   # incl. direct-mapped
        policy=st.sampled_from(list(POPT_POLICIES)),
    )
    def test_odd_geometries(self, small_prepared, llc_sets, llc_ways, policy):
        config = HierarchyConfig(
            l1=CacheConfig("L1", num_sets=1, num_ways=1),
            llc=CacheConfig("LLC", num_sets=llc_sets, num_ways=llc_ways),
        )
        fast = simulate_prepared(
            small_prepared, policy, config,
            engine="fast", account_capacity=False,
        )
        generic = simulate_prepared(
            small_prepared, policy, config,
            engine="generic", account_capacity=False,
        )
        ref = simulate_prepared(
            small_prepared, policy, config,
            engine="reference", account_capacity=False,
        )
        assert fast.details["engine"]["kernel"] is not None
        assert_results_match(fast, generic)
        assert_results_match(fast, ref)
        assert fast.popt_counters == generic.popt_counters
        assert fast.popt_counters == ref.popt_counters


class TestCompactNextUse:
    """llc_compact_next_use maps the original-coordinate chain onto the
    LLC-visible stream, preserving order (the OPT kernel's invariant)."""

    def test_compact_matches_original_chain(self, prepared, hierarchy):
        from repro.sim import get_private_filter, llc_compact_next_use

        filt = get_private_filter(prepared, hierarchy)
        compact = llc_compact_next_use(
            prepared.trace, hierarchy, prepared=prepared
        )
        # Reference: forward scan over the compacted stream itself.
        lines = filt.lines.tolist()
        m = len(lines)
        expected = np.full(m, m, dtype=np.int64)
        last_seen = {}
        for k in range(m - 1, -1, -1):
            nxt = last_seen.get(lines[k])
            if nxt is not None:
                expected[k] = nxt
            last_seen[lines[k]] = k
        assert np.array_equal(compact, expected)

    def test_coordinate_systems_order_isomorphic(self, prepared, hierarchy):
        # The original->compact mapping must preserve comparisons: sorting
        # the visible accesses by original next-use and by compact
        # next-use must give the same order (ties broken identically).
        from repro.sim import get_private_filter, llc_compact_next_use

        filt = get_private_filter(prepared, hierarchy)
        original = llc_filtered_next_use(
            prepared.trace, hierarchy, prepared=prepared
        )[filt.mask]
        compact = llc_compact_next_use(
            prepared.trace, hierarchy, prepared=prepared
        )
        assert np.array_equal(
            np.argsort(original, kind="stable"),
            np.argsort(compact, kind="stable"),
        )
