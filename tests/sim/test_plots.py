"""Tests for the plain-text chart helpers."""

from repro.sim.plots import grouped_bars, hbar_chart, sparkline


class TestHBar:
    def test_basic_render(self):
        rows = [
            {"graph": "A", "value": 1.0},
            {"graph": "BB", "value": 0.5},
        ]
        chart = hbar_chart(rows, "graph", "value", width=10, title="T")
        lines = chart.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("A ")
        assert "1.000" in lines[1]
        # Half-value bar is about half as long.
        assert lines[1].count("█") >= 2 * lines[2].count("█") - 1

    def test_negative_marker(self):
        rows = [{"g": "x", "v": -0.4}, {"g": "y", "v": 0.8}]
        chart = hbar_chart(rows, "g", "v")
        assert "|-" in chart.splitlines()[0]

    def test_empty(self):
        assert "(empty)" in hbar_chart([], "g", "v", title="E")

    def test_zero_values(self):
        chart = hbar_chart([{"g": "x", "v": 0.0}], "g", "v")
        assert "0.000" in chart


class TestGroupedBars:
    def test_groups_per_row(self):
        rows = [{"g": "A", "p": 0.2, "q": 0.8}]
        chart = grouped_bars(rows, "g", ["p", "q"])
        lines = chart.splitlines()
        assert lines[0] == "A"
        assert lines[1].strip().startswith("p")
        assert lines[2].strip().startswith("q")

    def test_skips_non_numeric(self):
        rows = [{"g": "A", "p": 0.5, "q": "n/a"}]
        chart = grouped_bars(rows, "g", ["p", "q"])
        assert "q" not in chart.replace("q |", "")  # q row skipped

    def test_empty(self):
        assert "(empty)" in grouped_bars([], "g", ["p"], title="E")


class TestSparkline:
    def test_monotone(self):
        line = sparkline([0, 1, 2, 3])
        assert len(line) == 4
        assert line[0] < line[-1]

    def test_flat(self):
        assert sparkline([1.0, 1.0]) == "▁▁"

    def test_empty(self):
        assert sparkline([]) == ""
