"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.graph import from_edges, uniform_random


@pytest.fixture
def paper_example_graph():
    """The paper's running example (Fig. 1): 5 vertices, 10 edges.

    CSR (out-neighbors): 0->{2}, 1->{0,4}, 2->{0,1,3}, 3->{1,4}, 4->{0,2}.
    The paper draws 8 edges; we use the full Fig. 5 matrix (10 non-zeros).
    """
    return from_edges(
        [
            (0, 2),
            (1, 0),
            (1, 4),
            (2, 0),
            (2, 1),
            (2, 3),
            (3, 1),
            (3, 4),
            (4, 0),
            (4, 2),
        ],
        num_vertices=5,
    )


@pytest.fixture
def small_random_graph():
    """A 512-vertex uniform graph for mechanics tests."""
    return uniform_random(512, avg_degree=8.0, seed=3)


@pytest.fixture
def rng():
    return np.random.default_rng(12345)
