"""Tests for the command-line interface."""

import pytest

from repro.cli import APP_FACTORIES, EXPERIMENTS, main


class TestCLI:
    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "DRRIP" in out
        assert "Table III" in out

    def test_graphs(self, capsys):
        assert main(["graphs", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        for name in ("DBP", "UK-02", "KRON", "URAND", "HBUBL"):
            assert name in out

    def test_run(self, capsys):
        code = main(
            ["run", "--app", "PR", "--graph", "URAND",
             "--scale", "tiny", "--policy", "DRRIP"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "llc_miss_rate" in out

    def test_run_popt_extra_columns(self, capsys):
        main(["run", "--app", "PR", "--graph", "URAND",
              "--scale", "tiny", "--policy", "P-OPT"])
        out = capsys.readouterr().out
        assert "tie_rate" in out and "bytes_streamed" in out

    def test_compare(self, capsys):
        code = main(
            ["compare", "--app", "PR", "--graph", "URAND",
             "--scale", "tiny", "--policies", "LRU,DRRIP"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "speedup_vs_LRU" in out

    def test_experiment(self, capsys):
        code = main(["experiment", "table4", "--scale", "tiny"])
        assert code == 0
        out = capsys.readouterr().out
        assert "popt_preprocessing_s" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["bogus"])

    def test_unknown_graph_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--graph", "NOPE"])

    def test_registries_complete(self):
        assert set(APP_FACTORIES) >= {
            "PR", "CC", "PR-Delta", "Radii", "MIS", "BFS", "SSSP", "kCore",
        }
        assert set(EXPERIMENTS) >= {
            "fig02", "fig04", "fig07", "fig10", "fig11", "fig12a",
            "fig12b", "fig13", "fig14", "fig15", "fig16", "table4",
        }
