"""Algorithm-correctness tests: the kernels must compute real results."""

import networkx as nx
import numpy as np
import pytest

from repro.graph import from_edges, symmetrize, uniform_random
from repro.apps import (
    binning_reference,
    bdfs_order,
    mis_reference,
    pagerank_delta_reference,
    pagerank_reference,
    radii_reference,
    shiloach_vishkin_reference,
)


@pytest.fixture
def graph():
    return uniform_random(300, avg_degree=6.0, seed=17)


def to_networkx(graph):
    g = nx.DiGraph()
    g.add_nodes_from(range(graph.num_vertices))
    g.add_edges_from((int(s), int(d)) for s, d in graph.edge_array())
    return g


class TestPageRank:
    def test_matches_networkx(self, graph):
        ours = pagerank_reference(graph, num_iterations=100)
        theirs = nx.pagerank(
            to_networkx(graph), alpha=0.85, max_iter=200, tol=1e-10,
            dangling=None,
        )
        # networkx redistributes dangling mass; compare rank *ordering*
        # of the top vertices and rough magnitudes instead of exact values.
        ours_top = np.argsort(ours)[-20:]
        theirs_arr = np.array(
            [theirs[v] for v in range(graph.num_vertices)]
        )
        theirs_top = np.argsort(theirs_arr)[-20:]
        overlap = len(set(ours_top.tolist()) & set(theirs_top.tolist()))
        assert overlap >= 12

    def test_scores_positive_and_bounded(self, graph):
        scores = pagerank_reference(graph)
        assert (scores > 0).all()
        # GAP-style PR without dangling redistribution sums to <= 1.
        assert 0.5 < scores.sum() <= 1.0 + 1e-9

    def test_uniform_on_cycle(self):
        cycle = from_edges(
            [(i, (i + 1) % 10) for i in range(10)], num_vertices=10
        )
        scores = pagerank_reference(cycle, num_iterations=200)
        assert np.allclose(scores, 0.1, atol=1e-6)

    def test_empty_graph(self):
        assert pagerank_reference(from_edges([], num_vertices=0)).size == 0


class TestConnectedComponents:
    def test_matches_networkx(self, graph):
        comp = shiloach_vishkin_reference(graph)
        expected = list(
            nx.weakly_connected_components(to_networkx(graph))
        )
        # Same partition: same number of components, consistent labels.
        label_sets = {}
        for v in range(graph.num_vertices):
            label_sets.setdefault(int(comp[v]), set()).add(v)
        assert len(label_sets) == len(expected)
        assert sorted(map(frozenset, label_sets.values())) == sorted(
            map(frozenset, expected)
        )

    def test_labels_are_roots(self, graph):
        comp = shiloach_vishkin_reference(graph)
        assert np.array_equal(comp[comp], comp)  # fully compressed

    def test_two_islands(self):
        g = from_edges([(0, 1), (2, 3)], num_vertices=4)
        comp = shiloach_vishkin_reference(g)
        assert comp[0] == comp[1]
        assert comp[2] == comp[3]
        assert comp[0] != comp[2]


class TestPageRankDelta:
    def test_converges_to_pagerank(self, graph):
        ranks, history = pagerank_delta_reference(
            graph, epsilon=1e-9, max_iterations=100
        )
        plain = pagerank_reference(graph, num_iterations=100)
        assert np.allclose(ranks, plain, atol=1e-5)

    def test_frontier_shrinks(self, graph):
        __, history = pagerank_delta_reference(graph, epsilon=1e-3)
        densities = [m.mean() for m in history]
        assert densities[0] == 1.0
        assert densities[-1] < densities[0]


class TestRadii:
    def test_radius_positive_and_bounded(self, graph):
        radius, history = radii_reference(graph, num_samples=32)
        assert 1 <= radius <= 64
        assert len(history) >= radius

    def test_single_chain(self):
        chain = from_edges(
            [(i, i + 1) for i in range(20)], num_vertices=21
        )
        # One BFS from vertex 0 walks the whole chain.
        radius, __ = radii_reference(chain, num_samples=21, seed=1)
        assert radius >= 10

    def test_frontier_masks_boolean(self, graph):
        __, history = radii_reference(graph, num_samples=16)
        for mask in history:
            assert mask.dtype == bool


class TestMIS:
    def test_independence(self, graph):
        status, __ = mis_reference(graph)
        undirected = symmetrize(graph)
        in_set = status == 1
        for u, v in undirected.edges():
            if u != v:
                assert not (in_set[u] and in_set[v])

    def test_maximality(self, graph):
        status, __ = mis_reference(graph)
        undirected = symmetrize(graph)
        in_set = status == 1
        for v in range(undirected.num_vertices):
            if not in_set[v]:
                neighbors = undirected.out_neighbors(v)
                assert any(in_set[u] for u in neighbors), (
                    f"vertex {v} could join the set"
                )

    def test_all_vertices_decided(self, graph):
        status, __ = mis_reference(graph)
        assert set(np.unique(status)) <= {1, 2}

    def test_rounds_shrink(self, graph):
        __, masks = mis_reference(graph)
        sizes = [int(m.sum()) for m in masks]
        assert sizes == sorted(sizes, reverse=True)


class TestBDFS:
    def test_is_permutation(self, graph):
        order = bdfs_order(graph)
        assert sorted(order.tolist()) == list(range(graph.num_vertices))

    def test_depth_zero_is_identity(self, graph):
        order = bdfs_order(graph, depth_bound=0)
        assert order.tolist() == list(range(graph.num_vertices))

    def test_community_locality(self):
        from repro.graph import community

        g = community(
            512, num_communities=8, internal_fraction=0.95, seed=3
        )
        order = bdfs_order(g)
        # Consecutive visits should frequently stay inside one community.
        size = 512 // 8
        same = sum(
            1
            for a, b in zip(order, order[1:])
            if a // size == b // size
        )
        assert same / len(order) > 0.5


class TestBinning:
    def test_bin_occupancy_sums_to_edges(self, graph):
        occupancy = binning_reference(graph, num_bins=8)
        assert occupancy.sum() == graph.num_edges

    def test_routing(self):
        g = from_edges([(0, 0), (0, 9), (1, 5)], num_vertices=10)
        occupancy = binning_reference(g, num_bins=2)
        # bin size 5: dst 0 -> bin 0; dsts 9 and 5 -> bin 1.
        assert occupancy.tolist() == [1, 2]
