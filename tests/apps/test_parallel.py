"""Tests for epoch-serial parallel execution (Section V-F)."""

import numpy as np
import pytest

from repro.apps import PageRank
from repro.apps.parallel import (
    epoch_serial_parallel_order,
    main_thread_vertex_channel,
)
from repro.cache import CacheConfig, HierarchyConfig
from repro.errors import SimulationError
from repro.graph import uniform_random
from repro.popt.rereference import epoch_geometry
from repro.sim import prepare_run, simulate_prepared


class TestParallelOrder:
    def test_is_permutation(self):
        order = epoch_serial_parallel_order(
            1000, epoch_size=100, num_threads=4
        )
        assert sorted(order.tolist()) == list(range(1000))

    def test_epochs_strictly_ordered(self):
        order = epoch_serial_parallel_order(
            1000, epoch_size=100, num_threads=4
        )
        epochs = order // 100
        assert (np.diff(epochs) >= 0).all()

    def test_single_thread_is_identity(self):
        order = epoch_serial_parallel_order(
            64, epoch_size=16, num_threads=1
        )
        assert order.tolist() == list(range(64))

    def test_threads_interleave_within_epoch(self):
        order = epoch_serial_parallel_order(
            64, epoch_size=64, num_threads=2, chunk=8
        )
        # First round: thread 0's chunk [0..8), then thread 1's [8..16).
        assert order[:16].tolist() == list(range(16))
        # Second round starts at thread 0's second chunk (16).
        assert order[16] == 16

    def test_validation(self):
        with pytest.raises(SimulationError):
            epoch_serial_parallel_order(10, epoch_size=0, num_threads=2)
        with pytest.raises(SimulationError):
            epoch_serial_parallel_order(10, epoch_size=4, num_threads=0)

    def test_empty(self):
        assert len(
            epoch_serial_parallel_order(0, epoch_size=4, num_threads=2)
        ) == 0


class TestMainThreadChannel:
    def test_main_thread_values_monotonic_within_epoch(self):
        graph = uniform_random(1024, avg_degree=8.0, seed=9)
        __, epoch_size, __ = epoch_geometry(graph.num_vertices, 8)
        order = epoch_serial_parallel_order(
            graph.num_vertices, epoch_size, num_threads=4
        )
        prepared = prepare_run(PageRank(), graph, order=order)
        parallel = main_thread_vertex_channel(
            prepared.trace, epoch_size, num_threads=4
        )
        vertices = parallel.vertices.astype(np.int64)
        epochs = vertices // epoch_size
        assert (np.diff(epochs) >= 0).all()
        # Within an epoch, the published currVertex never goes backwards.
        for epoch in np.unique(epochs)[:4]:
            values = vertices[epochs == epoch]
            assert (np.diff(values) >= 0).all()

    def test_addresses_untouched(self):
        graph = uniform_random(256, avg_degree=4.0, seed=9)
        prepared = prepare_run(PageRank(), graph)
        parallel = main_thread_vertex_channel(
            prepared.trace, epoch_size=16, num_threads=2
        )
        assert np.array_equal(
            parallel.addresses, prepared.trace.addresses
        )


class TestParallelPOPT:
    def test_parallel_miss_rate_close_to_serial(self):
        """The paper's Section V-F claim: sharing the main thread's
        currVertex gives multi-threaded P-OPT runs LLC miss rates similar
        to serial ones."""
        graph = uniform_random(4096, avg_degree=8.0, seed=10)
        hierarchy = HierarchyConfig(
            l1=CacheConfig("L1", num_sets=2, num_ways=8),
            l2=CacheConfig("L2", num_sets=4, num_ways=8),
            llc=CacheConfig("LLC", num_sets=8, num_ways=16),
        )
        serial = prepare_run(PageRank(), graph)
        serial_result = simulate_prepared(serial, "P-OPT", hierarchy)

        __, epoch_size, __ = epoch_geometry(graph.num_vertices, 8)
        chunk = max(1, epoch_size // 32)
        order = epoch_serial_parallel_order(
            graph.num_vertices, epoch_size, num_threads=8, chunk=chunk
        )
        parallel = prepare_run(PageRank(), graph, order=order)
        parallel.trace = main_thread_vertex_channel(
            parallel.trace, epoch_size, num_threads=8, chunk=chunk
        )
        parallel_result = simulate_prepared(parallel, "P-OPT", hierarchy)

        assert parallel_result.llc_miss_rate == pytest.approx(
            serial_result.llc_miss_rate, abs=0.08
        )
