"""Cross-validation of the vectorized trace builder against a naive
loop-nest reference implementation."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import from_edges
from repro.memory import AddressSpace
from repro.memory.trace import AccessKind
from repro.apps.base import PerEdgeAccess, traversal_trace


def reference_trace(topology, oa, na, per_edge, dense, order):
    """The loop nest traversal_trace vectorizes, written plainly."""
    records = []
    for outer in order:
        records.append((oa.addr_of(int(outer)), AccessKind.OFFSETS,
                        False, int(outer)))
        lo = int(topology.offsets[outer])
        hi = int(topology.offsets[outer + 1])
        for edge_index in range(lo, hi):
            neighbor = int(topology.neighbors[edge_index])
            records.append(
                (na.addr_of(edge_index), AccessKind.NEIGHBORS, False,
                 int(outer))
            )
            for access in per_edge:
                if access.mask is not None and not access.mask[neighbor]:
                    continue
                records.append(
                    (access.span.addr_of(neighbor), access.pc,
                     access.write, int(outer))
                )
        if dense is not None:
            records.append(
                (dense.addr_of(int(outer)), AccessKind.DENSE_DATA, True,
                 int(outer))
            )
    return records


def graphs_and_params():
    return st.integers(2, 20).flatmap(
        lambda n: st.tuples(
            st.just(n),
            st.lists(
                st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
                max_size=60,
            ),
            st.lists(st.booleans(), min_size=n, max_size=n),
            st.booleans(),  # include dense span
            st.booleans(),  # include masked access
            st.booleans(),  # subset order
        )
    )


@given(graphs_and_params())
@settings(max_examples=60, deadline=None)
def test_matches_reference_loop_nest(params):
    n, edges, mask_bits, with_dense, with_masked, subset = params
    graph = from_edges(edges, num_vertices=n, dedup=True)
    space = AddressSpace()
    oa = space.alloc("oa", n + 1, 64)
    na = space.alloc("na", max(graph.num_edges, 1), 32)
    irr = space.alloc("irr", n, 32, irregular=True)
    frontier = space.alloc("fr", n, 1, irregular=True)
    dense = space.alloc("dense", n, 32) if with_dense else None
    mask = np.array(mask_bits, dtype=bool)

    per_edge = [PerEdgeAccess(span=frontier, pc=AccessKind.FRONTIER)]
    if with_masked:
        per_edge.append(
            PerEdgeAccess(span=irr, pc=AccessKind.IRREG_DATA, mask=mask)
        )
    order = np.arange(n, dtype=np.int64)
    if subset:
        order = order[::2].copy()

    trace = traversal_trace(
        topology=graph,
        oa_span=oa,
        na_span=na,
        per_edge=per_edge,
        dense_span=dense,
        order=order,
    )
    expected = reference_trace(graph, oa, na, per_edge, dense, order)
    assert len(trace) == len(expected)
    for i, (addr, pc, write, vertex) in enumerate(expected):
        assert trace.addresses[i] == addr, i
        assert trace.pcs[i] == pc, i
        assert bool(trace.writes[i]) == write, i
        assert trace.vertices[i] == vertex, i
