"""Trace-structure tests: the emitted access streams must mirror the
kernels' loop nests (Algorithm 1's access pattern)."""

import numpy as np
import pytest

from repro.graph import from_edges, load, uniform_random
from repro.memory.trace import AccessKind
from repro.apps import (
    ConnectedComponents,
    MaximalIndependentSet,
    PageRank,
    PageRankDelta,
    PropagationBlockingBinning,
    Radii,
)
from repro.apps.tiled_pagerank import TiledPageRank


@pytest.fixture
def graph():
    return uniform_random(400, avg_degree=6.0, seed=21)


ALL_APPS = [
    PageRank,
    ConnectedComponents,
    PageRankDelta,
    Radii,
    MaximalIndependentSet,
]


class TestCommonInvariants:
    @pytest.mark.parametrize("app_cls", ALL_APPS)
    def test_addresses_inside_layout(self, graph, app_cls):
        run = app_cls().prepare(graph)
        spans = run.layout.spans
        low = min(s.base for s in spans)
        high = max(s.bound for s in spans)
        assert (run.trace.addresses >= low).all()
        assert (run.trace.addresses < high + 64).all()

    @pytest.mark.parametrize("app_cls", ALL_APPS)
    def test_irregular_accesses_inside_irregular_spans(self, graph, app_cls):
        run = app_cls().prepare(graph)
        trace = run.trace
        irregular_pcs = (AccessKind.IRREG_DATA, AccessKind.FRONTIER)
        mask = np.isin(trace.pcs, irregular_pcs)
        addrs = trace.addresses[mask]
        inside = np.zeros(len(addrs), dtype=bool)
        for span in run.layout.irregular_spans:
            inside |= (addrs >= span.base) & (addrs < span.bound)
        assert inside.all()

    @pytest.mark.parametrize("app_cls", ALL_APPS)
    def test_streams_declared_for_all_irregular_spans(self, graph, app_cls):
        run = app_cls().prepare(graph)
        declared = {s.span.name for s in run.irregular_streams}
        allocated = {s.name for s in run.layout.irregular_spans}
        assert declared == allocated

    @pytest.mark.parametrize("app_cls", ALL_APPS)
    def test_vertex_channel_valid(self, graph, app_cls):
        run = app_cls().prepare(graph)
        vertices = run.trace.vertices
        assert (vertices >= 0).all()
        assert (vertices < graph.num_vertices).all()


class TestPageRankTrace:
    def test_access_counts(self, graph):
        run = PageRank().prepare(graph)
        csc = graph.transpose()
        stats = run.trace.stats()
        n, m = graph.num_vertices, graph.num_edges
        assert stats[AccessKind.OFFSETS] == n
        assert stats[AccessKind.NEIGHBORS] == m
        assert stats[AccessKind.IRREG_DATA] == m
        assert stats[AccessKind.DENSE_DATA] == n

    def test_program_order_block(self):
        # For a 3-vertex graph, check the exact block layout of vertex 0.
        g = from_edges([(1, 0), (2, 0), (0, 1)], num_vertices=3)
        run = PageRank().prepare(g)
        trace = run.trace
        # Block for dst 0: OA, then (NA, srcData) per in-edge, then dense.
        pcs = trace.pcs[trace.vertices == 0].tolist()
        assert pcs == [
            AccessKind.OFFSETS,
            AccessKind.NEIGHBORS,
            AccessKind.IRREG_DATA,
            AccessKind.NEIGHBORS,
            AccessKind.IRREG_DATA,
            AccessKind.DENSE_DATA,
        ]

    def test_src_data_addresses_match_sources(self):
        g = from_edges([(1, 0), (2, 0)], num_vertices=3)
        run = PageRank().prepare(g)
        span = run.layout["srcData"]
        mask = run.trace.pcs == AccessKind.IRREG_DATA
        addrs = run.trace.addresses[mask]
        # dst 0's in-neighbors are 1 and 2.
        assert addrs.tolist() == [span.addr_of(1), span.addr_of(2)]

    def test_vertices_monotonic_for_pull(self, graph):
        run = PageRank().prepare(graph)
        assert (np.diff(run.trace.vertices) >= 0).all()

    def test_multiple_iterations(self, graph):
        one = PageRank(num_trace_iterations=1).prepare(graph)
        two = PageRank(num_trace_iterations=2).prepare(graph)
        assert len(two.trace) == 2 * len(one.trace)

    def test_outer_order_override(self, graph):
        order = np.arange(graph.num_vertices)[::-1].copy()
        run = PageRank().prepare(graph, order=order)
        vertices = run.trace.vertices
        assert vertices[0] == graph.num_vertices - 1
        assert (np.diff(vertices) <= 0).all()


class TestConnectedComponentsTrace:
    def test_push_irregular_indexed_by_destination(self):
        g = from_edges([(0, 2), (0, 3)], num_vertices=4)
        run = ConnectedComponents().prepare(g)
        span = run.layout["comp"]
        mask = run.trace.pcs == AccessKind.IRREG_DATA
        addrs = run.trace.addresses[mask]
        assert addrs.tolist() == [span.addr_of(2), span.addr_of(3)]

    def test_irregular_writes(self, graph):
        run = ConnectedComponents().prepare(graph)
        mask = run.trace.pcs == AccessKind.IRREG_DATA
        assert run.trace.writes[mask].all()

    def test_reference_graph_is_transpose(self, graph):
        run = ConnectedComponents().prepare(graph)
        ref = run.irregular_streams[0].reference_graph
        # comp[dst] is touched while processing dst's *in*-neighbors.
        assert ref.num_edges == graph.num_edges
        assert ref.out_neighbors(0).tolist() == (
            graph.transpose().out_neighbors(0).tolist()
        )


class TestFrontierApps:
    def test_frontier_gates_irregular_accesses(self, graph):
        run = PageRankDelta(trace_iterations=(1,)).prepare(graph)
        stats = run.trace.stats()
        # Frontier bits are read for every edge; delta only for active
        # sources, so frontier accesses strictly dominate.
        assert stats[AccessKind.FRONTIER] >= stats.get(
            AccessKind.IRREG_DATA, 0
        )

    def test_all_active_first_iteration(self, graph):
        run = PageRankDelta(trace_iterations=(0,)).prepare(graph)
        stats = run.trace.stats()
        assert stats[AccessKind.FRONTIER] == stats[AccessKind.IRREG_DATA]

    def test_two_irregular_streams(self, graph):
        run = PageRankDelta().prepare(graph)
        assert len(run.irregular_streams) == 2
        names = {s.span.name for s in run.irregular_streams}
        assert names == {"delta", "frontier"}

    def test_radii_traces_densest_rounds(self, graph):
        run = Radii(max_trace_rounds=2).prepare(graph)
        assert len(run.details["rounds_traced"]) <= 2
        assert len(run.trace) > 0

    def test_mis_rounds(self, graph):
        run = MaximalIndependentSet(max_trace_rounds=1).prepare(graph)
        assert len(run.trace) > 0
        assert run.details["rounds"] >= 1


class TestPBTraces:
    def test_pb_binning_all_streaming_writes(self, graph):
        run = PropagationBlockingBinning(phi=False).prepare(graph)
        stats = run.trace.stats()
        assert stats[AccessKind.BIN_BUFFER] == graph.num_edges
        assert AccessKind.IRREG_DATA not in stats

    def test_phi_irregular_accumulation(self, graph):
        run = PropagationBlockingBinning(phi=True).prepare(graph)
        stats = run.trace.stats()
        assert stats[AccessKind.IRREG_DATA] == graph.num_edges

    def test_pb_bin_appends_sequential_within_bin(self):
        g = from_edges([(0, 1), (1, 1), (2, 1)], num_vertices=3)
        run = PropagationBlockingBinning(phi=False, num_bins=1).prepare(g)
        span = run.layout["bins"]
        mask = run.trace.pcs == AccessKind.BIN_BUFFER
        addrs = run.trace.addresses[mask]
        assert addrs.tolist() == [
            span.addr_of(0),
            span.addr_of(1),
            span.addr_of(2),
        ]


class TestTiledPageRank:
    def test_trace_covers_all_edges(self, graph):
        run = TiledPageRank(num_tiles=4).prepare(graph)
        stats = run.trace.stats()
        assert stats[AccessKind.IRREG_DATA] == graph.num_edges
        assert stats[AccessKind.OFFSETS] == 4 * graph.num_vertices

    def test_global_iteration_index(self, graph):
        run = TiledPageRank(num_tiles=2).prepare(graph)
        vertices = run.trace.vertices
        n = graph.num_vertices
        assert vertices.max() >= n  # second pass offsets by n
        assert (np.diff(vertices) >= 0).all()

    def test_resident_fraction(self, graph):
        run = TiledPageRank(num_tiles=8).prepare(graph)
        assert run.details["resident_fraction"] == pytest.approx(1 / 8)

    def test_srcdata_restricted_per_pass(self, graph):
        run = TiledPageRank(num_tiles=2).prepare(graph)
        span = run.layout["srcData"]
        trace = run.trace
        n = graph.num_vertices
        mask = (trace.pcs == AccessKind.IRREG_DATA) & (trace.vertices < n)
        first_pass = trace.addresses[mask]
        # Pass 0 touches only the first tile's source range.
        boundary = span.addr_of((n + 1) // 2 + 1)
        assert (first_pass <= boundary).all()
