"""Tests for the extended kernel suite: BFS, SSSP, k-core."""

import networkx as nx
import numpy as np
import pytest

from repro.graph import from_edges, symmetrize, uniform_random
from repro.apps import (
    BFS,
    KCore,
    SSSP,
    bfs_reference,
    kcore_reference,
    sssp_reference,
    synthetic_weights,
)
from repro.apps.sssp import INF
from repro.cache import CacheConfig, HierarchyConfig
from repro.memory.trace import AccessKind
from repro.sim import prepare_run, simulate_prepared


@pytest.fixture
def graph():
    return uniform_random(400, avg_degree=6.0, seed=23)


def to_networkx(graph, weights=None):
    g = nx.DiGraph()
    g.add_nodes_from(range(graph.num_vertices))
    edges = graph.edge_array()
    if weights is None:
        g.add_edges_from((int(s), int(d)) for s, d in edges)
    else:
        g.add_weighted_edges_from(
            (int(s), int(d), int(w)) for (s, d), w in zip(edges, weights)
        )
    return g


class TestBFSAlgorithm:
    def test_levels_match_networkx(self, graph):
        parent, __ = bfs_reference(graph, source=0)
        expected = nx.single_source_shortest_path_length(
            to_networkx(graph), 0
        )
        # Derive levels by walking parent pointers.
        def level(v):
            steps = 0
            while parent[v] != v:
                v = parent[v]
                steps += 1
                assert steps <= graph.num_vertices
            return steps

        for v in range(graph.num_vertices):
            if parent[v] >= 0:
                assert v in expected
                assert level(v) == expected[v], v
            else:
                assert v not in expected

    def test_parent_edges_exist(self, graph):
        parent, __ = bfs_reference(graph, source=0)
        edges = {(int(s), int(d)) for s, d in graph.edge_array()}
        for v in range(graph.num_vertices):
            p = int(parent[v])
            if p >= 0 and p != v:
                assert (p, v) in edges

    def test_direction_switches(self, graph):
        __, rounds = bfs_reference(graph, source=0)
        directions = {direction for direction, __ in rounds}
        assert "push" in directions  # the first sparse round pushes

    def test_disconnected_source(self):
        g = from_edges([(1, 2)], num_vertices=4)
        parent, rounds = bfs_reference(g, source=0)
        assert parent[0] == 0
        assert parent[1] == -1 and parent[3] == -1


class TestSSSPAlgorithm:
    def test_matches_networkx_dijkstra(self, graph):
        weights = synthetic_weights(graph)
        dist, __ = sssp_reference(graph, source=0, weights=weights)
        expected = nx.single_source_dijkstra_path_length(
            to_networkx(graph, weights), 0
        )
        for v in range(graph.num_vertices):
            if v in expected:
                assert dist[v] == expected[v], v
            else:
                assert dist[v] == INF

    def test_unit_weights_equal_bfs_levels(self, graph):
        ones = np.ones(graph.num_edges, dtype=np.int64)
        dist, __ = sssp_reference(graph, source=0, weights=ones)
        expected = nx.single_source_shortest_path_length(
            to_networkx(graph), 0
        )
        for v, d in expected.items():
            assert dist[v] == d

    def test_rounds_start_with_source(self, graph):
        __, rounds = sssp_reference(graph, source=7)
        assert rounds[0].sum() == 1
        assert rounds[0][7]


class TestKCoreAlgorithm:
    def test_matches_networkx(self, graph):
        coreness, __ = kcore_reference(graph)
        undirected = symmetrize(graph)
        nxg = nx.Graph()
        nxg.add_nodes_from(range(undirected.num_vertices))
        nxg.add_edges_from(
            (int(s), int(d)) for s, d in undirected.edge_array()
            if s != d
        )
        expected = nx.core_number(nxg)
        for v in range(graph.num_vertices):
            assert coreness[v] == expected[v], v

    def test_peel_masks_partition_vertices(self, graph):
        __, masks = kcore_reference(graph)
        total = np.zeros(graph.num_vertices, dtype=int)
        for mask in masks:
            total += mask
        assert (total == 1).all()  # every vertex peeled exactly once

    def test_star_graph(self):
        # A star: center coreness 1, leaves coreness 1.
        g = from_edges([(0, i) for i in range(1, 6)], num_vertices=6)
        coreness, __ = kcore_reference(g)
        assert (coreness == 1).all()


class TestKernelTraces:
    @pytest.mark.parametrize("app_cls", [BFS, SSSP, KCore])
    def test_trace_and_streams(self, graph, app_cls):
        run = app_cls().prepare(graph)
        assert len(run.trace) > 0
        assert len(run.irregular_streams) == 2
        declared = {s.span.name for s in run.irregular_streams}
        allocated = {s.name for s in run.layout.irregular_spans}
        assert declared == allocated

    def test_sssp_sparse_round_visits_only_active(self, graph):
        run = SSSP(max_trace_rounds=1).prepare(graph)
        traced_round = run.details["rounds_traced"][0]
        __, rounds = sssp_reference(graph)
        active = set(np.flatnonzero(rounds[traced_round]).tolist())
        visited = set(np.unique(run.trace.vertices).tolist())
        assert visited <= active

    @pytest.mark.parametrize("app_cls", [BFS, SSSP, KCore])
    def test_popt_simulation_end_to_end(self, app_cls):
        graph = uniform_random(2048, avg_degree=8.0, seed=24)
        hierarchy = HierarchyConfig(
            l1=CacheConfig("L1", num_sets=2, num_ways=8),
            l2=CacheConfig("L2", num_sets=4, num_ways=8),
            llc=CacheConfig("LLC", num_sets=8, num_ways=16),
        )
        prepared = prepare_run(app_cls(), graph)
        drrip = simulate_prepared(prepared, "DRRIP", hierarchy)
        popt = simulate_prepared(prepared, "P-OPT", hierarchy)
        # P-OPT should never be much worse, usually better.
        assert popt.llc.misses <= drrip.llc.misses * 1.10
