"""Generators must land in their intended structural classes (Table III)."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph import (
    bounded_degree_mesh,
    community,
    degree_skew,
    degree_stats,
    power_law,
    rmat,
    uniform_random,
)
from repro.graph.datasets import PAPER_GRAPHS, SCALES, graph_names, load
from repro.graph.properties import num_weakly_connected


class TestUniformRandom:
    def test_size(self):
        g = uniform_random(1000, avg_degree=8.0, seed=1)
        assert g.num_vertices == 1000
        # dedup/self-loop removal trims a little
        assert 0.85 * 8000 <= g.num_edges <= 8000

    def test_no_self_loops(self):
        g = uniform_random(300, avg_degree=8.0, seed=2)
        for v, u in g.edges():
            assert v != u

    def test_low_skew(self):
        g = uniform_random(2000, avg_degree=8.0, seed=3)
        assert degree_skew(g) < 5.0

    def test_deterministic(self):
        a = uniform_random(200, seed=9)
        b = uniform_random(200, seed=9)
        assert np.array_equal(a.neighbors, b.neighbors)

    def test_rejects_bad_size(self):
        with pytest.raises(GraphFormatError):
            uniform_random(0)


class TestRmat:
    def test_size_power_of_two(self):
        g = rmat(9, avg_degree=8.0, seed=1)
        assert g.num_vertices == 512

    def test_high_skew(self):
        g = rmat(11, avg_degree=8.0, seed=1)
        assert degree_skew(g) > 10.0

    def test_more_skewed_than_uniform(self):
        k = rmat(11, avg_degree=8.0, seed=1)
        u = uniform_random(2048, avg_degree=8.0, seed=1)
        assert degree_skew(k) > 2 * degree_skew(u)

    def test_rejects_bad_probabilities(self):
        with pytest.raises(GraphFormatError):
            rmat(8, a=0.6, b=0.3, c=0.2)


class TestPowerLaw:
    def test_heavy_tail(self):
        g = power_law(2048, avg_degree=8.0, seed=4)
        degrees = np.sort(g.transpose().degrees() + g.degrees())[::-1]
        # Top 1% of vertices should hold a disproportionate edge share.
        top = degrees[: len(degrees) // 100 or 1].sum()
        assert top > 0.1 * degrees.sum()

    def test_hubs_spread_over_id_space(self):
        g = power_law(2048, avg_degree=8.0, seed=4)
        hub = int(np.argmax(g.degrees()))
        assert 0 < hub < g.num_vertices - 1


class TestCommunity:
    def test_internal_edge_fraction(self):
        num_communities = 16
        n = 1600
        g = community(
            n,
            num_communities=num_communities,
            internal_fraction=0.9,
            seed=5,
        )
        size = n // num_communities
        internal = sum(
            1 for s, d in g.edges() if s // size == d // size
        )
        assert internal / g.num_edges > 0.8

    def test_rejects_bad_fraction(self):
        with pytest.raises(GraphFormatError):
            community(100, internal_fraction=1.5)

    def test_rejects_too_many_communities(self):
        with pytest.raises(GraphFormatError):
            community(10, num_communities=20)


class TestBoundedDegreeMesh:
    def test_degree_bounded(self):
        g = bounded_degree_mesh(1000, degree=6, seed=6)
        assert degree_skew(g) < 3.0
        assert g.degrees().max() <= 12

    def test_connected_enough(self):
        g = bounded_degree_mesh(500, degree=6, seed=6)
        assert num_weakly_connected(g) <= 5

    def test_ids_scrambled(self):
        # Real bounded-degree inputs carry no vertex-ID locality: the
        # average |src - dst| gap must be large (not a band matrix).
        g = bounded_degree_mesh(2000, degree=6, seed=6)
        edges = g.edge_array()
        gaps = np.abs(edges[:, 0].astype(int) - edges[:, 1].astype(int))
        assert gaps.mean() > 2000 / 10


class TestDatasets:
    def test_names(self):
        assert graph_names() == ["DBP", "UK-02", "KRON", "URAND", "HBUBL"]

    @pytest.mark.parametrize("name", graph_names())
    def test_loadable_and_deterministic(self, name):
        a = load(name, scale="tiny")
        b = load(name, scale="tiny")
        assert a.num_vertices >= SCALES["tiny"]
        assert np.array_equal(a.neighbors, b.neighbors)

    def test_unknown_name(self):
        with pytest.raises(GraphFormatError):
            load("NOPE")

    def test_unknown_scale(self):
        with pytest.raises(GraphFormatError):
            PAPER_GRAPHS[0].generate(scale="galactic")

    def test_structural_classes(self):
        skewed = degree_skew(load("KRON", scale="tiny"))
        flat = degree_skew(load("HBUBL", scale="tiny"))
        assert skewed > 5 * flat

    def test_stats_rows(self):
        stats = degree_stats(load("URAND", scale="tiny"))
        row = stats.as_row()
        assert row["vertices"] == stats.num_vertices
        assert row["edges"] == stats.num_edges


class TestExtendedGraphs:
    def test_loadable(self):
        from repro.graph.datasets import EXTENDED_GRAPHS

        names = [spec.name for spec in EXTENDED_GRAPHS]
        assert names == ["GPL", "ARAB", "URAND64"]
        for name in names:
            g = load(name, scale="tiny")
            assert g.num_vertices >= SCALES["tiny"]

    def test_gpl_most_skewed(self):
        gpl = degree_skew(load("GPL", scale="tiny"))
        dbp = degree_skew(load("DBP", scale="tiny"))
        assert gpl > dbp

    def test_urand64_twice_the_vertices(self):
        small = load("URAND", scale="tiny")
        big = load("URAND64", scale="tiny")
        assert big.num_vertices == 2 * small.num_vertices

    def test_arab_communities_hidden_from_id_space(self):
        # ARAB has community topology but scrambled IDs: ID-blocked
        # internal-edge fraction collapses to ~random, while UK-02 (crawl
        # ordered) keeps its communities ID-contiguous.
        def internal_fraction(g, num_communities):
            size = g.num_vertices // num_communities
            internal = sum(
                1 for s, d in g.edges() if s // size == d // size
            )
            return internal / g.num_edges

        arab = load("ARAB", scale="tiny")
        uk = load("UK-02", scale="tiny")
        groups = 1024 // 128
        assert internal_fraction(uk, 1024 // 256) > 0.8
        assert internal_fraction(arab, groups) < 0.5
