"""Unit tests for the CSR graph core."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphFormatError
from repro.graph import CSRGraph, from_adjacency, from_edges, empty_graph


def edges_strategy(max_vertices=24, max_edges=80):
    return st.integers(2, max_vertices).flatmap(
        lambda n: st.tuples(
            st.just(n),
            st.lists(
                st.tuples(
                    st.integers(0, n - 1), st.integers(0, n - 1)
                ),
                max_size=max_edges,
            ),
        )
    )


class TestConstruction:
    def test_basic_counts(self, paper_example_graph):
        g = paper_example_graph
        assert g.num_vertices == 5
        assert g.num_edges == 10

    def test_neighbor_lists_sorted(self, paper_example_graph):
        assert paper_example_graph.has_sorted_neighbors()

    def test_out_neighbors(self, paper_example_graph):
        assert paper_example_graph.out_neighbors(2).tolist() == [0, 1, 3]

    def test_degrees(self, paper_example_graph):
        assert paper_example_graph.degrees().tolist() == [1, 2, 3, 2, 2]

    def test_empty_graph(self):
        g = empty_graph(4)
        assert g.num_vertices == 4
        assert g.num_edges == 0
        assert g.out_neighbors(0).size == 0

    def test_from_adjacency(self):
        g = from_adjacency([[1, 2], [2], []])
        assert g.num_vertices == 3
        assert g.out_neighbors(0).tolist() == [1, 2]

    def test_edge_array_round_trip(self, paper_example_graph):
        edges = paper_example_graph.edge_array()
        rebuilt = from_edges(edges, num_vertices=5)
        assert np.array_equal(
            rebuilt.offsets, paper_example_graph.offsets
        )
        assert np.array_equal(
            rebuilt.neighbors, paper_example_graph.neighbors
        )

    def test_rejects_bad_offsets(self):
        with pytest.raises(GraphFormatError):
            CSRGraph(
                offsets=np.array([1, 2]), neighbors=np.array([0, 0])
            )

    def test_rejects_decreasing_offsets(self):
        with pytest.raises(GraphFormatError):
            CSRGraph(
                offsets=np.array([0, 2, 1]),
                neighbors=np.array([0, 0], dtype=np.int32),
            )

    def test_rejects_out_of_range_neighbor(self):
        with pytest.raises(GraphFormatError):
            from_edges([(0, 7)], num_vertices=3)

    def test_rejects_negative_vertex(self):
        with pytest.raises(GraphFormatError):
            from_edges([(-1, 0)], num_vertices=3)

    def test_dedup_and_self_loops(self):
        g = from_edges(
            [(0, 1), (0, 1), (1, 1)],
            num_vertices=2,
            dedup=True,
            drop_self_loops=True,
        )
        assert g.num_edges == 1


class TestTranspose:
    def test_paper_example(self, paper_example_graph):
        t = paper_example_graph.transpose()
        # In-neighbors of vertex 0 are {1, 2, 4}.
        assert t.out_neighbors(0).tolist() == [1, 2, 4]

    def test_double_transpose_is_identity(self, paper_example_graph):
        g = paper_example_graph
        tt = g.transpose().transpose()
        assert np.array_equal(tt.offsets, g.offsets)
        assert np.array_equal(tt.neighbors, g.neighbors)

    def test_transpose_cached(self, paper_example_graph):
        g = paper_example_graph
        assert g.transpose() is g.transpose()
        assert g.transpose().transpose() is g

    def test_transpose_preserves_edge_multiset(self, small_random_graph):
        g = small_random_graph
        fwd = {(int(s), int(d)) for s, d in g.edge_array()}
        rev = {(int(d), int(s)) for s, d in g.transpose().edge_array()}
        assert fwd == rev

    def test_transpose_sorted(self, small_random_graph):
        assert small_random_graph.transpose().has_sorted_neighbors()

    @given(edges_strategy())
    @settings(max_examples=40, deadline=None)
    def test_transpose_involution_property(self, data):
        n, edges = data
        g = from_edges(edges, num_vertices=n, dedup=True)
        tt = g.transpose().transpose()
        assert np.array_equal(tt.offsets, g.offsets)
        assert np.array_equal(tt.neighbors, g.neighbors)

    @given(edges_strategy())
    @settings(max_examples=40, deadline=None)
    def test_degree_conservation(self, data):
        n, edges = data
        g = from_edges(edges, num_vertices=n)
        t = g.transpose()
        assert g.num_edges == t.num_edges
        assert int(g.degrees().sum()) == int(t.degrees().sum())


class TestNextReference:
    def test_paper_walkthrough(self, paper_example_graph):
        # Section III-A: srcData[S1] first touched at D0; its next
        # reference is D4 (S1's out-neighbors are {0, 4}).
        g = paper_example_graph
        assert g.next_reference_after(1, 0) == 4

    def test_none_when_exhausted(self, paper_example_graph):
        assert paper_example_graph.next_reference_after(1, 4) is None

    def test_strictly_greater(self, paper_example_graph):
        # current == a neighbor: the *next* one is returned.
        assert paper_example_graph.next_reference_after(2, 0) == 1
        assert paper_example_graph.next_reference_after(2, 1) == 3

    @given(edges_strategy(), st.integers(0, 23))
    @settings(max_examples=40, deadline=None)
    def test_matches_linear_scan(self, data, current):
        n, edges = data
        g = from_edges(edges, num_vertices=n, dedup=True)
        for v in range(n):
            expected = None
            for u in g.out_neighbors(v):
                if u > current:
                    expected = int(u)
                    break
            assert g.next_reference_after(v, current) == expected


class TestRelabel:
    def test_identity(self, small_random_graph):
        g = small_random_graph
        ident = np.arange(g.num_vertices)
        h = g.relabel(ident)
        assert np.array_equal(h.neighbors, g.neighbors)

    def test_permutation_preserves_structure(self, small_random_graph):
        g = small_random_graph
        rng = np.random.default_rng(0)
        perm = rng.permutation(g.num_vertices)
        h = g.relabel(perm)
        assert h.num_edges == g.num_edges
        # degree multiset is preserved
        assert sorted(h.degrees().tolist()) == sorted(g.degrees().tolist())
        # spot-check: edge (s, d) maps to (perm[s], perm[d])
        edges_g = {(int(perm[s]), int(perm[d])) for s, d in g.edge_array()}
        edges_h = {(int(s), int(d)) for s, d in h.edge_array()}
        assert edges_g == edges_h

    def test_rejects_non_permutation(self, small_random_graph):
        g = small_random_graph
        bad = np.zeros(g.num_vertices, dtype=np.int32)
        with pytest.raises(GraphFormatError):
            g.relabel(bad)
