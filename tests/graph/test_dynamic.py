"""Dynamic-graph epochs and the incremental Rereference-Matrix update.

The load-bearing property: `update_rereference_matrix` over only the
delta-touched rows must be bit-identical to a full
`build_rereference_matrix` over the post-delta graph, for every variant
and entry width — that is what lets a dynamic-mode simulation skip the
full preprocessing tax between epochs.
"""

import numpy as np
import pytest

from repro.errors import GraphFormatError, PolicyError
from repro.graph import (
    DynamicGraph,
    EdgeDelta,
    apply_delta,
    from_edges,
    generators,
    random_delta,
)
from repro.popt.rereference import (
    build_rereference_matrix,
    update_rereference_matrix,
)


def small_graph():
    return generators.uniform_random(512, avg_degree=6.0, seed=11)


class TestEdgeDelta:
    def test_touched_endpoints(self):
        delta = EdgeDelta(
            insertions=[[1, 2], [3, 4]], deletions=[[5, 2]]
        )
        assert delta.touched_sources().tolist() == [1, 3, 5]
        assert delta.touched_destinations().tolist() == [2, 4]
        assert delta.size == 3

    def test_empty_delta(self):
        delta = EdgeDelta()
        assert delta.size == 0
        assert delta.touched_sources().tolist() == []

    def test_bad_shape_rejected(self):
        with pytest.raises(GraphFormatError, match="insertions"):
            EdgeDelta(insertions=[[1, 2, 3]])

    def test_negative_id_rejected(self):
        with pytest.raises(GraphFormatError, match="negative"):
            EdgeDelta(deletions=[[-1, 2]])


class TestApplyDelta:
    def test_matches_edge_list_reconstruction(self):
        graph = small_graph()
        delta = random_delta(graph, 25, 25, seed=3)
        updated = apply_delta(graph, delta)
        # Reference semantics: drop deleted pairs, append insertions.
        edges = graph.edge_array().astype(np.int64)
        keys = edges[:, 0] * graph.num_vertices + edges[:, 1]
        del_keys = (
            delta.deletions[:, 0] * graph.num_vertices
            + delta.deletions[:, 1]
        )
        kept = edges[~np.isin(keys, del_keys)]
        expected = from_edges(
            np.vstack([kept, delta.insertions]),
            num_vertices=graph.num_vertices,
        )
        assert np.array_equal(updated.offsets, expected.offsets)
        assert np.array_equal(updated.neighbors, expected.neighbors)

    def test_strict_missing_deletion_raises(self):
        graph = from_edges([[0, 1]], num_vertices=3)
        delta = EdgeDelta(deletions=[[2, 0]])
        with pytest.raises(GraphFormatError, match="cannot delete"):
            apply_delta(graph, delta)
        relaxed = apply_delta(graph, delta, strict=False)
        assert relaxed.num_edges == 1

    def test_deletion_removes_parallel_copies(self):
        graph = from_edges([[0, 1], [0, 1], [1, 0]], num_vertices=2)
        updated = apply_delta(graph, EdgeDelta(deletions=[[0, 1]]))
        assert updated.edge_array().tolist() == [[1, 0]]

    def test_delete_then_reinsert(self):
        graph = from_edges([[0, 1]], num_vertices=2)
        delta = EdgeDelta(insertions=[[0, 1]], deletions=[[0, 1]])
        assert apply_delta(graph, delta).edge_array().tolist() == [[0, 1]]

    def test_out_of_range_endpoint_raises(self):
        graph = from_edges([[0, 1]], num_vertices=2)
        with pytest.raises(GraphFormatError, match="outside graph"):
            apply_delta(graph, EdgeDelta(insertions=[[0, 5]]))


class TestDynamicGraph:
    def test_epoch_sequence(self):
        graph = small_graph()
        dynamic = DynamicGraph(graph)
        deltas = [random_delta(dynamic.graph, 5, 5, seed=s) for s in (1, 2)]
        epochs = list(dynamic.epochs(deltas))
        assert [epoch.index for epoch in epochs] == [1, 2]
        assert dynamic.epoch_index == 2
        assert epochs[-1].graph is dynamic.graph
        for epoch, delta in zip(epochs, deltas):
            assert np.array_equal(
                epoch.changed_sources, delta.touched_sources()
            )
            assert np.array_equal(
                epoch.changed_destinations, delta.touched_destinations()
            )

    def test_random_delta_deterministic(self):
        graph = small_graph()
        first = random_delta(graph, 10, 10, seed=9)
        second = random_delta(graph, 10, 10, seed=9)
        assert np.array_equal(first.insertions, second.insertions)
        assert np.array_equal(first.deletions, second.deletions)
        other = random_delta(graph, 10, 10, seed=10)
        assert not np.array_equal(other.insertions, first.insertions)

    def test_random_delta_strictly_applicable(self):
        graph = small_graph()
        delta = random_delta(graph, 0, 40, seed=5)
        assert len(np.unique(delta.deletions, axis=0)) == 40
        apply_delta(graph, delta)  # must not raise under strict

    def test_random_delta_avoids_self_loops(self):
        graph = small_graph()
        delta = random_delta(graph, 200, 0, seed=6)
        assert np.all(delta.insertions[:, 0] != delta.insertions[:, 1])


class TestIncrementalRereference:
    @pytest.mark.parametrize(
        "variant", ["inter_only", "inter_intra", "single_epoch"]
    )
    @pytest.mark.parametrize("entry_bits", [4, 8])
    def test_bit_identical_to_rebuild(self, variant, entry_bits):
        graph = small_graph()
        # Pull-kernel orientation: the matrix is built over the
        # transpose, so the rows a delta dirties are its destinations.
        matrix = build_rereference_matrix(
            graph.transpose(), elems_per_line=8,
            entry_bits=entry_bits, variant=variant,
        )
        delta = random_delta(graph, 15, 15, seed=21)
        updated_graph = apply_delta(graph, delta)
        new_reference = updated_graph.transpose()
        rebuilt = build_rereference_matrix(
            new_reference, elems_per_line=8,
            entry_bits=entry_bits, variant=variant,
        )
        incremental = update_rereference_matrix(
            matrix, new_reference, delta.touched_destinations()
        )
        assert np.array_equal(incremental.entries, rebuilt.entries)
        assert incremental.entries.dtype == rebuilt.entries.dtype

    def test_graph_oriented_rows_are_sources(self):
        graph = small_graph()
        matrix = build_rereference_matrix(graph, elems_per_line=8)
        delta = random_delta(graph, 10, 10, seed=8)
        updated_graph = apply_delta(graph, delta)
        rebuilt = build_rereference_matrix(updated_graph, elems_per_line=8)
        incremental = update_rereference_matrix(
            matrix, updated_graph, delta.touched_sources()
        )
        assert np.array_equal(incremental.entries, rebuilt.entries)

    def test_empty_change_set_is_identity(self):
        graph = small_graph()
        matrix = build_rereference_matrix(graph, elems_per_line=8)
        result = update_rereference_matrix(
            matrix, graph, np.empty(0, dtype=np.int64)
        )
        assert result is matrix

    def test_vertex_count_mismatch_rejected(self):
        graph = small_graph()
        matrix = build_rereference_matrix(graph, elems_per_line=8)
        other = generators.uniform_random(128, avg_degree=4.0, seed=1)
        with pytest.raises(PolicyError, match="vertex"):
            update_rereference_matrix(matrix, other, np.array([0]))

    def test_out_of_range_element_rejected(self):
        graph = small_graph()
        matrix = build_rereference_matrix(graph, elems_per_line=8)
        with pytest.raises(PolicyError, match="vertex range"):
            update_rereference_matrix(
                matrix, graph, np.array([graph.num_vertices])
            )

    def test_readonly_entries_supported(self):
        # Matrices rehydrated from the artifact store are read-only
        # mmaps; the update must copy, not mutate in place.
        graph = small_graph()
        matrix = build_rereference_matrix(graph, elems_per_line=8)
        matrix.entries.setflags(write=False)
        delta = random_delta(graph, 5, 5, seed=2)
        updated_graph = apply_delta(graph, delta)
        incremental = update_rereference_matrix(
            matrix, updated_graph, delta.touched_sources()
        )
        rebuilt = build_rereference_matrix(updated_graph, elems_per_line=8)
        assert np.array_equal(incremental.entries, rebuilt.entries)


class TestDynamicSimulationSmoke:
    def test_epochs_drive_simulation(self):
        # One full dynamic-mode loop: simulate, mutate, re-simulate —
        # proving the epoch driver's graphs plug into the normal path.
        from repro.apps import PageRank
        from repro.cache import scaled_hierarchy
        from repro.sim import prepare_run, simulate_prepared

        graph = generators.uniform_random(1024, avg_degree=4.0, seed=4)
        hierarchy = scaled_hierarchy("tiny")
        dynamic = DynamicGraph(graph)
        miss_rates = []
        for seed in (1, 2):
            prepared = prepare_run(PageRank(), dynamic.graph)
            result = simulate_prepared(prepared, "LRU", hierarchy)
            miss_rates.append(result.llc_miss_rate)
            dynamic.apply(random_delta(dynamic.graph, 50, 50, seed=seed))
        assert len(miss_rates) == 2
        assert all(0.0 <= rate <= 1.0 for rate in miss_rates)
