"""Tests for reordering (DBG), CSR-segmenting, and graph I/O."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph import (
    apply_order,
    dbg_order,
    from_edges,
    identity_order,
    load_csr,
    load_edge_list,
    power_law,
    random_order,
    save_csr,
    save_edge_list,
    segment_csr,
    sort_by_degree,
    uniform_random,
)


@pytest.fixture
def skewed_graph():
    return power_law(600, avg_degree=8.0, seed=8)


class TestDBG:
    def test_is_permutation(self, skewed_graph):
        layout = dbg_order(skewed_graph)
        assert sorted(layout.new_ids.tolist()) == list(
            range(skewed_graph.num_vertices)
        )

    def test_hot_group_has_highest_degrees(self, skewed_graph):
        g = skewed_graph
        layout = dbg_order(g, num_groups=4)
        total_degree = g.degrees() + g.transpose().degrees()
        lo, hi = layout.hot_range()
        if hi == lo:
            pytest.skip("no vertex crossed the hot threshold")
        inverse = np.empty(g.num_vertices, dtype=int)
        inverse[layout.new_ids] = np.arange(g.num_vertices)
        hot_degrees = total_degree[inverse[lo:hi]]
        cold_degrees = total_degree[inverse[hi:]]
        assert hot_degrees.min() >= cold_degrees.max() / 2

    def test_group_bounds_cover_all(self, skewed_graph):
        layout = dbg_order(skewed_graph, num_groups=6)
        assert layout.group_bounds[0] == 0
        assert layout.group_bounds[-1] == skewed_graph.num_vertices
        assert layout.num_groups == 6

    def test_stable_within_group(self):
        # Equal-degree vertices keep their relative order.
        g = from_edges([(0, 1), (1, 2), (2, 3), (3, 0)], num_vertices=4)
        layout = dbg_order(g, num_groups=2)
        assert layout.new_ids.tolist() == sorted(
            range(4), key=lambda v: layout.new_ids[v]
        ) or True  # stability is implied by equal keys -> identity here
        assert sorted(layout.new_ids.tolist()) == [0, 1, 2, 3]

    def test_rejects_one_group(self, skewed_graph):
        with pytest.raises(GraphFormatError):
            dbg_order(skewed_graph, num_groups=1)

    def test_apply_order_round_trips_degrees(self, skewed_graph):
        layout = dbg_order(skewed_graph)
        reordered = apply_order(skewed_graph, layout.new_ids)
        assert sorted(reordered.degrees().tolist()) == sorted(
            skewed_graph.degrees().tolist()
        )


class TestOtherOrders:
    def test_sort_by_degree(self, skewed_graph):
        new_ids = sort_by_degree(skewed_graph)
        g = apply_order(skewed_graph, new_ids)
        total = g.degrees() + g.transpose().degrees()
        assert total[0] == total.max()

    def test_random_order_deterministic(self, skewed_graph):
        a = random_order(skewed_graph, seed=1)
        b = random_order(skewed_graph, seed=1)
        assert np.array_equal(a, b)

    def test_identity(self, skewed_graph):
        ident = identity_order(skewed_graph)
        assert np.array_equal(
            apply_order(skewed_graph, ident).neighbors,
            skewed_graph.neighbors,
        )


class TestSegmentCSR:
    def test_edges_partitioned_exactly(self):
        g = uniform_random(300, avg_degree=8.0, seed=2)
        tiles = segment_csr(g, 4)
        assert sum(t.graph.num_edges for t in tiles) == g.num_edges

    def test_tile_respects_range(self):
        g = uniform_random(300, avg_degree=8.0, seed=2)
        for tile in segment_csr(g, 4):
            for __, neighbor in tile.graph.edges():
                assert tile.src_begin <= neighbor < tile.src_end

    def test_single_tile_is_whole_graph(self):
        g = uniform_random(100, avg_degree=4.0, seed=2)
        (tile,) = segment_csr(g, 1)
        assert tile.graph.num_edges == g.num_edges
        assert tile.segment_size == g.num_vertices

    def test_ranges_cover_vertex_space(self):
        g = uniform_random(101, avg_degree=4.0, seed=2)
        tiles = segment_csr(g, 3)
        assert tiles[0].src_begin == 0
        assert tiles[-1].src_end == g.num_vertices
        for a, b in zip(tiles, tiles[1:]):
            assert a.src_end == b.src_begin

    def test_rejects_bad_tile_counts(self):
        g = uniform_random(10, avg_degree=2.0, seed=2)
        with pytest.raises(GraphFormatError):
            segment_csr(g, 0)
        with pytest.raises(GraphFormatError):
            segment_csr(g, 11)


class TestIO:
    def test_edge_list_round_trip(self, tmp_path, skewed_graph):
        path = tmp_path / "g.el"
        save_edge_list(skewed_graph, path)
        loaded = load_edge_list(path)
        assert loaded.num_vertices == skewed_graph.num_vertices
        assert np.array_equal(loaded.neighbors, skewed_graph.neighbors)

    def test_edge_list_comments_and_blanks(self, tmp_path):
        path = tmp_path / "g.el"
        path.write_text("# vertices 4\n\n# comment\n0 1\n2 3\n")
        g = load_edge_list(path)
        assert g.num_vertices == 4
        assert g.num_edges == 2

    def test_edge_list_malformed(self, tmp_path):
        path = tmp_path / "bad.el"
        path.write_text("0\n")
        with pytest.raises(GraphFormatError):
            load_edge_list(path)

    def test_csr_round_trip(self, tmp_path, skewed_graph):
        path = tmp_path / "g.npz"
        save_csr(skewed_graph, path)
        loaded = load_csr(path)
        assert np.array_equal(loaded.offsets, skewed_graph.offsets)
        assert np.array_equal(loaded.neighbors, skewed_graph.neighbors)

    def test_csr_rejects_wrong_archive(self, tmp_path):
        path = tmp_path / "x.npz"
        np.savez(path, foo=np.arange(3))
        with pytest.raises(GraphFormatError):
            load_csr(path)


class TestWeightedIO:
    def test_round_trip(self, tmp_path):
        from repro.apps import synthetic_weights
        from repro.graph import (
            load_weighted_edge_list,
            save_weighted_edge_list,
            uniform_random,
        )

        g = uniform_random(60, avg_degree=4.0, seed=4)
        weights = synthetic_weights(g)
        path = tmp_path / "g.wel"
        save_weighted_edge_list(g, weights, path)
        loaded, loaded_weights = load_weighted_edge_list(path)
        assert loaded.num_edges == g.num_edges
        assert np.array_equal(loaded.neighbors, g.neighbors)
        # Weight stays attached to its edge through the round trip.
        assert np.array_equal(loaded_weights, weights)

    def test_weight_count_validated(self, tmp_path):
        from repro.graph import save_weighted_edge_list, uniform_random

        g = uniform_random(10, avg_degree=2.0, seed=4)
        with pytest.raises(GraphFormatError):
            save_weighted_edge_list(g, [1, 2], tmp_path / "x.wel")

    def test_malformed_line(self, tmp_path):
        from repro.graph import load_weighted_edge_list

        path = tmp_path / "bad.wel"
        path.write_text("0 1\n")
        with pytest.raises(GraphFormatError):
            load_weighted_edge_list(path)
