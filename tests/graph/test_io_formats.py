"""Round-trip and corruption tests for the graph ingestion layer.

Property tests drive every on-disk format through save -> load and
require the loaded CSR arrays to be bit-identical to the original —
including duplicate edges, self loops, isolated max-ID vertices, empty
graphs, and weight-to-edge attachment across the CSR re-sort. The
corruption tests seed one specific violation per `load_csr` validation
rule and require a `GraphFormatError` naming the path.
"""

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphFormatError
from repro.graph import (
    CSRGraph,
    from_edges,
    from_edges_chunked,
    io,
)

DATA_DIR = os.path.join(os.path.dirname(__file__), "data")


@st.composite
def edge_sets(draw, max_vertices=24, max_edges=60):
    """Random directed multigraphs: duplicates and self loops included.

    ``num_vertices`` can exceed every endpoint, covering isolated
    trailing (max-ID) vertices; 0-vertex/0-edge graphs are generated
    too.
    """
    num_vertices = draw(st.integers(min_value=0, max_value=max_vertices))
    if num_vertices == 0:
        return 0, np.empty((0, 2), dtype=np.int64)
    pairs = draw(
        st.lists(
            st.tuples(
                st.integers(0, num_vertices - 1),
                st.integers(0, num_vertices - 1),
            ),
            max_size=max_edges,
        )
    )
    edges = (
        np.array(pairs, dtype=np.int64)
        if pairs
        else np.empty((0, 2), dtype=np.int64)
    )
    return num_vertices, edges


def assert_same_graph(loaded: CSRGraph, original: CSRGraph) -> None:
    assert np.array_equal(loaded.offsets, original.offsets)
    assert np.array_equal(loaded.neighbors, original.neighbors)
    assert loaded.offsets.dtype == original.offsets.dtype
    assert loaded.neighbors.dtype == original.neighbors.dtype


@settings(max_examples=40, deadline=None)
@given(edge_sets())
def test_edge_list_roundtrip(tmp_path_factory, data):
    num_vertices, edges = data
    graph = from_edges(edges, num_vertices=num_vertices)
    path = str(tmp_path_factory.mktemp("el") / "g.el")
    io.save_edge_list(graph, path)
    assert_same_graph(io.load_edge_list(path), graph)
    # Tiny chunk sizes force partial-line carries at every boundary.
    assert_same_graph(io.load_edge_list(path, chunk_bytes=5), graph)


@settings(max_examples=40, deadline=None)
@given(edge_sets(), st.randoms(use_true_random=False))
def test_weighted_roundtrip_preserves_attachment(
    tmp_path_factory, data, rnd
):
    num_vertices, edges = data
    graph = from_edges(edges, num_vertices=num_vertices)
    weights = np.array(
        [rnd.randint(0, 10_000) for _ in range(graph.num_edges)],
        dtype=np.int64,
    )
    path = str(tmp_path_factory.mktemp("wel") / "g.wel")
    io.save_weighted_edge_list(graph, weights, path)
    loaded, loaded_weights = io.load_weighted_edge_list(
        path, chunk_bytes=7
    )
    assert_same_graph(loaded, graph)
    # Weight i belongs to CSR edge i; the loader's re-sort must keep
    # each weight glued to its edge.
    assert np.array_equal(loaded_weights, weights)


@settings(max_examples=40, deadline=None)
@given(edge_sets())
def test_matrix_market_roundtrip(tmp_path_factory, data):
    num_vertices, edges = data
    graph = from_edges(edges, num_vertices=num_vertices)
    path = str(tmp_path_factory.mktemp("mtx") / "g.mtx")
    io.save_matrix_market(graph, path, comment="roundtrip")
    assert_same_graph(io.load_matrix_market(path, chunk_bytes=9), graph)


@settings(max_examples=40, deadline=None)
@given(edge_sets(), st.booleans())
def test_gap_binary_roundtrip(tmp_path_factory, data, include_transpose):
    num_vertices, edges = data
    graph = from_edges(edges, num_vertices=num_vertices)
    path = str(tmp_path_factory.mktemp("sg") / "g.sg")
    io.save_gap_binary(graph, path, include_transpose=include_transpose)
    assert_same_graph(io.load_gap_binary(path), graph)


@settings(max_examples=40, deadline=None)
@given(edge_sets())
def test_csr_archive_roundtrip(tmp_path_factory, data):
    num_vertices, edges = data
    graph = from_edges(edges, num_vertices=num_vertices)
    path = str(tmp_path_factory.mktemp("npz") / "g.npz")
    io.save_csr(graph, path)
    assert_same_graph(io.load_csr(path), graph)


@settings(max_examples=30, deadline=None)
@given(edge_sets(), st.integers(1, 6))
def test_chunked_builder_matches_from_edges(data, num_chunks):
    num_vertices, edges = data
    expected = from_edges(edges, num_vertices=num_vertices)
    splits = np.array_split(edges, num_chunks)
    built = from_edges_chunked(
        lambda: iter(splits), num_vertices=num_vertices
    )
    assert_same_graph(built, expected)


class TestLoadGraphDispatch:
    def test_dispatch_all_extensions(self, tmp_path):
        graph = from_edges([[0, 1], [1, 2], [2, 0]], num_vertices=4)
        savers = {
            ".el": io.save_edge_list,
            ".mtx": io.save_matrix_market,
            ".sg": io.save_gap_binary,
            ".npz": io.save_csr,
        }
        for ext, saver in savers.items():
            path = str(tmp_path / f"g{ext}")
            saver(graph, path)
            assert_same_graph(io.load_graph(path), graph)
        wel = str(tmp_path / "g.wel")
        io.save_weighted_edge_list(
            graph, np.arange(graph.num_edges), wel
        )
        assert_same_graph(io.load_graph(wel), graph)

    def test_missing_file(self, tmp_path):
        with pytest.raises(GraphFormatError, match="does not exist"):
            io.load_graph(str(tmp_path / "nope.el"))

    def test_unknown_extension(self, tmp_path):
        path = tmp_path / "g.gr"
        path.write_text("0 1\n")
        with pytest.raises(GraphFormatError, match="unsupported"):
            io.load_graph(str(path))


class TestSeparatorTolerance:
    def test_tabs_and_crlf(self, tmp_path):
        path = tmp_path / "g.el"
        path.write_bytes(b"# vertices 5\r\n0\t1\r\n2\t3\r\n")
        graph = io.load_edge_list(str(path))
        assert graph.num_vertices == 5
        assert graph.edge_array().tolist() == [[0, 1], [2, 3]]

    def test_mixed_separators_weighted(self, tmp_path):
        path = tmp_path / "g.wel"
        path.write_bytes(b"0\t1\t7\r\n1 0\t9\n")
        graph, weights = io.load_weighted_edge_list(str(path))
        assert graph.edge_array().tolist() == [[0, 1], [1, 0]]
        assert weights.tolist() == [7, 9]

    def test_directive_overrides_argument(self, tmp_path):
        path = tmp_path / "g.el"
        path.write_text("# vertices 9\n0 1\n")
        assert io.load_edge_list(str(path), num_vertices=4).num_vertices == 9

    def test_percent_comments_skipped(self, tmp_path):
        path = tmp_path / "g.el"
        path.write_text("% converter noise\n0 1\n")
        assert io.load_edge_list(str(path)).num_edges == 1


class TestMalformedText:
    def test_odd_tokens_points_at_line(self, tmp_path):
        path = tmp_path / "g.el"
        path.write_text("0 1\n0\n2 3\n")
        with pytest.raises(GraphFormatError, match=r"g\.el:2"):
            io.load_edge_list(str(path))

    def test_non_numeric_token(self, tmp_path):
        path = tmp_path / "g.el"
        path.write_text("0 x\n")
        with pytest.raises(GraphFormatError, match="non-numeric"):
            io.load_edge_list(str(path))

    def test_wel_wrong_arity(self, tmp_path):
        path = tmp_path / "g.wel"
        path.write_text("0 1\n")
        with pytest.raises(GraphFormatError, match="src dst weight"):
            io.load_weighted_edge_list(str(path))


class TestCorruptArchives:
    """One seeded violation per load_csr validation rule."""

    def _save(self, tmp_path, **arrays):
        path = str(tmp_path / "bad.npz")
        np.savez(path, **arrays)
        return path

    def test_missing_arrays(self, tmp_path):
        path = self._save(tmp_path, foo=np.arange(3))
        with pytest.raises(GraphFormatError, match="offsets/neighbors"):
            io.load_csr(path)

    def test_non_monotonic_offsets(self, tmp_path):
        path = self._save(
            tmp_path,
            offsets=np.array([0, 2, 1, 3]),
            neighbors=np.zeros(3, dtype=np.int32),
        )
        with pytest.raises(GraphFormatError, match="not monotonic"):
            io.load_csr(path)

    def test_offsets_end_mismatch(self, tmp_path):
        path = self._save(
            tmp_path,
            offsets=np.array([0, 1, 5]),
            neighbors=np.zeros(3, dtype=np.int32),
        )
        with pytest.raises(GraphFormatError, match="offsets end at 5"):
            io.load_csr(path)

    def test_offsets_not_starting_at_zero(self, tmp_path):
        path = self._save(
            tmp_path,
            offsets=np.array([1, 2]),
            neighbors=np.zeros(1, dtype=np.int32),
        )
        with pytest.raises(GraphFormatError, match="start at 0"):
            io.load_csr(path)

    def test_out_of_range_neighbor(self, tmp_path):
        path = self._save(
            tmp_path,
            offsets=np.array([0, 1, 2]),
            neighbors=np.array([0, 7], dtype=np.int32),
        )
        with pytest.raises(GraphFormatError, match="out of range"):
            io.load_csr(path)

    def test_negative_neighbor(self, tmp_path):
        path = self._save(
            tmp_path,
            offsets=np.array([0, 1, 2]),
            neighbors=np.array([0, -1], dtype=np.int32),
        )
        with pytest.raises(GraphFormatError, match="negative neighbor"):
            io.load_csr(path)

    def test_fractional_offsets(self, tmp_path):
        path = self._save(
            tmp_path,
            offsets=np.array([0.0, 0.5, 2.0]),
            neighbors=np.array([0, 1], dtype=np.int32),
        )
        with pytest.raises(GraphFormatError, match="fractional"):
            io.load_csr(path)

    def test_integral_float_offsets_coerce(self, tmp_path):
        path = self._save(
            tmp_path,
            offsets=np.array([0.0, 1.0, 2.0]),
            neighbors=np.array([1, 0], dtype=np.int64),
        )
        graph = io.load_csr(path)
        assert graph.offsets.dtype == np.int64
        assert graph.neighbors.dtype == np.int32

    def test_unsorted_archive_resorted(self, tmp_path):
        path = self._save(
            tmp_path,
            offsets=np.array([0, 2, 2]),
            neighbors=np.array([1, 0], dtype=np.int32),
        )
        assert io.load_csr(path).neighbors.tolist() == [0, 1]

    def test_truncated_zip(self, tmp_path):
        graph = from_edges([[0, 1], [1, 0]], num_vertices=2)
        path = str(tmp_path / "t.npz")
        io.save_csr(graph, path)
        blob = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(blob[: len(blob) // 2])
        with pytest.raises(GraphFormatError, match="unreadable"):
            io.load_csr(path)

    def test_error_names_the_path(self, tmp_path):
        path = self._save(
            tmp_path,
            offsets=np.array([0, 2, 1]),
            neighbors=np.zeros(1, dtype=np.int32),
        )
        with pytest.raises(GraphFormatError, match="bad.npz"):
            io.load_csr(path)


class TestCorruptGapBinary:
    def test_bad_flag(self, tmp_path):
        path = tmp_path / "g.sg"
        path.write_bytes(b"\x07" + b"\x00" * 64)
        with pytest.raises(GraphFormatError, match="directed flag"):
            io.load_gap_binary(str(path))

    def test_truncated(self, tmp_path):
        graph = from_edges([[0, 1], [1, 2]], num_vertices=3)
        path = str(tmp_path / "g.sg")
        io.save_gap_binary(graph, path)
        blob = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(blob[:21])
        with pytest.raises(GraphFormatError, match="truncated"):
            io.load_gap_binary(path)

    def test_out_of_range_neighbor_shares_validation(self, tmp_path):
        graph = from_edges([[0, 1], [1, 2]], num_vertices=3)
        path = str(tmp_path / "g.sg")
        io.save_gap_binary(graph, path, include_transpose=False)
        blob = bytearray(open(path, "rb").read())
        # Out-neighbors start after flag + 2 header ints + 4 offsets.
        start = 1 + 16 + 32
        bad = np.array([99], dtype="<i4").tobytes()
        blob[start:start + 4] = bad
        with open(path, "wb") as handle:
            handle.write(bytes(blob))
        with pytest.raises(GraphFormatError, match="out of range"):
            io.load_gap_binary(path)


class TestMatrixMarketEdgeCases:
    def test_symmetric_mirrors_off_diagonal(self, tmp_path):
        path = tmp_path / "s.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate pattern symmetric\n"
            "3 3 3\n2 1\n3 1\n2 2\n"
        )
        graph = io.load_matrix_market(str(path))
        assert sorted(map(tuple, graph.edge_array().tolist())) == [
            (0, 1), (0, 2), (1, 0), (1, 1), (2, 0),
        ]

    def test_real_values_dropped(self, tmp_path):
        path = tmp_path / "r.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real general\n"
            "3 3 2\n1 2 0.5\n3 1 -1e3\n"
        )
        graph = io.load_matrix_market(str(path))
        assert sorted(map(tuple, graph.edge_array().tolist())) == [
            (0, 1), (2, 0),
        ]

    def test_nnz_mismatch(self, tmp_path):
        path = tmp_path / "m.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate pattern general\n"
            "3 3 5\n1 2\n"
        )
        with pytest.raises(GraphFormatError, match="declares 5"):
            io.load_matrix_market(str(path))

    def test_missing_banner(self, tmp_path):
        path = tmp_path / "m.mtx"
        path.write_text("not a banner\n")
        with pytest.raises(GraphFormatError, match="banner"):
            io.load_matrix_market(str(path))

    def test_array_layout_rejected(self, tmp_path):
        path = tmp_path / "m.mtx"
        path.write_text(
            "%%MatrixMarket matrix array real general\n3 3\n1.0\n"
        )
        with pytest.raises(GraphFormatError, match="coordinate"):
            io.load_matrix_market(str(path))


class TestKarateSample:
    """The checked-in real-graph sample CI smokes against."""

    PATH = os.path.join(DATA_DIR, "karate.el")

    def test_loads_with_expected_shape(self):
        graph = io.load_graph(self.PATH)
        assert graph.num_vertices == 34
        assert graph.num_edges == 78

    def test_loads_identically_at_tiny_chunks(self):
        graph = io.load_edge_list(self.PATH)
        tiny = io.load_edge_list(self.PATH, chunk_bytes=3)
        assert_same_graph(tiny, graph)

    def test_datasets_file_spec(self):
        from repro.graph import datasets

        graph = datasets.load(f"file:{self.PATH}")
        assert graph.num_vertices == 34
