"""Documentation integrity: README snippets run, inventory files exist."""

import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).parent.parent


class TestReadme:
    @pytest.fixture(scope="class")
    def readme(self):
        return (ROOT / "README.md").read_text()

    @pytest.mark.slow
    def test_quickstart_snippet_runs(self, readme):
        blocks = re.findall(r"```python\n(.*?)```", readme, re.DOTALL)
        assert blocks, "README lost its quickstart snippet"
        exec(compile(blocks[0], "<README quickstart>", "exec"), {})

    def test_referenced_examples_exist(self, readme):
        for match in re.finditer(r"examples/(\w+)\.py", readme):
            assert (ROOT / "examples" / f"{match.group(1)}.py").exists(), (
                match.group(0)
            )

    def test_mentions_the_paper(self, readme):
        assert "HPCA" in readme
        assert "P-OPT" in readme


class TestDesignDoc:
    @pytest.fixture(scope="class")
    def design(self):
        return (ROOT / "DESIGN.md").read_text()

    def test_identity_check_present(self, design):
        assert "Paper identity check" in design

    def test_every_experiment_listed(self, design):
        for experiment in (
            "Fig. 2", "Fig. 4", "Fig. 7", "Fig. 10", "Fig. 11",
            "Fig. 12a", "Fig. 12b", "Fig. 13", "Fig. 14", "Fig. 15",
            "Fig. 16", "Table IV",
        ):
            assert experiment in design, experiment

    def test_referenced_modules_exist(self, design):
        for match in re.finditer(r"`(repro/[\w/]+\.py)`", design):
            assert (ROOT / "src" / match.group(1)).exists(), match.group(1)

    def test_referenced_benches_exist(self, design):
        for match in re.finditer(r"`benchmarks/(bench_\w+)\.py`", design):
            assert (
                ROOT / "benchmarks" / f"{match.group(1)}.py"
            ).exists(), match.group(1)


class TestInventory:
    def test_deliverables_present(self):
        for path in (
            "pyproject.toml",
            "README.md",
            "DESIGN.md",
            "examples/quickstart.py",
            "benchmarks/common.py",
        ):
            assert (ROOT / path).exists(), path

    def test_bench_per_figure(self):
        benches = {p.name for p in (ROOT / "benchmarks").glob("bench_*.py")}
        for figure in ("fig02", "fig04", "fig07", "fig10", "fig11",
                       "fig13", "fig14", "fig15", "fig16"):
            assert any(figure in name for name in benches), figure
        assert "bench_fig12_prior_work.py" in benches
        assert "bench_tables.py" in benches

    def test_at_least_three_examples(self):
        examples = list((ROOT / "examples").glob("*.py"))
        assert len(examples) >= 3
