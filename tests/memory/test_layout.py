"""Unit tests for the address-space layout."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LayoutError
from repro.memory import AddressSpace


class TestAlloc:
    def test_line_alignment(self):
        space = AddressSpace()
        a = space.alloc("a", 10, 32)
        b = space.alloc("b", 10, 32)
        assert a.base % 64 == 0
        assert b.base % 64 == 0

    def test_no_line_sharing(self):
        space = AddressSpace()
        a = space.alloc("a", 3, 32)  # 12 bytes -> 1 line
        b = space.alloc("b", 3, 32)
        assert b.base >= a.base + 64

    def test_duplicate_name_rejected(self):
        space = AddressSpace()
        space.alloc("a", 1, 32)
        with pytest.raises(LayoutError):
            space.alloc("a", 1, 32)

    def test_bad_sizes_rejected(self):
        space = AddressSpace()
        with pytest.raises(LayoutError):
            space.alloc("a", -1, 32)
        with pytest.raises(LayoutError):
            space.alloc("b", 1, 0)

    def test_bad_line_size_rejected(self):
        with pytest.raises(LayoutError):
            AddressSpace(line_size=48)

    def test_lookup(self):
        space = AddressSpace()
        span = space.alloc("data", 100, 32, irregular=True)
        assert space["data"] is span
        assert "data" in space
        with pytest.raises(LayoutError):
            space["missing"]

    def test_irregular_spans(self):
        space = AddressSpace()
        space.alloc("stream", 10, 32)
        irr = space.alloc("irr", 10, 32, irregular=True)
        assert space.irregular_spans == [irr]

    def test_span_of_addr(self):
        space = AddressSpace()
        a = space.alloc("a", 100, 32)
        b = space.alloc("b", 100, 32)
        assert space.span_of_addr(a.base + 50) is a
        assert space.span_of_addr(b.base) is b
        assert space.span_of_addr(b.bound + 1024) is None


class TestSpanGeometry:
    def test_byte_elements(self):
        space = AddressSpace()
        span = space.alloc("x", 100, 32)
        assert span.num_bytes == 400
        assert span.elems_per_line == 16
        assert span.num_lines == 7  # ceil(400/64)

    def test_bit_elements(self):
        # Frontier bit-vector: 512 vertices per 64 B line (Section IV-A).
        space = AddressSpace()
        span = space.alloc("frontier", 1000, 1)
        assert span.elems_per_line == 512
        assert span.num_lines == 2

    def test_addr_of_scalar_and_vector(self):
        space = AddressSpace()
        span = space.alloc("x", 100, 32)
        assert span.addr_of(0) == span.base
        assert span.addr_of(16) == span.base + 64
        addrs = span.addr_of(np.array([0, 1, 16]))
        assert addrs.tolist() == [span.base, span.base + 4, span.base + 64]

    def test_bit_addressing(self):
        space = AddressSpace()
        span = space.alloc("bits", 1024, 1)
        assert span.addr_of(0) == span.base
        assert span.addr_of(7) == span.base
        assert span.addr_of(8) == span.base + 1
        assert span.line_of(511) == 0
        assert span.line_of(512) == 1

    def test_line_id_of_addr_is_engine_arithmetic(self):
        # cachelineID = (addr - irreg_base) / 64 (Section V-C).
        space = AddressSpace()
        span = space.alloc("x", 1000, 32)
        assert span.line_id_of_addr(span.base) == 0
        assert span.line_id_of_addr(span.base + 65) == 1

    def test_contains(self):
        space = AddressSpace()
        span = space.alloc("x", 16, 32)
        assert span.contains(span.base)
        assert span.contains(span.bound - 1)
        assert not span.contains(span.bound)
        assert not span.contains(span.base - 1)

    @given(
        st.integers(1, 5000),
        st.sampled_from([1, 8, 32, 64]),
    )
    @settings(max_examples=60, deadline=None)
    def test_line_count_consistency(self, num_elems, elem_bits):
        space = AddressSpace()
        span = space.alloc("x", num_elems, elem_bits)
        # Every element's line index must be < num_lines.
        last_line = span.line_of(num_elems - 1)
        assert last_line < span.num_lines
        assert span.num_lines * 64 >= span.num_bytes

    def test_total_bytes(self):
        space = AddressSpace()
        space.alloc("a", 16, 32)  # 1 line
        space.alloc("b", 17, 32)  # 2 lines
        assert space.total_bytes() == 3 * 64
