"""Unit tests for memory traces."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.memory import MemoryTrace, TraceBuilder, concat_traces


def make_trace(addresses, pcs=None, writes=None, vertices=None):
    n = len(addresses)
    return MemoryTrace(
        addresses=np.asarray(addresses, np.int64),
        pcs=np.asarray(pcs if pcs is not None else [1] * n, np.uint8),
        writes=np.asarray(writes if writes is not None else [False] * n),
        vertices=np.asarray(
            vertices if vertices is not None else [0] * n, np.int32
        ),
    )


class TestMemoryTrace:
    def test_length_and_iteration(self):
        t = make_trace([64, 128, 64])
        assert len(t) == 3
        entries = list(t)
        assert entries[0] == (64, 1, False, 0)

    def test_channel_mismatch_rejected(self):
        with pytest.raises(SimulationError):
            MemoryTrace(
                addresses=np.array([1, 2]),
                pcs=np.array([1], np.uint8),
                writes=np.array([False, False]),
                vertices=np.array([0, 0], np.int32),
            )

    def test_slice(self):
        t = make_trace([0, 64, 128, 192])
        s = t.slice(1, 3)
        assert s.addresses.tolist() == [64, 128]

    def test_line_addresses(self):
        t = make_trace([0, 63, 64, 130])
        assert t.line_addresses().tolist() == [0, 0, 1, 2]

    def test_stats(self):
        t = make_trace([0, 64, 128], pcs=[1, 2, 2])
        assert t.stats() == {1: 1, 2: 2}

    def test_empty(self):
        t = TraceBuilder().build()
        assert len(t) == 0
        assert t.next_use_indices().size == 0


class TestNextUse:
    def test_basic(self):
        # lines: A B A B -> next uses: 2, 3, inf, inf
        t = make_trace([0, 64, 0, 64])
        assert t.next_use_indices().tolist() == [2, 3, 4, 4]

    def test_same_line_different_bytes(self):
        t = make_trace([0, 32, 100])
        # 0 and 32 share line 0.
        assert t.next_use_indices().tolist() == [1, 3, 3]

    @given(st.lists(st.integers(0, 6), min_size=1, max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_matches_forward_scan(self, line_ids):
        t = make_trace([line * 64 for line in line_ids])
        next_use = t.next_use_indices()
        n = len(line_ids)
        for i in range(n):
            expected = n
            for j in range(i + 1, n):
                if line_ids[j] == line_ids[i]:
                    expected = j
                    break
            assert next_use[i] == expected


class TestTraceBuilder:
    def test_chunks_in_order(self):
        builder = TraceBuilder()
        builder.append_chunk(np.array([0, 64]), pc=1, write=False, vertex=0)
        builder.append_chunk(np.array([128]), pc=2, write=True, vertex=5)
        t = builder.build()
        assert t.addresses.tolist() == [0, 64, 128]
        assert t.pcs.tolist() == [1, 1, 2]
        assert bool(t.writes[2])
        assert t.vertices.tolist() == [0, 0, 5]

    def test_scalar_append(self):
        builder = TraceBuilder()
        builder.append_access(4096, pc=3, write=False, vertex=7)
        t = builder.build()
        assert len(t) == 1
        assert t.vertices[0] == 7

    def test_broadcast_arrays(self):
        builder = TraceBuilder()
        builder.append_chunk(
            np.array([0, 64, 128]),
            pc=np.uint8(2),
            write=np.array([True, False, True]),
            vertex=np.array([1, 2, 3], np.int32),
        )
        t = builder.build()
        assert t.writes.tolist() == [True, False, True]
        assert t.vertices.tolist() == [1, 2, 3]


class TestConcat:
    def test_concat(self):
        a = make_trace([0], vertices=[1])
        b = make_trace([64], vertices=[2])
        t = concat_traces([a, b])
        assert t.addresses.tolist() == [0, 64]
        assert t.vertices.tolist() == [1, 2]

    def test_concat_empty_list(self):
        assert len(concat_traces([])) == 0


class TestSerialization:
    def test_round_trip(self, tmp_path):
        t = make_trace([0, 64, 128], pcs=[1, 2, 3], writes=[True, False, True],
                       vertices=[7, 8, 9])
        path = tmp_path / "trace.npz"
        t.save(path)
        loaded = MemoryTrace.load(path)
        assert np.array_equal(loaded.addresses, t.addresses)
        assert np.array_equal(loaded.pcs, t.pcs)
        assert np.array_equal(loaded.writes, t.writes)
        assert np.array_equal(loaded.vertices, t.vertices)

    def test_rejects_foreign_archive(self, tmp_path):
        path = tmp_path / "x.npz"
        np.savez(path, foo=np.arange(3))
        with pytest.raises(SimulationError):
            MemoryTrace.load(path)


class TestPickle:
    def test_pickle_drops_decode_memo(self):
        import pickle

        from repro.memory.trace import decode_trace

        t = make_trace(
            list(range(0, 64 * 4096, 64)),
            writes=[i % 3 == 0 for i in range(4096)],
        )
        baseline = len(pickle.dumps(t))
        # Decode twice (two line sizes) and materialize the list views —
        # the memo now dwarfs the channels themselves.
        for shift in (6, 7):
            decode_trace(t, shift).as_lists()
        assert hasattr(t, "_decoded")
        blob = pickle.dumps(t)
        # The pickle carries only the four channels: same size as before
        # the decode (small slack for protocol framing noise).
        assert len(blob) <= baseline + 256
        restored = pickle.loads(blob)
        assert not hasattr(restored, "_decoded")
        assert np.array_equal(restored.addresses, t.addresses)
        assert np.array_equal(restored.pcs, t.pcs)
        assert np.array_equal(restored.writes, t.writes)
        assert np.array_equal(restored.vertices, t.vertices)
        # The restored trace decodes fresh and correctly.
        decoded = decode_trace(restored, 6)
        assert np.array_equal(decoded.lines, restored.addresses >> 6)

    def test_channel_lists_memoized_per_channel(self):
        from repro.memory.trace import decode_trace

        t = make_trace([0, 64, 128, 64])
        decoded = decode_trace(t, 6)
        (lines,) = decoded.channel_lists("lines")
        assert lines == [0, 1, 2, 1]
        # Only the requested channel is materialized...
        assert set(decoded._channel_lists) == {"lines"}
        # ...and repeated requests share the same list object.
        assert decoded.channel_lists("lines")[0] is lines
        assert decoded.as_lists()[0] is lines
