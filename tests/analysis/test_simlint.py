"""Mutation tests for simlint: seed one bug per rule, assert it fires.

Each test writes a small module to ``tmp_path`` containing exactly the
defect class a rule exists for, runs :func:`repro.analysis.run_simlint`
over it, and asserts the expected rule (and only sensible rules) fired.
The final tests pin the contract the CI lint job relies on: the shipped
tree itself lints clean.
"""

from pathlib import Path
from textwrap import dedent

import pytest

from repro.analysis import (
    DEFAULT_REPLAY_PATH,
    RULE_FAMILIES,
    SimlintConfig,
    main,
    run_simlint,
)
from repro.analysis.findings import Finding, format_findings

SRC_REPRO = Path(__file__).resolve().parents[2] / "src" / "repro"


def lint_source(tmp_path, source, families=RULE_FAMILIES, replay_path=None):
    """Write ``source`` as one module and return the finding rules."""
    module = tmp_path / "mod.py"
    module.write_text(dedent(source))
    config = SimlintConfig(
        families=families,
        replay_path=(
            replay_path if replay_path is not None else DEFAULT_REPLAY_PATH
        ),
    )
    return run_simlint([module], config)


def rules_of(findings):
    return {finding.rule for finding in findings}


# ----------------------------------------------------------------------
# policy: ReplacementPolicy contract conformance
# ----------------------------------------------------------------------


class TestPolicyContract:
    def test_mutable_class_default(self, tmp_path):
        findings = lint_source(tmp_path, """
            from repro.policies.base import ReplacementPolicy

            class Buggy(ReplacementPolicy):
                name = "Buggy"
                table = []

                def choose_victim(self, set_idx, ctx):
                    return 0
        """)
        assert "policy-mutable-class-default" in rules_of(findings)

    def test_mutable_default_via_constructor_call(self, tmp_path):
        findings = lint_source(tmp_path, """
            import collections
            from repro.policies.base import ReplacementPolicy

            class Buggy(ReplacementPolicy):
                name = "Buggy"
                history = collections.defaultdict(list)

                def choose_victim(self, set_idx, ctx):
                    return 0
        """)
        assert "policy-mutable-class-default" in rules_of(findings)

    def test_missing_choose_victim(self, tmp_path):
        findings = lint_source(tmp_path, """
            from repro.policies.base import ReplacementPolicy

            class Buggy(ReplacementPolicy):
                name = "Buggy"
        """)
        assert "policy-missing-victim" in rules_of(findings)

    def test_missing_name(self, tmp_path):
        findings = lint_source(tmp_path, """
            from repro.policies.base import ReplacementPolicy

            class Buggy(ReplacementPolicy):
                def choose_victim(self, set_idx, ctx):
                    return 0
        """)
        assert "policy-name-missing" in rules_of(findings)

    def test_duplicate_names(self, tmp_path):
        findings = lint_source(tmp_path, """
            from repro.policies.base import ReplacementPolicy

            class One(ReplacementPolicy):
                name = "Twin"

                def choose_victim(self, set_idx, ctx):
                    return 0

            class Two(ReplacementPolicy):
                name = "Twin"

                def choose_victim(self, set_idx, ctx):
                    return 1
        """)
        assert "policy-name-duplicate" in rules_of(findings)

    def test_per_set_state_in_init(self, tmp_path):
        findings = lint_source(tmp_path, """
            from repro.policies.base import ReplacementPolicy

            class Buggy(ReplacementPolicy):
                name = "Buggy"

                def __init__(self):
                    super().__init__()
                    self.bits = [[0] * self.num_ways
                                 for _ in range(self.num_sets)]

                def choose_victim(self, set_idx, ctx):
                    return 0
        """)
        assert "policy-init-set-state" in rules_of(findings)

    def test_indirect_subclass_is_checked(self, tmp_path):
        """The contract applies through intermediate base classes."""
        findings = lint_source(tmp_path, """
            from repro.policies.base import ReplacementPolicy

            class _Shared(ReplacementPolicy):
                pass

            class Buggy(_Shared):
                name = "Buggy"
        """)
        assert "policy-missing-victim" in rules_of(findings)

    def test_abstract_underscore_class_exempt(self, tmp_path):
        """_-prefixed helpers need no name/choose_victim of their own."""
        findings = lint_source(tmp_path, """
            from repro.policies.base import ReplacementPolicy

            class _Base(ReplacementPolicy):
                pass
        """)
        assert rules_of(findings) == set()

    def test_conforming_policy_is_clean(self, tmp_path):
        findings = lint_source(tmp_path, """
            from repro.policies.base import ReplacementPolicy

            class Fine(ReplacementPolicy):
                name = "Fine"

                def reset(self):
                    self.stack = [
                        list(range(self.num_ways))
                        for _ in range(self.num_sets)
                    ]

                def choose_victim(self, set_idx, ctx):
                    return self.stack[set_idx][0]
        """)
        assert rules_of(findings) == set()


# ----------------------------------------------------------------------
# determinism
# ----------------------------------------------------------------------


class TestDeterminism:
    def test_unseeded_random(self, tmp_path):
        findings = lint_source(tmp_path, """
            import random

            def choose(ways):
                return random.randrange(ways)
        """)
        assert "determinism-random" in rules_of(findings)

    def test_unseeded_numpy_default_rng(self, tmp_path):
        findings = lint_source(tmp_path, """
            import numpy as np

            def noise():
                return np.random.default_rng().integers(10)
        """)
        assert "determinism-random" in rules_of(findings)

    def test_seeded_rng_is_clean(self, tmp_path):
        findings = lint_source(tmp_path, """
            import numpy as np

            def noise(seed):
                return np.random.default_rng(seed).integers(10)
        """)
        assert "determinism-random" not in rules_of(findings)

    def test_wall_clock(self, tmp_path):
        findings = lint_source(tmp_path, """
            import time

            def stamp(result):
                result["when"] = time.time()
        """)
        assert "determinism-time" in rules_of(findings)

    def test_set_iteration_order(self, tmp_path):
        findings = lint_source(tmp_path, """
            def drain(pending):
                live = {1, 2, 3}
                order = []
                for item in live:
                    order.append(item)
                return order
        """)
        assert "determinism-set-order" in rules_of(findings)

    def test_sorted_set_iteration_is_clean(self, tmp_path):
        findings = lint_source(tmp_path, """
            def drain(pending):
                live = {1, 2, 3}
                order = []
                for item in sorted(live):
                    order.append(item)
                return order
        """)
        assert "determinism-set-order" not in rules_of(findings)


# ----------------------------------------------------------------------
# hotpath
# ----------------------------------------------------------------------


class TestHotPath:
    def test_tolist_in_replay_function(self, tmp_path):
        findings = lint_source(tmp_path, """
            def replay(trace):
                lines = trace.lines.tolist()
                return lines
        """)
        assert "hotpath-tolist" in rules_of(findings)

    def test_scalar_boxing_in_loop(self, tmp_path):
        findings = lint_source(tmp_path, """
            def replay(lines):
                total = 0
                for line in lines:
                    total += int(line)
                return total
        """)
        assert "hotpath-scalar-box" in rules_of(findings)

    def test_append_in_loop(self, tmp_path):
        findings = lint_source(tmp_path, """
            def replay(lines):
                out = []
                for line in lines:
                    out.append(line)
                return out
        """)
        assert "hotpath-append" in rules_of(findings)

    def test_only_replay_path_functions_are_checked(self, tmp_path):
        findings = lint_source(tmp_path, """
            def summarize(rows):
                out = []
                for row in rows:
                    out.append(int(row))
                return out
        """)
        assert rules_of(findings) == set()

    def test_replay_path_override(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            def summarize(rows):
                out = []
                for row in rows:
                    out.append(row)
                return out
            """,
            replay_path=frozenset({"summarize"}),
        )
        assert "hotpath-append" in rules_of(findings)

    def test_method_qualified_name(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            class Engine:
                def run(self, lines):
                    out = []
                    for line in lines:
                        out.append(line)
                    return out
            """,
            replay_path=frozenset({"Engine.run"}),
        )
        assert "hotpath-append" in rules_of(findings)


# ----------------------------------------------------------------------
# pragmas
# ----------------------------------------------------------------------


class TestPragmas:
    def test_same_line_pragma_suppresses(self, tmp_path):
        findings = lint_source(tmp_path, """
            import time

            def stamp(result):
                result["when"] = time.time()  # simlint: allow[determinism-time]
        """)
        assert rules_of(findings) == set()

    def test_standalone_pragma_covers_next_line(self, tmp_path):
        findings = lint_source(tmp_path, """
            import time

            def stamp(result):
                # simlint: allow[determinism-time]
                result["when"] = time.time()
        """)
        assert rules_of(findings) == set()

    def test_family_prefix_pragma(self, tmp_path):
        findings = lint_source(tmp_path, """
            import time

            def stamp(result):
                result["when"] = time.time()  # simlint: allow[determinism]
        """)
        assert rules_of(findings) == set()

    def test_pragma_for_other_rule_does_not_suppress(self, tmp_path):
        findings = lint_source(tmp_path, """
            import time

            def stamp(result):
                result["when"] = time.time()  # simlint: allow[hotpath]
        """)
        assert "determinism-time" in rules_of(findings)

    def test_multiple_rules_in_one_pragma(self, tmp_path):
        findings = lint_source(tmp_path, """
            import random
            import time

            def stamp(result):
                result["when"] = time.time()  # simlint: allow[determinism-time, determinism-random]
                result["salt"] = random.random()  # simlint: allow[determinism-random, determinism-time]
        """)
        assert rules_of(findings) == set()

    def test_pragma_on_multiline_statement_anchors_offending_line(
        self, tmp_path
    ):
        # Inside a multi-line statement the pragma must sit on the line
        # the finding anchors to — the offending expression's own line —
        # not on the statement's opening or closing line.
        findings = lint_source(tmp_path, """
            import time

            def stamp(result):
                result["when"] = (
                    time.time()  # simlint: allow[determinism-time]
                )
        """)
        assert rules_of(findings) == set()
        findings = lint_source(tmp_path, """
            import time

            def stamp(result):
                result["when"] = (
                    time.time()
                )  # simlint: allow[determinism-time]
        """)
        assert "determinism-time" in rules_of(findings)

    def test_unknown_rule_pragma_is_flagged(self, tmp_path):
        findings = lint_source(tmp_path, """
            def f():
                return 1  # simlint: allow[no-such-rule]
        """)
        assert rules_of(findings) == {"pragma-unknown"}
        assert "no-such-rule" in findings[0].message

    def test_known_rule_and_star_pragmas_are_not_flagged(self, tmp_path):
        findings = lint_source(tmp_path, """
            def f():
                return 1  # simlint: allow[determinism-time]

            def g():
                return 2  # simlint: allow[*]
        """)
        assert rules_of(findings) == set()

    def test_pragma_syntax_in_docstring_is_not_validated(self, tmp_path):
        # Docstrings documenting the pragma syntax are prose, not
        # suppressions — only real comments are validated.
        findings = lint_source(tmp_path, '''
            def f():
                """Use ``# simlint: allow[made-up-rule]`` to suppress."""
                return 1
        ''')
        assert rules_of(findings) == set()


# ----------------------------------------------------------------------
# registry drift (runs against the real registry)
# ----------------------------------------------------------------------


class TestRegistryDrift:
    POLICIES_DIR = SRC_REPRO / "policies"

    def lint_registry(self):
        return run_simlint(
            [self.POLICIES_DIR], SimlintConfig(families=("registry",))
        )

    def test_real_registry_is_clean(self):
        assert self.lint_registry() == []

    def test_broken_factory_is_reported(self, monkeypatch):
        from repro.policies import registry

        def broken(ctx):
            raise ValueError("intentionally broken")

        monkeypatch.setitem(registry._FACTORIES, "ZZZ-Broken", broken)
        findings = self.lint_registry()
        assert "registry-construct" in rules_of(findings)
        assert any("ZZZ-Broken" in f.message for f in findings)

    def test_factory_returning_non_policy_is_reported(self, monkeypatch):
        from repro.policies import registry

        monkeypatch.setitem(
            registry._FACTORIES, "ZZZ-Object", lambda ctx: object()
        )
        findings = self.lint_registry()
        assert "registry-construct" in rules_of(findings)

    def test_unregistered_class_is_reported(self, monkeypatch):
        from repro.policies import registry

        # Dropping LRU's registration leaves the class orphaned.
        factories = dict(registry._FACTORIES)
        del factories["LRU"]
        monkeypatch.setattr(registry, "_FACTORIES", factories)
        findings = self.lint_registry()
        assert "registry-unreachable" in rules_of(findings)
        assert any("LRU" in f.message for f in findings)

    def test_skipped_when_registry_not_scanned(self, tmp_path):
        module = tmp_path / "mod.py"
        module.write_text("x = 1\n")
        assert run_simlint(
            [module], SimlintConfig(families=("registry",))
        ) == []


# ----------------------------------------------------------------------
# runner / CLI
# ----------------------------------------------------------------------


class TestRunner:
    def test_parse_error_is_a_finding(self, tmp_path):
        module = tmp_path / "broken.py"
        module.write_text("def oops(:\n")
        findings = run_simlint([module])
        assert rules_of(findings) == {"parse-error"}

    def test_findings_sorted_and_formatted(self):
        findings = [
            Finding(rule="b", path="z.py", line=2, message="two"),
            Finding(rule="a", path="a.py", line=9, message="one"),
        ]
        text = format_findings(findings)
        assert text.splitlines() == [
            "a.py:9: [a] one",
            "z.py:2: [b] two",
        ]

    def test_main_exit_one_on_findings(self, tmp_path, capsys):
        module = tmp_path / "mod.py"
        module.write_text("import time\n\ndef f():\n    return time.time()\n")
        assert main([str(module)]) == 1
        out = capsys.readouterr().out
        assert "determinism-time" in out

    def test_main_skip_family(self, tmp_path, capsys):
        module = tmp_path / "mod.py"
        module.write_text("import time\n\ndef f():\n    return time.time()\n")
        assert main([str(module), "--skip", "determinism"]) == 0

    def test_main_disable_abi_round_trip(self, tmp_path, capsys):
        # A sim/ directory whose ckernels.py names a kernel with no
        # kernels.c at all: the abi family reports it, and
        # ``--disable abi`` (the CI spelling, alias of --skip) makes
        # the same tree lint clean.
        sim = tmp_path / "sim"
        sim.mkdir()
        (sim / "ckernels.py").write_text(
            "import ctypes\n\n_I64P = ctypes.POINTER(ctypes.c_longlong)"
            "\n\n_SIGNATURES = {\n    \"k_ghost\": [_I64P],\n}\n"
        )
        assert main([str(sim)]) == 1
        out = capsys.readouterr().out
        assert "[abi-parse]" in out
        assert "ckernels:" in out
        assert main([str(sim), "--disable", "abi", "--quiet"]) == 0
        assert capsys.readouterr().out == ""

    def test_main_exit_zero_on_clean_tree(self, capsys):
        """The shipped package lints clean — the CI lint job's contract."""
        assert main([str(SRC_REPRO)]) == 0
        out = capsys.readouterr().out
        assert "simlint: OK" in out
        assert "ckernels:" in out

    def test_run_simlint_clean_on_shipped_tree(self):
        assert run_simlint([SRC_REPRO]) == []

    def test_findings_are_diff_stable(self, tmp_path):
        """Multi-family output is totally ordered by (path, line, rule,
        message) and exact duplicates collapse, so re-running with a
        different family order can never reshuffle a CI diff."""
        for name, body in (
            ("b_mod.py", "import time\n\ndef f():\n"
                         "    return time.time()\n"),
            ("a_mod.py", "import time, random\n\ndef g():\n"
                         "    return time.time() + random.random()\n"),
        ):
            (tmp_path / name).write_text(body)
        first = run_simlint([tmp_path])
        # Scanning the same files twice (overlapping path arguments)
        # must not duplicate findings.
        again = run_simlint([tmp_path, tmp_path / "a_mod.py"])
        assert first == again
        keys = [(f.path, f.line, f.rule, f.message) for f in first]
        assert keys == sorted(keys)
        assert len(keys) == len(set(keys))

    def test_same_site_distinct_messages_survive(self):
        """Dedup is exact-identity: two findings differing only in
        message (one abi-signature per mismatched argument) both
        survive."""
        from repro.analysis.runner import _stable_findings

        pair = [
            Finding(rule="r", path="p.py", line=3, message="argument 1"),
            Finding(rule="r", path="p.py", line=3, message="argument 0"),
            Finding(rule="r", path="p.py", line=3, message="argument 0"),
        ]
        stable = _stable_findings(pair)
        assert [f.message for f in stable] == ["argument 0", "argument 1"]

    def test_main_json_output(self, tmp_path, capsys):
        import json

        module = tmp_path / "mod.py"
        module.write_text("import time\n\ndef f():\n    return time.time()\n")
        assert main([str(module), "--json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["counts"]["determinism"] >= 1
        assert report["scanned_files"] == 1
        (finding,) = [
            f for f in report["findings"]
            if f["rule"] == "determinism-time"
        ]
        assert finding["family"] == "determinism"
        assert finding["path"].endswith("mod.py")
        assert isinstance(finding["line"], int)
        assert "message" in finding

    def test_main_json_clean_tree_exits_zero(self, tmp_path, capsys):
        import json

        module = tmp_path / "mod.py"
        module.write_text("x = 1\n")
        assert main([str(module), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["findings"] == []
        assert report["counts"] == {}


# ----------------------------------------------------------------------
# kernels: replay-kernel dispatch coverage and loop hygiene
# ----------------------------------------------------------------------


KERNEL_FIXTURE_LOOPY = """
    def kernel_lru(req):
        total = 0
        for count in req.counts:
            chunk = req.lines[:count].tolist()
            total += len(chunk)
        return total
"""


class TestKernelRules:
    def write_kernels(self, tmp_path, source):
        module = tmp_path / "kernels.py"
        module.write_text(dedent(source))
        return run_simlint([module], SimlintConfig(families=("kernels",)))

    def test_tolist_inside_kernel_loop_fires(self, tmp_path):
        findings = self.write_kernels(tmp_path, KERNEL_FIXTURE_LOOPY)
        assert rules_of(findings) == {"hotpath-tolist"}

    def test_preamble_tolist_is_allowed(self, tmp_path):
        findings = self.write_kernels(tmp_path, """
            def kernel_lru(req):
                lines = req.lines.tolist()   # once, outside the loop
                total = 0
                for line in lines:
                    total += line
                return total
        """)
        assert findings == []

    def test_append_inside_kernel_loop_fires(self, tmp_path):
        findings = self.write_kernels(tmp_path, """
            def kernel_opt(req):
                out = []
                for line in req.lines:
                    out.append(line)
                return out
        """)
        assert rules_of(findings) == {"hotpath-append"}

    def test_pragma_suppresses(self, tmp_path):
        findings = self.write_kernels(tmp_path, """
            def kernel_srrip(req):
                out = []
                for line in req.lines:
                    out.append(line)  # simlint: allow[hotpath-append]
                return out
        """)
        assert findings == []

    def test_scope_is_kernels_modules_only(self, tmp_path):
        # The same defect in a module not named kernels.py is hotpath's
        # (replay-path-configured) business, not the kernels family's.
        module = tmp_path / "mod.py"
        module.write_text(dedent(KERNEL_FIXTURE_LOOPY))
        findings = run_simlint(
            [module], SimlintConfig(families=("kernels",))
        )
        assert findings == []

    def test_non_kernel_functions_not_scanned(self, tmp_path):
        findings = self.write_kernels(tmp_path, """
            def helper(req):
                out = []
                for line in req.lines:
                    out.append(line)
                return out
        """)
        assert findings == []

    def test_kernel_resolve_fires_on_drift(self, monkeypatch):
        # Dropping a KERNEL_TABLE entry a policy still advertises must
        # produce kernel-resolve findings on the real module.
        from repro.sim import kernels as kernels_module

        monkeypatch.delitem(kernels_module.KERNEL_TABLE, "lru")
        findings = run_simlint(
            [SRC_REPRO / "sim" / "kernels.py"],
            SimlintConfig(families=("kernels",)),
        )
        assert "kernel-resolve" in rules_of(findings)

    def test_real_kernels_module_resolves_clean(self):
        findings = run_simlint(
            [SRC_REPRO / "sim" / "kernels.py"],
            SimlintConfig(families=("kernels",)),
        )
        assert findings == []


# ----------------------------------------------------------------------
# spec-coverage: figure harnesses must be spec-backed or opted out
# ----------------------------------------------------------------------


class TestSpecCoverage:
    SIM_DIR = SRC_REPRO / "sim"

    def lint_speccov(self, paths):
        return run_simlint(
            paths, SimlintConfig(families=("spec-coverage",))
        )

    def lint_synthetic(self, tmp_path, source):
        """Write ``source`` as a fake ``sim/experiments.py`` and lint."""
        sim_dir = tmp_path / "sim"
        sim_dir.mkdir()
        module = sim_dir / "experiments.py"
        module.write_text(dedent(source))
        return self.lint_speccov([module])

    def test_real_experiments_module_is_clean(self):
        assert self.lint_speccov([self.SIM_DIR / "experiments.py"]) == []

    def test_unregistered_harness_is_reported(self, tmp_path):
        findings = self.lint_synthetic(tmp_path, """
            def fig99_new_sweep(scale="small"):
                return []
        """)
        assert "spec-coverage-unregistered" in rules_of(findings)
        assert any("fig99_new_sweep" in f.message for f in findings)

    def test_pragma_opts_harness_out(self, tmp_path):
        findings = self.lint_synthetic(tmp_path, """
            # Hand-rolled on purpose: wall-clock measurement.
            # simlint: allow[spec-coverage]
            def fig99_new_sweep(scale="small"):
                return []
        """)
        assert "spec-coverage-unregistered" not in rules_of(findings)

    def test_non_harness_functions_ignored(self, tmp_path):
        findings = self.lint_synthetic(tmp_path, """
            def helper_rows(scale="small"):
                return []
        """)
        assert "spec-coverage-unregistered" not in rules_of(findings)

    def test_stale_registration_is_reported(self, monkeypatch):
        from repro.sim import spec

        monkeypatch.setitem(
            spec.SPEC_HARNESSES, "fig99_ghost", lambda: None
        )
        findings = self.lint_speccov([self.SIM_DIR / "experiments.py"])
        assert "spec-coverage-registry" in rules_of(findings)
        assert any("fig99_ghost" in f.message for f in findings)

    def test_skipped_when_experiments_not_scanned(self, tmp_path):
        module = tmp_path / "mod.py"
        module.write_text("def fig99_new_sweep():\n    return []\n")
        assert self.lint_speccov([module]) == []
