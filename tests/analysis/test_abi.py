"""Mutation tests for the ``abi`` family: seed one drift per rule.

Each test starts from a known-good four-file fixture (``kernels.c``,
``ckernels.py``, ``kernels.py``, ``constants.py`` under a ``sim/``
directory, mirroring the shipped layout) that lints clean, applies
exactly one ABI drift, and asserts the expected ``abi-*`` rule fires
with a file/line finding. The final tests pin the shipped tree clean
under the family.
"""

from pathlib import Path
from textwrap import dedent

from repro.analysis import SimlintConfig, run_simlint

SRC_REPRO = Path(__file__).resolve().parents[2] / "src" / "repro"

C_BASE = """\
#include <stdint.h>

typedef int64_t i64;
typedef uint8_t u8;

#define TOPT_NEVER ((i64)1 << 40)
#define RM_VARIANT_INTER_ONLY 0

static i64 clamp(i64 x, i64 hi)
{
    return x < hi ? x : hi;
}

void k_lru(const i64 *lines, const u8 *writes, i64 n,
           i64 *ws, i64 *out)
{
    i64 k;
    ws[0] = 0;
    for (k = 0; k < n; k++)
        ws[0] += lines[k] + (i64)writes[k];
    out[0] = clamp(ws[0], TOPT_NEVER);
}

void k_opt(const i64 *lines, const u8 *writes, i64 n, double scale,
           const double *draws, i64 *ws, i64 *out)
{
    i64 k;
    ws[0] = RM_VARIANT_INTER_ONLY;
    for (k = 0; k < n; k++)
        ws[0] += lines[k] + (i64)(scale * draws[k]) + (i64)writes[k];
    out[0] = clamp(ws[0], TOPT_NEVER);
}
"""

CKERNELS_BASE = """\
import ctypes

_I64 = ctypes.c_longlong
_F64 = ctypes.c_double
_I64P = ctypes.POINTER(ctypes.c_longlong)
_U8P = ctypes.POINTER(ctypes.c_ubyte)
_F64P = ctypes.POINTER(ctypes.c_double)

_SIGNATURES = {
    "k_lru": [_I64P, _U8P, _I64, _I64P, _I64P],
    "k_opt": [_I64P, _U8P, _I64, _F64, _F64P, _I64P, _I64P],
}
"""

KERNELS_BASE = """\
def _i64(array):
    return array


def _u8(array):
    return array


def _f64(array):
    return array


def _call(clib, name, lines, writes, ws, out):
    getattr(clib, name)(
        _i64(lines), _u8(writes), len(lines), _i64(ws), _i64(out)
    )


def kernel_lru(clib, lines, writes, ws, out):
    return _call(clib, "k_lru", lines, writes, ws, out)


def kernel_opt(clib, lines, writes, scale, draws, ws, out):
    clib.k_opt(
        _i64(lines), _u8(writes), len(lines), scale,
        _f64(draws), _i64(ws), _i64(out)
    )


KERNEL_TABLE = {
    "lru": kernel_lru,
    "opt": kernel_opt,
}
"""

CONSTANTS_BASE = """\
TOPT_NEVER = 1 << 40
RM_VARIANTS = ("inter_only", "inter_intra")
RM_VARIANT_INTER_ONLY = RM_VARIANTS.index("inter_only")

C_PARITY = {
    "TOPT_NEVER": TOPT_NEVER,
    "RM_VARIANT_INTER_ONLY": RM_VARIANT_INTER_ONLY,
}
"""


def lint_abi(tmp_path, c=C_BASE, ck=CKERNELS_BASE, k=KERNELS_BASE,
             consts=CONSTANTS_BASE):
    """Write the fixture under ``sim/`` and run only the abi family."""
    sim = tmp_path / "sim"
    sim.mkdir(exist_ok=True)
    if c is not None:
        (sim / "kernels.c").write_text(dedent(c))
    (sim / "ckernels.py").write_text(dedent(ck))
    if k is not None:
        (sim / "kernels.py").write_text(dedent(k))
    if consts is not None:
        (sim / "constants.py").write_text(dedent(consts))
    return run_simlint([sim], SimlintConfig(families=("abi",)))


def rules_of(findings):
    return {finding.rule for finding in findings}


def line_of(source, needle):
    """1-based line of the first fixture line containing ``needle``."""
    for lineno, line in enumerate(dedent(source).splitlines(), start=1):
        if needle in line:
            return lineno
    raise AssertionError(f"fixture has no line containing {needle!r}")


def only(findings, rule):
    picked = [f for f in findings if f.rule == rule]
    assert picked, f"expected a {rule} finding, got {findings}"
    return picked


class TestBaseline:
    def test_baseline_fixture_is_clean(self, tmp_path):
        assert lint_abi(tmp_path) == []

    def test_scope_requires_sim_directory(self, tmp_path):
        # The same files outside a sim/ directory never engage the
        # family: the rules model one specific module layout.
        (tmp_path / "kernels.c").write_text(C_BASE)
        (tmp_path / "ckernels.py").write_text(CKERNELS_BASE)
        findings = run_simlint(
            [tmp_path], SimlintConfig(families=("abi",))
        )
        assert findings == []


class TestSignatureParity:
    def test_widened_c_argument_type_fires(self, tmp_path):
        # u8* buffer widened to i64* on the C side only.
        mutated = C_BASE.replace(
            "void k_lru(const i64 *lines, const u8 *writes",
            "void k_lru(const i64 *lines, const i64 *writes",
        )
        findings = lint_abi(tmp_path, c=mutated)
        hits = only(findings, "abi-signature")
        assert any(
            "writes" in f.message and "u8*" in f.message and
            "i64*" in f.message for f in hits
        )
        sig_line = line_of(CKERNELS_BASE, '"k_lru"')
        assert any(
            f.path.endswith("ckernels.py") and f.line == sig_line
            for f in hits
        )
        # The call site disagrees with the C prototype too.
        assert "abi-callsite" in rules_of(findings)

    def test_reordered_signatures_entry_fires(self, tmp_path):
        mutated = CKERNELS_BASE.replace(
            '"k_lru": [_I64P, _U8P, _I64, _I64P, _I64P],',
            '"k_lru": [_U8P, _I64P, _I64, _I64P, _I64P],',
        )
        findings = lint_abi(tmp_path, ck=mutated)
        hits = only(findings, "abi-signature")
        assert any("argument 0" in f.message for f in hits)
        assert any("argument 1" in f.message for f in hits)
        sig_line = line_of(mutated, '"k_lru"')
        assert all(f.line == sig_line for f in hits)

    def test_unresolvable_ctypes_expression_fires(self, tmp_path):
        mutated = CKERNELS_BASE.replace(
            '"k_lru": [_I64P, _U8P, _I64, _I64P, _I64P],',
            '"k_lru": [MYSTERY, _U8P, _I64, _I64P, _I64P],',
        )
        findings = lint_abi(tmp_path, ck=mutated)
        hits = only(findings, "abi-signature")
        assert any("cannot resolve" in f.message for f in hits)

    def test_pragma_suppresses_signature_finding(self, tmp_path):
        mutated_c = C_BASE.replace(
            "void k_lru(const i64 *lines, const u8 *writes",
            "void k_lru(const i64 *lines, const i64 *writes",
        )
        mutated_ck = CKERNELS_BASE.replace(
            '"k_lru": [_I64P, _U8P, _I64, _I64P, _I64P],',
            '"k_lru": [_I64P, _U8P, _I64, _I64P, _I64P],'
            "  # simlint: allow[abi-signature]",
        )
        findings = lint_abi(tmp_path, c=mutated_c, ck=mutated_ck)
        assert "abi-signature" not in rules_of(findings)


class TestCallSiteParity:
    def test_dropped_call_argument_fires(self, tmp_path):
        # kernel_opt forgets to pass the draws buffer.
        mutated = KERNELS_BASE.replace(
            "_f64(draws), _i64(ws), _i64(out)",
            "_i64(ws), _i64(out)",
        )
        findings = lint_abi(tmp_path, k=mutated)
        hits = only(findings, "abi-callsite")
        call_line = line_of(mutated, "clib.k_opt(")
        assert any(
            f.path.endswith("kernels.py") and f.line == call_line and
            "6 argument(s)" in f.message and "7" in f.message
            for f in hits
        )

    def test_helper_dispatched_call_is_checked(self, tmp_path):
        # The getattr-dispatch helper drops the writes buffer: every
        # kernel routed through it is called one argument short.
        mutated = KERNELS_BASE.replace(
            "_i64(lines), _u8(writes), len(lines), _i64(ws), _i64(out)",
            "_i64(lines), len(lines), _i64(ws), _i64(out)",
        )
        findings = lint_abi(tmp_path, k=mutated)
        hits = only(findings, "abi-callsite")
        assert any("via _call()" in f.message for f in hits)

    def test_swapped_wrapper_kind_fires(self, tmp_path):
        mutated = KERNELS_BASE.replace("_u8(writes)", "_i64(writes)")
        findings = lint_abi(tmp_path, k=mutated)
        hits = only(findings, "abi-callsite")
        assert any("writes" in f.message for f in hits)


class TestCoverage:
    def test_signature_without_c_definition_fires(self, tmp_path):
        mutated = CKERNELS_BASE.replace(
            "_SIGNATURES = {",
            '_SIGNATURES = {\n    "k_ghost": [_I64P],',
        )
        findings = lint_abi(tmp_path, ck=mutated)
        messages = [f.message for f in only(findings, "abi-coverage")]
        assert any("no exported" in m for m in messages)
        assert any("never invoked" in m for m in messages)

    def test_exported_kernel_missing_from_signatures_fires(
        self, tmp_path
    ):
        mutated = CKERNELS_BASE.replace(
            '    "k_opt": [_I64P, _U8P, _I64, _F64, _F64P, _I64P, '
            "_I64P],\n",
            "",
        )
        findings = lint_abi(tmp_path, ck=mutated)
        hits = only(findings, "abi-coverage")
        c_line = line_of(C_BASE, "void k_opt(")
        assert any(
            f.path.endswith("kernels.c") and f.line == c_line and
            "missing from ckernels._SIGNATURES" in f.message
            for f in hits
        )
        assert any(
            f.path.endswith("kernels.py") and
            "no ckernels._SIGNATURES entry" in f.message
            for f in hits
        )

    def test_unregistered_kernel_function_fires(self, tmp_path):
        mutated = KERNELS_BASE + dedent("""
            def kernel_extra(clib):
                return None
        """)
        findings = lint_abi(tmp_path, k=mutated)
        hits = only(findings, "abi-coverage")
        assert any(
            "kernel_extra is not registered in KERNEL_TABLE"
            in f.message for f in hits
        )


class TestConstantParity:
    def test_forked_sentinel_literal_fires(self, tmp_path):
        mutated = C_BASE.replace(
            "#define TOPT_NEVER ((i64)1 << 40)",
            "#define TOPT_NEVER ((i64)1 << 39)",
        )
        findings = lint_abi(tmp_path, c=mutated)
        hits = only(findings, "abi-constant")
        define_line = line_of(mutated, "#define TOPT_NEVER")
        assert any(
            f.path.endswith("kernels.c") and f.line == define_line and
            str(1 << 39) in f.message and str(1 << 40) in f.message
            for f in hits
        )

    def test_missing_define_fires(self, tmp_path):
        mutated = C_BASE.replace(
            "#define RM_VARIANT_INTER_ONLY 0\n", ""
        ).replace("RM_VARIANT_INTER_ONLY;", "0;")
        findings = lint_abi(tmp_path, c=mutated)
        hits = only(findings, "abi-constant")
        assert any(
            f.path.endswith("constants.py") and
            "has no #define" in f.message for f in hits
        )

    def test_unregistered_define_fires(self, tmp_path):
        mutated = C_BASE.replace(
            "#define RM_VARIANT_INTER_ONLY 0",
            "#define RM_VARIANT_INTER_ONLY 0\n#define STRAY_KNOB 7",
        )
        findings = lint_abi(tmp_path, c=mutated)
        hits = only(findings, "abi-constant")
        assert any(
            "STRAY_KNOB is not registered" in f.message for f in hits
        )

    def test_non_constant_define_is_a_parse_error(self, tmp_path):
        mutated = C_BASE.replace(
            "#define RM_VARIANT_INTER_ONLY 0",
            "#define RM_VARIANT_INTER_ONLY (sizeof(i64))",
        )
        findings = lint_abi(tmp_path, c=mutated)
        assert any(
            f.rule == "abi-parse" and
            "not a constant integer expression" in f.message
            for f in findings
        )


class TestCHygiene:
    def test_malloc_fires(self, tmp_path):
        mutated = C_BASE.replace(
            "    i64 k;\n    ws[0] = 0;",
            "    i64 k;\n    i64 *tmp = (i64 *)malloc(8);\n"
            "    ws[0] = tmp[0];",
        )
        findings = lint_abi(tmp_path, c=mutated)
        hits = only(findings, "abi-c-hygiene")
        malloc_line = line_of(mutated, "malloc(8)")
        assert any(
            f.line == malloc_line and "heap allocation" in f.message
            and "malloc" in f.message for f in hits
        )

    def test_external_call_fires(self, tmp_path):
        mutated = C_BASE.replace(
            "out[0] = clamp(ws[0], TOPT_NEVER);\n}\n\nvoid k_opt",
            "out[0] = qsort_helper(ws[0]);\n}\n\nvoid k_opt",
        )
        findings = lint_abi(tmp_path, c=mutated)
        hits = only(findings, "abi-c-hygiene")
        assert any(
            "external function qsort_helper()" in f.message
            for f in hits
        )

    def test_literal_loop_bound_fires(self, tmp_path):
        mutated = C_BASE.replace("(k = 0; k < n; k++)\n        ws[0] +="
                                 " lines[k] + (i64)writes[k];",
                                 "(k = 0; k < 8; k++)\n        ws[0] +="
                                 " lines[k] + (i64)writes[k];")
        findings = lint_abi(tmp_path, c=mutated)
        hits = only(findings, "abi-c-hygiene")
        assert any(
            "numeric literal 8" in f.message and
            f.line == line_of(mutated, "k < 8") for f in hits
        )

    def test_mutable_file_scope_state_fires(self, tmp_path):
        mutated = C_BASE.replace(
            "static i64 clamp",
            "static i64 call_count;\n\nstatic i64 clamp",
        )
        findings = lint_abi(tmp_path, c=mutated)
        hits = only(findings, "abi-c-hygiene")
        assert any(
            "mutable file-scope object 'call_count'" in f.message
            for f in hits
        )

    def test_const_file_scope_table_is_allowed(self, tmp_path):
        mutated = C_BASE.replace(
            "static i64 clamp",
            "static const i64 lut[2] = {0, 1};\n\nstatic i64 clamp",
        )
        findings = lint_abi(tmp_path, c=mutated)
        assert "abi-c-hygiene" not in rules_of(findings)

    def test_extra_include_fires(self, tmp_path):
        mutated = C_BASE.replace(
            "#include <stdint.h>",
            "#include <stdint.h>\n#include <stdlib.h>",
        )
        findings = lint_abi(tmp_path, c=mutated)
        hits = only(findings, "abi-c-hygiene")
        assert any(
            "#include <stdlib.h>" in f.message for f in hits
        )


class TestCPragmas:
    def test_same_line_c_pragma_suppresses(self, tmp_path):
        mutated = C_BASE.replace(
            "    i64 k;\n    ws[0] = 0;",
            "    i64 k;\n    i64 *tmp = (i64 *)malloc(8);"
            "  /* simlint: allow[abi-c-hygiene] */\n"
            "    ws[0] = tmp[0];",
        )
        findings = lint_abi(tmp_path, c=mutated)
        assert "abi-c-hygiene" not in rules_of(findings)

    def test_standalone_c_pragma_covers_next_line(self, tmp_path):
        mutated = C_BASE.replace(
            "    i64 k;\n    ws[0] = 0;",
            "    i64 k;\n    /* simlint: allow[abi-c-hygiene] */\n"
            "    i64 *tmp = (i64 *)malloc(8);\n    ws[0] = tmp[0];",
        )
        findings = lint_abi(tmp_path, c=mutated)
        assert "abi-c-hygiene" not in rules_of(findings)

    def test_family_token_suppresses_in_c(self, tmp_path):
        mutated = C_BASE.replace(
            "#define TOPT_NEVER ((i64)1 << 40)",
            "#define TOPT_NEVER ((i64)1 << 39)"
            "  /* simlint: allow[abi] */",
        )
        findings = lint_abi(tmp_path, c=mutated)
        assert "abi-constant" not in rules_of(findings)

    def test_unknown_rule_in_c_pragma_is_flagged(self, tmp_path):
        mutated = C_BASE.replace(
            "typedef int64_t i64;",
            "/* simlint: allow[abi-bogus] */\ntypedef int64_t i64;",
        )
        findings = lint_abi(tmp_path, c=mutated)
        hits = only(findings, "pragma-unknown")
        assert any(
            f.path.endswith("kernels.c") and "abi-bogus" in f.message
            for f in hits
        )


class TestParseRule:
    def test_unparsable_c_fires(self, tmp_path):
        findings = lint_abi(tmp_path, c="void k_lru(@@@\n")
        assert "abi-parse" in rules_of(findings)

    def test_missing_c_file_fires(self, tmp_path):
        findings = lint_abi(tmp_path, c=None)
        hits = only(findings, "abi-parse")
        assert any("cannot read kernels.c" in f.message for f in hits)


class TestShippedTree:
    def test_shipped_sim_package_is_abi_clean(self):
        findings = run_simlint(
            [SRC_REPRO / "sim"], SimlintConfig(families=("abi",))
        )
        assert findings == []
