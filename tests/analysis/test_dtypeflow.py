"""Mutation tests for the ``dtype`` family and its runtime half.

Static side: one seeded bug per rule, written to ``tmp_path``, with a
pragma-silenced twin proving the suppression channel works — so every
rule is demonstrably *live* (a rule that cannot fire is a rule that
silently stopped protecting the tree). Runtime side: near-capacity
fabrications driven through :func:`check_width_contracts` at the
declared ``WIDTH_CONTRACTS`` boundaries, plus the end-to-end contract
that a ``sanitize=True`` replay exercising the width checks stays
bit-identical to an unsanitized one.
"""

from pathlib import Path
from textwrap import dedent
from types import SimpleNamespace

import numpy as np
import pytest

from repro.analysis import SimlintConfig, run_simlint
from repro.analysis.dtypeflow import Value, dtype_width
from repro.apps import PageRank
from repro.cache import scaled_hierarchy
from repro.errors import SanitizerError
from repro.graph import uniform_random
from repro.graph.csr import CSRGraph
from repro.popt.rereference import build_rereference_matrix
from repro.sim import prepare_run, simulate_prepared
from repro.sim.constants import WIDTH_CONTRACTS
from repro.sim.widthcontracts import (
    check_prepared_contracts,
    check_width_contracts,
)

SRC_REPRO = Path(__file__).resolve().parents[2] / "src" / "repro"


def lint_dtype(tmp_path, source, replay_path=frozenset()):
    module = tmp_path / "mod.py"
    module.write_text(dedent(source))
    config = SimlintConfig(families=("dtype",), replay_path=replay_path)
    return run_simlint([module], config)


def rules_of(findings):
    return {finding.rule for finding in findings}


# ----------------------------------------------------------------------
# dtype-c-boundary
# ----------------------------------------------------------------------


class TestCBoundary:
    BUGGY = """
        import numpy as np

        def _i64(array):
            return array

        def run(clib, n):
            lanes = np.zeros(n, dtype=np.int32)
            clib.k_scan(_i64(lanes))
    """

    def test_wrong_width_through_wrapper_fires(self, tmp_path):
        findings = lint_dtype(tmp_path, self.BUGGY)
        assert "dtype-c-boundary" in rules_of(findings)
        (finding,) = [f for f in findings if f.rule == "dtype-c-boundary"]
        assert "int32" in finding.message and "i64" in finding.message

    def test_pragma_silences(self, tmp_path):
        silenced = self.BUGGY.replace(
            "clib.k_scan(_i64(lanes))",
            "clib.k_scan(_i64(lanes))  "
            "# simlint: allow[dtype-c-boundary]",
        )
        assert lint_dtype(tmp_path, silenced) == []

    def test_matching_width_is_clean(self, tmp_path):
        assert lint_dtype(
            tmp_path, self.BUGGY.replace("np.int32", "np.int64")
        ) == []

    def test_bool_through_u8_wrapper_is_clean(self, tmp_path):
        """Frontier bit-vectors marshal bool through ``_u8`` — same
        1-byte layout, deliberately admitted."""
        assert lint_dtype(tmp_path, """
            import numpy as np

            def _u8(array):
                return array

            def run(clib, n):
                frontier = np.zeros(n, dtype=bool)
                clib.k_mark(_u8(frontier))
        """) == []

    def test_interprocedural_creation_site(self, tmp_path):
        """The mismatched array is typed in a helper; the flow engine
        resolves the call through the call graph."""
        findings = lint_dtype(tmp_path, """
            import numpy as np

            def _f64(array):
                return array

            def _make_ranks(n):
                return np.zeros(n, dtype=np.float32)

            def run(clib, n):
                ranks = _make_ranks(n)
                clib.k_rank(_f64(ranks))
        """)
        assert "dtype-c-boundary" in rules_of(findings)


# ----------------------------------------------------------------------
# dtype-overflow
# ----------------------------------------------------------------------


class TestOverflow:
    BUGGY = """
        import numpy as np

        def tally(idx, n):
            counts = np.zeros(n, dtype=np.uint8)
            lengths = np.zeros(n, dtype=np.int64)
            counts[idx] = lengths
            return counts
    """

    def test_wide_store_into_narrow_array_fires(self, tmp_path):
        findings = lint_dtype(tmp_path, self.BUGGY)
        assert "dtype-overflow" in rules_of(findings)

    def test_pragma_silences(self, tmp_path):
        silenced = self.BUGGY.replace(
            "counts[idx] = lengths",
            "counts[idx] = lengths  # simlint: allow[dtype-overflow]",
        )
        assert lint_dtype(tmp_path, silenced) == []

    def test_clamped_store_is_clean(self, tmp_path):
        """``np.minimum`` marks the value bounded; the documented guard
        idiom passes without a pragma."""
        assert lint_dtype(tmp_path, self.BUGGY.replace(
            "counts[idx] = lengths",
            "counts[idx] = np.minimum(lengths, 255)",
        )) == []

    def test_accumulation_into_narrow_counter_fires(self, tmp_path):
        findings = lint_dtype(tmp_path, """
            import numpy as np

            def tally(deltas, n):
                counts = np.zeros(n, dtype=np.uint16)
                counts += deltas
                return counts
        """)
        assert "dtype-overflow" in rules_of(findings)

    def test_contract_bound_attribute_store_fires(self, tmp_path):
        """A store into a field named by ``WIDTH_CONTRACTS[...].binds``
        is checked against the contract's declared dtype even though
        the attribute itself has no inferable dtype."""
        sim = tmp_path / "sim"
        sim.mkdir()
        (sim / "constants.py").write_text(dedent("""
            WIDTH_CONTRACTS = {
                "rm.entries": {
                    "dtype": ("uint8", "uint16"),
                    "max_bits": 16,
                    "binds": ("RereferenceMatrix.entries",),
                    "holds": "RM entries",
                    "guard": "clamped at encode time",
                },
            }
        """))
        module = tmp_path / "mod.py"
        module.write_text(dedent("""
            import numpy as np

            def poison(matrix, rows):
                wide = np.cumsum(rows.astype(np.int64))
                matrix.entries = wide
        """))
        findings = run_simlint(
            [module, sim / "constants.py"],
            SimlintConfig(families=("dtype",), replay_path=frozenset()),
        )
        assert "dtype-overflow" in rules_of(findings)
        (finding,) = [f for f in findings if f.rule == "dtype-overflow"]
        assert "rm.entries" in finding.message


# ----------------------------------------------------------------------
# dtype-implicit-upcast
# ----------------------------------------------------------------------


class TestImplicitUpcast:
    BUGGY = """
        import numpy as np

        def replay(n):
            tags = np.zeros(n, dtype=np.int32)
            ages = np.zeros(n, dtype=np.int64)
            return tags + ages
    """
    HOT = frozenset({"replay"})

    def test_mixed_width_arithmetic_on_hot_path_fires(self, tmp_path):
        findings = lint_dtype(tmp_path, self.BUGGY, replay_path=self.HOT)
        assert "dtype-implicit-upcast" in rules_of(findings)

    def test_pragma_silences(self, tmp_path):
        silenced = self.BUGGY.replace(
            "return tags + ages",
            "return tags + ages  # simlint: allow[dtype-implicit-upcast]",
        )
        assert lint_dtype(tmp_path, silenced, replay_path=self.HOT) == []

    def test_cold_function_is_out_of_scope(self, tmp_path):
        """The rule is a memory-bandwidth rule; it only polices hot
        (replay-path / worker-reachable) functions."""
        assert lint_dtype(tmp_path, self.BUGGY) == []

    def test_aligned_widths_are_clean(self, tmp_path):
        assert lint_dtype(
            tmp_path, self.BUGGY.replace("np.int32", "np.int64"),
            replay_path=self.HOT,
        ) == []


# ----------------------------------------------------------------------
# dtype-narrowing-cast
# ----------------------------------------------------------------------


class TestNarrowingCast:
    BUGGY = """
        import numpy as np

        def shrink(n):
            totals = np.cumsum(np.arange(n, dtype=np.int64))
            return totals.astype(np.int16)
    """

    def test_unguarded_narrowing_fires(self, tmp_path):
        findings = lint_dtype(tmp_path, self.BUGGY)
        assert "dtype-narrowing-cast" in rules_of(findings)

    def test_pragma_silences(self, tmp_path):
        silenced = self.BUGGY.replace(
            "return totals.astype(np.int16)",
            "return totals.astype(np.int16)  "
            "# simlint: allow[dtype-narrowing-cast]",
        )
        assert lint_dtype(tmp_path, silenced) == []

    def test_clamped_source_is_clean(self, tmp_path):
        assert lint_dtype(tmp_path, self.BUGGY.replace(
            "return totals.astype(np.int16)",
            "return np.minimum(totals, 1000).astype(np.int16)",
        )) == []

    def test_widening_cast_is_clean(self, tmp_path):
        assert lint_dtype(
            tmp_path, self.BUGGY.replace("np.int16", "np.float64")
        ) == []


# ----------------------------------------------------------------------
# dtype-unspecified
# ----------------------------------------------------------------------


class TestUnspecified:
    BUGGY = """
        import numpy as np

        def prepare(n):
            return np.arange(n)
    """
    HOT = frozenset({"prepare"})

    def test_platform_default_arange_fires(self, tmp_path):
        findings = lint_dtype(tmp_path, self.BUGGY, replay_path=self.HOT)
        assert "dtype-unspecified" in rules_of(findings)

    def test_pragma_silences(self, tmp_path):
        silenced = self.BUGGY.replace(
            "return np.arange(n)",
            "return np.arange(n)  # simlint: allow[dtype-unspecified]",
        )
        assert lint_dtype(tmp_path, silenced, replay_path=self.HOT) == []

    def test_pinned_dtype_is_clean(self, tmp_path):
        assert lint_dtype(
            tmp_path,
            self.BUGGY.replace("np.arange(n)",
                               "np.arange(n, dtype=np.int64)"),
            replay_path=self.HOT,
        ) == []

    def test_cold_module_is_out_of_scope(self, tmp_path):
        assert lint_dtype(tmp_path, self.BUGGY) == []

    def test_bare_bincount_fires_and_cast_is_the_fix(self, tmp_path):
        source = """
            import numpy as np

            def prepare(values, n):
                return np.bincount(values, minlength=n)
        """
        findings = lint_dtype(tmp_path, source, replay_path=self.HOT)
        assert "dtype-unspecified" in rules_of(findings)
        fixed = source.replace(
            "np.bincount(values, minlength=n)",
            "np.bincount(values, minlength=n).astype(np.int64)",
        )
        assert lint_dtype(tmp_path, fixed, replay_path=self.HOT) == []

    def test_weighted_bincount_is_clean(self, tmp_path):
        """``weights=`` makes bincount float64 on every platform."""
        assert lint_dtype(tmp_path, """
            import numpy as np

            def prepare(values, contrib, n):
                return np.bincount(values, weights=contrib, minlength=n)
        """, replay_path=self.HOT) == []

    def test_integer_full_fires(self, tmp_path):
        findings = lint_dtype(tmp_path, """
            import numpy as np

            def prepare(n):
                return np.full(n, 7)
        """, replay_path=self.HOT)
        assert "dtype-unspecified" in rules_of(findings)


# ----------------------------------------------------------------------
# The flow engine's building blocks
# ----------------------------------------------------------------------


class TestLattice:
    def test_unknown_is_top(self):
        assert not Value().known()
        assert Value(dtype="int64").known()

    def test_widths(self):
        assert dtype_width("uint8") == 8
        assert dtype_width("int64") == 64
        assert dtype_width("intp") == 64
        assert dtype_width("not-a-dtype") is None


# ----------------------------------------------------------------------
# Runtime half: check_width_contracts at the declared boundaries
# ----------------------------------------------------------------------


def tiny_graph():
    return uniform_random(128, avg_degree=4.0, seed=11)


class TestWidthContractRegistry:
    def test_schema(self):
        for name, spec in WIDTH_CONTRACTS.items():
            assert isinstance(spec["dtype"], tuple), name
            assert spec["dtype"], name
            assert isinstance(spec["max_bits"], int), name
            assert spec["holds"], name
            assert spec["guard"], name

    def test_binds_name_real_fields(self):
        bound = [
            b for spec in WIDTH_CONTRACTS.values()
            for b in spec.get("binds", ())
        ]
        assert "RereferenceMatrix.entries" in bound
        assert "CSRGraph.offsets" in bound
        assert "CSRGraph.neighbors" in bound


class TestCheckWidthContracts:
    def test_healthy_matrix_passes(self):
        matrix = build_rereference_matrix(
            tiny_graph().transpose(), elems_per_line=16, entry_bits=8
        )
        report = check_width_contracts(matrix=matrix)
        assert report["checks"] >= 2
        assert report["rm_entries_max"] < 1 << 8
        assert report["rm_num_epochs"] == matrix.num_epochs

    def test_entry_exceeding_encoding_fails(self):
        matrix = build_rereference_matrix(
            tiny_graph().transpose(), elems_per_line=16, entry_bits=4
        )
        matrix.entries[0, 0] = np.uint8(1 << 4)  # one past the ceiling
        with pytest.raises(SanitizerError, match=r"rm\.entries"):
            check_width_contracts(matrix=matrix)

    def test_wrong_storage_dtype_fails(self):
        matrix = build_rereference_matrix(
            tiny_graph().transpose(), elems_per_line=16, entry_bits=8
        )
        wide = SimpleNamespace(
            entry_bits=matrix.entry_bits,
            entries=matrix.entries.astype(np.uint16),
            num_epochs=matrix.num_epochs,
        )
        with pytest.raises(SanitizerError, match="storage dtype"):
            check_width_contracts(matrix=wide)

    def test_healthy_graph_passes(self):
        report = check_width_contracts(graph=tiny_graph())
        assert report["csr_num_edges"] >= 1
        assert report["num_vertices"] == 128

    def test_graph_with_widened_neighbors_fails(self):
        graph = tiny_graph()
        fake = SimpleNamespace(
            offsets=graph.offsets,
            neighbors=graph.neighbors.astype(np.int64),
            num_vertices=graph.num_vertices,
        )
        with pytest.raises(SanitizerError, match=r"csr\.neighbors"):
            check_width_contracts(graph=fake)

    def test_trace_at_streaming_sentinel_fails(self):
        """The exact boundary: a trace of length 2^30 would make a real
        next-use index collide with POPT_STREAMING_NEXT_REF."""
        with pytest.raises(SanitizerError, match=r"trace\.next_use"):
            check_width_contracts(trace_length=1 << 30)

    def test_trace_just_under_the_sentinel_passes(self):
        report = check_width_contracts(trace_length=(1 << 30) - 1)
        assert report["trace_length"] == (1 << 30) - 1

    def test_errors_name_the_contract(self):
        with pytest.raises(SanitizerError, match=r"width-contracts\["):
            check_width_contracts(trace_length=1 << 40)


# ----------------------------------------------------------------------
# End-to-end: sanitize=True runs the width checks, bit-identically
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def prepared_run():
    return prepare_run(PageRank(), uniform_random(256, avg_degree=5.0,
                                                  seed=3))


class TestSanitizedWidthChecks:
    def test_prepared_contracts_pass_on_real_run(self, prepared_run):
        report = check_prepared_contracts(prepared_run)
        assert report["checks"] >= 1
        assert report["trace_length"] == len(prepared_run.trace)

    def test_sanitized_replay_reports_width_contracts(self, prepared_run):
        result = simulate_prepared(
            prepared_run, "P-OPT", scaled_hierarchy("tiny"), sanitize=True
        )
        report = result.details["width_contracts"]
        # Replay setup checks plus the per-matrix pass at RM build time.
        assert report["checks"] >= 2
        assert report["rm_entries_max"] < 1 << 8

    def test_unsanitized_replay_skips_width_checks(self, prepared_run):
        result = simulate_prepared(
            prepared_run, "P-OPT", scaled_hierarchy("tiny")
        )
        assert "width_contracts" not in result.details

    def test_bit_identical_to_unsanitized(self, prepared_run):
        hierarchy = scaled_hierarchy("tiny")
        for name in ("LRU", "P-OPT"):
            clean = simulate_prepared(prepared_run, name, hierarchy)
            sane = simulate_prepared(
                prepared_run, name, hierarchy, sanitize=True
            )
            assert clean.levels == sane.levels, name
            assert clean.cycles == sane.cycles, name


# ----------------------------------------------------------------------
# The shipped tree honors its own contracts
# ----------------------------------------------------------------------


class TestShippedTree:
    def test_dtype_clean(self):
        config = SimlintConfig(families=("dtype",))
        assert run_simlint([SRC_REPRO], config) == []
