"""Mutation tests for the ``par`` worker-purity family.

Each test seeds exactly the defect class one ``par`` rule exists for —
inside a module with a real ``ProcessPoolExecutor`` worker boundary —
and asserts the rule fires, fires on the right line, and is silenced
only by an explained ``# simlint: allow[...]`` pragma. The final tests
pin the CI contract: the shipped tree lints clean under ``par``.
"""

from pathlib import Path
from textwrap import dedent

import pytest

from repro.analysis import RULE_FAMILIES, SimlintConfig, run_simlint
from repro.analysis.astutil import load_module
from repro.analysis.parsafety import (
    PAR_RULES,
    check_parsafety,
    par_status_lines,
)
from repro.analysis.purity import CallGraph

SRC_REPRO = Path(__file__).resolve().parents[2] / "src" / "repro"

#: Worker boundary shared by every fixture: ``work`` is the submit
#: target, so it (and everything it calls) is worker-reachable.
POOL = """
    from concurrent.futures import ProcessPoolExecutor

    def sweep(tasks):
        with ProcessPoolExecutor(max_workers=2) as pool:
            return list(pool.map(work, tasks))
"""


def write_fixture(tmp_path, body):
    """POOL boilerplate + the test body, each dedented independently."""
    module = tmp_path / "mod.py"
    module.write_text(dedent(POOL) + dedent(body))
    return module


def lint_par(tmp_path, body, allowlist=None):
    module = write_fixture(tmp_path, body)
    if allowlist is not None:
        return check_parsafety([load_module(module)], allowlist=allowlist)
    return run_simlint([module], SimlintConfig(families=("par",)))


def rules_of(findings):
    return {finding.rule for finding in findings}


class TestGlobalMutation:
    def test_subscript_store_into_module_dict(self, tmp_path):
        findings = lint_par(tmp_path, """
            RESULTS = {}

            def work(task):
                RESULTS[task] = task * 2
                return task
        """)
        assert rules_of(findings) == {"par-global-mutation"}

    def test_global_statement(self, tmp_path):
        findings = lint_par(tmp_path, """
            COUNT = 0

            def work(task):
                global COUNT
                COUNT += 1
                return task
        """)
        assert "par-global-mutation" in rules_of(findings)

    def test_append_on_module_list(self, tmp_path):
        findings = lint_par(tmp_path, """
            LOG = []

            def work(task):
                LOG.append(task)
                return task
        """)
        assert rules_of(findings) == {"par-global-mutation"}

    def test_transitive_reachability(self, tmp_path):
        # The bug sits in a helper the worker calls, not the worker.
        findings = lint_par(tmp_path, """
            SEEN = set()

            def record(task):
                SEEN.add(task)

            def work(task):
                record(task)
                return task
        """)
        assert rules_of(findings) == {"par-global-mutation"}

    def test_unreachable_mutation_not_flagged(self, tmp_path):
        # Same mutation outside the worker-reachable set is the
        # coordinator's business, not par's.
        findings = lint_par(tmp_path, """
            TOTALS = {}

            def work(task):
                return task * 2

            def tally(rows):
                TOTALS["sum"] = sum(rows)
        """)
        assert findings == []

    def test_registered_cache_is_allowed(self, tmp_path):
        findings = lint_par(tmp_path, """
            CACHE = {}

            def work(task):
                CACHE[task] = task * 2
                return CACHE[task]
        """, allowlist={"mod.CACHE"})
        assert findings == []

    def test_local_shadow_not_flagged(self, tmp_path):
        findings = lint_par(tmp_path, """
            RESULTS = {}

            def work(task):
                RESULTS = {}
                RESULTS[task] = task * 2
                return RESULTS[task]
        """)
        assert findings == []


class TestSharedArrayWrite:
    def test_store_into_mmap_load(self, tmp_path):
        findings = lint_par(tmp_path, """
            import numpy as np

            def work(path):
                arr = np.load(path, mmap_mode="r")
                arr[0] = 1
                return int(arr.sum())
        """)
        assert rules_of(findings) == {"par-shared-array-write"}

    def test_augassign_on_accessor_product(self, tmp_path):
        findings = lint_par(tmp_path, """
            def work(filt):
                next_use = filt.compact_next_use()
                next_use += 1
                return next_use
        """)
        assert rules_of(findings) == {"par-shared-array-write"}

    def test_copy_is_the_escape_hatch(self, tmp_path):
        findings = lint_par(tmp_path, """
            def work(filt):
                next_use = filt.compact_next_use().copy()
                next_use += 1
                return next_use
        """)
        assert findings == []

    def test_setflags_reenable_flagged(self, tmp_path):
        findings = lint_par(tmp_path, """
            def work(store, key):
                arr = cached_filter(store, key, None)
                arr.setflags(write=True)
                return arr
        """)
        assert rules_of(findings) == {"par-shared-array-write"}

    def test_sort_on_shared_array(self, tmp_path):
        findings = lint_par(tmp_path, """
            def work(prepared, config):
                filt = get_private_filter(prepared, config)
                lines = filt.lines
                lines.sort()
                return lines
        """)
        assert "par-shared-array-write" in rules_of(findings)


class TestForkUnsafe:
    def test_module_scope_environ_read(self, tmp_path):
        findings = lint_par(tmp_path, """
            import os

            DEBUG = os.environ.get("REPRO_DEBUG", "")

            def work(task):
                return task
        """)
        assert rules_of(findings) == {"par-fork-unsafe"}

    def test_worker_mutates_environ(self, tmp_path):
        findings = lint_par(tmp_path, """
            import os

            def work(task):
                os.environ["REPRO_SCALE"] = str(task)
                return task
        """)
        assert rules_of(findings) == {"par-fork-unsafe"}

    def test_module_scope_rng(self, tmp_path):
        findings = lint_par(tmp_path, """
            import random

            RNG = random.Random(42)

            def work(task):
                return task
        """)
        assert rules_of(findings) == {"par-fork-unsafe"}

    def test_environ_read_inside_worker_is_fine(self, tmp_path):
        findings = lint_par(tmp_path, """
            import os

            def work(task):
                return os.environ.get("REPRO_SCALE", "small"), task
        """)
        assert findings == []


class TestUnseededRng:
    def test_global_random_draw_in_worker(self, tmp_path):
        findings = lint_par(tmp_path, """
            import random

            def work(task):
                return task + random.random()
        """)
        assert rules_of(findings) == {"par-unseeded-rng"}


class TestNonatomicWrite:
    def test_raw_open_under_artifact_root(self, tmp_path):
        findings = lint_par(tmp_path, """
            def work(store, row):
                out = store.root / "rows" / "r.json"
                with open(out, "w") as handle:
                    handle.write(row)
                return out
        """)
        assert rules_of(findings) == {"par-nonatomic-write"}

    def test_write_text_under_root(self, tmp_path):
        findings = lint_par(tmp_path, """
            def work(store, row):
                out = store.root / "rows" / "r.json"
                out.write_text(row)
                return out
        """)
        assert rules_of(findings) == {"par-nonatomic-write"}

    def test_tmp_rename_staging_is_clean(self, tmp_path):
        findings = lint_par(tmp_path, """
            import os

            def work(store, row):
                out = store.root / "rows" / "r.json"
                tmp = store.root / "rows" / ".tmp-r.json"
                with open(tmp, "w") as handle:
                    handle.write(row)
                os.rename(tmp, out)
                return out
        """)
        assert findings == []

    def test_read_under_root_is_clean(self, tmp_path):
        findings = lint_par(tmp_path, """
            def work(store):
                out = store.root / "rows" / "r.json"
                with open(out) as handle:
                    return handle.read()
        """)
        assert findings == []


class TestAllowlistStale:
    def test_registered_name_without_binding(self, tmp_path):
        findings = lint_par(tmp_path, """
            def work(task):
                return task
        """, allowlist={"mod.GONE"})
        assert rules_of(findings) == {"par-allowlist-stale"}

    def test_registered_name_with_binding_is_clean(self, tmp_path):
        findings = lint_par(tmp_path, """
            CACHE = {}

            def work(task):
                return task
        """, allowlist={"mod.CACHE"})
        assert findings == []


#: One (source, rule) pair per rule, each with a ``{pragma}`` slot on
#: the offending line: empty -> fires, allow-pragma -> silenced.
_PRAGMA_CASES = [
    ("""
        RESULTS = {{}}

        def work(task):
            RESULTS[task] = task * 2{pragma}
            return task
    """, "par-global-mutation"),
    ("""
        import numpy as np

        def work(path):
            arr = np.load(path, mmap_mode="r")
            arr[0] = 1{pragma}
            return int(arr.sum())
    """, "par-shared-array-write"),
    ("""
        import os

        DEBUG = os.environ.get("REPRO_DEBUG", ""){pragma}

        def work(task):
            return task
    """, "par-fork-unsafe"),
    ("""
        import random

        def work(task):
            return task + random.random(){pragma}
    """, "par-unseeded-rng"),
    ("""
        def work(store, row):
            out = store.root / "r.json"
            out.write_text(row){pragma}
            return out
    """, "par-nonatomic-write"),
]


class TestPragmas:
    @pytest.mark.parametrize(
        "source, rule", _PRAGMA_CASES, ids=[c[1] for c in _PRAGMA_CASES]
    )
    def test_fires_without_pragma(self, tmp_path, source, rule):
        findings = lint_par(tmp_path, source.format(pragma=""))
        assert rule in rules_of(findings)

    @pytest.mark.parametrize(
        "source, rule", _PRAGMA_CASES, ids=[c[1] for c in _PRAGMA_CASES]
    )
    def test_explained_pragma_silences(self, tmp_path, source, rule):
        pragma = f"  # simlint: allow[{rule}] -- exercised by the suite"
        findings = lint_par(tmp_path, source.format(pragma=pragma))
        assert rule not in rules_of(findings)


class TestEntryPoints:
    def test_pool_submit_target_discovered(self, tmp_path):
        module = write_fixture(tmp_path, """
            def work(task):
                return task
        """)
        graph = CallGraph([load_module(module)])
        targets = {entry.target for entry in graph.entry_points()}
        assert targets == {"work"}

    def test_status_lines_name_the_entry_points(self, tmp_path):
        module = write_fixture(tmp_path, """
            def work(task):
                return task
        """)
        lines = par_status_lines([load_module(module)])
        assert any("work @" in line for line in lines)
        assert any("worker-reachable" in line for line in lines)

    def test_no_pool_no_entry_points(self, tmp_path):
        module = tmp_path / "mod.py"
        module.write_text("def plain(x):\n    return x\n")
        lines = par_status_lines([load_module(module)])
        assert lines == [
            "par: no worker-boundary entry points in scanned files"
        ]


class TestShippedTree:
    def test_par_family_clean_on_shipped_tree(self):
        findings = run_simlint(
            [SRC_REPRO], SimlintConfig(families=("par",))
        )
        assert findings == []

    def test_par_rules_are_known(self):
        assert "par" in RULE_FAMILIES
        assert set(PAR_RULES) == {
            "par-global-mutation",
            "par-shared-array-write",
            "par-fork-unsafe",
            "par-unseeded-rng",
            "par-nonatomic-write",
            "par-allowlist-stale",
        }

    def test_shipped_entry_points_resolved(self):
        from repro.analysis.runner import _load_modules

        modules, parse_findings = _load_modules([SRC_REPRO])
        assert parse_findings == []
        graph = CallGraph(modules)
        described = {e.describe() for e in graph.entry_points()}
        assert any("parallel.py" in d for d in described)
        assert any("spec.py" in d for d in described)
