"""Why state-of-the-art replacement fails on graphs (paper Figs. 2 and 4).

Replays one PageRank iteration under LRU, DRRIP, SHiP-PC, SHiP-Mem,
Hawkeye, the transpose-driven T-OPT, and true offline Belady OPT, across
the paper's five graph classes. The point of the exercise (Section II-B):
heuristic policies cluster together, while exact next-reference
information (T-OPT, which only needs the transpose the framework already
stores) cuts misses by ~1.7x.

Run:  python examples/policy_comparison.py [scale] [graph ...]
"""

import sys

from repro import apps, graph, sim
from repro.cache import scaled_hierarchy
from repro.sim.tables import format_table

POLICIES = ("LRU", "DRRIP", "SHiP-PC", "SHiP-Mem", "Hawkeye", "T-OPT", "OPT")


def main() -> None:
    scale = sys.argv[1] if len(sys.argv) > 1 else "small"
    names = sys.argv[2:] or graph.graph_names()
    hierarchy = scaled_hierarchy(scale)

    rows = []
    for name in names:
        g = graph.load(name, scale=scale)
        prepared = sim.prepare_run(apps.PageRank(), g)
        row = {"graph": name}
        for policy in POLICIES:
            result = sim.simulate_prepared(prepared, policy, hierarchy)
            row[policy] = f"{result.llc_miss_rate:.3f}"
        rows.append(row)
        print(f"done: {name}")

    print()
    print(format_table(rows, "PageRank LLC miss rate by policy "
                             "(Figs. 2 and 4)"))
    print(
        "\nReading: LRU..Hawkeye cluster in a narrow band; T-OPT (using "
        "the graph transpose) approaches the offline-optimal OPT."
    )


if __name__ == "__main__":
    main()
