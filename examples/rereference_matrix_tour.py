"""A guided tour of P-OPT's Rereference Matrix on the paper's example.

Builds the Fig. 1/Fig. 5 five-vertex graph, prints the quantized
Rereference Matrix for each design (inter-only, inter+intra, single-
epoch), and walks Algorithm 2 through the paper's Fig. 3 replacement
scenarios, showing where quantization loses information and how the
intra-epoch bits recover it.

Run:  python examples/rereference_matrix_tour.py
"""

from repro.graph import from_edges
from repro.popt import build_rereference_matrix, epoch_geometry


def print_matrix(matrix, title):
    print(f"\n{title}")
    print(f"  geometry: {matrix.num_lines} lines x {matrix.num_epochs} "
          f"epochs, epoch size {matrix.epoch_size}, "
          f"sub-epoch size {matrix.sub_epoch_size}")
    print(f"  resident: {matrix.resident_columns()} column(s) = "
          f"{matrix.resident_bytes()} bytes pinned in LLC")
    header = "  line |" + "".join(f" E{e:<3d}" for e in
                                  range(matrix.num_epochs))
    print(header)
    for line in range(matrix.num_lines):
        cells = "".join(
            f" {int(v):<4d}" for v in matrix.entries[line]
        )
        print(f"  S{line:<4d}|{cells}")


def main() -> None:
    # The paper's example: srcData[Si]'s next references are Si's
    # out-neighbors, read straight from the CSR (the transpose of the
    # pull traversal's CSC).
    g = from_edges(
        [(0, 2), (1, 0), (1, 4), (2, 0), (2, 1), (2, 3),
         (3, 1), (3, 4), (4, 0), (4, 2)],
        num_vertices=5,
    )
    print("Example graph (Fig. 1): out-neighbor lists")
    for v in range(5):
        print(f"  S{v} -> {g.out_neighbors(v).tolist()}")

    print("\nEpoch geometry for 3-bit entries:",
          epoch_geometry(5, 3))

    for variant, title in (
        ("inter_only", "Fig. 5 design (inter-epoch only)"),
        ("inter_intra", "Fig. 6 design (inter + intra epoch, the default)"),
        ("single_epoch", "P-OPT-SE (one resident column)"),
    ):
        matrix = build_rereference_matrix(
            g, elems_per_line=1, entry_bits=3, variant=variant
        )
        print_matrix(matrix, title)

    matrix = build_rereference_matrix(g, elems_per_line=1, entry_bits=3)
    print("\nAlgorithm 2 walk-through (inter+intra design):")
    print("  Scenario A (processing D0): cache holds srcData[S1], "
          "srcData[S2]; srcData[S4] arrives.")
    for line in (1, 2):
        print(f"    next-ref(S{line}, currDst=0) = "
              f"{matrix.find_next_ref(line, 0)} epochs")
    print("  Quantized to epochs of one vertex both are 'this epoch'; "
          "T-OPT's exact walk breaks the tie (S1 -> D4, S2 -> D1).")
    print("  Scenario B (processing D1): cache holds srcData[S4], "
          "srcData[S2]; srcData[S3] arrives.")
    for line in (4, 2):
        print(f"    next-ref(S{line}, currDst=1) = "
              f"{matrix.find_next_ref(line, 1)} epochs")


if __name__ == "__main__":
    main()
