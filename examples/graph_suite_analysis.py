"""Run the full application suite (Table II) with P-OPT on one graph.

Exercises every kernel — PageRank, Connected Components, PageRank-Delta,
Radii, and Maximal Independent Set — on a single input, reporting both the
*algorithm results* (the kernels compute real answers) and the cache
locality P-OPT achieves vs DRRIP, including how many LLC ways each app's
Rereference Matrices reserve (frontier apps pin two).

Run:  python examples/graph_suite_analysis.py [graph-name] [scale]
"""

import sys

import numpy as np

from repro import apps, graph, sim
from repro.cache import scaled_hierarchy
from repro.sim.tables import format_table


def describe_result(app_name, reference_result):
    if app_name == "PR":
        top = int(np.argmax(reference_result))
        return f"top-rank vertex {top} ({reference_result[top]:.2e})"
    if app_name == "CC":
        return f"{len(np.unique(reference_result))} components"
    if app_name == "PR-Delta":
        return f"rank mass {float(np.sum(reference_result)):.4f}"
    if app_name == "Radii":
        return f"radius estimate {reference_result}"
    if app_name == "MIS":
        return f"|MIS| = {int((reference_result == 1).sum())}"
    return ""


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "DBP"
    scale = sys.argv[2] if len(sys.argv) > 2 else "small"
    g = graph.load(name, scale=scale)
    hierarchy = scaled_hierarchy(scale)
    print(f"{name} stand-in: {g.num_vertices} vertices, "
          f"{g.num_edges} edges\n")

    suite = [
        apps.PageRank(),
        apps.ConnectedComponents(),
        apps.PageRankDelta(),
        apps.Radii(),
        apps.MaximalIndependentSet(),
    ]
    rows = []
    for app in suite:
        if app.info.name == "Radii" and name == "HBUBL":
            print("skipping Radii on HBUBL (no pull iterations; paper "
                  "does the same)")
            continue
        prepared = sim.prepare_run(app, g)
        drrip = sim.simulate_prepared(prepared, "DRRIP", hierarchy)
        popt = sim.simulate_prepared(prepared, "P-OPT", hierarchy)
        rows.append(
            {
                "app": app.info.name,
                "style": app.info.execution_style,
                "streams": len(prepared.irregular_streams),
                "RM ways": popt.reserved_llc_ways,
                "DRRIP miss%": f"{drrip.llc_miss_rate:.1%}",
                "P-OPT miss%": f"{popt.llc_miss_rate:.1%}",
                "speedup": f"{popt.speedup_over(drrip):.2f}x",
                "result": describe_result(
                    app.info.name, prepared.reference_result
                ),
            }
        )
    print(format_table(rows, f"Application suite on {name} "
                             "(P-OPT vs DRRIP)"))


if __name__ == "__main__":
    main()
