"""P-OPT's architecture mechanisms beyond the replacement decision.

Demonstrates the Section V machinery on a real run:

- way reservation math (how many LLC ways the Rereference Matrix pins,
  and the Fig. 11 P-OPT vs P-OPT-SE capacity trade-off);
- the next-ref / streaming engine cost counters (RM lookups, epoch
  transitions, bytes streamed) and what they cost in the timing model,
  including a pessimistic non-overlapped next-ref engine;
- NUCA bank-locality of RM lookups under P-OPT's modified mapping
  (Section V-E);
- epoch-serial parallel execution with a main-thread currVertex
  (Section V-F).

Run:  python examples/architecture_features.py [scale]
"""

import sys

from repro import apps, graph, sim
from repro.apps import (
    epoch_serial_parallel_order,
    main_thread_vertex_channel,
)
from repro.cache import BankMapper, scaled_hierarchy
from repro.popt.arch import nuca_locality_report, reserved_ways
from repro.popt.rereference import epoch_geometry
from repro.sim.timing import TimingModel


def main() -> None:
    scale = sys.argv[1] if len(sys.argv) > 1 else "small"
    g = graph.load("DBP", scale=scale)
    hierarchy = scaled_hierarchy(scale)
    prepared = sim.prepare_run(apps.PageRank(), g)

    print("=== Way reservation (Section V-A / Fig. 11) ===")
    for policy in ("P-OPT", "P-OPT-SE"):
        result = sim.simulate_prepared(prepared, policy, hierarchy)
        print(f"  {policy:9s}: {result.reserved_llc_ways} of "
              f"{hierarchy.llc.num_ways} ways reserved, miss rate "
              f"{result.llc_miss_rate:.3f}")

    print("\n=== Engine cost counters (Sections V-C/V-D) ===")
    result = sim.simulate_prepared(prepared, "P-OPT", hierarchy)
    for key, value in result.popt_counters.items():
        print(f"  {key:20s} {value}")

    print("\n=== Timing: overlapped vs non-overlapped next-ref engine ===")
    overlapped = TimingModel(hierarchy)  # paper design: hidden by DRAM
    pessimistic = TimingModel(hierarchy, rm_lookup_cycles=4.0)
    for name, model in (("overlapped", overlapped),
                        ("non-overlapped", pessimistic)):
        cycles = model.cycles(
            result.level_counts,
            result.instructions,
            popt_bytes_streamed=result.popt_counters["bytes_streamed"],
            popt_rm_lookups=result.popt_counters["rm_lookups"],
        )
        print(f"  {name:15s}: {cycles:,.0f} cycles")

    print("\n=== Next-ref engine pipeline (Section V-C) ===")
    from repro.popt import NextRefEngineModel
    from repro.cache import paper_table1

    engine = NextRefEngineModel()
    paper_machine = paper_table1()
    print(f"  worst-case search, {hierarchy.llc.num_ways}-way LLC: "
          f"{engine.worst_case_latency(hierarchy.llc)} cycles")
    print(f"  paper machine: {engine.worst_case_latency(paper_machine.llc)}"
          f" cycles vs {paper_machine.dram_latency_cycles}-cycle DRAM -> "
          f"hidden={engine.hidden_by_dram(paper_machine)} "
          f"(slack {engine.slack_cycles(paper_machine)} cycles)")

    print("\n=== NUCA bank locality of RM lookups (Section V-E) ===")
    mapper = BankMapper(num_banks=8)
    span = prepared.irregular_streams[0].span
    report = nuca_locality_report(mapper, span)
    print(f"  modified block-interleaved mapping: "
          f"{report['modified']:.0%} bank-local")
    print(f"  default line striping:              "
          f"{report['default']:.0%} bank-local")

    print("\n=== Epoch-serial parallelism (Section V-F) ===")
    serial = sim.simulate_prepared(prepared, "P-OPT", hierarchy)
    __, epoch_size, __ = epoch_geometry(g.num_vertices, 8)
    order = epoch_serial_parallel_order(
        g.num_vertices, epoch_size, num_threads=8
    )
    parallel_run = sim.prepare_run(apps.PageRank(), g, order=order)
    parallel_run.trace = main_thread_vertex_channel(
        parallel_run.trace, epoch_size, num_threads=8
    )
    parallel = sim.simulate_prepared(parallel_run, "P-OPT", hierarchy)
    print(f"  serial miss rate:    {serial.llc_miss_rate:.3f}")
    print(f"  8-thread miss rate:  {parallel.llc_miss_rate:.3f} "
          "(main-thread currVertex approximation)")


if __name__ == "__main__":
    main()
