"""Why graph analytics thrashes caches — the paper's Section II, measured.

Uses stack-distance analysis over a real PageRank trace to show:

1. the LRU miss-rate curve: the irregular working set needs orders of
   magnitude more capacity than any realistic LLC;
2. per-access-site reuse profiles: the streaming sites (offsets,
   neighbors, dstData) reuse at tiny distances while the single
   ``srcData`` site's distances span the whole graph — one PC, wildly
   mixed localities, which is exactly why SHiP-PC/Hawkeye/SDBP-style
   PC-indexed prediction fails here (Section II-B);
3. what P-OPT does about it, by simulating the same trace.

Run:  python examples/locality_anatomy.py [graph] [scale]
"""

import sys

from repro import apps, graph, sim
from repro.cache import scaled_hierarchy
from repro.memory.trace import AccessKind
from repro.sim.analysis import (
    miss_rate_curve,
    per_site_reuse_stats,
    reuse_distances,
)
from repro.sim.tables import format_table

SITE_NAMES = {
    AccessKind.OFFSETS: "offsets (stream)",
    AccessKind.NEIGHBORS: "neighbors (stream)",
    AccessKind.IRREG_DATA: "srcData (irregular)",
    AccessKind.DENSE_DATA: "dstData (stream)",
    AccessKind.FRONTIER: "frontier (irregular)",
}


def bar(fraction: float, width: int = 40) -> str:
    filled = int(round(fraction * width))
    return "#" * filled + "." * (width - filled)


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "URAND"
    scale = sys.argv[2] if len(sys.argv) > 2 else "small"
    g = graph.load(name, scale=scale)
    hierarchy = scaled_hierarchy(scale)
    prepared = sim.prepare_run(apps.PageRank(), g)
    llc_lines = hierarchy.llc.num_sets * hierarchy.llc.num_ways

    print(f"{name}: {g.num_vertices} vertices, {g.num_edges} edges; "
          f"LLC holds {llc_lines} lines\n")

    distances = reuse_distances(prepared.trace)
    capacities = [llc_lines // 4, llc_lines, 4 * llc_lines,
                  16 * llc_lines, 64 * llc_lines]
    curve = miss_rate_curve(
        prepared.trace, capacities, distances=distances
    )
    print("LRU miss-rate curve (fully associative):")
    for capacity in capacities:
        marker = "  <- this LLC" if capacity == llc_lines else ""
        print(f"  {capacity:7d} lines |{bar(curve[capacity])}| "
              f"{curve[capacity]:.1%}{marker}")

    print("\nPer-access-site reuse profiles:")
    rows = []
    for profile in per_site_reuse_stats(prepared.trace):
        row = profile.as_row()
        row["site"] = SITE_NAMES.get(profile.pc, str(profile.pc))
        rows.append(row)
    print(format_table(rows))
    print(
        "\nReading: the irregular site's reuse distances dwarf the LLC "
        "while the streams' fit in L1 — and a PC-indexed predictor must "
        "assign the irregular site ONE prediction for all of it."
    )

    print("\nWhat exact next-reference information buys on this trace:")
    for policy in ("LRU", "DRRIP", "P-OPT", "T-OPT"):
        result = sim.simulate_prepared(prepared, policy, hierarchy)
        print(f"  {policy:6s} LLC miss rate "
              f"|{bar(result.llc_miss_rate)}| "
              f"{result.llc_miss_rate:.1%}")


if __name__ == "__main__":
    main()
