"""Quickstart: P-OPT vs. standard replacement on PageRank.

Loads a scaled-down stand-in of the paper's URAND graph, runs one pull
PageRank iteration through the simulated cache hierarchy, and compares
LRU, DRRIP, P-OPT, and the idealized T-OPT upper bound — the essence of
the paper's Fig. 10.

Run:  python examples/quickstart.py [scale]
"""

import sys

from repro import apps, graph, sim
from repro.cache import scaled_hierarchy


def main() -> None:
    scale = sys.argv[1] if len(sys.argv) > 1 else "small"
    g = graph.load("URAND", scale=scale)
    print(f"Graph: URAND stand-in, {g.num_vertices} vertices, "
          f"{g.num_edges} edges")

    hierarchy = scaled_hierarchy(scale)
    print(f"LLC: {hierarchy.llc.capacity_bytes // 1024} KiB, "
          f"{hierarchy.llc.num_ways}-way\n")

    # Run the kernel once; the same trace replays under every policy.
    prepared = sim.prepare_run(apps.PageRank(), g)
    print(f"PageRank trace: {prepared.num_accesses} memory accesses "
          f"({len(prepared.irregular_streams)} irregular stream)\n")

    results = {}
    for policy in ("LRU", "DRRIP", "P-OPT", "T-OPT"):
        results[policy] = sim.simulate_prepared(
            prepared, policy, hierarchy
        )

    lru = results["LRU"]
    drrip = results["DRRIP"]
    print(f"{'policy':8s} {'miss rate':>10s} {'LLC MPKI':>10s} "
          f"{'speedup/LRU':>12s} {'speedup/DRRIP':>14s}")
    for name, result in results.items():
        print(
            f"{name:8s} {result.llc_miss_rate:10.3f} "
            f"{result.llc_mpki:10.2f} {result.speedup_over(lru):12.3f} "
            f"{result.speedup_over(drrip):14.3f}"
        )

    popt = results["P-OPT"]
    print(
        f"\nP-OPT reserved {popt.reserved_llc_ways} of "
        f"{hierarchy.llc.num_ways} LLC ways for Rereference Matrix "
        f"columns and cut LLC misses by "
        f"{popt.miss_reduction_over(drrip):.1%} vs DRRIP "
        f"(paper: ~24% on average)."
    )


if __name__ == "__main__":
    main()
