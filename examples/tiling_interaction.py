"""CSR-segmenting and P-OPT are mutually enabling (paper Fig. 13).

Sweeps the tile count for CSR-segmented PageRank under DRRIP and P-OPT.
Two effects to look for, both from Section VII-C2:

1. P-OPT reaches a given miss level with far fewer tiles than DRRIP —
   and preprocessing cost (one sub-CSC build per tile) scales with tile
   count, so fewer tiles is a real saving.
2. Tiling shrinks the Rereference Matrix slice P-OPT must pin (only the
   active tile's rows), freeing LLC ways.

Run:  python examples/tiling_interaction.py [graph] [scale]
"""

import sys

from repro import graph, sim
from repro.apps import PageRank
from repro.apps.tiled_pagerank import TiledPageRank
from repro.cache import scaled_hierarchy
from repro.sim.tables import format_table


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "URAND"
    scale = sys.argv[2] if len(sys.argv) > 2 else "small"
    g = graph.load(name, scale=scale)
    hierarchy = scaled_hierarchy(scale)

    untiled = sim.prepare_run(PageRank(), g)
    reference = sim.simulate_prepared(untiled, "DRRIP", hierarchy)

    rows = []
    for tiles in (1, 2, 4, 8, 16):
        prepared = (
            untiled
            if tiles == 1
            else sim.prepare_run(TiledPageRank(tiles), g)
        )
        row = {"tiles": tiles}
        for policy in ("DRRIP", "P-OPT"):
            result = sim.simulate_prepared(prepared, policy, hierarchy)
            row[f"{policy} misses (norm)"] = round(
                result.llc.misses / reference.llc.misses, 3
            )
            if policy == "P-OPT":
                row["RM ways"] = result.reserved_llc_ways
        rows.append(row)
        print(f"done: {tiles} tile(s)")

    print()
    print(format_table(
        rows,
        f"{name}: LLC misses normalized to untiled DRRIP (Fig. 13)",
    ))
    print("\nReading: find the first tile count where each policy drops "
          "below a target line — P-OPT gets there with fewer tiles.")


if __name__ == "__main__":
    main()
