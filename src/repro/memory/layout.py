"""Address-space layout for simulated application data.

Graph kernels operate over a handful of large arrays (CSR offsets and
neighbors, per-vertex data, frontier bit-vectors). The cache simulator works
on byte addresses, so each array is placed at a line-aligned base address in
a flat simulated address space.

P-OPT's architecture (Section V-B) identifies irregularly-accessed data by
address range: software configures ``irreg_base``/``irreg_bound`` registers,
and the paper guarantees contiguity by allocating ``irregData`` in a single
1 GB huge page. Here every array is contiguous by construction, and spans
flagged ``irregular=True`` model those registers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..errors import LayoutError

__all__ = ["ArraySpan", "AddressSpace"]


@dataclass(frozen=True)
class ArraySpan:
    """A contiguous simulated array.

    ``elem_bits`` supports sub-byte elements: frontier bit-vectors use one
    bit per vertex (Table II), so 512 vertices share a 64 B cache line.
    """

    name: str
    base: int
    num_elems: int
    elem_bits: int
    line_size: int
    irregular: bool

    @property
    def num_bytes(self) -> int:
        """Bytes occupied, rounded up to whole bytes."""
        return (self.num_elems * self.elem_bits + 7) // 8

    @property
    def bound(self) -> int:
        """One past the last byte (the ``irreg_bound`` register value)."""
        return self.base + self.num_bytes

    @property
    def elems_per_line(self) -> int:
        """How many elements share one cache line."""
        return max(1, (self.line_size * 8) // self.elem_bits)

    @property
    def num_lines(self) -> int:
        """Cache lines spanned (the Rereference Matrix's row count)."""
        return (self.num_bytes + self.line_size - 1) // self.line_size

    def addr_of(self, index) -> "np.ndarray | int":
        """Byte address of element ``index`` (scalar or numpy array)."""
        if self.elem_bits % 8 == 0:
            return self.base + index * (self.elem_bits // 8)
        return self.base + (index * self.elem_bits) // 8

    def line_of(self, index) -> "np.ndarray | int":
        """Array-local cache-line ID of element ``index``."""
        return (index * self.elem_bits) // (8 * self.line_size)

    def line_id_of_addr(self, addr) -> "np.ndarray | int":
        """Array-local cache-line ID for a byte address inside the span.

        This is the next-ref engine's address arithmetic:
        ``cachelineID = (addr - irreg_base) / 64`` (Section V-C).
        """
        return (addr - self.base) // self.line_size

    def contains(self, addr) -> "np.ndarray | bool":
        """Whether ``addr`` falls inside [base, bound) — the base/bound
        register comparison the next-ref engine performs per way."""
        return (addr >= self.base) & (addr < self.bound)


class AddressSpace:
    """A flat simulated address space with line-aligned allocation.

    Arrays are placed sequentially; each allocation is aligned to the cache
    line size and padded so that no two arrays share a line (mirroring the
    paper's huge-page placement, and keeping ``irregular`` range checks
    exact).
    """

    def __init__(self, line_size: int = 64, base: int = 1 << 30) -> None:
        if line_size <= 0 or line_size & (line_size - 1):
            raise LayoutError("line_size must be a positive power of two")
        self.line_size = line_size
        self._cursor = base
        self._spans: Dict[str, ArraySpan] = {}

    def alloc(
        self,
        name: str,
        num_elems: int,
        elem_bits: int,
        irregular: bool = False,
    ) -> ArraySpan:
        """Allocate a named array and return its span.

        ``irregular=True`` marks the span as one of the kernel's
        irregularly-accessed data structures (``srcData``/``dstData``/
        frontier) — the data P-OPT builds a Rereference Matrix for.
        """
        if name in self._spans:
            raise LayoutError(f"array {name!r} already allocated")
        if num_elems < 0 or elem_bits <= 0:
            raise LayoutError("num_elems must be >= 0 and elem_bits > 0")
        span = ArraySpan(
            name=name,
            base=self._cursor,
            num_elems=num_elems,
            elem_bits=elem_bits,
            line_size=self.line_size,
            irregular=irregular,
        )
        self._spans[name] = span
        lines = max(1, span.num_lines)
        self._cursor += lines * self.line_size
        return span

    @classmethod
    def from_spans(
        cls, spans: "List[ArraySpan]", line_size: int = 64
    ) -> "AddressSpace":
        """Reconstruct a layout from already-placed spans.

        Used when reloading a serialized run: spans keep their recorded
        base addresses (no re-allocation), and the cursor lands past the
        highest span so further ``alloc`` calls stay collision-free.
        """
        space = cls(line_size=line_size)
        cursor = space._cursor
        for span in spans:
            if span.name in space._spans:
                raise LayoutError(f"array {span.name!r} already allocated")
            space._spans[span.name] = span
            end = span.base + max(1, span.num_lines) * line_size
            cursor = max(cursor, end)
        space._cursor = cursor
        return space

    def __getitem__(self, name: str) -> ArraySpan:
        try:
            return self._spans[name]
        except KeyError:
            raise LayoutError(f"no array named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._spans

    @property
    def spans(self) -> List[ArraySpan]:
        """All spans in allocation order."""
        return list(self._spans.values())

    @property
    def irregular_spans(self) -> List[ArraySpan]:
        """Spans flagged irregular (the irreg_base/bound register set)."""
        return [span for span in self._spans.values() if span.irregular]

    def span_of_addr(self, addr: int) -> Optional[ArraySpan]:
        """The span containing byte address ``addr``, or None."""
        for span in self._spans.values():
            if span.contains(addr):
                return span
        return None

    def total_bytes(self) -> int:
        """Total footprint of all allocated arrays (line-rounded)."""
        return sum(max(1, s.num_lines) * self.line_size for s in self.spans)
