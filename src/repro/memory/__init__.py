"""Memory substrate: simulated address space and access traces."""

from .layout import AddressSpace, ArraySpan
from .trace import AccessKind, MemoryTrace, TraceBuilder, concat_traces

__all__ = [
    "AddressSpace",
    "ArraySpan",
    "AccessKind",
    "MemoryTrace",
    "TraceBuilder",
    "concat_traces",
]
