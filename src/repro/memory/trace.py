"""Memory access traces.

An application run produces a :class:`MemoryTrace`: parallel numpy arrays of
byte addresses, access-site IDs (a stand-in for the program counter, used by
PC-indexed policies like SHiP-PC and Hawkeye), write flags, and the
outer-loop vertex active at each access.

The ``vertex`` channel models the paper's ``update_index`` instruction
(Section V-C): graph software tells the LLC which outer-loop vertex is being
processed so the next-ref engine can evaluate Algorithm 2. Replaying a trace
through the cache hierarchy delivers that value to the policy at every
access.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

import numpy as np

from ..errors import SimulationError

__all__ = [
    "AccessKind",
    "MemoryTrace",
    "DecodedTrace",
    "decode_trace",
    "TraceBuilder",
    "concat_traces",
]


class AccessKind:
    """Access-site IDs shared by all kernels (the simulated "PC").

    One ID per static access site; distinct kernels may reuse IDs since a
    run simulates a single kernel at a time.
    """

    OFFSETS = 1       # CSR/CSC offsets array (streaming)
    NEIGHBORS = 2     # CSR/CSC neighbor array (streaming)
    IRREG_DATA = 3    # srcData/dstData irregular indexed access
    DENSE_DATA = 4    # per-outer-vertex streaming access
    FRONTIER = 5      # frontier bit-vector irregular access
    FRONTIER_OUT = 6  # next-frontier write
    BIN_BUFFER = 7    # propagation-blocking bin append (streaming write)
    OTHER = 8

    ALL = (
        OFFSETS,
        NEIGHBORS,
        IRREG_DATA,
        DENSE_DATA,
        FRONTIER,
        FRONTIER_OUT,
        BIN_BUFFER,
        OTHER,
    )


@dataclass(frozen=True)
class MemoryTrace:
    """An immutable sequence of memory accesses (struct-of-arrays)."""

    addresses: np.ndarray  # int64 byte addresses
    pcs: np.ndarray        # uint8 access-site IDs
    writes: np.ndarray     # bool
    vertices: np.ndarray   # int32 current outer-loop vertex per access

    def __post_init__(self) -> None:
        n = len(self.addresses)
        if not (len(self.pcs) == len(self.writes) == len(self.vertices) == n):
            raise SimulationError("trace channels have mismatched lengths")
        object.__setattr__(
            self, "addresses", np.ascontiguousarray(self.addresses, np.int64)
        )
        object.__setattr__(self, "pcs", np.ascontiguousarray(self.pcs, np.uint8))
        object.__setattr__(
            self, "writes", np.ascontiguousarray(self.writes, bool)
        )
        object.__setattr__(
            self, "vertices", np.ascontiguousarray(self.vertices, np.int32)
        )

    def __len__(self) -> int:
        return len(self.addresses)

    def __getstate__(self) -> dict:
        # The decode memo (``_decoded``) can dwarf the trace itself — it
        # holds line arrays plus materialized Python-list views — and is
        # cheap to rebuild, so pickles (worker task payloads, artifact
        # blobs) carry only the four channels.
        state = dict(self.__dict__)
        state.pop("_decoded", None)
        return state

    def __setstate__(self, state: dict) -> None:
        # Frozen dataclass: restore through object.__setattr__.
        for key, value in state.items():
            object.__setattr__(self, key, value)

    def __iter__(self) -> Iterator[Tuple[int, int, bool, int]]:
        for i in range(len(self)):
            yield (
                int(self.addresses[i]),
                int(self.pcs[i]),
                bool(self.writes[i]),
                int(self.vertices[i]),
            )

    def slice(self, start: int, stop: int) -> "MemoryTrace":
        """A sub-trace covering accesses [start, stop)."""
        return MemoryTrace(
            addresses=self.addresses[start:stop],
            pcs=self.pcs[start:stop],
            writes=self.writes[start:stop],
            vertices=self.vertices[start:stop],
        )

    def line_addresses(self, line_size: int = 64) -> np.ndarray:
        """Cache-line-granular addresses (address // line_size)."""
        return self.addresses // line_size

    def next_use_indices(self, line_size: int = 64) -> np.ndarray:
        """For each access, the index of the next access to the same line.

        Accesses with no future reference get ``len(trace)`` (infinity).
        This is the oracle Belady's MIN needs: a single backward scan over
        the materialized trace, exactly how offline OPT baselines are built.
        """
        lines = self.line_addresses(line_size)
        n = len(lines)
        next_use = np.full(n, n, dtype=np.int64)
        last_seen: dict = {}
        for i in range(n - 1, -1, -1):
            line = int(lines[i])
            if line in last_seen:
                next_use[i] = last_seen[line]
            last_seen[line] = i
        return next_use

    def save(self, path) -> None:
        """Serialize to a numpy ``.npz`` archive (see :meth:`load`)."""
        np.savez_compressed(
            path,
            addresses=self.addresses,
            pcs=self.pcs,
            writes=self.writes,
            vertices=self.vertices,
        )

    @classmethod
    def load(cls, path) -> "MemoryTrace":
        """Read a trace written by :meth:`save`."""
        with np.load(path) as data:
            missing = {
                "addresses", "pcs", "writes", "vertices"
            } - set(data.files)
            if missing:
                raise SimulationError(
                    f"{path}: not a trace archive (missing {missing})"
                )
            return cls(
                addresses=data["addresses"],
                pcs=data["pcs"],
                writes=data["writes"],
                vertices=data["vertices"],
            )

    def stats(self) -> dict:
        """Per-access-kind counts (useful for tests and reports)."""
        unique, counts = np.unique(self.pcs, return_counts=True)
        return {int(k): int(c) for k, c in zip(unique, counts)}


@dataclass
class DecodedTrace:
    """A trace decoded to cache-line granularity (replay-engine phase 1).

    Holds the line-granular addresses alongside the per-access metadata
    channels, plus a lazily materialized plain-list view for the
    per-access replay loops (list indexing beats numpy scalar access in
    the interpreter's hot loop).
    """

    lines: np.ndarray      # int64 line-granular addresses
    pcs: np.ndarray        # uint8 access-site IDs
    writes: np.ndarray     # bool store flags
    vertices: np.ndarray   # int32 outer-loop vertex per access

    def __post_init__(self) -> None:
        # The decode is memoized on the trace and shared by every replay
        # (and every worker task touching the prepared run), so the
        # channels are read-only from birth; ``pcs``/``writes``/
        # ``vertices`` alias the source trace, freezing those too.
        for channel in (self.lines, self.pcs, self.writes, self.vertices):
            channel.setflags(write=False)
        self._channel_lists: dict = {}

    def __len__(self) -> int:
        return len(self.lines)

    def channel_lists(self, *channels: str) -> Tuple[list, ...]:
        """The named channels as plain Python lists, memoized per channel.

        Callers name only what their loop reads (``"lines"``,
        ``"pcs"``, ``"writes"``, ``"vertices"``), so a consumer that
        never touches, say, the vertex channel never pays its
        ``.tolist()`` boxing pass.
        """
        out = []
        for name in channels:
            cached = self._channel_lists.get(name)
            if cached is None:
                cached = getattr(self, name).tolist()
                self._channel_lists[name] = cached
            out.append(cached)
        return tuple(out)

    def as_lists(self) -> Tuple[list, list, list, list]:
        """(lines, pcs, writes, vertices) as plain Python lists, memoized."""
        return self.channel_lists("lines", "pcs", "writes", "vertices")


def decode_trace(trace: MemoryTrace, line_shift: int) -> DecodedTrace:
    """Decode ``trace`` to line granularity, memoized per (trace, shift).

    Every replay loop (driver, prefetch, multicore, engine) shares this
    decode, so one prepared run pays the address-shift and ``.tolist()``
    conversions once per line size rather than once per policy replay.
    """
    cache = getattr(trace, "_decoded", None)
    if cache is None:
        cache = {}
        object.__setattr__(trace, "_decoded", cache)
    decoded = cache.get(line_shift)
    if decoded is None:
        decoded = DecodedTrace(
            lines=trace.addresses >> line_shift,
            pcs=trace.pcs,
            writes=trace.writes,
            vertices=trace.vertices,
        )
        cache[line_shift] = decoded
    return decoded


class TraceBuilder:
    """Accumulates trace chunks (vectorized) and finalizes a MemoryTrace.

    Kernels append whole numpy chunks (one per loop nest) rather than one
    access at a time, keeping trace generation O(edges) in numpy.
    """

    def __init__(self) -> None:
        self._addresses: List[np.ndarray] = []
        self._pcs: List[np.ndarray] = []
        self._writes: List[np.ndarray] = []
        self._vertices: List[np.ndarray] = []

    def append_chunk(
        self,
        addresses: np.ndarray,
        pc: "int | np.ndarray",
        write: "bool | np.ndarray",
        vertex: "int | np.ndarray",
    ) -> None:
        """Append a chunk of accesses in program order."""
        addresses = np.asarray(addresses, dtype=np.int64).ravel()
        n = len(addresses)
        self._addresses.append(addresses)
        self._pcs.append(np.broadcast_to(np.asarray(pc, np.uint8), (n,)))
        self._writes.append(np.broadcast_to(np.asarray(write, bool), (n,)))
        self._vertices.append(
            np.broadcast_to(np.asarray(vertex, np.int32), (n,))
        )

    def append_access(
        self, address: int, pc: int, write: bool, vertex: int
    ) -> None:
        """Append a single access (convenience for scalar emission)."""
        self.append_chunk(np.array([address]), pc, write, vertex)

    def build(self) -> MemoryTrace:
        """Finalize into an immutable trace."""
        if not self._addresses:
            empty = np.empty(0)
            return MemoryTrace(
                addresses=empty.astype(np.int64),
                pcs=empty.astype(np.uint8),
                writes=empty.astype(bool),
                vertices=empty.astype(np.int32),
            )
        return MemoryTrace(
            addresses=np.concatenate(self._addresses),
            pcs=np.concatenate(self._pcs),
            writes=np.concatenate(self._writes),
            vertices=np.concatenate(self._vertices),
        )


def concat_traces(traces: Sequence[MemoryTrace]) -> MemoryTrace:
    """Concatenate traces in order (e.g., successive kernel iterations)."""
    if not traces:
        return TraceBuilder().build()
    return MemoryTrace(
        addresses=np.concatenate([t.addresses for t in traces]),
        pcs=np.concatenate([t.pcs for t in traces]),
        writes=np.concatenate([t.writes for t in traces]),
        vertices=np.concatenate([t.vertices for t in traces]),
    )
