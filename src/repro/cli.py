"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``run``        simulate one (app, graph, policy) combination
- ``compare``    sweep several policies over one prepared run
- ``experiment`` regenerate a paper figure/table by ID
- ``matrix``     run the scenario-matrix spec (techniques x policies
  x graphs x LLC sizes), streaming rows; resumable via the artifact
  store
- ``tables``     print the paper's setup tables (I-III)
- ``graphs``     list the Table III graph stand-ins with their stats

Examples::

    python -m repro run --app PR --graph URAND --policy P-OPT
    python -m repro compare --app CC --graph DBP \
        --policies LRU,DRRIP,P-OPT,T-OPT
    python -m repro experiment fig07 --scale small
    python -m repro matrix --scale tiny --jobs 4 --artifacts build/arts
    python -m repro run --app PR --graph file:tests/graph/data/karate.el
    python -m repro tables

``file:<path>`` graph specs load real graphs from disk
(``.el``/``.wel``/``.mtx``/``.sg``/``.npz``) anywhere a graph name is
accepted; see ``repro.graph.io``.
"""

from __future__ import annotations

import argparse
import inspect
import json
import os
import sys
from typing import Dict, List

from .cache import scaled_hierarchy
from .graph import datasets, degree_stats
from .sim import experiments, prepare_run, simulate_prepared
from .sim import artifacts as artifacts_module
from .sim.parallel import APP_FACTORIES, START_METHOD_ENV
from .sim.spec import ExperimentSpec, run_spec, scenario_matrix
from .sim.tables import format_table, table1_rows, table2_rows, table3_rows

__all__ = ["main", "APP_FACTORIES"]

EXPERIMENTS = {
    "fig02": experiments.fig02_sota_mpki,
    "fig04": experiments.fig04_topt_mpki,
    "fig07": experiments.fig07_rereference_designs,
    "fig10": experiments.fig10_main_result,
    "fig11": experiments.fig11_popt_se_scaling,
    "fig12a": experiments.fig12a_grasp,
    "fig12b": experiments.fig12b_hats,
    "fig13": experiments.fig13_tiling,
    "fig14": experiments.fig14_pb_phi,
    "fig15": experiments.fig15_quantization,
    "fig16": experiments.fig16_llc_sensitivity,
    "table4": experiments.table4_preprocessing,
}


def _graph_choices():
    return datasets.graph_names() + [
        spec.name for spec in datasets.EXTENDED_GRAPHS
    ]


def _graph_spec(value: str) -> str:
    """argparse type for --graph: a known stand-in or a file:<path>."""
    if datasets.is_file_spec(value) or value in _graph_choices():
        return value
    raise argparse.ArgumentTypeError(
        f"unknown graph {value!r}; choose from "
        f"{', '.join(_graph_choices())} or pass file:<path> "
        f"(.el/.wel/.mtx/.sg/.npz)"
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="P-OPT (HPCA 2021) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="simulate one app/graph/policy")
    run.add_argument("--app", choices=sorted(APP_FACTORIES), default="PR")
    run.add_argument(
        "--graph", type=_graph_spec, default="URAND",
        help="a named stand-in or file:<path> to a real graph",
    )
    run.add_argument("--policy", default="P-OPT")
    run.add_argument(
        "--scale", choices=sorted(datasets.SCALES), default="small"
    )
    run.add_argument("--seed", type=int, default=42)
    run.add_argument(
        "--sanitize", action="store_true",
        help="replay with runtime invariant checks "
             "(repro.cache.sanitizer)",
    )

    compare = sub.add_parser("compare", help="sweep policies on one run")
    compare.add_argument(
        "--app", choices=sorted(APP_FACTORIES), default="PR"
    )
    compare.add_argument(
        "--graph", type=_graph_spec, default="URAND",
        help="a named stand-in or file:<path> to a real graph",
    )
    compare.add_argument(
        "--policies", default="LRU,DRRIP,P-OPT,T-OPT",
        help="comma-separated policy names",
    )
    compare.add_argument(
        "--scale", choices=sorted(datasets.SCALES), default="small"
    )
    compare.add_argument("--seed", type=int, default=42)
    compare.add_argument(
        "--sanitize", action="store_true",
        help="replay every policy with runtime invariant checks, "
             "including the Belady bound across the sweep",
    )
    compare.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the policy sweep (1 = in-process; "
             "results are identical for any value)",
    )

    experiment = sub.add_parser(
        "experiment", help="regenerate a paper figure/table"
    )
    experiment.add_argument("id", choices=sorted(EXPERIMENTS))
    experiment.add_argument(
        "--scale", choices=sorted(datasets.SCALES), default="small"
    )
    experiment.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes, for experiments that support sweeping "
             "in parallel (others run serially regardless)",
    )

    matrix = sub.add_parser(
        "matrix",
        help="run the scenario-matrix spec (technique x policy x "
             "graph x LLC size)",
    )
    matrix.add_argument(
        "--scale", choices=sorted(datasets.SCALES), default="small"
    )
    matrix.add_argument(
        "--graphs", default="",
        help="comma-separated graph subset; names and file:<path> "
             "specs both work (default: all stand-ins)",
    )
    matrix.add_argument(
        "--techniques", default="",
        help="comma-separated software-technique subset "
             "(default: none,tiling:4,pb,phi,hats)",
    )
    matrix.add_argument("--seed", type=int, default=42)
    matrix.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes (results identical for any value)",
    )
    matrix.add_argument(
        "--artifacts", default="",
        help="artifact-store directory; reruns reuse cached traces, "
             "filters and rows, making interrupted runs resumable",
    )
    matrix.add_argument(
        "--out", default="",
        help="stream rows to this file as JSON lines while running "
             "(default: print a table at the end only)",
    )
    matrix.add_argument(
        "--start-method", default="",
        choices=["", "fork", "spawn", "forkserver"],
        help="multiprocessing start method for --jobs workers "
             "(default: platform default; rows are identical under "
             "any method — CI's spawn leg proves it)",
    )

    sub.add_parser("tables", help="print paper tables I-III")
    graphs = sub.add_parser("graphs", help="list graph stand-ins")
    graphs.add_argument(
        "--scale", choices=sorted(datasets.SCALES), default="small"
    )
    return parser


def _cmd_run(args) -> int:
    graph = datasets.load(args.graph, scale=args.scale, seed=args.seed)
    hierarchy = scaled_hierarchy(args.scale)
    prepared = prepare_run(APP_FACTORIES[args.app](), graph)
    result = simulate_prepared(
        prepared, args.policy, hierarchy, sanitize=args.sanitize
    )
    rows = [result.summary()]
    if result.popt_counters:
        rows[0].update(
            {
                "tie_rate": result.popt_counters["tie_rate"],
                "bytes_streamed": result.popt_counters["bytes_streamed"],
            }
        )
    print(format_table(rows, f"{args.app} on {args.graph} "
                             f"[{args.scale}]"))
    return 0


def _cmd_compare(args) -> int:
    names = [p.strip() for p in args.policies.split(",") if p.strip()]
    jobs = max(1, args.jobs)
    if jobs > 1 and args.sanitize:
        # The sweep-wide sanitizer (Belady bound across policies) needs
        # every replay's records on one PreparedRun; keep it in-process.
        print("note: --sanitize forces --jobs 1 (sweep-wide invariants)")
        jobs = 1
    if jobs > 1:
        spec = ExperimentSpec(
            name="compare",
            graphs=(args.graph,),
            apps=(args.app,),
            policies=tuple(names),
            scale=args.scale,
            seed=args.seed,
            chunk_size=1,
        )
        stat_rows = run_spec(spec, jobs=jobs)
        baseline_cycles = float(stat_rows[0]["cycles"])
        rows: List[Dict[str, object]] = [
            {
                "policy": item["policy"],
                "miss_rate": round(float(item["llc_miss_rate"]), 4),
                "mpki": round(float(item["llc_mpki"]), 2),
                f"speedup_vs_{names[0]}": round(
                    baseline_cycles / float(item["cycles"]), 3
                )
                if item["cycles"]
                else float("inf"),
                "reserved_ways": item["reserved_ways"],
            }
            for item in stat_rows
        ]
        print(format_table(rows, f"{args.app} on {args.graph} "
                                 f"[{args.scale}]"))
        return 0
    graph = datasets.load(args.graph, scale=args.scale, seed=args.seed)
    hierarchy = scaled_hierarchy(args.scale)
    prepared = prepare_run(APP_FACTORIES[args.app](), graph)
    results = {
        name: simulate_prepared(
            prepared, name, hierarchy, sanitize=args.sanitize
        )
        for name in names
    }
    baseline = results[names[0]]
    rows = []
    for name, result in results.items():
        rows.append(
            {
                "policy": name,
                "miss_rate": round(result.llc_miss_rate, 4),
                "mpki": round(result.llc_mpki, 2),
                f"speedup_vs_{names[0]}": round(
                    result.speedup_over(baseline), 3
                ),
                "reserved_ways": result.reserved_llc_ways,
            }
        )
    print(format_table(rows, f"{args.app} on {args.graph} "
                             f"[{args.scale}]"))
    return 0


def _cmd_experiment(args) -> int:
    fn = EXPERIMENTS[args.id]
    kwargs = {"scale": args.scale}
    if "jobs" in inspect.signature(fn).parameters:
        kwargs["jobs"] = max(1, args.jobs)
    elif args.jobs > 1:
        print(f"note: {args.id} does not sweep in parallel; "
              f"running serially")
    rows = fn(**kwargs)
    print(format_table(rows, f"{args.id} [scale={args.scale}]"))
    return 0


def _cmd_matrix(args) -> int:
    kwargs = {"scale": args.scale, "seed": args.seed}
    if args.graphs.strip():
        kwargs["graphs"] = tuple(
            name.strip() for name in args.graphs.split(",") if name.strip()
        )
    if args.techniques.strip():
        kwargs["techniques"] = tuple(
            t.strip() for t in args.techniques.split(",") if t.strip()
        )
    spec = scenario_matrix(**kwargs)
    if args.start_method:
        os.environ[START_METHOD_ENV] = args.start_method
    if args.artifacts:
        artifacts_module.configure(args.artifacts)
    print(
        f"scenario_matrix [scale={args.scale}]: "
        f"{len(spec.expand())} units, plan {spec.plan_digest()[:12]}"
    )

    sink = open(args.out, "w") if args.out else None
    try:
        def stream(row):
            if sink is not None:
                sink.write(json.dumps(row) + "\n")
                sink.flush()

        rows = run_spec(spec, jobs=max(1, args.jobs), stream=stream)
    finally:
        if sink is not None:
            sink.close()

    if args.out:
        print(f"wrote {len(rows)} rows to {args.out}")
    else:
        print(format_table(rows, f"scenario_matrix [scale={args.scale}]"))
    if args.artifacts:
        stats = artifacts_module.get_store().stats()
        parts = [
            f"{kind}: {s.get('hits', 0)} hit / {s.get('misses', 0)} miss"
            for kind, s in sorted(stats["by_kind"].items())
            if any(s.values())
        ]
        print("artifact cache: " + ("; ".join(parts) or "unused"))
    return 0


def _cmd_tables(args) -> int:
    print(format_table(table1_rows(), "Table I: simulation parameters"))
    print()
    print(format_table(table2_rows(), "Table II: applications"))
    print()
    print(format_table(table3_rows(), "Table III: input graphs"))
    return 0


def _cmd_graphs(args) -> int:
    rows = []
    for name in datasets.graph_names():
        graph = datasets.load(name, scale=args.scale)
        row = {"graph": name}
        row.update(degree_stats(graph).as_row())
        rows.append(row)
    print(format_table(rows, f"Graph stand-ins at scale={args.scale}"))
    return 0


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    handler = {
        "run": _cmd_run,
        "compare": _cmd_compare,
        "experiment": _cmd_experiment,
        "matrix": _cmd_matrix,
        "tables": _cmd_tables,
        "graphs": _cmd_graphs,
    }[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
