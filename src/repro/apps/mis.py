"""Maximal Independent Set (Ligra's MIS, pull-mostly).

Luby-style rounds over random priorities: an undecided vertex joins the
set when its priority beats every undecided neighbor's; its neighbors
drop out. Each round's pull scan reads, per incoming edge from an
undecided source, the source's status/priority word — the 4 B irregular
stream — gated by the undecided-frontier bit-vector (Table II: 4 B &
1 bit).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..graph.builders import symmetrize
from ..graph.csr import CSRGraph
from ..memory.layout import AddressSpace
from ..memory.trace import AccessKind, concat_traces
from ..popt.topt import IrregularStream
from .base import AppInfo, GraphApp, PerEdgeAccess, PreparedRun, traversal_trace

__all__ = ["MaximalIndependentSet", "mis_reference"]

UNDECIDED, IN_SET, OUT_OF_SET = 0, 1, 2


def mis_reference(
    graph: CSRGraph, seed: int = 11, max_rounds: int = 64
) -> Tuple[np.ndarray, List[np.ndarray]]:
    """(status vector, per-round undecided masks) for Luby's algorithm.

    Independence is evaluated on the undirected closure, as MIS requires.
    """
    undirected = symmetrize(graph)
    n = undirected.num_vertices
    rng = np.random.default_rng(seed)
    priority = rng.permutation(n)
    status = np.full(n, UNDECIDED, dtype=np.int8)
    edge_src = undirected.neighbors.astype(np.int64)
    edge_dst = np.repeat(
        np.arange(n, dtype=np.int64), undirected.degrees()
    )
    round_masks = []
    for _ in range(max_rounds):
        undecided = status == UNDECIDED
        if not undecided.any():
            break
        round_masks.append(undecided.copy())
        # A vertex wins when no undecided neighbor has higher priority.
        relevant = undecided[edge_src] & undecided[edge_dst]
        best_neighbor = np.zeros(n, dtype=np.int64) - 1
        np.maximum.at(
            best_neighbor, edge_dst[relevant], priority[edge_src[relevant]]
        )
        winners = undecided & (priority > best_neighbor)
        status[winners] = IN_SET
        # Neighbors of winners drop out.
        loser_edges = winners[edge_src] & (status[edge_dst] == UNDECIDED)
        status[edge_dst[loser_edges]] = OUT_OF_SET
    status[status == UNDECIDED] = IN_SET  # isolated leftovers join
    return status, round_masks


class MaximalIndependentSet(GraphApp):
    """MIS with undecided-frontier pull traces."""

    info = AppInfo(
        name="MIS",
        execution_style="pull-mostly",
        irreg_elem_bits=32,
        uses_frontier=True,
        transpose_kind="CSR",
    )

    def __init__(self, max_trace_rounds: int = 2) -> None:
        self.max_trace_rounds = max_trace_rounds

    def prepare(
        self, graph: CSRGraph, line_size: int = 64, **params
    ) -> PreparedRun:
        status, round_masks = mis_reference(graph)
        undirected = symmetrize(graph)
        n = undirected.num_vertices
        csc = undirected.transpose()  # symmetric: same shape either way

        layout = AddressSpace(line_size=line_size)
        oa = layout.alloc("csc_offsets", n + 1, 64)
        na = layout.alloc("csc_neighbors", csc.num_edges, 32)
        status_span = layout.alloc("status", n, 32, irregular=True)
        frontier_bits = layout.alloc("undecided", n, 1, irregular=True)
        decision = layout.alloc("decision", n, 32)

        iterations = []
        for mask in round_masks[: self.max_trace_rounds]:
            iterations.append(
                traversal_trace(
                    topology=csc,
                    oa_span=oa,
                    na_span=na,
                    per_edge=[
                        PerEdgeAccess(
                            span=frontier_bits, pc=AccessKind.FRONTIER
                        ),
                        PerEdgeAccess(
                            span=status_span,
                            pc=AccessKind.IRREG_DATA,
                            mask=mask,
                        ),
                    ],
                    dense_span=decision,
                )
            )
        trace = concat_traces(iterations)
        streams = [
            IrregularStream(span=status_span, reference_graph=undirected),
            IrregularStream(span=frontier_bits, reference_graph=undirected),
        ]
        return PreparedRun(
            app_name=self.info.name,
            layout=layout,
            trace=trace,
            irregular_streams=streams,
            reference_result=status,
            details={"rounds": len(round_masks)},
        )
