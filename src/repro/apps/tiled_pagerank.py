"""CSR-segmented (tiled) PageRank — the Fig. 13 workload.

CSR-segmenting [57] splits the source-vertex range into tiles and runs the
pull kernel once per tile, bounding the irregular ``srcData`` range per
pass. Two P-OPT-specific consequences the paper highlights:

- *Tiling helps P-OPT*: only the active tile's slice of a Rereference
  Matrix column needs to be LLC-resident (modeled with
  ``resident_fraction = 1/num_tiles``).
- *P-OPT helps tiling*: P-OPT reaches a target miss rate with far fewer
  tiles, and preprocessing cost scales with tile count.

Next references must account for the multi-pass structure: during pass
``t`` the outer loop runs destinations 0..n-1 *again*, so the outer-loop
coordinate handed to the LLC (the ``update_index`` value) is the global
iteration index ``t * n + dst``, and the reference graph is rebuilt in
that index space.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..errors import SimulationError
from ..graph.builders import from_edges
from ..graph.csr import CSRGraph
from ..graph.tiling import segment_csr
from ..memory.layout import AddressSpace
from ..memory.trace import AccessKind, MemoryTrace, concat_traces
from ..popt.topt import IrregularStream
from .base import AppInfo, GraphApp, PerEdgeAccess, PreparedRun, traversal_trace
from .pagerank import pagerank_reference

__all__ = ["TiledPageRank"]


class TiledPageRank(GraphApp):
    """PageRank with 1-D CSR-segmenting over the source range."""

    info = AppInfo(
        name="PR-Tiled",
        execution_style="pull",
        irreg_elem_bits=32,
        uses_frontier=False,
        transpose_kind="CSR",
    )

    def __init__(self, num_tiles: int = 4) -> None:
        if num_tiles <= 0:
            raise SimulationError("num_tiles must be positive")
        self.num_tiles = num_tiles

    def prepare(
        self, graph: CSRGraph, line_size: int = 64, **params
    ) -> PreparedRun:
        n = graph.num_vertices
        csc = graph.transpose()
        tiles = segment_csr(csc, self.num_tiles)

        layout = AddressSpace(line_size=line_size)
        src_data = layout.alloc("srcData", n, 32, irregular=True)
        dst_data = layout.alloc("dstData", n, 32)
        tile_spans = []
        for index, tile in enumerate(tiles):
            # Each tile materializes its own sub-CSC (this duplication is
            # the preprocessing cost that "scales with tile count").
            oa = layout.alloc(f"tile{index}_offsets", n + 1, 64)
            na = layout.alloc(
                f"tile{index}_neighbors", max(tile.graph.num_edges, 1), 32
            )
            tile_spans.append((oa, na))

        pieces: List[MemoryTrace] = []
        for index, tile in enumerate(tiles):
            oa, na = tile_spans[index]
            piece = traversal_trace(
                topology=tile.graph,
                oa_span=oa,
                na_span=na,
                per_edge=[
                    PerEdgeAccess(span=src_data, pc=AccessKind.IRREG_DATA)
                ],
                dense_span=dst_data,
            )
            # Outer-loop coordinate becomes the global iteration index.
            pieces.append(
                MemoryTrace(
                    addresses=piece.addresses,
                    pcs=piece.pcs,
                    writes=piece.writes,
                    vertices=piece.vertices + np.int32(index * n),
                )
            )
        trace = concat_traces(pieces)

        # Reference graph in global-iteration space: srcData[v] (v inside
        # tile t) is touched at iteration t*n + dst for each out-neighbor
        # dst of v.
        sources = np.repeat(
            np.arange(n, dtype=np.int64), graph.degrees()
        )
        destinations = graph.neighbors.astype(np.int64)
        begins = np.array([tile.src_begin for tile in tiles], dtype=np.int64)
        tile_of_source = (
            np.searchsorted(begins, sources, side="right") - 1
        )
        global_refs = tile_of_source * n + destinations
        reference_graph = from_edges(
            np.column_stack([sources, global_refs]),
            num_vertices=self.num_tiles * n,
        )
        streams = [
            IrregularStream(span=src_data, reference_graph=reference_graph)
        ]
        return PreparedRun(
            app_name=f"PR-Tiled({self.num_tiles})",
            layout=layout,
            trace=trace,
            irregular_streams=streams,
            reference_result=pagerank_reference(graph),
            details={
                "num_tiles": self.num_tiles,
                # Only the active tile's RM slice must stay resident.
                "resident_fraction": 1.0 / self.num_tiles,
                "preprocessing_csr_builds": self.num_tiles,
            },
        )
