"""Application framework: graph kernels that emit their access streams.

Each app is a real kernel (it computes correct algorithm results, which
tests verify) that *also* constructs the memory access trace its
edge-processing loops would issue: streaming accesses to the CSR/CSC
offsets and neighbor arrays, per-outer-vertex dense accesses, and the
irregular per-neighbor accesses (``srcData``/``dstData``/frontier) whose
locality the paper is about (Algorithm 1, Section II-A).

Trace construction is vectorized: the per-vertex block layout
``[OA] [NA (frontier?) (irreg?)]* [dense]`` is computed with prefix sums,
giving O(edges) numpy work instead of a Python loop per access.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import SimulationError
from ..graph.csr import CSRGraph
from ..memory.layout import AddressSpace, ArraySpan
from ..memory.trace import AccessKind, MemoryTrace
from ..popt.topt import IrregularStream

__all__ = [
    "AppInfo",
    "PerEdgeAccess",
    "PreparedRun",
    "GraphApp",
    "traversal_trace",
]


@dataclass(frozen=True)
class AppInfo:
    """Table II metadata for one application."""

    name: str
    execution_style: str        # "pull", "push", or "pull-mostly"
    irreg_elem_bits: int        # srcData/dstData element size
    uses_frontier: bool
    transpose_kind: str         # which direction feeds next-refs (CSR/CSC)

    def as_row(self) -> Dict[str, object]:
        return {
            "app": self.name,
            "style": self.execution_style,
            "irregData": f"{self.irreg_elem_bits}b"
            + (" & 1bit" if self.uses_frontier else ""),
            "transpose": self.transpose_kind,
            "frontier": "Y" if self.uses_frontier else "N",
        }


@dataclass(frozen=True)
class PerEdgeAccess:
    """One irregular access made for every (active) edge.

    ``mask``, when given, is a boolean per-*neighbor-vertex* array; the
    access is only emitted for edges whose neighbor is active (how
    frontier-gated loads behave).
    """

    span: ArraySpan
    pc: int
    write: bool = False
    mask: Optional[np.ndarray] = None


@dataclass
class PreparedRun:
    """Everything the simulation driver needs for one kernel run.

    A prepared run is replayed under many LLC policies, so it also hosts
    the replay engine's policy-independent caches: the decoded trace
    (line addresses + metadata, phase 1) and the private-level filters
    (the LLC-visible subsequence per L1/L2 geometry, phase 2), keyed by
    hierarchy configuration. ``filter_counters`` records how often a
    filter was built vs reused (throughput instrumentation).
    """

    app_name: str
    layout: AddressSpace
    trace: MemoryTrace
    irregular_streams: List[IrregularStream]
    reference_result: object = None
    details: Dict[str, object] = field(default_factory=dict)
    private_filters: Dict[object, object] = field(
        default_factory=dict, repr=False
    )
    filter_counters: Dict[str, int] = field(
        default_factory=lambda: {"built": 0, "reused": 0}, repr=False
    )
    #: Per-(private geometry, LLC geometry) LLC miss counts observed by
    #: sanitized replays; the sanitizer enforces the Belady lower bound
    #: across the policies recorded here.
    sanitizer_records: Dict[object, Dict[str, int]] = field(
        default_factory=dict, repr=False
    )

    @property
    def num_accesses(self) -> int:
        return len(self.trace)

    def decoded(self, line_shift: int):
        """Line-granular decode of the trace, memoized (engine phase 1)."""
        from ..memory.trace import decode_trace

        return decode_trace(self.trace, line_shift)


class GraphApp:
    """Base class for the five Table II applications (plus PB/PHI)."""

    info: AppInfo

    def prepare(self, graph: CSRGraph, **params) -> PreparedRun:
        """Run the kernel and materialize its trace for simulation."""
        raise NotImplementedError

    @property
    def name(self) -> str:
        return self.info.name


def _segmented_edge_ids(
    topology: CSRGraph, order: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Edge indices grouped by outer vertex in iteration order.

    Returns (edge_ids, outer_per_edge): ``edge_ids`` indexes
    ``topology.neighbors`` and is ordered by the traversal.
    """
    degrees = topology.degrees()
    ordered_degrees = degrees[order]
    total = int(ordered_degrees.sum())
    if total == 0:
        return np.empty(0, np.int64), np.empty(0, np.int64)
    seg_starts = topology.offsets[:-1][order]
    block_starts = np.zeros(len(order), dtype=np.int64)
    np.cumsum(ordered_degrees[:-1], out=block_starts[1:])
    position = np.arange(total, dtype=np.int64) - np.repeat(
        block_starts, ordered_degrees
    )
    edge_ids = np.repeat(seg_starts, ordered_degrees) + position
    outer_per_edge = np.repeat(order.astype(np.int64), ordered_degrees)
    return edge_ids, outer_per_edge


def traversal_trace(
    topology: CSRGraph,
    oa_span: ArraySpan,
    na_span: ArraySpan,
    per_edge: Sequence[PerEdgeAccess],
    dense_span: Optional[ArraySpan] = None,
    dense_pc: int = AccessKind.DENSE_DATA,
    dense_write: bool = True,
    order: Optional[np.ndarray] = None,
) -> MemoryTrace:
    """Build the access trace of one edge-centric traversal.

    ``topology`` is the structure being scanned: the CSC for a pull
    traversal (neighbors are *sources*) or the CSR for a push traversal
    (neighbors are *destinations*). Per outer vertex the trace contains an
    offsets-array read, then per edge a neighbor-array read followed by the
    ``per_edge`` accesses in order (indexed by the neighbor's vertex ID),
    then one dense access indexed by the outer vertex.

    ``order`` overrides the outer-loop iteration order (HATS-BDFS), and
    may visit a *subset* of vertices (sparse-frontier rounds enumerate
    only active vertices); each entry must appear at most once.
    """
    n = topology.num_vertices
    if order is None:
        order = np.arange(n, dtype=np.int64)
    else:
        order = np.asarray(order, dtype=np.int64)
        if len(order) and (order.min() < 0 or order.max() >= n):
            raise SimulationError("order contains out-of-range vertices")
        if len(np.unique(order)) != len(order):
            raise SimulationError("order visits a vertex twice")

    edge_ids, outer_per_edge = _segmented_edge_ids(topology, order)
    neighbors = topology.neighbors[edge_ids].astype(np.int64)
    num_edges = len(edge_ids)

    # Which per-edge accesses fire for each edge.
    include: List[np.ndarray] = []
    for access in per_edge:
        if access.mask is None:
            include.append(np.ones(num_edges, dtype=bool))
        else:
            mask = np.asarray(access.mask, dtype=bool)
            include.append(mask[neighbors])

    edge_sizes = np.ones(num_edges, dtype=np.int64)
    for flags in include:
        edge_sizes += flags

    degrees = topology.degrees()[order]
    has_dense = dense_span is not None
    # Per-vertex block length: OA + its edges' slots + optional dense.
    if num_edges:
        boundaries = np.zeros(len(order), dtype=np.int64)
        np.cumsum(degrees[:-1], out=boundaries[1:])
        vertex_of_edge = np.repeat(
            np.arange(len(order), dtype=np.int64), degrees
        )
        per_vertex_edge_len = np.bincount(
            vertex_of_edge, weights=edge_sizes, minlength=len(order)
        ).astype(np.int64)
    else:
        per_vertex_edge_len = np.zeros(len(order), dtype=np.int64)
    block_len = 1 + per_vertex_edge_len + (1 if has_dense else 0)
    block_starts = np.zeros(len(order), dtype=np.int64)
    np.cumsum(block_len[:-1], out=block_starts[1:])
    total = int(block_starts[-1] + block_len[-1]) if len(order) else 0

    addresses = np.empty(total, dtype=np.int64)
    pcs = np.empty(total, dtype=np.uint8)
    writes = np.zeros(total, dtype=bool)
    # Vertex IDs are bounded by num_vertices, which the csr.neighbors
    # width contract keeps below 2^31 (checked at graph build time).
    vertices = np.repeat(order, block_len).astype(np.int32)  # simlint: allow[dtype-narrowing-cast]

    # Offsets-array read at each block start.
    addresses[block_starts] = oa_span.addr_of(order)
    pcs[block_starts] = AccessKind.OFFSETS

    if num_edges:
        # Edge slot base positions: exclusive running sum of edge sizes,
        # rebased to each vertex's block.
        edge_cumsum = np.zeros(num_edges, dtype=np.int64)
        np.cumsum(edge_sizes[:-1], out=edge_cumsum[1:])
        # boundaries[v] < num_edges whenever degrees[v] > 0 (and the
        # repeat count is 0 otherwise), so indexing is safe after a clamp.
        safe_boundaries = np.minimum(boundaries, num_edges - 1)
        rebase = edge_cumsum - np.repeat(
            edge_cumsum[safe_boundaries], degrees
        )
        edge_base = block_starts[vertex_of_edge] + 1 + rebase

        addresses[edge_base] = na_span.addr_of(edge_ids)
        pcs[edge_base] = AccessKind.NEIGHBORS

        slot_offset = np.ones(num_edges, dtype=np.int64)
        for access, flags in zip(per_edge, include):
            positions = edge_base[flags] + slot_offset[flags]
            addresses[positions] = access.span.addr_of(neighbors[flags])
            pcs[positions] = access.pc
            if access.write:
                writes[positions] = True
            slot_offset += flags

    if has_dense:
        dense_positions = block_starts + block_len - 1
        addresses[dense_positions] = dense_span.addr_of(order)
        pcs[dense_positions] = dense_pc
        writes[dense_positions] = dense_write

    return MemoryTrace(
        addresses=addresses, pcs=pcs, writes=writes, vertices=vertices
    )
