"""HATS-BDFS: hardware-accelerated bounded-DFS traversal scheduling
(Mukkara et al. [40]) — the Fig. 12(b) comparator.

HATS changes the *order* in which the outer loop visits vertices: instead
of vertex-ID order, a bounded depth-first search explores neighbors up to
a depth/visit budget before falling back to the next unvisited vertex in
ID order. On community-structured graphs consecutive outer iterations then
touch overlapping neighborhoods, improving locality at every cache level;
on graphs without community structure BDFS merely scrambles the access
stream (the paper shows it *increasing* LLC misses on DBP/KRON/URAND).

As in the paper's evaluation, scheduling itself is free ("an aggressive
HATS-BDFS that assumes no overhead for BDFS vertex scheduling"): the order
is precomputed and handed to the kernel's ``order`` parameter.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph

__all__ = ["bdfs_order"]


def bdfs_order(
    graph: CSRGraph, depth_bound: int = 8, fanout_bound: int = 16
) -> np.ndarray:
    """Bounded-DFS visit order over all vertices.

    Starting from each unvisited vertex in ID order, runs a DFS bounded to
    ``depth_bound`` levels and ``fanout_bound`` neighbors per vertex; every
    vertex appears exactly once. Returns the outer-loop iteration order.
    """
    n = graph.num_vertices
    visited = np.zeros(n, dtype=bool)
    order = np.empty(n, dtype=np.int64)
    cursor = 0
    for root in range(n):
        if visited[root]:
            continue
        stack = [(root, 0)]
        visited[root] = True
        while stack:
            vertex, depth = stack.pop()
            order[cursor] = vertex
            cursor += 1
            if depth >= depth_bound:
                continue
            fanout = 0
            for neighbor in graph.out_neighbors(vertex):
                neighbor = int(neighbor)
                if not visited[neighbor]:
                    visited[neighbor] = True
                    stack.append((neighbor, depth + 1))
                    fanout += 1
                    if fanout >= fanout_bound:
                        break
    assert cursor == n
    return order
