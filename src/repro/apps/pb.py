"""Propagation Blocking and PHI (Fig. 14's complementary optimizations).

**Propagation Blocking** (Beamer et al. [10]) replaces PageRank's
irregular scatter with two phases: *binning* appends (destination,
contribution) pairs into per-range bins with streaming writes, and
*accumulate* replays each bin with locality bounded by the bin's vertex
range. The paper evaluates the dominant binning phase.

**PHI** (Mukkara et al. [41]) adds in-cache update aggregation: instead of
writing every update out to its bin, commutative updates are accumulated
into a per-destination-line coalescing entry in the cache, and only
spilled when the line is evicted. Its DRAM-traffic savings depend on how
often back-to-back updates hit the same cached destination line — high on
power-law graphs (hub destinations repeat), low on uniform graphs — which
is exactly Fig. 14's finding, and why PHI benefits from better LLC
replacement (the coalescing lines live or die by the policy).

The model: the binning-phase trace under PB writes streaming bin cursors
(policy-insensitive by design); under PHI it accesses the destination
accumulator line per edge (policy-sensitive, commutative). Both also read
the source contribution and neighbor arrays as streams.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph
from ..memory.layout import AddressSpace
from ..memory.trace import AccessKind, MemoryTrace
from ..popt.topt import IrregularStream
from .base import AppInfo, GraphApp, PerEdgeAccess, PreparedRun, traversal_trace

__all__ = ["PropagationBlockingBinning", "binning_reference"]


def binning_reference(
    graph: CSRGraph, num_bins: int
) -> np.ndarray:
    """Bin occupancies for one binning pass (validates bin routing)."""
    n = graph.num_vertices
    bin_size = max(1, -(-n // num_bins))
    destinations = graph.neighbors.astype(np.int64)
    return np.bincount(
        destinations // bin_size, minlength=num_bins
    ).astype(np.int64, copy=False)


class PropagationBlockingBinning(GraphApp):
    """The PB binning phase, with or without PHI update aggregation."""

    info = AppInfo(
        name="PB-Binning",
        execution_style="push",
        irreg_elem_bits=32,
        uses_frontier=False,
        transpose_kind="CSC",
    )

    def __init__(self, phi: bool = False, num_bins: int = 16) -> None:
        self.phi = phi
        self.num_bins = num_bins

    @property
    def name(self) -> str:
        return "PHI-Binning" if self.phi else "PB-Binning"

    def prepare(
        self, graph: CSRGraph, line_size: int = 64, **params
    ) -> PreparedRun:
        n = graph.num_vertices
        layout = AddressSpace(line_size=line_size)
        oa = layout.alloc("csr_offsets", n + 1, 64)
        na = layout.alloc("csr_neighbors", graph.num_edges, 32)
        contrib = layout.alloc("contrib", n, 32)
        streams: list = []
        if self.phi:
            # PHI: per-edge commutative update coalesces into the
            # destination accumulator line (irregular, replacement-managed).
            accum = layout.alloc("accum", n, 32, irregular=True)
            trace = traversal_trace(
                topology=graph,
                oa_span=oa,
                na_span=na,
                per_edge=[
                    PerEdgeAccess(
                        span=accum, pc=AccessKind.IRREG_DATA, write=True
                    )
                ],
                dense_span=contrib,
                dense_write=False,
            )
            streams.append(
                IrregularStream(span=accum, reference_graph=graph.transpose())
            )
        else:
            # Plain PB: per-edge append to the destination's bin at the
            # bin's current cursor — sequential within each bin.
            bin_capacity = graph.num_edges  # worst case, per bin
            bins = layout.alloc(
                "bins", self.num_bins * bin_capacity, 64
            )
            trace = self._binning_trace(
                graph, layout, oa, na, contrib, bins
            )
            # PB has no irregular stream; give P-OPT the accumulator-free
            # view (an empty-reference span so P-OPT still instantiates).
            dummy = layout.alloc("pb_dummy", n, 32, irregular=True)
            streams.append(
                IrregularStream(span=dummy, reference_graph=graph.transpose())
            )
        return PreparedRun(
            app_name=self.name,
            layout=layout,
            trace=trace,
            irregular_streams=streams,
            reference_result=binning_reference(graph, self.num_bins),
            details={"phi": self.phi, "num_bins": self.num_bins},
        )

    def _binning_trace(
        self, graph: CSRGraph, layout, oa, na, contrib, bins
    ) -> MemoryTrace:
        """Vectorized PB binning-phase trace (append-only bin writes)."""
        n = graph.num_vertices
        degrees = graph.degrees()
        destinations = graph.neighbors.astype(np.int64)
        sources = np.repeat(np.arange(n, dtype=np.int64), degrees)
        bin_size = max(1, -(-n // self.num_bins))
        bin_of_edge = destinations // bin_size
        # Cursor position of each append within its bin: running count of
        # prior appends to the same bin.
        order = np.argsort(bin_of_edge, kind="stable")
        counts = np.zeros(len(destinations), dtype=np.int64)
        sorted_bins = bin_of_edge[order]
        within = np.arange(len(order), dtype=np.int64) - np.searchsorted(
            sorted_bins, sorted_bins, side="left"
        )
        counts[order] = within
        bin_capacity = graph.num_edges
        slot = bin_of_edge * bin_capacity + counts

        # Program order per source vertex: OA, then per edge NA + bin
        # append; plus one contrib read per source.
        block_len = 2 + 2 * degrees
        starts = np.zeros(n, dtype=np.int64)
        np.cumsum(block_len[:-1], out=starts[1:])
        total = int(starts[-1] + block_len[-1]) if n else 0
        addresses = np.empty(total, dtype=np.int64)
        pcs = np.empty(total, dtype=np.uint8)
        writes = np.zeros(total, dtype=bool)
        vertices = np.repeat(np.arange(n, dtype=np.int32), block_len)
        addresses[starts] = oa.addr_of(np.arange(n, dtype=np.int64))
        pcs[starts] = AccessKind.OFFSETS
        addresses[starts + 1] = contrib.addr_of(
            np.arange(n, dtype=np.int64)
        )
        pcs[starts + 1] = AccessKind.DENSE_DATA
        if graph.num_edges:
            within_vertex = np.arange(
                graph.num_edges, dtype=np.int64
            ) - np.repeat(
                graph.offsets[:-1], degrees
            )
            base = np.repeat(starts, degrees) + 2 + 2 * within_vertex
            addresses[base] = na.addr_of(
                np.arange(graph.num_edges, dtype=np.int64)
            )
            pcs[base] = AccessKind.NEIGHBORS
            addresses[base + 1] = bins.addr_of(slot)
            pcs[base + 1] = AccessKind.BIN_BUFFER
            writes[base + 1] = True
        return MemoryTrace(
            addresses=addresses, pcs=pcs, writes=writes, vertices=vertices
        )
