"""PageRank-Delta (pull-mostly, frontier-based) — Ligra's PR-Delta.

Only vertices whose rank is still changing stay in the frontier; a pull
iteration reads, per incoming edge, the frontier bit of the source and —
when active — the source's delta contribution. Table II: 8 B irregData
plus a 1-bit frontier, next-refs from the CSR.

Two irregular streams means P-OPT pins two Rereference Matrices
(Section V-F), which is why the paper sees slightly lower speedups here
than on PR/CC.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..graph.csr import CSRGraph
from ..memory.layout import AddressSpace
from ..memory.trace import AccessKind, concat_traces
from ..popt.topt import IrregularStream
from .base import AppInfo, GraphApp, PerEdgeAccess, PreparedRun, traversal_trace

__all__ = ["PageRankDelta", "pagerank_delta_reference"]


def pagerank_delta_reference(
    graph: CSRGraph,
    damping: float = 0.85,
    epsilon: float = 1e-4,
    max_iterations: int = 20,
) -> Tuple[np.ndarray, List[np.ndarray]]:
    """PR-Delta; returns (final ranks, per-iteration frontier masks)."""
    n = graph.num_vertices
    csc = graph.transpose()
    out_degree = np.maximum(graph.degrees(), 1)
    sources = csc.neighbors.astype(np.int64)
    destinations = np.repeat(np.arange(n, dtype=np.int64), csc.degrees())

    # r = (1-d)/n * sum_k (d A)^k 1: seed both ranks and delta with the
    # series' first term so the accumulation converges to plain PageRank.
    ranks = np.full(n, (1.0 - damping) / n)
    delta = np.full(n, (1.0 - damping) / n)
    frontier = np.ones(n, dtype=bool)
    frontier_history = []
    for _ in range(max_iterations):
        if not frontier.any():
            break
        frontier_history.append(frontier.copy())
        contribution = np.where(frontier, delta / out_degree, 0.0)
        incoming = np.bincount(
            destinations, weights=contribution[sources], minlength=n
        )
        new_delta = damping * incoming
        ranks = ranks + new_delta
        frontier = np.abs(new_delta) > epsilon * np.maximum(ranks, 1e-30)
        delta = new_delta
    return ranks, frontier_history


class PageRankDelta(GraphApp):
    """PR-Delta with frontier-gated pull traces."""

    info = AppInfo(
        name="PR-Delta",
        execution_style="pull-mostly",
        irreg_elem_bits=64,
        uses_frontier=True,
        transpose_kind="CSR",
    )

    def __init__(self, trace_iterations: Tuple[int, ...] = (1, 2)) -> None:
        #: Which PR-Delta iterations to trace (iteration sampling; 0 is the
        #: all-active iteration, later ones have sparser frontiers).
        self.trace_iterations = trace_iterations

    def prepare(
        self, graph: CSRGraph, line_size: int = 64, **params
    ) -> PreparedRun:
        n = graph.num_vertices
        csc = graph.transpose()
        ranks, frontier_history = pagerank_delta_reference(graph)

        layout = AddressSpace(line_size=line_size)
        oa = layout.alloc("csc_offsets", n + 1, 64)
        na = layout.alloc("csc_neighbors", csc.num_edges, 32)
        delta = layout.alloc("delta", n, 64, irregular=True)
        frontier_bits = layout.alloc("frontier", n, 1, irregular=True)
        rank_data = layout.alloc("ranks", n, 64)

        iterations = []
        for iteration in self.trace_iterations:
            if iteration >= len(frontier_history):
                continue
            mask = frontier_history[iteration]
            iterations.append(
                traversal_trace(
                    topology=csc,
                    oa_span=oa,
                    na_span=na,
                    per_edge=[
                        PerEdgeAccess(
                            span=frontier_bits, pc=AccessKind.FRONTIER
                        ),
                        PerEdgeAccess(
                            span=delta,
                            pc=AccessKind.IRREG_DATA,
                            mask=mask,
                        ),
                    ],
                    dense_span=rank_data,
                )
            )
        trace = concat_traces(iterations)
        streams = [
            IrregularStream(span=delta, reference_graph=graph),
            IrregularStream(span=frontier_bits, reference_graph=graph),
        ]
        return PreparedRun(
            app_name=self.info.name,
            layout=layout,
            trace=trace,
            irregular_streams=streams,
            reference_result=ranks,
            details={
                "frontier_densities": [
                    float(m.mean()) for m in frontier_history
                ],
                "iterations_traced": [
                    i
                    for i in self.trace_iterations
                    if i < len(frontier_history)
                ],
            },
        )
