"""Connected Components via Shiloach-Vishkin (push execution).

Table II: CC is the paper's push-only workload. The hook phase scans each
*source* vertex's outgoing neighbors (CSR) and updates component labels
indexed by the *destination* — so ``comp`` is the irregular array, next
references come from the CSC, and ``currVertex`` is the source.

The kernel computes real components (hook + pointer-jumping compression
until a fixed point); the trace covers a configurable number of hook
phases (iteration sampling, Section VI).
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph
from ..memory.layout import AddressSpace
from ..memory.trace import AccessKind, concat_traces
from ..popt.topt import IrregularStream
from .base import AppInfo, GraphApp, PerEdgeAccess, PreparedRun, traversal_trace

__all__ = ["ConnectedComponents", "shiloach_vishkin_reference"]


def shiloach_vishkin_reference(
    graph: CSRGraph, max_rounds: int = 64
) -> np.ndarray:
    """Component labels via Shiloach-Vishkin hook + compress."""
    n = graph.num_vertices
    comp = np.arange(n, dtype=np.int64)
    sources = np.repeat(np.arange(n, dtype=np.int64), graph.degrees())
    destinations = graph.neighbors.astype(np.int64)
    for _ in range(max_rounds):
        previous = comp.copy()
        # Hook (parallel form): every root adopts the smallest label
        # reachable over one edge in either direction.
        comp_u = comp[sources]
        comp_v = comp[destinations]
        low = np.minimum(comp_u, comp_v)
        high = np.maximum(comp_u, comp_v)
        np.minimum.at(comp, high, low)
        # Compress: pointer jumping to the root.
        while True:
            parent = comp[comp]
            if np.array_equal(parent, comp):
                break
            comp = parent
        if np.array_equal(comp, previous):
            break
    return comp


class ConnectedComponents(GraphApp):
    """Shiloach-Vishkin CC with a push-phase access trace."""

    info = AppInfo(
        name="CC",
        execution_style="push",
        irreg_elem_bits=32,
        uses_frontier=False,
        transpose_kind="CSC",
    )

    def __init__(self, num_trace_iterations: int = 1) -> None:
        self.num_trace_iterations = num_trace_iterations

    def prepare(
        self, graph: CSRGraph, line_size: int = 64, **params
    ) -> PreparedRun:
        n = graph.num_vertices
        layout = AddressSpace(line_size=line_size)
        oa = layout.alloc("csr_offsets", n + 1, 64)
        na = layout.alloc("csr_neighbors", graph.num_edges, 32)
        comp = layout.alloc("comp", n, 32, irregular=True)
        # The hook phase also reads comp[src] once per source (streaming
        # in vertex order) — modeled as the dense access.
        iteration = traversal_trace(
            topology=graph,  # push: scan outgoing neighbors
            oa_span=oa,
            na_span=na,
            per_edge=[
                PerEdgeAccess(
                    span=comp, pc=AccessKind.IRREG_DATA, write=True
                )
            ],
            dense_span=comp,
            dense_pc=AccessKind.DENSE_DATA,
            dense_write=False,
        )
        trace = concat_traces([iteration] * self.num_trace_iterations)
        # Push execution: dstData next-refs come from the CSC (the
        # transpose of the traversal direction).
        streams = [
            IrregularStream(span=comp, reference_graph=graph.transpose())
        ]
        return PreparedRun(
            app_name=self.info.name,
            layout=layout,
            trace=trace,
            irregular_streams=streams,
            reference_result=shiloach_vishkin_reference(graph),
            details={"iterations_traced": self.num_trace_iterations},
        )
