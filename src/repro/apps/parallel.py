"""Epoch-serial parallel execution (Section V-F).

P-OPT supports multi-threaded kernels by running *epochs serially* and
parallelizing only within an epoch, so all threads share the same two
Rereference Matrix columns. ``currVertex`` is then taken from a
software-designated **main thread**; the paper reports that this policy
gives multi-threaded runs the same LLC miss rates as serial ones.

This module emulates that regime on a single access stream:

- :func:`epoch_serial_parallel_order` produces the outer-loop visit order
  of ``num_threads`` threads round-robin-chunking the vertices of each
  epoch (epochs never overlap).
- :func:`main_thread_vertex_channel` rewrites a trace's ``vertices``
  channel to the main thread's current vertex — what the ``currVertex``
  register actually holds during a parallel run — leaving the accessed
  addresses (the true interleaving) untouched.
"""

from __future__ import annotations

import numpy as np

from ..errors import SimulationError
from ..memory.trace import MemoryTrace

__all__ = ["epoch_serial_parallel_order", "main_thread_vertex_channel"]


def epoch_serial_parallel_order(
    num_vertices: int,
    epoch_size: int,
    num_threads: int,
    chunk: int = 16,
) -> np.ndarray:
    """Outer-loop order of an epoch-serial parallel execution.

    Within each epoch, vertices are dealt to threads in ``chunk``-sized
    blocks (guided scheduling) and the threads' work is interleaved
    chunk-by-chunk — the memory-system-visible effect of running the
    epoch's vertices on ``num_threads`` cores. Epochs are strictly
    ordered, as P-OPT requires.
    """
    if num_threads <= 0 or chunk <= 0 or epoch_size <= 0:
        raise SimulationError(
            "num_threads, chunk, and epoch_size must be positive"
        )
    order = []
    for epoch_start in range(0, num_vertices, epoch_size):
        epoch_end = min(epoch_start + epoch_size, num_vertices)
        vertices = np.arange(epoch_start, epoch_end)
        chunks = [
            vertices[i:i + chunk] for i in range(0, len(vertices), chunk)
        ]
        # Deal chunks round-robin to threads, then interleave rounds:
        # round r emits thread 0's r-th chunk, thread 1's, ...
        per_thread = [chunks[t::num_threads] for t in range(num_threads)]
        rounds = max((len(c) for c in per_thread), default=0)
        for round_index in range(rounds):
            for thread in range(num_threads):
                if round_index < len(per_thread[thread]):
                    order.append(per_thread[thread][round_index])
    if not order:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(order).astype(np.int64)


def main_thread_vertex_channel(
    trace: MemoryTrace,
    epoch_size: int,
    num_threads: int,
    chunk: int = 16,
) -> MemoryTrace:
    """Replace the trace's ``vertices`` with the main thread's position.

    The main thread (thread 0) owns the first chunk of every round; its
    most recently started vertex is what ``update_index`` publishes to the
    LLC. Accesses made by other threads carry the main thread's value —
    exactly the approximation the paper evaluates.
    """
    vertices = trace.vertices.astype(np.int64)
    # A vertex belongs to the main thread iff its chunk index within the
    # epoch is congruent to 0 modulo num_threads.
    offset_in_epoch = vertices % epoch_size
    chunk_index = offset_in_epoch // chunk
    is_main = (chunk_index % num_threads) == 0
    main_values = np.where(is_main, vertices, -1)
    # Forward-fill the last main-thread vertex; seed with the epoch start.
    filled = np.maximum.accumulate(
        np.where(main_values >= 0, main_values, -1)
    )
    epoch_start = (vertices // epoch_size) * epoch_size
    filled = np.where(filled < epoch_start, epoch_start, filled)
    return MemoryTrace(
        addresses=trace.addresses,
        pcs=trace.pcs,
        writes=trace.writes,
        vertices=filled.astype(np.int32),
    )
