"""Graph applications (Table II) and locality-optimization comparators."""

from .bfs import BFS, bfs_reference
from .base import (
    AppInfo,
    GraphApp,
    PerEdgeAccess,
    PreparedRun,
    traversal_trace,
)
from .components import ConnectedComponents, shiloach_vishkin_reference
from .frontier import Frontier, should_pull
from .hats import bdfs_order
from .mis import MaximalIndependentSet, mis_reference
from .pagerank import PageRank, pagerank_reference
from .parallel import epoch_serial_parallel_order, main_thread_vertex_channel
from .pagerank_delta import PageRankDelta, pagerank_delta_reference
from .pb import PropagationBlockingBinning, binning_reference
from .kcore import KCore, kcore_reference
from .radii import Radii, radii_reference
from .sssp import SSSP, sssp_reference, synthetic_weights
from .tiled_pagerank import TiledPageRank

__all__ = [
    "AppInfo",
    "GraphApp",
    "PerEdgeAccess",
    "PreparedRun",
    "traversal_trace",
    "PageRank",
    "pagerank_reference",
    "ConnectedComponents",
    "shiloach_vishkin_reference",
    "PageRankDelta",
    "pagerank_delta_reference",
    "Radii",
    "radii_reference",
    "MaximalIndependentSet",
    "mis_reference",
    "PropagationBlockingBinning",
    "binning_reference",
    "Frontier",
    "should_pull",
    "bdfs_order",
    "epoch_serial_parallel_order",
    "main_thread_vertex_channel",
    "TiledPageRank",
    "BFS",
    "bfs_reference",
    "SSSP",
    "sssp_reference",
    "synthetic_weights",
    "KCore",
    "kcore_reference",
]

#: The paper's five applications (Table II), in paper order.
PAPER_APPS = (
    PageRank,
    ConnectedComponents,
    PageRankDelta,
    Radii,
    MaximalIndependentSet,
)
