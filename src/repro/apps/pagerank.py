"""PageRank (pull): the paper's flagship workload (GAP's PR).

Algorithm 1 of the paper: a pull execution scans each destination's
incoming neighbors in the CSC and accumulates ``srcData[src]``
contributions — the irregular access stream that dominates misses.
``srcData`` holds 4-byte contributions (Table II: PR is pull-only, 4 B
irregData, no frontier; next references come from the CSR).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..graph.csr import CSRGraph
from ..memory.layout import AddressSpace
from ..memory.trace import AccessKind, concat_traces
from ..popt.topt import IrregularStream
from .base import AppInfo, GraphApp, PerEdgeAccess, PreparedRun, traversal_trace

__all__ = ["PageRank", "pagerank_reference"]


def pagerank_reference(
    graph: CSRGraph,
    damping: float = 0.85,
    num_iterations: int = 20,
    tolerance: float = 1e-7,
) -> np.ndarray:
    """Pure PageRank over the out-edge graph; returns the score vector."""
    n = graph.num_vertices
    if n == 0:
        return np.empty(0)
    csc = graph.transpose()  # incoming neighbors
    out_degree = np.maximum(graph.degrees(), 1)
    scores = np.full(n, 1.0 / n)
    base = (1.0 - damping) / n
    for _ in range(num_iterations):
        contrib = scores / out_degree
        # Sum contributions of each destination's in-neighbors.
        sources = csc.neighbors
        destinations = np.repeat(
            np.arange(n, dtype=np.int64), csc.degrees()
        )
        incoming = np.bincount(
            destinations, weights=contrib[sources], minlength=n
        )
        new_scores = base + damping * incoming
        if np.abs(new_scores - scores).sum() < tolerance:
            scores = new_scores
            break
        scores = new_scores
    return scores


class PageRank(GraphApp):
    """Pull PageRank with a materialized access trace."""

    info = AppInfo(
        name="PR",
        execution_style="pull",
        irreg_elem_bits=32,
        uses_frontier=False,
        transpose_kind="CSR",
    )

    def __init__(self, num_trace_iterations: int = 1) -> None:
        # The paper simulates one PR iteration ("it shows no performance
        # variation across iterations", Section VI).
        self.num_trace_iterations = num_trace_iterations

    def prepare(
        self,
        graph: CSRGraph,
        line_size: int = 64,
        order: Optional[np.ndarray] = None,
        **params,
    ) -> PreparedRun:
        n = graph.num_vertices
        csc = graph.transpose()
        layout = AddressSpace(line_size=line_size)
        oa = layout.alloc("csc_offsets", n + 1, 64)
        na = layout.alloc("csc_neighbors", csc.num_edges, 32)
        src_data = layout.alloc("srcData", n, 32, irregular=True)
        dst_data = layout.alloc("dstData", n, 32)

        iteration = traversal_trace(
            topology=csc,
            oa_span=oa,
            na_span=na,
            per_edge=[
                PerEdgeAccess(span=src_data, pc=AccessKind.IRREG_DATA)
            ],
            dense_span=dst_data,
            order=order,
        )
        trace = concat_traces([iteration] * self.num_trace_iterations)

        # The reference graph for srcData next-refs is the CSR: element v
        # is touched while processing v's *out*-neighbors (Section III-A).
        streams = [IrregularStream(span=src_data, reference_graph=graph)]
        return PreparedRun(
            app_name=self.info.name,
            layout=layout,
            trace=trace,
            irregular_streams=streams,
            reference_result=pagerank_reference(graph),
            details={"iterations_traced": self.num_trace_iterations},
        )
