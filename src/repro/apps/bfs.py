"""Direction-optimizing Breadth-First Search (Beamer et al. [11]).

Not part of the paper's Table II, but the canonical graph kernel its
framework references throughout: direction switching originated here, and
GAP/Ligra both ship it. Included so the library covers the standard suite
a downstream user expects.

Pull ("bottom-up") iterations scan each unvisited destination's incoming
neighbors for a frontier member: the irregular streams are the ``parent``
word per source probe and the frontier bit-vector — the same shape P-OPT
handles for PR-Delta/Radii/MIS. Push iterations are traced from the CSR
with ``parent`` indexed by destination.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..graph.csr import CSRGraph
from ..memory.layout import AddressSpace
from ..memory.trace import AccessKind, concat_traces
from ..popt.topt import IrregularStream
from .base import AppInfo, GraphApp, PerEdgeAccess, PreparedRun, traversal_trace
from .frontier import PULL_DENSITY_THRESHOLD

__all__ = ["BFS", "bfs_reference"]


def bfs_reference(
    graph: CSRGraph, source: int = 0, max_rounds: int = 1024
) -> Tuple[np.ndarray, List[Tuple[str, np.ndarray]]]:
    """(parent vector, per-round (direction, frontier mask)) for
    direction-optimizing BFS over the out-edge graph."""
    n = graph.num_vertices
    csc = graph.transpose()
    parent = np.full(n, -1, dtype=np.int64)
    parent[source] = source
    frontier = np.zeros(n, dtype=bool)
    frontier[source] = True
    edge_dst_of_push = graph.neighbors.astype(np.int64)
    edge_src_of_push = np.repeat(
        np.arange(n, dtype=np.int64), graph.degrees()
    )
    edge_src_of_pull = csc.neighbors.astype(np.int64)
    edge_dst_of_pull = np.repeat(
        np.arange(n, dtype=np.int64), csc.degrees()
    )
    rounds: List[Tuple[str, np.ndarray]] = []
    for _ in range(max_rounds):
        if not frontier.any():
            break
        density = frontier.mean()
        direction = "pull" if density >= PULL_DENSITY_THRESHOLD else "push"
        rounds.append((direction, frontier.copy()))
        next_frontier = np.zeros(n, dtype=bool)
        if direction == "push":
            active = frontier[edge_src_of_push]
            targets = edge_dst_of_push[active]
            sources = edge_src_of_push[active]
            fresh = parent[targets] < 0
            # First writer wins (order irrelevant for BFS correctness).
            np.maximum.at(parent, targets[fresh], sources[fresh])
            next_frontier[targets[fresh]] = True
        else:
            unvisited_dst = parent[edge_dst_of_pull] < 0
            from_frontier = frontier[edge_src_of_pull]
            hit = unvisited_dst & from_frontier
            np.maximum.at(
                parent, edge_dst_of_pull[hit], edge_src_of_pull[hit]
            )
            next_frontier[edge_dst_of_pull[hit]] = True
        next_frontier &= parent >= 0
        next_frontier[frontier] = False
        frontier = next_frontier & (parent >= 0)
    return parent, rounds


class BFS(GraphApp):
    """Direction-optimizing BFS; traces its pull (bottom-up) rounds."""

    info = AppInfo(
        name="BFS",
        execution_style="pull-mostly",
        irreg_elem_bits=32,
        uses_frontier=True,
        transpose_kind="CSR",
    )

    def __init__(self, source: int = 0, max_trace_rounds: int = 2) -> None:
        self.source = source
        self.max_trace_rounds = max_trace_rounds

    def prepare(
        self, graph: CSRGraph, line_size: int = 64, **params
    ) -> PreparedRun:
        n = graph.num_vertices
        csc = graph.transpose()
        parent, rounds = bfs_reference(graph, source=self.source)

        layout = AddressSpace(line_size=line_size)
        oa = layout.alloc("csc_offsets", n + 1, 64)
        na = layout.alloc("csc_neighbors", csc.num_edges, 32)
        parent_span = layout.alloc("parent", n, 32, irregular=True)
        frontier_bits = layout.alloc("frontier", n, 1, irregular=True)
        next_bits = layout.alloc("nextFrontier", n, 1)

        pull_rounds = [
            (i, mask) for i, (direction, mask) in enumerate(rounds)
            if direction == "pull"
        ]
        iterations = []
        for __, mask in pull_rounds[: self.max_trace_rounds]:
            iterations.append(
                traversal_trace(
                    topology=csc,
                    oa_span=oa,
                    na_span=na,
                    per_edge=[
                        PerEdgeAccess(
                            span=frontier_bits, pc=AccessKind.FRONTIER
                        ),
                        PerEdgeAccess(
                            span=parent_span,
                            pc=AccessKind.IRREG_DATA,
                            mask=mask,
                        ),
                    ],
                    dense_span=next_bits,
                )
            )
        trace = concat_traces(iterations)
        streams = [
            IrregularStream(span=parent_span, reference_graph=graph),
            IrregularStream(span=frontier_bits, reference_graph=graph),
        ]
        return PreparedRun(
            app_name=self.info.name,
            layout=layout,
            trace=trace,
            irregular_streams=streams,
            reference_result=parent,
            details={
                "rounds": len(rounds),
                "pull_rounds": [i for i, __ in pull_rounds],
            },
        )
