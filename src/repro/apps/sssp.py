"""Single-Source Shortest Paths via frontier-based Bellman-Ford.

GAP's delta-stepping reduces to Bellman-Ford rounds over an active-vertex
frontier; this kernel implements that round structure with synthetic
positive integer edge weights. A push round relaxes each active source's
outgoing edges, so the irregular stream is the ``dist`` word indexed by
*destination* (next references from the CSC) — CC's access shape plus a
sparse frontier. Sparse rounds enumerate only active vertices (GAP's
SlidingQueue), which the trace builder supports via partial outer orders.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..graph.csr import CSRGraph
from ..memory.layout import AddressSpace
from ..memory.trace import AccessKind, concat_traces
from ..popt.topt import IrregularStream
from .base import AppInfo, GraphApp, PerEdgeAccess, PreparedRun, traversal_trace

__all__ = ["SSSP", "sssp_reference", "synthetic_weights"]

INF = np.iinfo(np.int64).max // 4


def synthetic_weights(graph: CSRGraph, seed: int = 5,
                      max_weight: int = 8) -> np.ndarray:
    """Deterministic positive integer weights, one per CSR edge."""
    rng = np.random.default_rng(seed)
    return rng.integers(1, max_weight + 1, size=graph.num_edges)


def sssp_reference(
    graph: CSRGraph,
    source: int = 0,
    weights: Optional[np.ndarray] = None,
    max_rounds: int = 1024,
) -> Tuple[np.ndarray, List[np.ndarray]]:
    """(distance vector, per-round active masks) for Bellman-Ford.

    Unreachable vertices keep the ``INF`` sentinel.
    """
    n = graph.num_vertices
    if weights is None:
        weights = synthetic_weights(graph)
    weights = np.asarray(weights, dtype=np.int64)
    edge_src = np.repeat(np.arange(n, dtype=np.int64), graph.degrees())
    edge_dst = graph.neighbors.astype(np.int64)
    dist = np.full(n, INF, dtype=np.int64)
    dist[source] = 0
    active = np.zeros(n, dtype=bool)
    active[source] = True
    rounds: List[np.ndarray] = []
    for _ in range(max_rounds):
        if not active.any():
            break
        rounds.append(active.copy())
        relax = active[edge_src]
        candidates = dist[edge_src[relax]] + weights[relax]
        targets = edge_dst[relax]
        proposed = np.full(n, INF, dtype=np.int64)
        np.minimum.at(proposed, targets, candidates)
        improved = proposed < dist
        dist = np.minimum(dist, proposed)
        active = improved
    return dist, rounds


class SSSP(GraphApp):
    """Frontier-based Bellman-Ford with push-round traces."""

    info = AppInfo(
        name="SSSP",
        execution_style="push",
        irreg_elem_bits=32,
        uses_frontier=True,
        transpose_kind="CSC",
    )

    def __init__(self, source: int = 0, max_trace_rounds: int = 2) -> None:
        self.source = source
        self.max_trace_rounds = max_trace_rounds

    def prepare(
        self, graph: CSRGraph, line_size: int = 64, **params
    ) -> PreparedRun:
        n = graph.num_vertices
        dist, rounds = sssp_reference(graph, source=self.source)

        layout = AddressSpace(line_size=line_size)
        oa = layout.alloc("csr_offsets", n + 1, 64)
        na = layout.alloc("csr_neighbors", graph.num_edges, 32)
        layout.alloc("weights", graph.num_edges, 32)
        dist_span = layout.alloc("dist", n, 32, irregular=True)
        frontier_bits = layout.alloc("active", n, 1, irregular=True)

        # Trace the densest relaxation rounds (iteration sampling). A
        # sparse round's outer loop enumerates only the active vertices.
        by_density = sorted(
            range(len(rounds)),
            key=lambda i: rounds[i].mean(),
            reverse=True,
        )
        chosen = sorted(by_density[: self.max_trace_rounds])
        iterations = []
        for round_index in chosen:
            active_vertices = np.flatnonzero(rounds[round_index])
            iterations.append(
                traversal_trace(
                    topology=graph,
                    oa_span=oa,
                    na_span=na,
                    per_edge=[
                        PerEdgeAccess(
                            span=dist_span,
                            pc=AccessKind.IRREG_DATA,
                            write=True,
                        ),
                    ],
                    dense_span=frontier_bits,
                    dense_pc=AccessKind.FRONTIER,
                    dense_write=True,
                    order=active_vertices.astype(np.int64),
                )
            )
        trace = concat_traces(iterations)
        streams = [
            IrregularStream(
                span=dist_span, reference_graph=graph.transpose()
            ),
            IrregularStream(
                span=frontier_bits, reference_graph=graph.transpose()
            ),
        ]
        return PreparedRun(
            app_name=self.info.name,
            layout=layout,
            trace=trace,
            irregular_streams=streams,
            reference_result=dist,
            details={
                "rounds": len(rounds),
                "rounds_traced": chosen,
            },
        )
