"""k-core decomposition by iterative peeling (Ligra-style).

Computes every vertex's coreness: the largest k such that the vertex
survives in the subgraph where all vertices have degree >= k. Each peel
round removes the current frontier of sub-k vertices and decrements their
neighbors' induced degrees — a push-style scatter over the undirected
closure, so the irregular stream is the per-neighbor ``degree`` word and
the frontier of vertices being peeled.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..graph.builders import symmetrize
from ..graph.csr import CSRGraph
from ..memory.layout import AddressSpace
from ..memory.trace import AccessKind, concat_traces
from ..popt.topt import IrregularStream
from .base import AppInfo, GraphApp, PerEdgeAccess, PreparedRun, traversal_trace

__all__ = ["KCore", "kcore_reference"]


def kcore_reference(
    graph: CSRGraph,
) -> Tuple[np.ndarray, List[np.ndarray]]:
    """(coreness vector, per-round peel masks) over the undirected
    closure."""
    undirected = symmetrize(graph)
    n = undirected.num_vertices
    degree = undirected.degrees().astype(np.int64).copy()
    edge_src = np.repeat(
        np.arange(n, dtype=np.int64), undirected.degrees()
    )
    edge_dst = undirected.neighbors.astype(np.int64)
    coreness = np.zeros(n, dtype=np.int64)
    alive = np.ones(n, dtype=bool)
    peel_masks: List[np.ndarray] = []
    k = 0
    while alive.any():
        k += 1
        while True:
            peel = alive & (degree < k)
            if not peel.any():
                break
            peel_masks.append(peel.copy())
            coreness[peel] = k - 1
            alive &= ~peel
            affected = peel[edge_src] & alive[edge_dst]
            decrements = np.bincount(
                edge_dst[affected], minlength=n
            ).astype(np.int64, copy=False)
            degree -= decrements
    return coreness, peel_masks


class KCore(GraphApp):
    """k-core peeling with scatter-round traces."""

    info = AppInfo(
        name="kCore",
        execution_style="push",
        irreg_elem_bits=32,
        uses_frontier=True,
        transpose_kind="CSC",
    )

    def __init__(self, max_trace_rounds: int = 3) -> None:
        self.max_trace_rounds = max_trace_rounds

    def prepare(
        self, graph: CSRGraph, line_size: int = 64, **params
    ) -> PreparedRun:
        coreness, peel_masks = kcore_reference(graph)
        undirected = symmetrize(graph)
        n = undirected.num_vertices

        layout = AddressSpace(line_size=line_size)
        oa = layout.alloc("csr_offsets", n + 1, 64)
        na = layout.alloc("csr_neighbors", undirected.num_edges, 32)
        degree_span = layout.alloc("degree", n, 32, irregular=True)
        peel_bits = layout.alloc("peel", n, 1, irregular=True)

        # Trace the largest peel rounds (they dominate runtime).
        by_size = sorted(
            range(len(peel_masks)),
            key=lambda i: int(peel_masks[i].sum()),
            reverse=True,
        )
        chosen = sorted(by_size[: self.max_trace_rounds])
        iterations = []
        for round_index in chosen:
            peeled = np.flatnonzero(peel_masks[round_index])
            if len(peeled) == 0:
                continue
            iterations.append(
                traversal_trace(
                    topology=undirected,
                    oa_span=oa,
                    na_span=na,
                    per_edge=[
                        PerEdgeAccess(
                            span=degree_span,
                            pc=AccessKind.IRREG_DATA,
                            write=True,
                        ),
                    ],
                    dense_span=peel_bits,
                    dense_pc=AccessKind.FRONTIER,
                    dense_write=True,
                    order=peeled.astype(np.int64),
                )
            )
        trace = concat_traces(iterations)
        # Push over the symmetric graph: its own transpose = itself.
        streams = [
            IrregularStream(span=degree_span, reference_graph=undirected),
            IrregularStream(span=peel_bits, reference_graph=undirected),
        ]
        return PreparedRun(
            app_name=self.info.name,
            layout=layout,
            trace=trace,
            irregular_streams=streams,
            reference_result=coreness,
            details={
                "peel_rounds": len(peel_masks),
                "rounds_traced": chosen,
                "max_coreness": int(coreness.max()) if n else 0,
            },
        )
