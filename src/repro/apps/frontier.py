"""Frontier bit-vectors and direction switching.

PR-Delta, Radii and MIS track active vertices in a dense bit-vector
(Table II: "frontiers encoded as bit-vectors") and use
direction-switching [11]: sparse frontiers push, dense frontiers pull.
The simulator traces pull iterations (the paper samples pull iterations;
HBUBL is excluded from Radii because it never switches to pull).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Frontier", "should_pull"]

#: Direction-switching threshold: pull when the frontier covers at least
#: this fraction of vertices (Beamer et al. use edge-based heuristics; a
#: density cut-off reproduces the same pull/push phases on our inputs).
PULL_DENSITY_THRESHOLD = 0.05


@dataclass
class Frontier:
    """A dense bit-vector frontier over the vertex ID space."""

    active: np.ndarray  # bool per vertex

    @classmethod
    def empty(cls, num_vertices: int) -> "Frontier":
        return cls(active=np.zeros(num_vertices, dtype=bool))

    @classmethod
    def full(cls, num_vertices: int) -> "Frontier":
        return cls(active=np.ones(num_vertices, dtype=bool))

    @classmethod
    def of(cls, num_vertices: int, vertices) -> "Frontier":
        frontier = cls.empty(num_vertices)
        frontier.active[np.asarray(vertices, dtype=np.int64)] = True
        return frontier

    @property
    def num_vertices(self) -> int:
        return len(self.active)

    @property
    def size(self) -> int:
        return int(self.active.sum())

    @property
    def density(self) -> float:
        return self.size / self.num_vertices if self.num_vertices else 0.0

    def as_mask(self) -> np.ndarray:
        return self.active

    def vertices(self) -> np.ndarray:
        return np.flatnonzero(self.active)


def should_pull(frontier: Frontier) -> bool:
    """Direction-switching decision: dense frontiers pull."""
    return frontier.density >= PULL_DENSITY_THRESHOLD
