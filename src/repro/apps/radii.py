"""Radii estimation via concurrent BFS (Ligra's Radii, pull-mostly).

Runs ``num_samples`` BFS traversals at once, one bit per sample in an 8-byte
``visited`` word per vertex. A pull iteration ORs, per incoming edge from a
frontier source, the source's visited word into the destination's — so both
the frontier bit-vector and the 8 B visited words are irregular streams
(Table II).

The radius estimate is the number of rounds until no visited word changes.
The paper skips HBUBL (its diameter is so high the frontier never gets
dense enough to pull); the harness reproduces that exclusion.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..graph.csr import CSRGraph
from ..memory.layout import AddressSpace
from ..memory.trace import AccessKind, concat_traces
from ..popt.topt import IrregularStream
from .base import AppInfo, GraphApp, PerEdgeAccess, PreparedRun, traversal_trace

__all__ = ["Radii", "radii_reference"]


def radii_reference(
    graph: CSRGraph,
    num_samples: int = 64,
    seed: int = 7,
    max_rounds: int = 64,
) -> Tuple[int, List[np.ndarray]]:
    """(radius estimate, per-round frontier masks) for concurrent BFS."""
    n = graph.num_vertices
    csc = graph.transpose()
    rng = np.random.default_rng(seed)
    num_samples = min(num_samples, n)
    sources = rng.choice(n, size=num_samples, replace=False)
    visited = np.zeros(n, dtype=np.uint64)
    visited[sources] |= np.uint64(1) << np.arange(
        num_samples, dtype=np.uint64
    )
    frontier = np.zeros(n, dtype=bool)
    frontier[sources] = True
    edge_src = csc.neighbors.astype(np.int64)
    edge_dst = np.repeat(np.arange(n, dtype=np.int64), csc.degrees())

    frontier_history = []
    radius = 0
    for round_index in range(max_rounds):
        if not frontier.any():
            break
        frontier_history.append(frontier.copy())
        active = frontier[edge_src]
        gathered = np.zeros(n, dtype=np.uint64)
        np.bitwise_or.at(
            gathered, edge_dst[active], visited[edge_src[active]]
        )
        updated = (visited | gathered) != visited
        visited |= gathered
        frontier = updated
        if updated.any():
            radius = round_index + 1
    return radius, frontier_history


class Radii(GraphApp):
    """Concurrent-BFS radii estimation with pull-iteration traces."""

    info = AppInfo(
        name="Radii",
        execution_style="pull-mostly",
        irreg_elem_bits=64,
        uses_frontier=True,
        transpose_kind="CSR",
    )

    def __init__(
        self, num_samples: int = 64, max_trace_rounds: int = 2
    ) -> None:
        self.num_samples = num_samples
        #: Trace the densest pull rounds (iteration sampling).
        self.max_trace_rounds = max_trace_rounds

    def prepare(
        self, graph: CSRGraph, line_size: int = 64, **params
    ) -> PreparedRun:
        n = graph.num_vertices
        csc = graph.transpose()
        radius, frontier_history = radii_reference(
            graph, num_samples=self.num_samples
        )

        layout = AddressSpace(line_size=line_size)
        oa = layout.alloc("csc_offsets", n + 1, 64)
        na = layout.alloc("csc_neighbors", csc.num_edges, 32)
        visited = layout.alloc("visited", n, 64, irregular=True)
        frontier_bits = layout.alloc("frontier", n, 1, irregular=True)
        next_visited = layout.alloc("nextVisited", n, 64)

        # Trace the densest rounds — those are the pull iterations the
        # direction switch selects.
        by_density = sorted(
            range(len(frontier_history)),
            key=lambda i: frontier_history[i].mean(),
            reverse=True,
        )
        chosen = sorted(by_density[: self.max_trace_rounds])
        iterations = []
        for round_index in chosen:
            mask = frontier_history[round_index]
            iterations.append(
                traversal_trace(
                    topology=csc,
                    oa_span=oa,
                    na_span=na,
                    per_edge=[
                        PerEdgeAccess(
                            span=frontier_bits, pc=AccessKind.FRONTIER
                        ),
                        PerEdgeAccess(
                            span=visited,
                            pc=AccessKind.IRREG_DATA,
                            mask=mask,
                        ),
                    ],
                    dense_span=next_visited,
                )
            )
        trace = concat_traces(iterations)
        streams = [
            IrregularStream(span=visited, reference_graph=graph),
            IrregularStream(span=frontier_bits, reference_graph=graph),
        ]
        return PreparedRun(
            app_name=self.info.name,
            layout=layout,
            trace=trace,
            irregular_streams=streams,
            reference_result=radius,
            details={
                "rounds_traced": chosen,
                "num_rounds": len(frontier_history),
            },
        )
