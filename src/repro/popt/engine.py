"""Cycle-level model of the next-ref engine (Section V-C).

The paper argues the replacement-candidate search is free because it
overlaps the DRAM fetch: "The next-ref engine starts its computations
immediately after an LLC miss ... DRAM latency hides the latency of
sequentially computing next references for each way in the eviction set,"
with the RM-entry fetch for way *i+1* pipelined against the Algorithm 2
compute for way *i*, "based on LLC cycle times from CACTI (listed in
Table I)".

This module prices that claim: a two-stage pipeline (RM fetch from the
local NUCA bank; Algorithm 2 compute) over the eviction set's ways, with
streaming ways resolved by the base/bound comparison alone. The model
answers the Section V-C question directly — for a given LLC geometry,
does the search finish inside the DRAM access? — and quantifies the
slack (used by the architecture example and tests).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cache.config import CacheConfig, HierarchyConfig

__all__ = ["NextRefEngineModel"]


@dataclass(frozen=True)
class NextRefEngineModel:
    """Latency model for one replacement-candidate search."""

    #: NUCA bank cycle time (Table I: 7 cycles) — the RM entry fetch.
    rm_fetch_cycles: int = 7
    #: Algorithm 2 evaluation: compare, subtract, integer divide by the
    #: sub-epoch size, compare again (Section V-G: "a simple FSM that
    #: only needs support for integer division and basic bit
    #: manipulation").
    compute_cycles: int = 4
    #: Base/bound register comparison per way (irregData check).
    classify_cycles: int = 1
    #: Buffer write + final max-scan per way.
    select_cycles_per_way: int = 1

    def search_latency(
        self, num_ways: int, irregular_ways: int
    ) -> int:
        """Cycles to produce a victim for one eviction set.

        Streaming ways cost only classification (the first one found
        short-circuits the search in the best case; this model prices the
        worst case where every way must be classified). Irregular ways
        flow through the fetch/compute pipeline: with fetch and compute
        overlapped, the steady-state initiation interval is
        ``max(fetch, compute)``.
        """
        if irregular_ways < 0 or irregular_ways > num_ways:
            raise ValueError("irregular_ways must be within [0, num_ways]")
        classify = num_ways * self.classify_cycles
        if irregular_ways == 0:
            return classify
        interval = max(self.rm_fetch_cycles, self.compute_cycles)
        pipeline = (
            self.rm_fetch_cycles               # fill the pipe
            + interval * (irregular_ways - 1)  # steady state
            + self.compute_cycles              # drain
        )
        select = irregular_ways * self.select_cycles_per_way
        return classify + pipeline + select

    def worst_case_latency(self, llc: CacheConfig) -> int:
        """Search latency when every way holds irregData."""
        return self.search_latency(llc.num_ways, llc.num_ways)

    def hidden_by_dram(self, config: HierarchyConfig) -> bool:
        """Section V-C's claim for this geometry: the worst-case search
        completes inside the DRAM access it overlaps."""
        return (
            self.worst_case_latency(config.llc)
            <= config.dram_latency_cycles
        )

    def slack_cycles(self, config: HierarchyConfig) -> int:
        """DRAM latency minus worst-case search latency (>= 0 when the
        search is fully hidden)."""
        return (
            config.dram_latency_cycles
            - self.worst_case_latency(config.llc)
        )
