"""The paper's contribution: T-OPT and P-OPT.

- :mod:`repro.popt.topt` — idealized transpose-driven Belady emulation
  (Section III).
- :mod:`repro.popt.rereference` — the quantized Rereference Matrix and
  Algorithm 2 (Section IV).
- :mod:`repro.popt.policy` — the P-OPT replacement policy (Section V-C).
- :mod:`repro.popt.arch` — way reservation, registers, engine cost
  accounting, NUCA locality (Sections V-A..V-E).
"""

from .arch import (
    PoptCounters,
    PoptRegisters,
    effective_llc,
    nuca_locality_report,
    reserved_ways,
)
from .engine import NextRefEngineModel
from .policy import POPT, PoptStream
from .rereference import (
    RereferenceMatrix,
    build_rereference_matrix,
    epoch_geometry,
)
from .topt import (
    TOPT,
    IrregularStream,
    build_line_reference_csr,
    build_line_references,
)

__all__ = [
    "TOPT",
    "IrregularStream",
    "build_line_reference_csr",
    "build_line_references",
    "RereferenceMatrix",
    "build_rereference_matrix",
    "epoch_geometry",
    "POPT",
    "PoptStream",
    "PoptCounters",
    "PoptRegisters",
    "NextRefEngineModel",
    "reserved_ways",
    "effective_llc",
    "nuca_locality_report",
]
