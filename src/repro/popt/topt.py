"""T-OPT: Transpose-based Optimal Replacement (Section III).

T-OPT emulates Belady's MIN for graph data without an oracle: at
replacement time it consults the graph's transpose to find each candidate
line's next reference and evicts the line referenced furthest in the
future. Streaming data (offsets, neighbor arrays, dense per-outer-vertex
data) has a next reference of infinity and is evicted first.

This implementation is the *idealized* T-OPT of Figs. 4/7/10: the transpose
walks cost nothing (no extra cache traffic, no run-time overhead). Rather
than re-walking each vertex's out-neighbor list per eviction (the paper's
O(out-degree) formulation), we precompute, per irregular cache line, the
sorted array of outer-loop vertices that reference it — the exact same
information, binary-searched in O(log d) per candidate. ``walk_cost``
counters record what the naive walks *would* have touched, quantifying the
overhead P-OPT eliminates (Section III-C).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..errors import PolicyError
from ..graph.csr import CSRGraph
from ..memory.layout import ArraySpan
from ..policies.base import ReplacementPolicy

__all__ = ["IrregularStream", "TOPT", "build_line_references"]

#: Next-ref value assigned to lines never referenced again.
NEVER = 1 << 40
#: Next-ref value for streaming (non-irregular) lines: beyond NEVER so the
#: first streaming way always wins the eviction search.
STREAMING = 1 << 41


@dataclass(frozen=True)
class IrregularStream:
    """One irregularly-accessed data structure and its reference pattern.

    ``reference_graph`` is oriented so ``out_neighbors(element)`` lists the
    outer-loop vertices that touch ``span``'s element (the transpose of the
    traversal direction — Section III-A).
    """

    span: ArraySpan
    reference_graph: CSRGraph


def build_line_references(
    reference_graph: CSRGraph, elems_per_line: int, num_lines: int
) -> List[List[int]]:
    """Per-cache-line sorted outer-vertex reference lists.

    Line ``l`` covers elements ``[l*epl, (l+1)*epl)``; its reference list
    is the sorted union of those elements' out-neighbor lists in the
    reference graph (deduplicated).
    """
    n = reference_graph.num_vertices
    degrees = reference_graph.degrees()
    elems = np.repeat(np.arange(n, dtype=np.int64), degrees)
    lines = elems // elems_per_line
    outer = reference_graph.neighbors.astype(np.int64)
    order = np.lexsort((outer, lines))
    lines_sorted = lines[order]
    outer_sorted = outer[order]
    refs: List[List[int]] = [[] for _ in range(num_lines)]
    boundaries = np.searchsorted(
        lines_sorted, np.arange(num_lines + 1), side="left"
    )
    for line in range(num_lines):
        lo, hi = boundaries[line], boundaries[line + 1]
        if lo == hi:
            continue
        segment = np.unique(outer_sorted[lo:hi])
        refs[line] = segment.tolist()
    return refs


class TOPT(ReplacementPolicy):
    """Idealized transpose-driven Belady emulation for the LLC."""

    name = "T-OPT"

    def __init__(self, streams: Sequence[IrregularStream],
                 line_size: int = 64) -> None:
        super().__init__()
        if not streams:
            raise PolicyError("T-OPT needs at least one irregular stream")
        self.line_size = line_size
        # (line_base, line_bound, refs) per irregular stream, where
        # line_base/bound are line-granular addresses.
        self._regions: List[Tuple[int, int, List[List[int]]]] = []
        for stream in streams:
            span = stream.span
            line_base = span.base // line_size
            num_lines = span.num_lines
            refs = build_line_references(
                stream.reference_graph, span.elems_per_line, num_lines
            )
            self._regions.append((line_base, line_base + num_lines, refs))
        # Counters quantifying the overhead an actual T-OPT would pay.
        self.replacements = 0
        self.transpose_walk_elements = 0

    def _next_ref(self, line_addr: int, curr_vertex: int) -> int:
        for line_base, line_bound, refs in self._regions:
            if line_base <= line_addr < line_bound:
                line_refs = refs[line_addr - line_base]
                # Inclusive of the current outer vertex: references made
                # while processing it still count as imminent (the same
                # convention as Algorithm 2's sub-epoch comparison).
                idx = bisect.bisect_left(line_refs, curr_vertex)
                # A real T-OPT would walk each vertex's out-neighbors up
                # to the next reference: account the equivalent work.
                self.transpose_walk_elements += max(1, idx)
                if idx >= len(line_refs):
                    return NEVER
                return line_refs[idx]
        return STREAMING

    def choose_victim(self, set_idx: int, ctx) -> int:
        self.replacements += 1
        tags = self.cache.tags[set_idx]
        vertex = ctx.vertex
        best_way = 0
        best_ref = -1
        for way, tag in enumerate(tags):
            ref = self._next_ref(tag, vertex)
            if ref == STREAMING:
                # Streaming data: evict immediately (Section V-C order).
                return way
            if ref > best_ref:
                best_ref = ref
                best_way = way
        return best_way
