"""T-OPT: Transpose-based Optimal Replacement (Section III).

T-OPT emulates Belady's MIN for graph data without an oracle: at
replacement time it consults the graph's transpose to find each candidate
line's next reference and evicts the line referenced furthest in the
future. Streaming data (offsets, neighbor arrays, dense per-outer-vertex
data) has a next reference of infinity and is evicted first.

This implementation is the *idealized* T-OPT of Figs. 4/7/10: the transpose
walks cost nothing (no extra cache traffic, no run-time overhead). Rather
than re-walking each vertex's out-neighbor list per eviction (the paper's
O(out-degree) formulation), we precompute, per irregular cache line, the
sorted array of outer-loop vertices that reference it — the exact same
information, binary-searched in O(log d) per candidate. ``walk_cost``
counters record what the naive walks *would* have touched, quantifying the
overhead P-OPT eliminates (Section III-C).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import PolicyError
from ..graph.csr import CSRGraph
from ..memory.layout import ArraySpan
from ..policies.base import ReplacementPolicy
from ..sim.constants import TOPT_NEVER, TOPT_STREAMING

__all__ = [
    "IrregularStream",
    "TOPT",
    "build_line_references",
    "build_line_reference_csr",
]

#: Next-ref value assigned to lines never referenced again.
NEVER = TOPT_NEVER
#: Next-ref value for streaming (non-irregular) lines: beyond NEVER so the
#: first streaming way always wins the eviction search.
STREAMING = TOPT_STREAMING


@dataclass(frozen=True)
class IrregularStream:
    """One irregularly-accessed data structure and its reference pattern.

    ``reference_graph`` is oriented so ``out_neighbors(element)`` lists the
    outer-loop vertices that touch ``span``'s element (the transpose of the
    traversal direction — Section III-A).
    """

    span: ArraySpan
    reference_graph: CSRGraph


def build_line_reference_csr(
    reference_graph: CSRGraph, elems_per_line: int, num_lines: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-cache-line sorted outer-vertex references in CSR form.

    Line ``l`` covers elements ``[l*epl, (l+1)*epl)``; its references are
    the sorted union of those elements' out-neighbor lists in the
    reference graph (deduplicated): ``refs[offsets[l]:offsets[l+1]]``.
    One flat (offsets, refs) pair instead of ``num_lines`` Python lists
    keeps the whole next-ref table in two arrays the replay kernels can
    binary-search directly.
    """
    n = reference_graph.num_vertices
    degrees = reference_graph.degrees()
    elems = np.repeat(np.arange(n, dtype=np.int64), degrees)
    lines = elems // elems_per_line
    outer = reference_graph.neighbors.astype(np.int64)
    order = np.lexsort((outer, lines))
    lines_sorted = lines[order]
    outer_sorted = outer[order]
    if lines_sorted.size:
        # Dedup (line, outer) pairs: after the lexsort duplicates are
        # adjacent, so a keep-mask replaces the per-line np.unique calls.
        keep = np.empty(lines_sorted.size, dtype=bool)
        keep[0] = True
        np.logical_or(
            lines_sorted[1:] != lines_sorted[:-1],
            outer_sorted[1:] != outer_sorted[:-1],
            out=keep[1:],
        )
        lines_sorted = lines_sorted[keep]
        outer_sorted = outer_sorted[keep]
    offsets = np.searchsorted(
        lines_sorted, np.arange(num_lines + 1, dtype=np.int64),
        side="left",
    ).astype(np.int64)
    return offsets, np.ascontiguousarray(outer_sorted, dtype=np.int64)


def build_line_references(
    reference_graph: CSRGraph, elems_per_line: int, num_lines: int
) -> List[List[int]]:
    """List-of-lists view of :func:`build_line_reference_csr`."""
    offsets, refs = build_line_reference_csr(
        reference_graph, elems_per_line, num_lines
    )
    return [
        refs[offsets[line]:offsets[line + 1]].tolist()
        for line in range(num_lines)
    ]


class TOPT(ReplacementPolicy):
    """Idealized transpose-driven Belady emulation for the LLC."""

    name = "T-OPT"

    def __init__(self, streams: Sequence[IrregularStream],
                 line_size: int = 64) -> None:
        super().__init__()
        if not streams:
            raise PolicyError("T-OPT needs at least one irregular stream")
        self.line_size = line_size
        # All streams' reference lists flattened into ONE (offsets, refs)
        # CSR pair; per stream we keep (line_base, line_bound, offsets)
        # with the offsets pre-shifted into the flat refs array.
        self._regions: List[Tuple[int, int, np.ndarray]] = []
        ref_parts: List[np.ndarray] = []
        total_refs = 0
        total_lines = 0
        for stream in streams:
            span = stream.span
            line_base = span.base // line_size
            num_lines = span.num_lines
            offsets, refs = build_line_reference_csr(
                stream.reference_graph, span.elems_per_line, num_lines
            )
            self._regions.append(
                (line_base, line_base + num_lines, offsets + total_refs)
            )
            ref_parts.append(refs)
            total_refs += refs.size
            total_lines += num_lines
        self._refs_arr = (
            np.concatenate(ref_parts) if ref_parts
            else np.empty(0, dtype=np.int64)
        )
        self._refs: List[int] = self._refs_arr.tolist()
        # line -> (refs range) lookup, first stream winning overlaps like
        # the region scan. Gated like the Rereference Matrix row cache: a
        # dict over tens of millions of lines is not worth its memory.
        self._line_table: Optional[Dict[int, Tuple[int, int]]] = None
        if total_lines <= 2_000_000:
            table: Dict[int, Tuple[int, int]] = {}
            for line_base, line_bound, offsets in reversed(self._regions):
                bounds = offsets.tolist()
                for index, line in enumerate(range(line_base, line_bound)):
                    table[line] = (bounds[index], bounds[index + 1])
            self._line_table = table
        # Counters quantifying the overhead an actual T-OPT would pay.
        self.replacements = 0
        self.transpose_walk_elements = 0

    def reset(self) -> None:
        # Rebinding (or a mid-run cache reset) starts a fresh replay: the
        # walk-cost counters must not accumulate across replays.
        self.replacements = 0
        self.transpose_walk_elements = 0

    def _refs_range(self, line_addr: int) -> Tuple[int, int]:
        """(lo, hi) slice of the flat refs array, or (-1, -1) (streaming)."""
        table = self._line_table
        if table is not None:
            return table.get(line_addr, (-1, -1))
        for line_base, line_bound, offsets in self._regions:
            if line_base <= line_addr < line_bound:
                index = line_addr - line_base
                return int(offsets[index]), int(offsets[index + 1])
        return -1, -1

    def _next_ref(self, line_addr: int, curr_vertex: int) -> int:
        lo, hi = self._refs_range(line_addr)
        if lo < 0:
            return STREAMING
        # Inclusive of the current outer vertex: references made while
        # processing it still count as imminent (the same convention as
        # Algorithm 2's sub-epoch comparison).
        idx = bisect.bisect_left(self._refs, curr_vertex, lo, hi)
        # A real T-OPT would walk each vertex's out-neighbors up to the
        # next reference: account the equivalent work.
        self.transpose_walk_elements += max(1, idx - lo)
        if idx >= hi:
            return NEVER
        return self._refs[idx]

    def choose_victim(self, set_idx: int, ctx) -> int:
        self.replacements += 1
        tags = self.cache.tags[set_idx]
        vertex = ctx.vertex
        best_way = 0
        best_ref = -1
        for way, tag in enumerate(tags):
            ref = self._next_ref(tag, vertex)
            if ref == STREAMING:
                # Streaming data: evict immediately (Section V-C order).
                return way
            if ref > best_ref:
                best_ref = ref
                best_way = way
        return best_way
