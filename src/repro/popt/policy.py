"""The P-OPT replacement policy (Sections IV-V).

At each replacement the next-ref engine:

1. scans the eviction set's ways against the ``irreg_base``/``irreg_bound``
   registers and immediately reports the first way holding *streaming*
   data (its re-reference distance is infinite);
2. otherwise evaluates Algorithm 2 against the Rereference Matrix for each
   irregData way (one RM lookup per way, two when the intra-epoch path
   needs the next epoch's entry) and evicts the way with the largest
   quantized next reference;
3. settles ties with a baseline policy — DRRIP, as in the paper.

Epoch boundaries are detected from the ``currVertex`` channel (the
``update_index`` instruction); each transition models one
``stream_nextrefs`` invocation, accounting the column bytes the streaming
engine moves (Section V-D) in :class:`~repro.popt.arch.PoptCounters`.

Variants (Fig. 7 / Fig. 11) are selected by the Rereference Matrix passed
in: ``inter_only``, ``inter_intra`` (default P-OPT), or ``single_epoch``
(P-OPT-SE).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import PolicyError
from ..memory.layout import ArraySpan
from ..policies.base import ReplacementPolicy
from ..policies.rrip import DRRIP
from ..sim.constants import POPT_STREAMING_NEXT_REF
from .arch import PoptCounters
from .rereference import RereferenceMatrix

__all__ = ["PoptStream", "POPT"]


@dataclass(frozen=True)
class PoptStream:
    """One irregular data structure with its Rereference Matrix."""

    span: ArraySpan
    matrix: RereferenceMatrix


class POPT(ReplacementPolicy):
    """P-OPT: practical optimal replacement via the Rereference Matrix."""

    name = "P-OPT"

    def __init__(
        self,
        streams: Sequence[PoptStream],
        line_size: int = 64,
        tie_break: Optional[ReplacementPolicy] = None,
        prefer_streaming_victims: bool = True,
    ) -> None:
        super().__init__()
        if not streams:
            raise PolicyError("P-OPT needs at least one irregular stream")
        self.line_size = line_size
        self.streams = tuple(streams)
        self.prefer_streaming_victims = prefer_streaming_victims
        # (line_base, line_bound, matrix) per stream for the base/bound scan.
        self._regions: List[Tuple[int, int, RereferenceMatrix]] = []
        epoch_size = None
        for stream in streams:
            base_line = stream.span.base // line_size
            self._regions.append(
                (base_line, base_line + stream.span.num_lines, stream.matrix)
            )
            if epoch_size is None:
                epoch_size = stream.matrix.epoch_size
            elif stream.matrix.epoch_size != epoch_size:
                # _note_epoch tracks ONE currVertex epoch for the streaming
                # engine; matrices with different epoch geometries would get
                # their column transfers miscounted against it.
                raise PolicyError(
                    "P-OPT streams disagree on epoch geometry: epoch_size "
                    f"{stream.matrix.epoch_size} vs {epoch_size}; build all "
                    "Rereference Matrices with the same entry_bits/vertex "
                    "range or use separate policies"
                )
        self._epoch_size = epoch_size
        # line -> (matrix, line offset), first stream winning overlaps like
        # the register scan. Gated: a dict over tens of millions of lines
        # would dwarf the matrices themselves, so the scan stays as the
        # fallback for huge irregular footprints.
        total_lines = sum(bound - base for base, bound, _ in self._regions)
        self._line_table: Optional[
            Dict[int, Tuple[RereferenceMatrix, int]]
        ] = None
        if total_lines <= 2_000_000:
            table: Dict[int, Tuple[RereferenceMatrix, int]] = {}
            for line_base, line_bound, matrix in reversed(self._regions):
                for line in range(line_base, line_bound):
                    table[line] = (matrix, line - line_base)
            self._line_table = table
        self._tie_break = tie_break if tie_break is not None else DRRIP()
        self._current_epoch = -1
        self.counters = PoptCounters()
        variant = streams[0].matrix.variant
        if variant == "single_epoch":
            self.name = "P-OPT-SE"
        elif variant == "inter_only":
            self.name = "P-OPT-Inter"

    # ------------------------------------------------------------------

    def bind(self, cache) -> None:
        super().bind(cache)
        self._tie_break.bind(cache)

    def reset(self) -> None:
        # A rebind or mid-run cache reset must not leak the previous
        # replay's epoch position or engine-cost counters into the next
        # one (stale epochs double-count transitions/bytes_streamed).
        self._current_epoch = -1
        self.counters = PoptCounters()
        if self._tie_break.cache is not None:
            self._tie_break.reset()

    def replay_kernel(self):
        # The replay kernel inlines the tie-break sub-policy's RRPV/PSEL
        # evolution and models DRRIP exactly; any other tie-break (or a
        # DRRIP subclass) must take the generic per-access path.
        if type(self._tie_break) is not DRRIP:
            return None
        return super().replay_kernel()

    def resident_bytes(self) -> int:
        """LLC bytes pinned for RM columns across all streams."""
        return sum(stream.matrix.resident_bytes() for stream in self.streams)

    def save_context(self) -> dict:
        """Capture P-OPT's register state at a context switch.

        Section V-F: the set-base/way-base, irreg base/bound, and
        currVertex registers are saved with the process context; the
        Rereference Matrix columns themselves are NOT saved (they are
        refetched on resume).
        """
        return {"epoch": self._current_epoch}

    def restore_context(self, saved: dict) -> None:
        """Resume after a context switch: registers come back from the
        saved context and the streaming engine refetches the resident
        Rereference Matrix columns into the reserved ways (billed like an
        epoch-boundary transfer)."""
        self._current_epoch = saved["epoch"]
        for __, __, matrix in self._regions:
            self.counters.bytes_streamed += matrix.resident_bytes()

    # ------------------------------------------------------------------
    # Hooks: keep the tie-break policy's metadata up to date.
    # ------------------------------------------------------------------

    def on_hit(self, set_idx: int, way: int, ctx) -> None:
        self._note_epoch(ctx.vertex)
        self._tie_break.on_hit(set_idx, way, ctx)

    def on_fill(self, set_idx: int, way: int, ctx) -> None:
        self._note_epoch(ctx.vertex)
        self._tie_break.on_fill(set_idx, way, ctx)

    def on_evict(self, set_idx: int, way: int, ctx) -> None:
        self._tie_break.on_evict(set_idx, way, ctx)

    def _note_epoch(self, vertex: int) -> None:
        epoch = vertex // self._epoch_size
        if epoch != self._current_epoch:
            if self._current_epoch >= 0:
                # stream_nextrefs: swap pointers, stream the new column in.
                self.counters.epoch_transitions += 1
                for __, __, matrix in self._regions:
                    self.counters.bytes_streamed += matrix.column_bytes()
            self._current_epoch = epoch

    # ------------------------------------------------------------------
    # Victim selection (the next-ref engine)
    # ------------------------------------------------------------------

    def _lookup(self, line_addr: int, vertex: int):
        """(is_irregular, next_ref_distance) for one way."""
        table = self._line_table
        if table is not None:
            entry = table.get(line_addr)
            if entry is None:
                return False, 0
            matrix, offset = entry
            self.counters.rm_lookups += 1
            return True, matrix.find_next_ref(offset, vertex)
        for line_base, line_bound, matrix in self._regions:
            if line_base <= line_addr < line_bound:
                self.counters.rm_lookups += 1
                return True, matrix.find_next_ref(line_addr - line_base, vertex)
        return False, 0

    def choose_victim(self, set_idx: int, ctx) -> int:
        self.counters.replacements += 1
        tags = self.cache.tags[set_idx]
        vertex = ctx.vertex
        best_ways: List[int] = []
        best_ref = -1
        for way, tag in enumerate(tags):
            is_irregular, next_ref = self._lookup(tag, vertex)
            if not is_irregular:
                if self.prefer_streaming_victims:
                    # First streaming way is reported immediately.
                    self.counters.streaming_evictions += 1
                    return way
                next_ref = POPT_STREAMING_NEXT_REF
            if next_ref > best_ref:
                best_ref = next_ref
                best_ways = [way]
            elif next_ref == best_ref:
                best_ways.append(way)
        if len(best_ways) == 1:
            return best_ways[0]
        # Tie: fall back to DRRIP's preference among the tied ways.
        self.counters.ties += 1
        self.counters.tie_candidates += len(best_ways)
        return self._tie_break_among(set_idx, best_ways)

    def _tie_break_among(self, set_idx: int, ways: List[int]) -> int:
        rrpv = getattr(self._tie_break, "_rrpv", None)
        if rrpv is None:
            return ways[0]
        row = rrpv[set_idx]
        best_way = ways[0]
        best_value = row[best_way]
        for way in ways[1:]:
            if row[way] > best_value:
                best_value = row[way]
                best_way = way
        return best_way
