"""P-OPT's architecture model (Section V).

Models the parts of P-OPT that live outside the replacement decision
itself:

- **Way reservation** (Section V-A): the Rereference Matrix columns are
  pinned in reserved LLC ways; the application sees a smaller effective
  associativity/capacity. :func:`reserved_ways` computes the minimum
  reservation, and :func:`effective_llc` derives the app-visible config.
- **Register file** (Sections V-B/V-C): ``irreg_base``/``irreg_bound`` per
  irregular stream, ``currVertex``, per-epoch ``set-base``/``way-base``
  pointers. In simulation the register values come from the layout and the
  trace's ``vertex`` channel; :class:`PoptRegisters` packages them and
  checks the paper's constraints (irregData contiguity).
- **Next-ref engine and streaming engine cost accounting**
  (Sections V-C/V-D): counters for RM lookups, replacement events, ties,
  epoch transitions and bytes streamed, which the timing model converts
  into cycles.
- **NUCA mapping** (Section V-E): delegated to
  :class:`repro.cache.nuca.BankMapper`; :func:`nuca_locality_report`
  verifies bank-local RM access under P-OPT's modified mapping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from ..cache.config import CacheConfig
from ..cache.nuca import BankMapper
from ..errors import CacheConfigError, LayoutError
from ..memory.layout import ArraySpan

__all__ = [
    "reserved_ways",
    "effective_llc",
    "PoptRegisters",
    "PoptCounters",
    "nuca_locality_report",
]


def reserved_ways(resident_bytes: int, llc: CacheConfig) -> int:
    """Minimum LLC ways that hold ``resident_bytes`` of RM columns.

    Way-based partitioning (Intel CAT-style, Section V-A): one way spans
    ``num_sets * line_size`` bytes.
    """
    if resident_bytes < 0:
        raise CacheConfigError("resident_bytes must be non-negative")
    ways = -(-resident_bytes // llc.way_bytes)  # ceil division
    return int(ways)


def effective_llc(llc: CacheConfig, resident_bytes: int) -> CacheConfig:
    """The app-visible LLC after reserving ways for RM columns.

    Raises when the RM does not leave at least one way for data — the
    regime where P-OPT stops being applicable (Fig. 11's right edge).
    """
    reservation = reserved_ways(resident_bytes, llc)
    remaining = llc.num_ways - reservation
    if remaining < 1:
        raise CacheConfigError(
            f"Rereference Matrix needs {reservation} of {llc.num_ways} "
            "LLC ways; no capacity left for application data"
        )
    return llc.with_ways(remaining)


@dataclass(frozen=True)
class PoptRegisters:
    """Software-configured register state (memory-mapped, set once).

    ``irreg_spans`` mirrors the per-stream ``irreg_base``/``irreg_bound``
    register pairs; the paper supports "two irregular data structures —
    frontier and srcData/dstData" which "covers many important graph
    applications" (Section V-F).
    """

    irreg_spans: Sequence[ArraySpan]
    epoch_size: int
    sub_epoch_size: int
    line_size: int = 64

    def __post_init__(self) -> None:
        if not self.irreg_spans:
            raise LayoutError("P-OPT needs at least one irregular span")
        for span in self.irreg_spans:
            if span.base % self.line_size:
                raise LayoutError(
                    f"{span.name}: irregData must be line-aligned "
                    "(the paper allocates it in one huge page)"
                )

    def stream_of(self, line_addr: int) -> int:
        """Index of the irregular span containing a line address, or -1.

        This is the base/bound comparison the next-ref engine performs for
        every way in the eviction set (Section V-B).
        """
        for index, span in enumerate(self.irreg_spans):
            base_line = span.base // self.line_size
            if base_line <= line_addr < base_line + span.num_lines:
                return index
        return -1


@dataclass
class PoptCounters:
    """Cost accounting for the next-ref and streaming engines."""

    replacements: int = 0
    streaming_evictions: int = 0       # victims found by base/bound check
    rm_lookups: int = 0                # RM entry reads by the engine
    ties: int = 0                      # replacements decided by tie-break
    tie_candidates: int = 0            # ways tied at the winning next-ref
    epoch_transitions: int = 0
    bytes_streamed: int = 0            # RM column bytes moved at boundaries

    def tie_rate(self) -> float:
        """Fraction of replacements that ended in a tie (Fig. 15's 41%/12%/0%
        for 4/8/16-bit quantization)."""
        return self.ties / self.replacements if self.replacements else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "replacements": self.replacements,
            "streaming_evictions": self.streaming_evictions,
            "rm_lookups": self.rm_lookups,
            "ties": self.ties,
            "tie_rate": round(self.tie_rate(), 4),
            "epoch_transitions": self.epoch_transitions,
            "bytes_streamed": self.bytes_streamed,
        }


def nuca_locality_report(
    mapper: BankMapper, span: ArraySpan, sample_stride: int = 1
) -> Dict[str, float]:
    """Check Section V-E's invariant over a span's lines.

    Returns the fraction of irregData lines whose RM entry is bank-local
    under (a) P-OPT's modified block-interleaved mapping and (b) default
    line striping. The former must be 1.0.
    """
    local_modified = 0
    local_default = 0
    sampled = 0
    for line_id in range(0, span.num_lines, sample_stride):
        addr = span.base + line_id * mapper.line_size
        sampled += 1
        if mapper.rm_access_is_bank_local(addr, span.base):
            local_modified += 1
        if mapper.default_bank(addr) == mapper.rm_bank(line_id):
            local_default += 1
    if sampled == 0:
        return {"modified": 1.0, "default": 1.0}
    return {
        "modified": local_modified / sampled,
        "default": local_default / sampled,
    }
