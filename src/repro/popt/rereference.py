"""The Rereference Matrix: P-OPT's quantized next-reference metadata.

Section IV. The matrix has one row per cache line of the irregularly
accessed data and one column per *epoch* (a contiguous block of outer-loop
vertices). Three entry encodings are implemented:

- ``inter_only`` (Fig. 5): each entry is the distance, in epochs, from the
  current epoch to the epoch of the line's next reference (0 when the line
  is referenced somewhere in the current epoch). Loses intra-epoch
  information: after a line's final access within an epoch the entry still
  reads 0.
- ``inter_intra`` (Fig. 6 — the default P-OPT design): the MSB selects the
  meaning of the low bits. MSB=1: no reference this epoch; low bits hold
  the distance to the next referencing epoch. MSB=0: referenced this epoch;
  low bits hold the *sub-epoch* of the final access, letting Algorithm 2
  notice when the execution has already passed the line's last use.
- ``single_epoch`` (P-OPT-SE, Section VII-B): like ``inter_intra`` but the
  second MSB records whether the line is accessed in the *next* epoch, so
  only ONE column must be cache-resident — at the cost of two fewer
  distance/sub-epoch bits.

Construction is fully vectorized over the edge list (numpy), which is what
makes Table IV's "preprocessing is ~20% of one PageRank run" hold here too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import PolicyError
from ..graph.csr import CSRGraph
from ..sim.constants import (
    RM_VARIANTS,
    rm_field_bits,
    rm_low_mask,
    rm_msb,
    rm_next_bit,
    rm_sentinel,
)

__all__ = [
    "RereferenceMatrix",
    "build_rereference_matrix",
    "update_rereference_matrix",
    "epoch_geometry",
]

VARIANTS = RM_VARIANTS


def epoch_geometry(
    num_vertices: int, entry_bits: int, variant: str = "inter_intra"
) -> "tuple[int, int, int]":
    """Compute (num_epochs, epoch_size, sub_epoch_size).

    With b-bit entries the vertex range quantizes into ``2^b`` epochs
    (Section V-C: ``EpochSize = ceil(numVertices / 256)`` for b=8); the
    intra-epoch sub-epoch count is the largest value the remaining low
    bits can hold (127 for the default design, 63 for P-OPT-SE).
    """
    if variant not in VARIANTS:
        raise PolicyError(f"unknown Rereference Matrix variant {variant!r}")
    if entry_bits < 3 or entry_bits > 16:
        raise PolicyError("entry_bits must be in [3, 16]")
    max_epochs = 1 << entry_bits
    epoch_size = max(1, -(-num_vertices // max_epochs))  # ceil division
    num_epochs = -(-num_vertices // epoch_size)
    # inter_only stores no sub-epoch field (every bit is the distance,
    # see rm_field_bits) but shares the default design's sub-epoch
    # geometry so all three builders quantize vertices identically.
    geometry_variant = "inter_intra" if variant == "inter_only" else variant
    max_sub = max(1, (1 << rm_field_bits(entry_bits, geometry_variant)) - 1)
    sub_epoch_size = max(1, -(-epoch_size // max_sub))
    return num_epochs, epoch_size, sub_epoch_size


@dataclass
class RereferenceMatrix:
    """Quantized next-reference metadata for one irregular data structure."""

    entries: np.ndarray          # (num_lines, num_epochs) unsigned
    variant: str
    entry_bits: int
    epoch_size: int
    sub_epoch_size: int
    elems_per_line: int
    num_vertices: int

    def __post_init__(self) -> None:
        if self.variant not in VARIANTS:
            raise PolicyError(f"unknown variant {self.variant!r}")
        # The decode masks must mirror the builder's field_bits exactly:
        # a mask narrower than the stored sentinel would make past-the-end
        # epochs look *nearer* than known-far in-matrix lines. The shared
        # registry (repro.sim.constants) is the single source of truth for
        # the per-variant widths, here and in both kernel engines.
        self._msb = rm_msb(self.entry_bits)
        self._next_bit = rm_next_bit(self.entry_bits, self.variant)
        self._low_mask = rm_low_mask(self.entry_bits, self.variant)
        # Python nested lists beat numpy scalar extraction in the hot path,
        # but converting huge matrices (fine-grained quantization on big
        # graphs) would explode memory — fall back to numpy rows there.
        if self.entries.size <= 4_000_000:
            self._rows = self.entries.tolist()
        else:
            self._rows = self.entries

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------

    @property
    def num_lines(self) -> int:
        return self.entries.shape[0]

    @property
    def num_epochs(self) -> int:
        return self.entries.shape[1]

    @property
    def entry_bytes(self) -> int:
        return max(1, (self.entry_bits + 7) // 8)

    def column_bytes(self) -> int:
        """Bytes of one epoch column (what the streaming engine moves)."""
        return self.num_lines * self.entry_bytes

    def resident_columns(self) -> int:
        """LLC-resident columns: 2 for the default design (current + next
        epoch, Section V-A), 1 for P-OPT-SE."""
        return 1 if self.variant == "single_epoch" else 2

    def resident_bytes(self) -> int:
        """Bytes that must be pinned in the LLC at any time."""
        return self.column_bytes() * self.resident_columns()

    def epoch_of(self, vertex: int) -> int:
        """The epoch of an outer-loop vertex."""
        return vertex // self.epoch_size

    # ------------------------------------------------------------------
    # Algorithm 2
    # ------------------------------------------------------------------

    def find_next_ref(self, line_id: int, curr_vertex: int) -> int:
        """Distance (in epochs) to the line's next reference.

        This is Algorithm 2 of the paper, generalized over entry widths
        and the three encodings. Larger return values mean "further in the
        future"; the sentinel (all low bits set) means no known reference.
        """
        epoch_id = curr_vertex // self.epoch_size
        row = self._rows[line_id]
        if epoch_id >= len(row):
            return self._low_mask
        current = row[epoch_id]
        if self.variant == "inter_only":
            return current
        msb = self._msb
        low_mask = self._low_mask
        if current & msb:
            # Not referenced this epoch; low bits are the epoch distance.
            return current & low_mask
        # Referenced this epoch; low bits are the final-access sub-epoch.
        last_sub_epoch = current & low_mask
        epoch_offset = curr_vertex - epoch_id * self.epoch_size
        curr_sub_epoch = epoch_offset // self.sub_epoch_size
        if curr_sub_epoch <= last_sub_epoch:
            return 0
        if self.variant == "single_epoch":
            # Only the next-epoch bit survives SE's compression: either the
            # line comes back next epoch (distance 1) or all we know is
            # "not next epoch" — assume the minimum consistent distance.
            return 1 if current & self._next_bit else 2
        if epoch_id + 1 >= len(row):
            return low_mask
        next_entry = row[epoch_id + 1]
        if next_entry & msb:
            return 1 + (next_entry & low_mask)
        return 1

    def find_next_ref_vector(
        self, line_ids: np.ndarray, curr_vertex: int
    ) -> np.ndarray:
        """Vectorized :meth:`find_next_ref`: Algorithm 2 decoded for a
        whole batch of lines (e.g. every way of an eviction set) with
        masked arithmetic directly on the ``entries`` rows."""
        line_ids = np.asarray(line_ids, dtype=np.int64)
        epoch_id = curr_vertex // self.epoch_size
        low_mask = self._low_mask
        if epoch_id >= self.num_epochs:
            return np.full(line_ids.shape, low_mask, dtype=np.int64)
        current = self.entries[line_ids, epoch_id].astype(np.int64)
        if self.variant == "inter_only":
            return current
        msb = self._msb
        out = current & low_mask  # inter-epoch distance where MSB is set
        intra = (current & msb) == 0
        # Referenced this epoch: 0 until execution passes the final-access
        # sub-epoch, then the minimum distance consistent with the encoding.
        epoch_offset = curr_vertex - epoch_id * self.epoch_size
        curr_sub_epoch = epoch_offset // self.sub_epoch_size
        passed = intra & (curr_sub_epoch > out)
        out[intra] = 0
        if self.variant == "single_epoch":
            out[passed] = np.where(current[passed] & self._next_bit, 1, 2)
        elif epoch_id + 1 >= self.num_epochs:
            out[passed] = low_mask
        else:
            next_entry = self.entries[line_ids, epoch_id + 1].astype(np.int64)
            out[passed] = np.where(
                next_entry[passed] & msb, 1 + (next_entry[passed] & low_mask), 1
            )
        return out


def _encode_entries(
    referenced: np.ndarray,
    last_sub: np.ndarray,
    entry_bits: int,
    variant: str,
) -> np.ndarray:
    """Encode per-line reference events into matrix entries (int64).

    ``referenced``/``last_sub`` are ``(rows, num_epochs)`` arrays for
    any subset of lines. The right-to-left distance scan and the field
    packing are independent per row — the property that makes the
    incremental path in :func:`update_rereference_matrix` bit-identical
    to a full rebuild: re-encoding only the changed rows reproduces
    exactly the rows the rebuild would produce.
    """
    rows, num_epochs = referenced.shape
    sentinel = rm_sentinel(entry_bits, variant)

    # Distance (in epochs) from each epoch to the next referencing epoch.
    # Scan columns right-to-left carrying the next referencing epoch.
    next_epoch = np.full(rows, np.iinfo(np.int64).max // 2, np.int64)
    distance = np.empty((rows, num_epochs), dtype=np.int64)
    for epoch in range(num_epochs - 1, -1, -1):
        column_referenced = referenced[:, epoch]
        gap = np.minimum(next_epoch - epoch, sentinel)
        distance[:, epoch] = np.where(column_referenced, 0, gap)
        next_epoch = np.where(column_referenced, epoch, next_epoch)

    entries = np.empty((rows, num_epochs), dtype=np.int64)
    if variant == "inter_only":
        # Entry is the raw distance (0 while the epoch still references).
        entries[:] = np.minimum(distance, sentinel)
    else:
        msb = rm_msb(entry_bits)
        max_sub = sentinel
        clamped_sub = np.minimum(last_sub, max_sub)
        # Referenced epochs: MSB=0, low bits = final-access sub-epoch.
        # Unreferenced epochs: MSB=1, low bits = clamped distance.
        inter = msb | np.minimum(distance, sentinel)
        entries[:] = np.where(referenced, clamped_sub, inter)
        if variant == "single_epoch":
            next_bit = rm_next_bit(entry_bits, variant)
            accessed_next = np.zeros((rows, num_epochs), dtype=bool)
            accessed_next[:, :-1] = referenced[:, 1:]
            entries[:] = np.where(
                referenced & accessed_next, entries | next_bit, entries
            )
    return entries


def build_rereference_matrix(
    reference_graph: CSRGraph,
    elems_per_line: int,
    entry_bits: int = 8,
    variant: str = "inter_intra",
    num_lines: Optional[int] = None,
) -> RereferenceMatrix:
    """Build the Rereference Matrix from a graph's transpose.

    ``reference_graph`` must be oriented so that ``out_neighbors(v)`` lists
    the outer-loop vertices whose processing touches irregular element
    ``v``. For a pull kernel over a CSC, that is the CSR (the transpose);
    for a push kernel over a CSR, the CSC (Section III-A).

    ``elems_per_line`` is how many irregular elements share a cache line
    (16 for 4 B elements; 512 for a frontier bit-vector).
    """
    if elems_per_line <= 0:
        raise PolicyError("elems_per_line must be positive")
    n = reference_graph.num_vertices
    num_epochs, epoch_size, sub_epoch_size = epoch_geometry(
        n, entry_bits, variant
    )
    if num_lines is None:
        num_lines = max(1, -(-n // elems_per_line))
    dtype = np.uint16 if entry_bits > 8 else np.uint8

    # Per-edge reference events: element v is touched at outer vertex d.
    degrees = reference_graph.degrees()
    elems = np.repeat(np.arange(n, dtype=np.int64), degrees)
    outer = reference_graph.neighbors.astype(np.int64)
    lines = elems // elems_per_line
    epochs = outer // epoch_size
    subs = (outer - epochs * epoch_size) // sub_epoch_size

    referenced = np.zeros((num_lines, num_epochs), dtype=bool)
    last_sub = np.zeros((num_lines, num_epochs), dtype=np.int64)
    flat = lines * num_epochs + epochs
    referenced.ravel()[flat] = True
    np.maximum.at(last_sub.ravel(), flat, subs)

    entries = _encode_entries(referenced, last_sub, entry_bits, variant)
    return RereferenceMatrix(
        entries=entries.astype(dtype),
        variant=variant,
        entry_bits=entry_bits,
        epoch_size=epoch_size,
        sub_epoch_size=sub_epoch_size,
        elems_per_line=elems_per_line,
        num_vertices=n,
    )


def update_rereference_matrix(
    matrix: RereferenceMatrix,
    reference_graph: CSRGraph,
    changed_elements: np.ndarray,
) -> RereferenceMatrix:
    """Incrementally refresh a matrix after a graph delta.

    ``reference_graph`` is the **post-delta** reference graph (same
    orientation the matrix was built from) and ``changed_elements`` the
    irregular elements whose reference lists may have changed — for a
    matrix built over the graph's transpose, the *destinations* the
    delta touched; for one built over the graph itself, the sources
    (:class:`repro.graph.dynamic.DynamicEpoch` records both).

    Only the cache lines covering those elements are recomputed; every
    recomputed row is gathered fresh from the post-delta graph, so the
    result is bit-identical to a full :func:`build_rereference_matrix`
    over the new graph (``benchmarks/bench_dynamic.py`` measures where
    this stops being a win as deltas grow).
    """
    n = reference_graph.num_vertices
    if n != matrix.num_vertices:
        raise PolicyError(
            f"reference graph has {n} vertices but the matrix was built "
            f"over {matrix.num_vertices}; the vertex set is fixed across "
            f"dynamic epochs"
        )
    changed = np.unique(np.asarray(changed_elements, dtype=np.int64))
    if len(changed) and (changed[0] < 0 or int(changed[-1]) >= n):
        raise PolicyError("changed element ID outside the vertex range")
    if not len(changed):
        return matrix
    elems_per_line = matrix.elems_per_line
    lines = np.unique(changed // elems_per_line)
    lines = lines[lines < matrix.num_lines]
    if not len(lines):
        return matrix

    # Every element sharing a line with a changed element contributes
    # reference events to that line's row, changed or not.
    elems = (
        lines[:, None] * elems_per_line
        + np.arange(elems_per_line, dtype=np.int64)[None, :]
    ).ravel()
    elems = elems[elems < n]

    # Gather the covered elements' adjacency segments in one shot.
    starts = reference_graph.offsets[elems]
    degrees = reference_graph.offsets[elems + 1] - starts
    total = int(degrees.sum())
    prefix = np.cumsum(degrees) - degrees
    within = np.arange(total, dtype=np.int64) - np.repeat(prefix, degrees)
    outer = reference_graph.neighbors[
        np.repeat(starts, degrees) + within
    ].astype(np.int64)

    num_epochs = matrix.num_epochs
    epoch_size = matrix.epoch_size
    epochs = outer // epoch_size
    subs = (outer - epochs * epoch_size) // matrix.sub_epoch_size
    # Row index (within the recomputed submatrix) of each event.
    event_rows = np.searchsorted(
        lines, np.repeat(elems // elems_per_line, degrees)
    )

    referenced = np.zeros((len(lines), num_epochs), dtype=bool)
    last_sub = np.zeros((len(lines), num_epochs), dtype=np.int64)
    flat = event_rows * num_epochs + epochs
    referenced.ravel()[flat] = True
    np.maximum.at(last_sub.ravel(), flat, subs)

    encoded = _encode_entries(
        referenced, last_sub, matrix.entry_bits, matrix.variant
    )
    # Store entries may be a read-only mmap from the artifact store;
    # always materialize a private copy before scattering rows.
    new_entries = np.array(matrix.entries, copy=True)
    new_entries[lines] = encoded.astype(new_entries.dtype)
    return RereferenceMatrix(
        entries=new_entries,
        variant=matrix.variant,
        entry_bits=matrix.entry_bits,
        epoch_size=epoch_size,
        sub_epoch_size=matrix.sub_epoch_size,
        elems_per_line=elems_per_line,
        num_vertices=matrix.num_vertices,
    )
