"""GRASP: domain-specialized cache management for graph analytics
(Faldu, Diamond & Grot [20]) — the Fig. 12(a) comparator.

GRASP assumes the input was reordered with Degree-Based Grouping (DBG) so
that high-degree ("hot") vertices occupy a small contiguous region of the
vertex array. It specializes an RRIP substrate's insertion/promotion by
address region:

- accesses in the *hot* region insert at RRPV 0 and re-promote to 0
  (protected),
- the *warm* region inserts at long (max-1) and promotes by decrement,
- everything else (cold / non-vertex data) inserts at distant (max) and
  promotes to max-1 at most.

GRASP is heuristic — it bets that degree predicts reuse. The paper's
Fig. 12(a) shows that bet pays off only on skewed graphs, while P-OPT's
exact next-reference information wins everywhere.
"""

from __future__ import annotations

from typing import Optional, Tuple

from .base import ReplacementPolicy

__all__ = ["GRASP"]


class GRASP(ReplacementPolicy):
    """Region-aware RRIP specialization over DBG-ordered vertex data.

    ``hot_range`` / ``warm_range`` are [begin, end) *line-granular address*
    ranges of the irregularly-accessed vertex data, derived from the DBG
    group boundaries (see ``repro.sim.driver.grasp_ranges_for``).
    """

    name = "GRASP"

    def __init__(
        self,
        hot_range: Tuple[int, int],
        warm_range: Optional[Tuple[int, int]] = None,
        rrpv_bits: int = 2,
    ) -> None:
        super().__init__()
        self.hot_range = hot_range
        self.warm_range = warm_range if warm_range is not None else (0, 0)
        self.rrpv_max = (1 << rrpv_bits) - 1

    def reset(self) -> None:
        self._rrpv = [
            [self.rrpv_max] * self.num_ways for _ in range(self.num_sets)
        ]

    def _region(self, line_addr: int) -> int:
        """0 = hot, 1 = warm, 2 = cold/other."""
        if self.hot_range[0] <= line_addr < self.hot_range[1]:
            return 0
        if self.warm_range[0] <= line_addr < self.warm_range[1]:
            return 1
        return 2

    def on_hit(self, set_idx: int, way: int, ctx) -> None:
        line_addr = self.cache.tags[set_idx][way]
        region = self._region(line_addr)
        rrpv = self._rrpv[set_idx]
        if region == 0:
            # Hot: promote straight to re-reference-imminent.
            rrpv[way] = 0
        elif rrpv[way] > 0:
            # Warm/cold: modest promotion (one step per hit), so reused
            # non-hot lines earn protection gradually without displacing
            # the hot region.
            rrpv[way] -= 1

    def on_fill(self, set_idx: int, way: int, ctx) -> None:
        line_addr = self.cache.tags[set_idx][way]
        region = self._region(line_addr)
        if region == 0:
            self._rrpv[set_idx][way] = 0
        elif region == 1:
            self._rrpv[set_idx][way] = self.rrpv_max - 1
        else:
            self._rrpv[set_idx][way] = self.rrpv_max

    def choose_victim(self, set_idx: int, ctx) -> int:
        rrpv = self._rrpv[set_idx]
        maximum = self.rrpv_max
        while True:
            try:
                return rrpv.index(maximum)
            except ValueError:
                bump = maximum - max(rrpv)
                for way in range(self.num_ways):
                    rrpv[way] += bump
