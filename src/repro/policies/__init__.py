"""Replacement policies: baselines and prior work.

The paper's contribution (T-OPT / P-OPT) lives in :mod:`repro.popt`; this
package holds everything it is compared against.
"""

from .base import ReplacementPolicy
from .deadblock import SDBP, Leeway
from .grasp import GRASP
from .hawkeye import Hawkeye
from .lip import BIP, LIP
from .lru import LRU
from .opt import BeladyOPT
from .plru import BitPLRU
from .random_policy import RandomReplacement
from .registry import PolicyContext, make_policy, policy_names, register_policy
from .rrip import BRRIP, DRRIP, SRRIP
from .ship import SHiP, ship_mem, ship_pc

__all__ = [
    "ReplacementPolicy",
    "LRU",
    "LIP",
    "BIP",
    "BitPLRU",
    "RandomReplacement",
    "SRRIP",
    "BRRIP",
    "DRRIP",
    "SHiP",
    "ship_pc",
    "ship_mem",
    "Hawkeye",
    "BeladyOPT",
    "GRASP",
    "SDBP",
    "Leeway",
    "PolicyContext",
    "make_policy",
    "policy_names",
    "register_policy",
]
