"""LIP / BIP: LRU-insertion-point policies (Qureshi et al., ISCA'07).

Predecessors of the RRIP family the paper builds on [29], [30]: LIP
inserts new lines at the *LRU* position (a thrashing stream then only
ever replaces its own most recent line), and BIP inserts at MRU with a
small probability epsilon to let the working set rotate. Included as
additional baselines for the replacement-policy substrate — they bound
what pure insertion-policy tweaks (no prediction at all) achieve on
graph workloads.
"""

from __future__ import annotations

import random

from .base import ReplacementPolicy

__all__ = ["LIP", "BIP"]


class LIP(ReplacementPolicy):
    """LRU Insertion Policy: fill at LRU, promote to MRU on hit."""

    name = "LIP"

    def reset(self) -> None:
        self._clock = 0
        self._stamps = [[0] * self.num_ways for _ in range(self.num_sets)]

    def on_hit(self, set_idx: int, way: int, ctx) -> None:
        self._clock += 1
        self._stamps[set_idx][way] = self._clock

    def on_fill(self, set_idx: int, way: int, ctx) -> None:
        # Insert at LRU: stamp *below* the set's current minimum so the
        # line is the next victim unless it gets a hit first.
        stamps = self._stamps[set_idx]
        self._stamps[set_idx][way] = min(stamps) - 1

    def choose_victim(self, set_idx: int, ctx) -> int:
        stamps = self._stamps[set_idx]
        return stamps.index(min(stamps))


class BIP(LIP):
    """Bimodal Insertion Policy: LIP with an epsilon of MRU insertions."""

    name = "BIP"

    EPSILON = 1.0 / 32.0

    def __init__(self, seed: int = 0) -> None:
        super().__init__()
        self._seed = seed

    def reset(self) -> None:
        super().reset()
        self._rng = random.Random(self._seed)

    def on_fill(self, set_idx: int, way: int, ctx) -> None:
        if self._rng.random() < self.EPSILON:
            self._clock += 1
            self._stamps[set_idx][way] = self._clock  # MRU insertion
        else:
            super().on_fill(set_idx, way, ctx)
