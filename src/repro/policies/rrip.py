"""RRIP-family replacement: SRRIP, BRRIP, and set-dueling DRRIP.

DRRIP (Jaleel et al. [30]) is the paper's primary baseline (Table I): real
server parts ship a DRRIP variant [52]. Re-Reference Interval Prediction
keeps an M-bit RRPV per line; victims are lines with the maximum RRPV
(re-reference predicted furthest in future).

- SRRIP inserts at ``max-1`` (long interval) and promotes to 0 on hit
  (hit-priority), giving scan resistance.
- BRRIP inserts at ``max`` except for a 1/32 trickle at ``max-1``, giving
  thrash resistance.
- DRRIP set-duels the two: a few leader sets are dedicated to each, and a
  saturating PSEL counter steers all follower sets to the current winner.
"""

from __future__ import annotations

import random

from ..sim.constants import (
    BRRIP_TRICKLE,
    DEFAULT_PSEL_BITS,
    DEFAULT_RRPV_BITS,
    saturating_max,
)
from .base import ReplacementPolicy

__all__ = ["SRRIP", "BRRIP", "DRRIP"]


class _RRIPBase(ReplacementPolicy):
    """Shared RRPV storage and victim scan."""

    def __init__(self, rrpv_bits: int = DEFAULT_RRPV_BITS) -> None:
        super().__init__()
        self.rrpv_bits = rrpv_bits
        self.rrpv_max = saturating_max(rrpv_bits)

    def reset(self) -> None:
        self._rrpv = [
            [self.rrpv_max] * self.num_ways for _ in range(self.num_sets)
        ]

    def on_hit(self, set_idx: int, way: int, ctx) -> None:
        # Hit priority: promote to "re-reference imminent".
        self._rrpv[set_idx][way] = 0

    def choose_victim(self, set_idx: int, ctx) -> int:
        rrpv = self._rrpv[set_idx]
        maximum = self.rrpv_max
        while True:
            try:
                return rrpv.index(maximum)
            except ValueError:
                # Age the whole set until some line reaches max.
                bump = maximum - max(rrpv)
                for way in range(self.num_ways):
                    rrpv[way] += bump

    # Insertion differs per variant.
    def insertion_rrpv(self, set_idx: int) -> int:
        raise NotImplementedError

    def on_fill(self, set_idx: int, way: int, ctx) -> None:
        self._rrpv[set_idx][way] = self.insertion_rrpv(set_idx)


class SRRIP(_RRIPBase):
    """Static RRIP: scan-resistant long-interval insertion."""

    name = "SRRIP"

    def insertion_rrpv(self, set_idx: int) -> int:
        return self.rrpv_max - 1


class BRRIP(_RRIPBase):
    """Bimodal RRIP: thrash-resistant distant insertion with a trickle."""

    name = "BRRIP"

    #: Probability of the "long" (rather than "distant") insertion.
    TRICKLE = BRRIP_TRICKLE

    def __init__(
        self, rrpv_bits: int = DEFAULT_RRPV_BITS, seed: int = 0
    ) -> None:
        super().__init__(rrpv_bits)
        self._seed = seed

    def reset(self) -> None:
        super().reset()
        self._rng = random.Random(self._seed)

    def insertion_rrpv(self, set_idx: int) -> int:
        if self._rng.random() < self.TRICKLE:
            return self.rrpv_max - 1
        return self.rrpv_max


class DRRIP(_RRIPBase):
    """Dynamic RRIP via set dueling between SRRIP and BRRIP insertion."""

    name = "DRRIP"

    def __init__(
        self,
        rrpv_bits: int = DEFAULT_RRPV_BITS,
        psel_bits: int = DEFAULT_PSEL_BITS,
        leader_period: int = 32,
        seed: int = 0,
    ) -> None:
        super().__init__(rrpv_bits)
        self.psel_max = saturating_max(psel_bits)
        self.leader_period = leader_period
        self._seed = seed

    def reset(self) -> None:
        super().reset()
        self._rng = random.Random(self._seed)
        self._psel = self.psel_max // 2
        # Leader assignment: within each period of sets, set 0 leads SRRIP
        # and set period/2 leads BRRIP (a standard static mapping).
        self._leader = [0] * self.num_sets  # 0 follower, 1 SRRIP, 2 BRRIP
        for set_idx in range(self.num_sets):
            phase = set_idx % self.leader_period
            if phase == 0:
                self._leader[set_idx] = 1
            elif phase == self.leader_period // 2:
                self._leader[set_idx] = 2

    def _miss_feedback(self, set_idx: int) -> None:
        # A miss in a leader set votes against that leader's policy.
        role = self._leader[set_idx]
        if role == 1 and self._psel < self.psel_max:
            self._psel += 1  # SRRIP missed -> lean BRRIP
        elif role == 2 and self._psel > 0:
            self._psel -= 1  # BRRIP missed -> lean SRRIP

    def insertion_rrpv(self, set_idx: int) -> int:
        self._miss_feedback(set_idx)
        role = self._leader[set_idx]
        if role == 1:
            use_brrip = False
        elif role == 2:
            use_brrip = True
        else:
            use_brrip = self._psel > self.psel_max // 2
        if not use_brrip:
            return self.rrpv_max - 1
        if self._rng.random() < BRRIP.TRICKLE:
            return self.rrpv_max - 1
        return self.rrpv_max
