"""Bit-PLRU replacement (Table I: the L1/L2 policy)."""

from __future__ import annotations

from .base import ReplacementPolicy

__all__ = ["BitPLRU"]


class BitPLRU(ReplacementPolicy):
    """Bit pseudo-LRU: one MRU bit per way.

    A touch sets the way's bit; when the last zero bit would disappear, all
    *other* bits are cleared first. The victim is the lowest-indexed way
    with a clear bit.
    """

    name = "Bit-PLRU"

    def reset(self) -> None:
        self._mru = [[False] * self.num_ways for _ in range(self.num_sets)]

    def _touch(self, set_idx: int, way: int) -> None:
        bits = self._mru[set_idx]
        bits[way] = True
        if all(bits):
            for other in range(self.num_ways):
                if other != way:
                    bits[other] = False

    def on_hit(self, set_idx: int, way: int, ctx) -> None:
        self._touch(set_idx, way)

    def on_fill(self, set_idx: int, way: int, ctx) -> None:
        self._touch(set_idx, way)

    def choose_victim(self, set_idx: int, ctx) -> int:
        bits = self._mru[set_idx]
        try:
            return bits.index(False)
        except ValueError:  # pragma: no cover - _touch keeps a zero bit
            return 0
