"""Belady's MIN (OPT): the offline-optimal replacement oracle.

OPT evicts the line whose next reference lies furthest in the future. It
needs the full future access stream, so it only runs on *materialized*
traces: the driver precomputes, for every access, the index of the next
access to the same line (:meth:`repro.memory.trace.MemoryTrace.next_use_indices`)
and hands the array to this policy.

Every access (hit or fill) refreshes the line's stored next-use index, so
the per-line values are always exact and victim selection is a simple max.
This is the textbook simulation of Belady's MIN and the upper bound that
T-OPT approaches (Section III) and P-OPT approximates.
"""

from __future__ import annotations

import numpy as np

from ..errors import PolicyError
from .base import ReplacementPolicy

__all__ = ["BeladyOPT"]


class BeladyOPT(ReplacementPolicy):
    """Offline-optimal replacement driven by a precomputed next-use array."""

    name = "OPT"

    def __init__(self, next_use: np.ndarray) -> None:
        super().__init__()
        if next_use.ndim != 1:
            raise PolicyError("next_use must be a 1-D array")
        self._next_use_arr = next_use
        # Plain Python list: element reads in the hot path beat numpy
        # scalar extraction.
        self._next_use = next_use.tolist()

    def reset(self) -> None:
        infinity = len(self._next_use) + 1
        self._infinity = infinity
        self._line_next = [
            [0] * self.num_ways for _ in range(self.num_sets)
        ]

    def _record(self, set_idx: int, way: int, ctx) -> None:
        index = ctx.index
        if index >= len(self._next_use):
            raise PolicyError(
                "access index beyond the trace OPT was prepared for"
            )
        self._line_next[set_idx][way] = self._next_use[index]

    def on_hit(self, set_idx: int, way: int, ctx) -> None:
        self._record(set_idx, way, ctx)

    def on_fill(self, set_idx: int, way: int, ctx) -> None:
        self._record(set_idx, way, ctx)

    def choose_victim(self, set_idx: int, ctx) -> int:
        next_uses = self._line_next[set_idx]
        return next_uses.index(max(next_uses))
