"""Least Recently Used replacement (the paper's simple baseline)."""

from __future__ import annotations

from .base import ReplacementPolicy

__all__ = ["LRU"]


class LRU(ReplacementPolicy):
    """True LRU via per-line access timestamps.

    A global monotonically increasing counter stamps every touch; the
    victim is the way with the smallest stamp. Timestamp LRU is exact and,
    at 8-16 ways, as fast in Python as list-reordering variants.
    """

    name = "LRU"

    def reset(self) -> None:
        self._clock = 0
        self._stamps = [[0] * self.num_ways for _ in range(self.num_sets)]

    def on_hit(self, set_idx: int, way: int, ctx) -> None:
        self._clock += 1
        self._stamps[set_idx][way] = self._clock

    def on_fill(self, set_idx: int, way: int, ctx) -> None:
        self._clock += 1
        self._stamps[set_idx][way] = self._clock

    def choose_victim(self, set_idx: int, ctx) -> int:
        stamps = self._stamps[set_idx]
        return stamps.index(min(stamps))
