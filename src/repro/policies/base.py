"""Replacement policy interface.

A policy owns all replacement metadata for the cache it is bound to. The
cache calls back on hits, fills, and evictions, and asks
:meth:`choose_victim` when a set is full. Policies may inspect the bound
cache's ``tags`` to see which lines are resident (T-OPT and P-OPT need the
victim candidates' addresses).

One policy instance serves one cache: :meth:`bind` is called by the cache
constructor and (re)initializes per-set state.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..errors import PolicyError

if TYPE_CHECKING:  # pragma: no cover
    from ..cache.cache import AccessContext, SetAssociativeCache

__all__ = ["ReplacementPolicy"]


class ReplacementPolicy:
    """Base class; subclasses override the hooks they need."""

    #: Human-readable policy name (used in reports and plots).
    name = "base"

    def __init__(self) -> None:
        self.cache = None
        self.num_sets = 0
        self.num_ways = 0

    def bind(self, cache: "SetAssociativeCache") -> None:
        """Attach to a cache and (re)build per-set metadata."""
        self.cache = cache
        self.num_sets = cache.num_sets
        self.num_ways = cache.num_ways
        self.reset()

    def reset(self) -> None:
        """Initialize per-set metadata. Called from :meth:`bind`."""

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------

    def on_hit(self, set_idx: int, way: int, ctx: "AccessContext") -> None:
        """The line in (set_idx, way) was re-referenced."""

    def on_fill(self, set_idx: int, way: int, ctx: "AccessContext") -> None:
        """A new line was installed into (set_idx, way)."""

    def on_evict(self, set_idx: int, way: int, ctx: "AccessContext") -> None:
        """The line in (set_idx, way) is about to be evicted."""

    def choose_victim(self, set_idx: int, ctx: "AccessContext") -> int:
        """Pick a way to evict from a full set."""
        raise PolicyError(f"{self.name} does not implement choose_victim")

    # ------------------------------------------------------------------
    # Replay-kernel dispatch
    # ------------------------------------------------------------------

    def replay_kernel(self) -> Optional[str]:
        """Name of this policy's LLC replay kernel, or None.

        The replay engine uses the named tight loop from
        :mod:`repro.sim.kernels` instead of the per-access
        cache/callback walk when a kernel is advertised (and sanitizing
        is off). The default consults the exact-type table in
        :mod:`repro.policies.registry` — *exact* type, so a subclass
        that changes behavior (e.g. BIP refining LIP's insertion) never
        inherits a kernel that does not model it; subclasses with their
        own kernel register their own entry or override this hook.
        """
        from .registry import replay_kernels

        return replay_kernels().get(type(self))
