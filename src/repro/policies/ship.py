"""SHiP: Signature-based Hit Predictor (Wu et al. [53]).

SHiP layers a re-reference predictor over SRRIP. Every line carries the
*signature* of the access that filled it plus an outcome bit; a table of
saturating counters (the SHCT) learns, per signature, whether filled lines
are re-referenced before eviction. Fills whose signature has a zero counter
insert at distant RRPV (predicted dead); others insert long.

Two signature flavors match the paper's Section II-B:

- **SHiP-PC** signs with the access-site ID (program counter). Graph
  kernels defeat it: the single ``srcData[src]`` load site covers both
  hub vertices (high reuse) and cold vertices (no reuse).
- **SHiP-Mem** signs with the memory region of the line. The paper
  evaluates an *idealized* variant with unbounded tracking; here the SHCT
  is a dict (infinite capacity) and the region granularity is
  configurable down to a single line.
"""

from __future__ import annotations

from collections import defaultdict

from .base import ReplacementPolicy

__all__ = ["SHiP", "ship_pc", "ship_mem"]


class SHiP(ReplacementPolicy):
    """SHiP over an SRRIP substrate with a pluggable signature."""

    name = "SHiP"

    SHCT_MAX = 3          # 2-bit saturating counters
    SHCT_INITIAL = 1

    def __init__(
        self,
        signature: str = "pc",
        rrpv_bits: int = 2,
        mem_region_lines: int = 256,
    ) -> None:
        super().__init__()
        if signature not in ("pc", "mem"):
            raise ValueError("signature must be 'pc' or 'mem'")
        self.signature_kind = signature
        self.rrpv_bits = rrpv_bits
        self.rrpv_max = (1 << rrpv_bits) - 1
        self.mem_region_lines = mem_region_lines
        self.name = f"SHiP-{'PC' if signature == 'pc' else 'Mem'}"

    def reset(self) -> None:
        self._rrpv = [
            [self.rrpv_max] * self.num_ways for _ in range(self.num_sets)
        ]
        self._line_sig = [[0] * self.num_ways for _ in range(self.num_sets)]
        self._line_reused = [
            [False] * self.num_ways for _ in range(self.num_sets)
        ]
        self._shct = defaultdict(lambda: self.SHCT_INITIAL)

    # ------------------------------------------------------------------

    def _fill_signature(self, line_addr: int, ctx) -> int:
        if self.signature_kind == "pc":
            return ctx.pc
        return line_addr // self.mem_region_lines

    # ------------------------------------------------------------------

    def on_hit(self, set_idx: int, way: int, ctx) -> None:
        self._rrpv[set_idx][way] = 0
        if not self._line_reused[set_idx][way]:
            self._line_reused[set_idx][way] = True
            sig = self._line_sig[set_idx][way]
            if self._shct[sig] < self.SHCT_MAX:
                self._shct[sig] += 1

    def on_evict(self, set_idx: int, way: int, ctx) -> None:
        if not self._line_reused[set_idx][way]:
            sig = self._line_sig[set_idx][way]
            if self._shct[sig] > 0:
                self._shct[sig] -= 1

    def on_fill(self, set_idx: int, way: int, ctx) -> None:
        line_addr = self.cache.tags[set_idx][way]
        sig = self._fill_signature(line_addr, ctx)
        self._line_sig[set_idx][way] = sig
        self._line_reused[set_idx][way] = False
        if self._shct[sig] == 0:
            self._rrpv[set_idx][way] = self.rrpv_max       # predicted dead
        else:
            self._rrpv[set_idx][way] = self.rrpv_max - 1   # long interval

    def choose_victim(self, set_idx: int, ctx) -> int:
        rrpv = self._rrpv[set_idx]
        maximum = self.rrpv_max
        while True:
            try:
                return rrpv.index(maximum)
            except ValueError:
                bump = maximum - max(rrpv)
                for way in range(self.num_ways):
                    rrpv[way] += bump

    def replay_kernel(self):
        # The replay kernel's dense SHCT indexes uint8 PC tags;
        # SHiP-Mem's region signatures (unbounded dict) must take the
        # generic per-access path.
        if self.signature_kind != "pc":
            return None
        return super().replay_kernel()


def ship_pc() -> SHiP:
    """SHiP signing with the access-site ID (program counter)."""
    return SHiP(signature="pc")


def ship_mem(region_lines: int = 1) -> SHiP:
    """Idealized SHiP-Mem: unbounded SHCT, per-``region_lines`` signatures.

    The paper's idealized variant tracks individual cache lines
    (``region_lines=1``).
    """
    return SHiP(signature="mem", mem_region_lines=region_lines)
