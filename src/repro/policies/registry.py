"""Name -> policy-factory registry used by the benchmark harnesses.

Some policies need run-specific context (OPT needs the materialized
trace's next-use array; GRASP needs DBG address ranges; T-OPT/P-OPT need
the graph and layout), so the registry stores *factories* taking a
:class:`PolicyContext`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from ..errors import PolicyError
from ..sim.worker_state import register_worker_state
from .base import ReplacementPolicy
from .hawkeye import Hawkeye
from .lru import LRU
from .plru import BitPLRU
from .random_policy import RandomReplacement
from .rrip import BRRIP, DRRIP, SRRIP
from .ship import ship_mem, ship_pc

__all__ = [
    "PolicyContext",
    "make_policy",
    "register_policy",
    "policy_names",
    "replay_kernels",
]


@dataclass
class PolicyContext:
    """Everything a policy factory might need about the run being built."""

    graph: object = None          # CSRGraph traversed by the kernel
    transpose: object = None      # its transpose (next-ref source)
    layout: object = None         # AddressSpace
    trace: object = None          # materialized MemoryTrace (oracle policies)
    next_use: Optional[np.ndarray] = None
    hot_range: Optional[tuple] = None    # GRASP hot region (line addrs)
    warm_range: Optional[tuple] = None   # GRASP warm region
    extras: Dict[str, object] = field(default_factory=dict)


_FACTORIES: Dict[str, Callable[[PolicyContext], ReplacementPolicy]] = {}

register_worker_state(
    "repro.policies.registry._FACTORIES",
    kind="frozen",
    note="policy registry, populated by import-time decorators; "
         "worker-executed code must not register policies",
)


def register_policy(name: str, *, replace: bool = False):
    """Decorator registering a factory under ``name``.

    Duplicate names are rejected (a silent overwrite would make replay
    results depend on import order); pass ``replace=True`` to swap in a
    variant deliberately.
    """

    def decorate(factory):
        if not replace and name in _FACTORIES:
            raise PolicyError(
                f"policy {name!r} is already registered; "
                "pass replace=True to override it"
            )
        _FACTORIES[name] = factory
        return factory

    return decorate


def make_policy(name: str, ctx: Optional[PolicyContext] = None):
    """Instantiate the named policy for the given run context."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise PolicyError(
            f"unknown policy {name!r}; choose from {policy_names()}"
        ) from None
    return factory(ctx if ctx is not None else PolicyContext())


def policy_names() -> List[str]:
    return sorted(_FACTORIES)


# ----------------------------------------------------------------------
# Replay-kernel dispatch table
# ----------------------------------------------------------------------

_REPLAY_KERNELS: Optional[Dict[type, str]] = None

register_worker_state(
    "repro.policies.registry._REPLAY_KERNELS",
    kind="cache",
    note="lazily-built exact-type kernel dispatch table; identical in "
         "every process by construction",
)


def replay_kernels() -> Dict[type, str]:
    """Exact policy type -> replay-kernel name in :mod:`repro.sim.kernels`.

    Consulted by :meth:`ReplacementPolicy.replay_kernel`. Keys are
    looked up by ``type(policy)`` — **not** ``isinstance`` — so a
    subclass never silently inherits a kernel that does not model its
    behavior (BIP subclasses LIP but adds an RNG on fill;
    GRASP/SDBP/Leeway/BIP all stay on the generic per-access path).
    Two policies additionally override ``replay_kernel`` to fall back
    to the generic path when a kernel precondition fails: P-OPT when
    its tie-break sub-policy is not exactly DRRIP (the kernel inlines
    DRRIP's RRPV/PSEL evolution), and SHiP when its signature flavor is
    not ``pc`` (the kernel's dense SHCT indexes uint8 PC tags, not
    SHiP-Mem's region signatures). Built lazily so registering the
    table does not force-import every policy module at package import.
    """
    global _REPLAY_KERNELS
    if _REPLAY_KERNELS is None:
        from ..popt.policy import POPT
        from ..popt.topt import TOPT
        from .hawkeye import Hawkeye
        from .lip import LIP
        from .opt import BeladyOPT
        from .ship import SHiP

        _REPLAY_KERNELS = {
            LRU: "lru",
            LIP: "lip",
            BitPLRU: "bit-plru",
            RandomReplacement: "random",
            SRRIP: "srrip",
            BRRIP: "brrip",
            DRRIP: "drrip",
            SHiP: "ship",
            Hawkeye: "hawkeye",
            BeladyOPT: "opt",
            TOPT: "t-opt",
            POPT: "p-opt",
        }
    return _REPLAY_KERNELS


# ----------------------------------------------------------------------
# Context-free baselines
# ----------------------------------------------------------------------

register_policy("LRU")(lambda ctx: LRU())
register_policy("Bit-PLRU")(lambda ctx: BitPLRU())
register_policy("Random")(lambda ctx: RandomReplacement())
register_policy("SRRIP")(lambda ctx: SRRIP())
register_policy("BRRIP")(lambda ctx: BRRIP())
register_policy("DRRIP")(lambda ctx: DRRIP())
register_policy("SHiP-PC")(lambda ctx: ship_pc())
register_policy("SHiP-Mem")(lambda ctx: ship_mem())
register_policy("Hawkeye")(lambda ctx: Hawkeye())


def _lip_factories():
    from .lip import BIP, LIP

    register_policy("LIP")(lambda ctx: LIP())
    register_policy("BIP")(lambda ctx: BIP())


_lip_factories()


def _deadblock_factories():
    from .deadblock import SDBP, Leeway

    register_policy("SDBP")(lambda ctx: SDBP())
    register_policy("Leeway")(lambda ctx: Leeway())


_deadblock_factories()


@register_policy("OPT")
def _make_opt(ctx: PolicyContext):
    from .opt import BeladyOPT

    if ctx.next_use is None:
        if ctx.trace is None:
            raise PolicyError("OPT needs ctx.trace or ctx.next_use")
        ctx.next_use = ctx.trace.next_use_indices()
    return BeladyOPT(ctx.next_use)


@register_policy("GRASP")
def _make_grasp(ctx: PolicyContext):
    from .grasp import GRASP

    if ctx.hot_range is None:
        raise PolicyError("GRASP needs ctx.hot_range (DBG-derived)")
    return GRASP(hot_range=ctx.hot_range, warm_range=ctx.warm_range)
