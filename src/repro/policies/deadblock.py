"""Dead-block prediction policies: SDBP and Leeway.

The paper's Related Work (Section VIII) positions P-OPT against
dead-block predictors — "policies like SDBP [32] and Leeway [21] that
find cache lines that will receive no further accesses" — arguing P-OPT
identifies dead lines more accurately because it reads exact next
references from the transpose. These implementations let that claim be
measured directly (see ``benchmarks/bench_related_deadblock.py``).

**SDBP** (Khan, Tian & Jimenez, MICRO'10): a *decoupled sampler* observes
a subset of sets with its own tag history (longer lifetime than the real
cache, which is what keeps mispredictions from becoming self-fulfilling);
sampler entries evicted without reuse train their last-touch PC "dead",
sampler hits train "live". Lines whose last-touch PC is predicted dead
become preferred victims.

**Leeway** (Faldu & Grot, PACT'17): tracks each line's *live distance* —
the deepest recency-stack position at which it still receives hits —
learned per PC with asymmetric updates (raise immediately on observed
deep hits, lower hesitantly), the spirit of Leeway's variability-aware
update policies. A line sitting deeper than its PC's live distance is
predicted dead.

Both reduce to PC-indexed prediction, which Section II-B shows is the
wrong lens for graph data: the single irregular load site mixes hub and
cold vertices, so these predictors cannot separate live from dead lines.
"""

from __future__ import annotations

from collections import OrderedDict, defaultdict

from .base import ReplacementPolicy

__all__ = ["SDBP", "Leeway"]


class _SamplerEntry:
    __slots__ = ("pc", "reused")

    def __init__(self, pc: int) -> None:
        self.pc = pc
        self.reused = False


class SDBP(ReplacementPolicy):
    """Sampling Dead Block Prediction over an LRU substrate."""

    name = "SDBP"

    COUNTER_MAX = 3
    DEAD_THRESHOLD = 2       # counter >= threshold -> predicted dead
    SAMPLER_FACTOR = 4       # sampler history depth, in multiples of ways

    def __init__(self, sample_every: int = 8) -> None:
        super().__init__()
        self.sample_every = sample_every

    def reset(self) -> None:
        self._clock = 0
        self._stamps = [[0] * self.num_ways for _ in range(self.num_sets)]
        self._line_pc = [[0] * self.num_ways for _ in range(self.num_sets)]
        self._dead = [[False] * self.num_ways for _ in range(self.num_sets)]
        self._predictor = defaultdict(int)  # PC -> dead counter
        self._samplers = {
            set_idx: OrderedDict()
            for set_idx in range(0, self.num_sets, self.sample_every)
        }

    def _predict_dead(self, pc: int) -> bool:
        return self._predictor[pc] >= self.DEAD_THRESHOLD

    def _observe(self, set_idx: int, line_addr: int, ctx) -> None:
        """Feed the decoupled sampler: its history outlives the cache's
        residency, so real reuse is observed even when the cache itself
        thrashes (what keeps dead-prediction from self-fulfilling)."""
        sampler = self._samplers.get(set_idx)
        if sampler is None:
            return
        entry = sampler.get(line_addr)
        if entry is not None:
            if not entry.reused:
                # Reused while in sampler history: the filling PC is live.
                if self._predictor[entry.pc] > 0:
                    self._predictor[entry.pc] -= 1
                entry.reused = True
            entry.pc = ctx.pc
            sampler.move_to_end(line_addr)
        else:
            sampler[line_addr] = _SamplerEntry(ctx.pc)
            if len(sampler) > self.SAMPLER_FACTOR * self.num_ways:
                __, victim = sampler.popitem(last=False)
                if not victim.reused:
                    # Aged out of a long history with no reuse: dead.
                    if self._predictor[victim.pc] < self.COUNTER_MAX:
                        self._predictor[victim.pc] += 1

    def _touch(self, set_idx: int, way: int, ctx) -> None:
        self._clock += 1
        self._stamps[set_idx][way] = self._clock
        self._line_pc[set_idx][way] = ctx.pc
        self._dead[set_idx][way] = self._predict_dead(ctx.pc)

    def on_hit(self, set_idx: int, way: int, ctx) -> None:
        self._observe(set_idx, self.cache.tags[set_idx][way], ctx)
        self._touch(set_idx, way, ctx)

    def on_fill(self, set_idx: int, way: int, ctx) -> None:
        self._observe(set_idx, self.cache.tags[set_idx][way], ctx)
        self._touch(set_idx, way, ctx)

    def choose_victim(self, set_idx: int, ctx) -> int:
        dead = self._dead[set_idx]
        stamps = self._stamps[set_idx]
        best_way = -1
        best_stamp = None
        for way in range(self.num_ways):
            if dead[way] and (best_stamp is None
                              or stamps[way] < best_stamp):
                best_way = way
                best_stamp = stamps[way]
        if best_way >= 0:
            return best_way
        return stamps.index(min(stamps))


class Leeway(ReplacementPolicy):
    """Live-distance based dead-block prediction (Leeway)."""

    name = "Leeway"

    MAX_LIVE_DISTANCE = 15
    #: Consecutive shrink observations needed before lowering a PC's
    #: live distance (the hesitation that makes updates variability-aware).
    SHRINK_HESITATION = 8

    def reset(self) -> None:
        self._clock = 0
        self._stamps = [[0] * self.num_ways for _ in range(self.num_sets)]
        self._line_pc = [[0] * self.num_ways for _ in range(self.num_sets)]
        self._line_max_depth = [
            [0] * self.num_ways for _ in range(self.num_sets)
        ]
        self._live_distance = defaultdict(
            lambda: self.MAX_LIVE_DISTANCE
        )
        self._shrink_votes = defaultdict(int)

    def _stack_depth(self, set_idx: int, way: int) -> int:
        """Recency-stack position of a way (0 = MRU)."""
        stamps = self._stamps[set_idx]
        mine = stamps[way]
        return sum(1 for s in stamps if s > mine)

    def on_hit(self, set_idx: int, way: int, ctx) -> None:
        depth = self._stack_depth(set_idx, way)
        if depth > self._line_max_depth[set_idx][way]:
            self._line_max_depth[set_idx][way] = depth
        pc = self._line_pc[set_idx][way]
        # Raise immediately: an observed deep hit proves liveness there.
        if depth > self._live_distance[pc]:
            self._live_distance[pc] = min(depth, self.MAX_LIVE_DISTANCE)
            self._shrink_votes[pc] = 0
        self._clock += 1
        self._stamps[set_idx][way] = self._clock
        self._line_pc[set_idx][way] = ctx.pc

    def on_fill(self, set_idx: int, way: int, ctx) -> None:
        self._clock += 1
        self._stamps[set_idx][way] = self._clock
        self._line_pc[set_idx][way] = ctx.pc
        self._line_max_depth[set_idx][way] = 0

    def on_evict(self, set_idx: int, way: int, ctx) -> None:
        # Lower hesitantly: only a run of consistent shallow lifetimes
        # shrinks the PC's live distance by one.
        pc = self._line_pc[set_idx][way]
        observed = self._line_max_depth[set_idx][way]
        current = self._live_distance[pc]
        if observed < current:
            self._shrink_votes[pc] += 1
            if self._shrink_votes[pc] >= self.SHRINK_HESITATION:
                self._live_distance[pc] = current - 1
                self._shrink_votes[pc] = 0
        else:
            self._shrink_votes[pc] = 0

    def choose_victim(self, set_idx: int, ctx) -> int:
        stamps = self._stamps[set_idx]
        order = sorted(
            range(self.num_ways), key=lambda w: stamps[w]
        )  # LRU first
        total = self.num_ways
        # Prefer the LRU-most line already past its PC's live distance.
        for position, way in enumerate(order):
            depth = total - 1 - position
            pc = self._line_pc[set_idx][way]
            if depth > self._live_distance[pc]:
                return way
        return order[0]
