"""Hawkeye replacement (Jain & Lin [28]).

Hawkeye retroactively applies Belady's MIN to the history of accesses: a
set-sampled *OPTgen* structure decides whether each access **would have
hit** under OPT with the cache's capacity, and a PC-indexed table of
saturating counters learns which access sites produce cache-friendly
lines. Fills predicted friendly insert at RRPV 0 and age slowly; fills
predicted averse insert at max RRPV and are evicted first.

The paper's observation (Section II-B) is that PC-based prediction is the
wrong lens for graph kernels: the single irregular load site mixes hub and
cold vertices, so Hawkeye's predictor sees contradictory training and
converges near DRRIP behaviour — which is exactly what Figs. 2/4 show.

Implementation notes: OPTgen is modeled per sampled set with an occupancy
vector over a sliding window of that set's accesses, as in the original
paper (8x associativity history per set).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List

from .base import ReplacementPolicy

__all__ = ["Hawkeye"]


class _SetHistory:
    """Sliding access history + occupancy vector for one sampled set."""

    __slots__ = ("capacity", "window", "times", "occupancy", "last_access",
                 "clock")

    def __init__(self, capacity: int, window: int) -> None:
        self.capacity = capacity
        self.window = window
        self.occupancy: List[int] = []
        self.last_access: Dict[int, int] = {}
        self.clock = 0

    def record(self, line_addr: int) -> "bool | None":
        """Record an access; returns OPT's verdict for the *previous*
        access to this line (True = would hit), or None on first touch."""
        verdict = None
        previous = self.last_access.get(line_addr)
        if previous is not None and self.clock - previous <= self.window:
            start = previous - (self.clock - len(self.occupancy))
            interval = self.occupancy[start:] if start >= 0 else None
            if interval is not None:
                if all(slot < self.capacity for slot in interval):
                    for i in range(start, len(self.occupancy)):
                        self.occupancy[i] += 1
                    verdict = True
                else:
                    verdict = False
        self.occupancy.append(0)
        if len(self.occupancy) > self.window:
            drop = len(self.occupancy) - self.window
            del self.occupancy[:drop]
        self.last_access[line_addr] = self.clock
        self.clock += 1
        if len(self.last_access) > 4 * self.window:
            horizon = self.clock - self.window
            self.last_access = {
                line: t for line, t in self.last_access.items() if t >= horizon
            }
        return verdict


class Hawkeye(ReplacementPolicy):
    """Hawkeye with 3-bit RRIP ranks and a PC-indexed predictor."""

    name = "Hawkeye"

    RRPV_MAX = 7          # 3-bit ranks as in the original design
    COUNTER_MAX = 7       # 3-bit saturating predictor counters
    COUNTER_INITIAL = 4

    def __init__(self, sample_every: int = 8, history_factor: int = 8) -> None:
        super().__init__()
        self.sample_every = sample_every
        self.history_factor = history_factor

    def reset(self) -> None:
        self._rrpv = [
            [self.RRPV_MAX] * self.num_ways for _ in range(self.num_sets)
        ]
        self._line_pc = [[0] * self.num_ways for _ in range(self.num_sets)]
        self._predictor = defaultdict(lambda: self.COUNTER_INITIAL)
        window = self.history_factor * self.num_ways
        self._histories = {
            set_idx: _SetHistory(self.num_ways, window)
            for set_idx in range(0, self.num_sets, self.sample_every)
        }
        # Which PC last touched each line in a sampled set (for training).
        self._last_pc = {set_idx: {} for set_idx in self._histories}

    # ------------------------------------------------------------------

    def _train(self, set_idx: int, line_addr: int, ctx) -> None:
        history = self._histories.get(set_idx)
        if history is None:
            return
        verdict = history.record(line_addr)
        last_pc_map = self._last_pc[set_idx]
        trained_pc = last_pc_map.get(line_addr)
        if verdict is not None and trained_pc is not None:
            counter = self._predictor[trained_pc]
            if verdict and counter < self.COUNTER_MAX:
                self._predictor[trained_pc] = counter + 1
            elif not verdict and counter > 0:
                self._predictor[trained_pc] = counter - 1
        last_pc_map[line_addr] = ctx.pc

    def _is_friendly(self, pc: int) -> bool:
        return self._predictor[pc] >= self.COUNTER_INITIAL

    def _insert(self, set_idx: int, way: int, ctx) -> None:
        if self._is_friendly(ctx.pc):
            # Friendly: insert at 0 and age everyone else by one.
            rrpv = self._rrpv[set_idx]
            for other in range(self.num_ways):
                if other != way and rrpv[other] < self.RRPV_MAX - 1:
                    rrpv[other] += 1
            rrpv[way] = 0
        else:
            self._rrpv[set_idx][way] = self.RRPV_MAX

    # ------------------------------------------------------------------

    def on_hit(self, set_idx: int, way: int, ctx) -> None:
        line_addr = self.cache.tags[set_idx][way]
        self._train(set_idx, line_addr, ctx)
        self._line_pc[set_idx][way] = ctx.pc
        if self._is_friendly(ctx.pc):
            self._rrpv[set_idx][way] = 0

    def on_fill(self, set_idx: int, way: int, ctx) -> None:
        line_addr = self.cache.tags[set_idx][way]
        self._train(set_idx, line_addr, ctx)
        self._line_pc[set_idx][way] = ctx.pc
        self._insert(set_idx, way, ctx)

    def on_evict(self, set_idx: int, way: int, ctx) -> None:
        # Original Hawkeye detrains the PC of a cache-friendly line that
        # gets evicted anyway: its prediction was wrong.
        pc = self._line_pc[set_idx][way]
        if self._is_friendly(pc) and self._predictor[pc] > 0:
            self._predictor[pc] -= 1

    def choose_victim(self, set_idx: int, ctx) -> int:
        rrpv = self._rrpv[set_idx]
        try:
            return rrpv.index(self.RRPV_MAX)
        except ValueError:
            # No averse line: evict the oldest friendly line (highest rank).
            return rrpv.index(max(rrpv))
