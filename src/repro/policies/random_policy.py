"""Random replacement (sanity-check baseline)."""

from __future__ import annotations

import random

from .base import ReplacementPolicy

__all__ = ["RandomReplacement"]

#: Large odd multiplier spreading ``(seed, set)`` pairs over distinct RNG
#: seeds. ``random.Random`` only accepts hashable scalars, so the pair is
#: mixed into one int.
_SET_SEED_STRIDE = 1_000_003


class RandomReplacement(ReplacementPolicy):
    """Uniformly random victim selection (deterministic given ``seed``).

    Each set draws from its own seeded RNG stream, so the victims chosen
    in one set do not depend on how accesses to *other* sets interleave
    — sets stay independent, which is what lets the set-partitioned
    replay kernel (:mod:`repro.sim.kernels`) reproduce this policy
    bit for bit.
    """

    name = "Random"

    def __init__(self, seed: int = 0) -> None:
        super().__init__()
        self._seed = seed

    @staticmethod
    def rng_for_set(seed: int, set_idx: int) -> random.Random:
        """The per-set RNG stream (shared with the replay kernel)."""
        return random.Random(seed * _SET_SEED_STRIDE + set_idx)

    def reset(self) -> None:
        self._rngs = [
            self.rng_for_set(self._seed, set_idx)
            for set_idx in range(self.num_sets)
        ]

    def choose_victim(self, set_idx: int, ctx) -> int:
        return self._rngs[set_idx].randrange(self.num_ways)
