"""Random replacement (sanity-check baseline)."""

from __future__ import annotations

import random

from .base import ReplacementPolicy

__all__ = ["RandomReplacement"]


class RandomReplacement(ReplacementPolicy):
    """Uniformly random victim selection (deterministic given ``seed``)."""

    name = "Random"

    def __init__(self, seed: int = 0) -> None:
        super().__init__()
        self._seed = seed

    def reset(self) -> None:
        self._rng = random.Random(self._seed)

    def choose_victim(self, set_idx: int, ctx) -> int:
        return self._rng.randrange(self.num_ways)
