"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without catching unrelated bugs.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphFormatError(ReproError):
    """An edge list, CSR array, or serialized graph is malformed."""


class LayoutError(ReproError):
    """An address-space layout request is invalid (overlap, bad size, ...)."""


class CacheConfigError(ReproError):
    """A cache geometry is invalid (non power-of-two line, zero ways, ...)."""


class PolicyError(ReproError):
    """A replacement policy was misused or misconfigured."""


class SimulationError(ReproError):
    """The simulation driver was wired incorrectly."""


class SanitizerError(ReproError):
    """A runtime invariant of the cache simulator was violated.

    Raised by :class:`repro.cache.sanitizer.CacheSanitizer` during
    sanitized replays (``simulate_prepared(..., sanitize=True)``): the
    simulator's internal state or statistics stopped satisfying an
    invariant that every correct replay maintains."""
