"""Conventional prefetchers: next-line and per-PC stride.

These are the "conventional stream prefetchers" the paper disables in its
evaluation because prior work [8] found them "ill-suited to handle the
irregular memory accesses dominating graph applications" — a claim the
prefetch bench reproduces: they cover the streaming offsets/neighbor
arrays (which were never the problem) and almost none of the irregular
``srcData`` misses.
"""

from __future__ import annotations

from typing import Dict, List

from .base import Prefetcher

__all__ = ["NextLinePrefetcher", "StridePrefetcher"]


class NextLinePrefetcher(Prefetcher):
    """Prefetch the next ``degree`` sequential lines on every access."""

    name = "next-line"

    def __init__(self, degree: int = 1) -> None:
        self.degree = degree

    def observe(self, line_addr: int, ctx) -> List[int]:
        return [line_addr + k for k in range(1, self.degree + 1)]


class StridePrefetcher(Prefetcher):
    """Classic per-PC stride detection with a confidence counter.

    Learns (last address, stride, confidence) per access site and issues
    a prefetch once the same stride repeats ``threshold`` times.
    """

    name = "stride"

    def __init__(self, degree: int = 2, threshold: int = 2) -> None:
        self.degree = degree
        self.threshold = threshold
        self._table: Dict[int, list] = {}

    def observe(self, line_addr: int, ctx) -> List[int]:
        entry = self._table.get(ctx.pc)
        if entry is None:
            self._table[ctx.pc] = [line_addr, 0, 0]
            return []
        last, stride, confidence = entry
        new_stride = line_addr - last
        if new_stride == 0:
            # Same line again: streaming arrays sit on one line for many
            # element accesses — neutral, keep the learned stride.
            return []
        if new_stride == stride:
            confidence = min(confidence + 1, self.threshold)
        else:
            stride = new_stride
            confidence = 0
        self._table[ctx.pc] = [line_addr, stride, confidence]
        if confidence >= self.threshold and stride != 0:
            return [
                line_addr + stride * k
                for k in range(1, self.degree + 1)
            ]
        return []
