"""IMP-style indirect prefetcher (Yu et al. [54]).

IMP detects ``A[B[i]]`` indirection: as the streaming index array ``B``
(here the CSC/CSR neighbor array) is read, it prefetches the indirect
targets ``A[B[i + delta]]`` a configurable distance ahead. Like real IMP,
it reads the index array's *contents* — the simulator hands it the
neighbor array and the irregular span so it can compute target addresses,
which stands in for IMP's hardware value capture.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..memory.layout import ArraySpan
from ..memory.trace import AccessKind
from .base import Prefetcher

__all__ = ["IndirectPrefetcher"]


class IndirectPrefetcher(Prefetcher):
    """Prefetch irregData[NA[i + delta]] when NA[i] streams past."""

    name = "indirect"

    def __init__(
        self,
        neighbor_span: ArraySpan,
        neighbor_values: np.ndarray,
        target_span: ArraySpan,
        delta: int = 8,
    ) -> None:
        self.neighbor_span = neighbor_span
        self.neighbor_values = np.asarray(neighbor_values, dtype=np.int64)
        self.target_span = target_span
        self.delta = delta
        self._elem_bytes = neighbor_span.elem_bits // 8
        self._line_shift = 6

    def observe(self, line_addr: int, ctx) -> List[int]:
        if ctx.pc != AccessKind.NEIGHBORS:
            return []
        addr = line_addr << self._line_shift
        if not self.neighbor_span.contains(addr):
            return []
        index = (addr - self.neighbor_span.base) // self._elem_bytes
        target_index = index + self.delta
        if target_index >= len(self.neighbor_values):
            return []
        element = int(self.neighbor_values[target_index])
        return [
            int(self.target_span.addr_of(element)) >> self._line_shift
        ]
