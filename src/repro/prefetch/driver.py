"""Replay loop with a prefetcher attached to the LLC.

Prefetches are installed immediately on issue (idealized timeliness — the
same idealization the paper grants HATS's scheduler) and inserted through
the LLC's normal fill path, so the replacement policy manages them like
any other line. Usefulness is settled lazily: a prefetched line's next
demand access decides useful (hit) vs useless (missed again, i.e. the
line was evicted untouched); lines never demanded again settle useless at
the end.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..cache.cache import AccessContext
from ..cache.hierarchy import CacheHierarchy, LEVEL_DRAM
from ..memory.trace import MemoryTrace, decode_trace
from .base import Prefetcher, PrefetchStats

__all__ = ["replay_with_prefetcher"]


def replay_with_prefetcher(
    trace: MemoryTrace,
    hierarchy: CacheHierarchy,
    prefetcher: Optional[Prefetcher],
) -> PrefetchStats:
    """Replay ``trace``, letting ``prefetcher`` install LLC lines."""
    stats = PrefetchStats()
    ctx = AccessContext()
    prefetch_ctx = AccessContext()
    lines, pcs, writes, vertices = decode_trace(
        trace, hierarchy.line_shift
    ).as_lists()
    access_line = hierarchy.access_line
    llc = hierarchy.llc
    pending: Dict[int, bool] = {}
    for index in range(len(lines)):
        line = lines[index]
        ctx.pc = pcs[index]
        ctx.index = index
        ctx.vertex = vertices[index]
        ctx.write = writes[index]
        level = access_line(line, ctx)
        if line in pending:
            if level < LEVEL_DRAM:
                stats.useful += 1
            else:
                stats.useless += 1  # evicted before its demand access
            del pending[line]
        if prefetcher is None:
            continue
        candidates = prefetcher.observe(line, ctx)
        if not candidates:
            continue
        prefetch_ctx.pc = ctx.pc
        prefetch_ctx.index = index
        prefetch_ctx.vertex = ctx.vertex
        for candidate in candidates:
            stats.requested += 1
            if candidate in pending:
                continue
            if llc.install(candidate, prefetch_ctx):
                stats.issued += 1
                pending[candidate] = True
    stats.useless += len(pending)  # never demanded again
    return stats
