"""Transpose-driven prefetching — the paper's future-work direction.

The transpose tells T-OPT/P-OPT *when a line will be used again*; read the
other way around, it tells a prefetcher *which lines the upcoming outer
iterations will use*: pull iteration ``d`` touches ``srcData[s]`` for
every in-neighbor ``s`` of ``d``, a list sitting right in the CSC. When
the execution advances to outer vertex ``v``, this prefetcher walks the
next ``lookahead`` vertices' in-neighbor lists and prefetches their
irregData lines.

Unlike IMP this needs no value capture or run-ahead in the neighbor
stream: the structure *is* the prefetch list, the same observation that
makes T-OPT work. Duplicate suppression keeps it from re-issuing lines
already prefetched within the window.
"""

from __future__ import annotations

from typing import List

from ..graph.csr import CSRGraph
from ..memory.layout import ArraySpan
from .base import Prefetcher

__all__ = ["TransposePrefetcher"]


class TransposePrefetcher(Prefetcher):
    """Prefetch the irregData lines the next outer vertices will touch."""

    name = "transpose"

    def __init__(
        self,
        traversal_graph: CSRGraph,
        target_span: ArraySpan,
        lookahead: int = 4,
    ) -> None:
        """``traversal_graph`` is the structure the kernel scans (the CSC
        for a pull kernel): ``out_neighbors(d)`` are the elements iteration
        ``d`` will access."""
        self.graph = traversal_graph
        self.target_span = target_span
        self.lookahead = lookahead
        self._elems_per_line = target_span.elems_per_line
        self._base_line = target_span.base >> 6
        self._last_vertex = -1
        self._recent: set = set()

    def observe(self, line_addr: int, ctx) -> List[int]:
        vertex = ctx.vertex
        if vertex == self._last_vertex:
            return []
        self._last_vertex = vertex
        self._recent.clear()
        n = self.graph.num_vertices
        prefetches: List[int] = []
        for ahead in range(1, self.lookahead + 1):
            upcoming = vertex + ahead
            if upcoming >= n:
                break
            for element in self.graph.out_neighbors(upcoming):
                line = self._base_line + int(element) // self._elems_per_line
                if line not in self._recent:
                    self._recent.add(line)
                    prefetches.append(line)
        return prefetches
