"""Prefetcher interface and accounting.

Section VIII (Related Work) surveys irregular-data prefetchers (IMP,
HATS-VO, DROPLET) and closes with: "next references in a graph's
transpose could also be used for timely prefetching of irregular data. We
leave the exploration of new prefetching mechanisms derived from the
Rereference Matrix ... for future work." This package explores exactly
that: baseline prefetchers (next-line, stride, an IMP-style indirect
prefetcher) and :class:`~repro.prefetch.transpose.TransposePrefetcher`,
which turns the transpose's next-reference information into prefetches.

A prefetcher observes every demand access (line address + context) and
returns line addresses to install into the LLC. The driver installs them
immediately — an idealized timeliness model, the same idealization the
paper grants HATS ("assumes no overhead") — and tracks accuracy:

- ``issued``: prefetches that actually installed a new line;
- ``useful``: installed lines that received a demand access before
  eviction (coverage = useful / baseline demand misses);
- ``useless``: installed lines evicted untouched (wasted bandwidth).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

__all__ = ["Prefetcher", "PrefetchStats"]


@dataclass
class PrefetchStats:
    """Issue/usefulness accounting, maintained by the replay driver."""

    requested: int = 0     # candidate lines the prefetcher proposed
    issued: int = 0        # installed a line not already resident
    useful: int = 0        # prefetched line demand-hit before eviction
    useless: int = 0       # prefetched line evicted untouched

    @property
    def accuracy(self) -> float:
        """Fraction of issued prefetches that turned out useful."""
        settled = self.useful + self.useless
        return self.useful / settled if settled else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "requested": self.requested,
            "issued": self.issued,
            "useful": self.useful,
            "useless": self.useless,
            "accuracy": round(self.accuracy, 4),
        }


class Prefetcher:
    """Base class: subclasses override :meth:`observe`."""

    name = "none"

    def observe(self, line_addr: int, ctx) -> List[int]:
        """React to a demand access; return line addresses to prefetch."""
        return []
