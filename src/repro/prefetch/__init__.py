"""Prefetching: baselines and the transpose-driven future-work design."""

from .base import Prefetcher, PrefetchStats
from .driver import replay_with_prefetcher
from .indirect import IndirectPrefetcher
from .simple import NextLinePrefetcher, StridePrefetcher
from .transpose import TransposePrefetcher

__all__ = [
    "Prefetcher",
    "PrefetchStats",
    "replay_with_prefetcher",
    "NextLinePrefetcher",
    "StridePrefetcher",
    "IndirectPrefetcher",
    "TransposePrefetcher",
]
