"""Call-graph walker: which functions can run inside pool workers?

The ``par`` rule family (:mod:`repro.analysis.parsafety`) asks a
reachability question before it asks any purity question: *which
functions can execute inside a ``ProcessPoolExecutor`` worker?* This
module answers it statically, with the same project-local philosophy as
:class:`~repro.analysis.astutil.ClassIndex` — resolution is by name
across the scanned file set, no imports are executed.

Worker-boundary **entry points** are discovered, not hardcoded: any
name bound to a ``ProcessPoolExecutor(...)`` (via ``with ... as pool``
or assignment) marks its ``pool.map(fn, ...)`` / ``pool.submit(fn,
...)`` first argument as an entry point. From those roots the
**worker-reachable set** is the transitive closure over a deliberately
over-approximate call graph:

- bare-name calls and references resolve through the module's own
  ``def``s and its ``from``-imports;
- ``alias.fn(...)`` resolves through module imports/aliases;
- ``self.m(...)`` resolves through the enclosing class and its scanned
  ancestors;
- any *other* ``obj.m(...)`` call edges to **every** scanned method
  named ``m`` (workers really do run most of the simulator, so an
  over-wide net beats a silent hole);
- instantiating a scanned class edges into its ``__init__`` and
  ``__post_init__``;
- referencing a module-level constant (e.g. a factory dict) edges into
  every function/class named in its value expression.

Over-approximation is the correct direction for a race analyzer: a
function wrongly *included* costs at worst an explained pragma; a
function wrongly *excluded* is an unflagged cross-worker race.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .astutil import SourceModule, dotted_name

__all__ = [
    "EntryPoint",
    "FunctionInfo",
    "CallGraph",
    "module_dotted_name",
]

#: Names whose calls create worker pools. Matched on the last component
#: so both ``ProcessPoolExecutor(...)`` and
#: ``concurrent.futures.ProcessPoolExecutor(...)`` register.
_POOL_FACTORIES = {"ProcessPoolExecutor"}

#: Executor methods whose first argument runs in a worker process.
_SUBMIT_METHODS = {"map", "submit"}

#: Attribute-call names too generic to fan out to every scanned method —
#: edging ``x.get(...)`` into ``ArtifactStore.get`` is wanted, but
#: builtin-container method names would drag in everything through dict
#: and list usage. ``ArtifactStore.get``/``put`` stay reachable anyway
#: through the named ``cached_*``/``store_*`` wrappers.
_GENERIC_METHOD_NAMES = {
    "append", "extend", "add", "update", "pop", "popitem", "clear",
    "remove", "discard", "insert", "sort", "reverse", "keys", "values",
    "items", "join", "split", "strip", "format", "copy", "tolist",
    "setdefault",
}


def module_dotted_name(path: Path) -> str:
    """Dotted module name for a scanned file.

    Paths inside the package resolve from the ``repro`` component
    (``src/repro/sim/parallel.py`` -> ``repro.sim.parallel``); anything
    else (test fixtures in tmp dirs) falls back to the file stem, so
    fixture modules never collide with the live allowlist.
    """
    parts = list(path.with_suffix("").parts)
    if "repro" in parts:
        parts = parts[parts.index("repro"):]
    else:
        parts = parts[-1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


@dataclass(frozen=True)
class EntryPoint:
    """One resolved worker-boundary submission site."""

    target: str          # qualname of the function handed to the pool
    path: str            # file containing the submission call
    line: int            # line of the pool.map/pool.submit call

    def describe(self) -> str:
        return f"{self.target} @ {self.path}:{self.line}"


@dataclass
class FunctionInfo:
    """One function or method definition in the scanned set."""

    name: str
    module: SourceModule
    node: ast.AST                       # FunctionDef | AsyncFunctionDef
    class_name: Optional[str] = None

    @property
    def qualname(self) -> str:
        if self.class_name:
            return f"{self.class_name}.{self.name}"
        return self.name

    @property
    def key(self) -> Tuple[str, str]:
        return (str(self.module.path), self.qualname)


@dataclass
class _ModuleScope:
    """Name-resolution facts for one module."""

    dotted: str
    #: local name -> (source module dotted name, original name)
    from_imports: Dict[str, Tuple[str, str]] = field(default_factory=dict)
    #: local alias -> module dotted name
    module_aliases: Dict[str, str] = field(default_factory=dict)
    #: module-level function name -> FunctionInfo
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: class name -> {method name -> FunctionInfo}
    classes: Dict[str, Dict[str, FunctionInfo]] = field(default_factory=dict)
    #: class name -> base-class names
    class_bases: Dict[str, List[str]] = field(default_factory=dict)
    #: module-level constant name -> names referenced in its value
    constants: Dict[str, Set[str]] = field(default_factory=dict)
    #: names of every module-level binding (for parsafety's use)
    module_level_names: Set[str] = field(default_factory=set)


def _relative_target(scope_dotted: str, level: int,
                     module: Optional[str]) -> Optional[str]:
    """Resolve ``from ...x import y`` to a dotted module name."""
    if level == 0:
        return module
    package = scope_dotted.split(".")
    # the module's own name is not part of its package
    package = package[:-1]
    if level > 1:
        package = package[:-(level - 1)]
    if not package and not module:
        return None
    return ".".join(package + ([module] if module else []))


class CallGraph:
    """Project-local call graph + worker reachability over scanned files."""

    def __init__(self, modules: Sequence[SourceModule]) -> None:
        self.modules = list(modules)
        self.scopes: Dict[str, _ModuleScope] = {}
        self._by_dotted: Dict[str, SourceModule] = {}
        self._methods_by_name: Dict[str, List[FunctionInfo]] = {}
        for module in self.modules:
            dotted = module_dotted_name(module.path)
            self._by_dotted.setdefault(dotted, module)
        for module in self.modules:
            self._index_module(module)

    # -- indexing ------------------------------------------------------

    def scope_of(self, module: SourceModule) -> _ModuleScope:
        return self.scopes[str(module.path)]

    def _index_module(self, module: SourceModule) -> None:
        scope = _ModuleScope(dotted=module_dotted_name(module.path))
        self.scopes[str(module.path)] = scope
        for stmt in module.tree.body:
            if isinstance(stmt, ast.ImportFrom):
                target = _relative_target(
                    scope.dotted, stmt.level, stmt.module
                )
                if target is None:
                    continue
                for alias in stmt.names:
                    local = alias.asname or alias.name
                    submodule = f"{target}.{alias.name}"
                    if submodule in self._by_dotted:
                        scope.module_aliases[local] = submodule
                    else:
                        scope.from_imports[local] = (target, alias.name)
            elif isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    local = alias.asname or alias.name.split(".")[0]
                    scope.module_aliases.setdefault(local, alias.name)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scope.functions[stmt.name] = FunctionInfo(
                    name=stmt.name, module=module, node=stmt
                )
                scope.module_level_names.add(stmt.name)
            elif isinstance(stmt, ast.ClassDef):
                methods: Dict[str, FunctionInfo] = {}
                for item in stmt.body:
                    if isinstance(
                        item, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        info = FunctionInfo(
                            name=item.name, module=module, node=item,
                            class_name=stmt.name,
                        )
                        methods[item.name] = info
                        self._methods_by_name.setdefault(
                            item.name, []
                        ).append(info)
                scope.classes[stmt.name] = methods
                scope.class_bases[stmt.name] = [
                    (dotted_name(base) or "").rsplit(".", 1)[-1]
                    for base in stmt.bases
                ]
                scope.module_level_names.add(stmt.name)
            elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                targets = (
                    stmt.targets if isinstance(stmt, ast.Assign)
                    else [stmt.target]
                )
                value = stmt.value
                for target in targets:
                    if not isinstance(target, ast.Name):
                        continue
                    scope.module_level_names.add(target.id)
                    if value is not None:
                        scope.constants[target.id] = {
                            node.id for node in ast.walk(value)
                            if isinstance(node, ast.Name)
                        }

    # -- resolution ----------------------------------------------------

    def _resolve_in_module(
        self, module: SourceModule, name: str
    ) -> List[FunctionInfo]:
        """A bare name in ``module``: function, class, or import."""
        scope = self.scope_of(module)
        info = scope.functions.get(name)
        if info is not None:
            return [info]
        if name in scope.classes:
            return self._class_constructors(module, name)
        imported = scope.from_imports.get(name)
        if imported is not None:
            target_module = self._by_dotted.get(imported[0])
            if target_module is not None:
                return self._resolve_in_module(target_module, imported[1])
        return []

    def _class_constructors(
        self, module: SourceModule, class_name: str
    ) -> List[FunctionInfo]:
        out: List[FunctionInfo] = []
        for method in ("__init__", "__post_init__"):
            out.extend(self._resolve_method(module, class_name, method))
        return out

    def _resolve_method(
        self, module: SourceModule, class_name: str, method: str
    ) -> List[FunctionInfo]:
        """A method on a named scanned class, walking scanned bases."""
        seen: Set[str] = set()
        queue = [class_name]
        while queue:
            name = queue.pop(0)
            if name in seen:
                continue
            seen.add(name)
            for scope in self.scopes.values():
                methods = scope.classes.get(name)
                if methods is None:
                    continue
                if method in methods:
                    return [methods[method]]
                queue.extend(scope.class_bases.get(name, []))
        return []

    # -- entry points --------------------------------------------------

    def entry_points(self) -> List[EntryPoint]:
        """Every resolved ``pool.map``/``pool.submit`` target."""
        out: List[EntryPoint] = []
        for module in self.modules:
            pools = self._pool_names(module)
            if not pools:
                continue
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if not (
                    isinstance(func, ast.Attribute)
                    and func.attr in _SUBMIT_METHODS
                    and isinstance(func.value, ast.Name)
                    and func.value.id in pools
                    and node.args
                ):
                    continue
                target = node.args[0]
                if not isinstance(target, ast.Name):
                    continue
                for info in self._resolve_in_module(module, target.id):
                    out.append(EntryPoint(
                        target=info.qualname,
                        path=module.display_path,
                        line=node.lineno,
                    ))
        return sorted(set(out), key=lambda e: (e.path, e.line, e.target))

    def _pool_names(self, module: SourceModule) -> Set[str]:
        """Names bound to a ProcessPoolExecutor anywhere in the module."""
        pools: Set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.withitem):
                call, target = node.context_expr, node.optional_vars
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                call, target = node.value, node.targets[0]
            else:
                continue
            if not (isinstance(call, ast.Call) and isinstance(
                target, ast.Name
            )):
                continue
            factory = dotted_name(call.func) or ""
            if factory.rsplit(".", 1)[-1] in _POOL_FACTORIES:
                pools.add(target.id)
        return pools

    # -- reachability --------------------------------------------------

    def worker_reachable(self) -> Dict[Tuple[str, str], FunctionInfo]:
        """Transitive closure of functions callable from entry points."""
        roots: List[FunctionInfo] = []
        for entry in self.entry_points():
            for module in self.modules:
                if module.display_path != entry.path:
                    continue
                scope = self.scope_of(module)
                name = entry.target.rsplit(".", 1)[-1]
                roots.extend(self._resolve_in_module(module, name))
        reachable: Dict[Tuple[str, str], FunctionInfo] = {}
        queue = list(roots)
        while queue:
            info = queue.pop()
            if info.key in reachable:
                continue
            reachable[info.key] = info
            queue.extend(self._out_edges(info))
        return reachable

    def _out_edges(self, info: FunctionInfo) -> List[FunctionInfo]:
        module = info.module
        scope = self.scope_of(module)
        out: List[FunctionInfo] = []
        for node in ast.walk(info.node):  # type: ignore[arg-type]
            if isinstance(node, ast.Call):
                out.extend(self._call_edges(info, node))
            elif isinstance(node, ast.Name) and isinstance(
                node.ctx, ast.Load
            ):
                out.extend(self._resolve_in_module(module, node.id))
                # A constant like a factory dict pulls in everything its
                # value expression names (APP_FACTORIES -> every app).
                for ref in scope.constants.get(node.id, ()):
                    out.extend(self._resolve_in_module(module, ref))
        return out

    def _call_edges(
        self, info: FunctionInfo, call: ast.Call
    ) -> List[FunctionInfo]:
        module = info.module
        scope = self.scope_of(module)
        func = call.func
        if isinstance(func, ast.Name):
            return self._resolve_in_module(module, func.id)
        if not isinstance(func, ast.Attribute):
            return []
        attr = func.attr
        base = func.value
        if isinstance(base, ast.Name):
            if base.id == "self" and info.class_name:
                hit = self._resolve_method(module, info.class_name, attr)
                if hit:
                    return hit
            alias = scope.module_aliases.get(base.id)
            if alias is not None:
                target_module = self._by_dotted.get(alias)
                if target_module is not None:
                    return self._resolve_in_module(target_module, attr)
        # Unknown receiver: over-approximate to every scanned method of
        # this name (except container-generic names, which would connect
        # the graph through dict/list plumbing).
        if attr in _GENERIC_METHOD_NAMES:
            return []
        return list(self._methods_by_name.get(attr, ()))
