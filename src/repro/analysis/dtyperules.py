"""``dtype`` rule family: numpy width/dtype contracts, flow-checked.

P-OPT's correctness is a bit-width story — 8/16-bit Rereference Matrix
entries, epoch counters quantized to ``2^entry_bits``, ``int64`` next-use
sentinels, ``int32`` CSR neighbor IDs — and every compiled-kernel call
marshals numpy buffers across a ctypes boundary where a width mismatch
is silent memory corruption, not an exception. These rules put the
dtype story under the same static discipline the ``abi`` family applies
to the C prototypes, using the :mod:`repro.analysis.dtypeflow`
inference engine:

- ``dtype-c-boundary`` — the array handed to a pointer wrapper
  (``_i64``/``_u8``/``_f64``) at a ``clib.k_*`` call site must have the
  wrapper's dtype. The ``abi`` family proves the *table* consistent;
  this rule proves the *arrays actually passed* match the table.
- ``dtype-overflow`` — a store of a provably-wider unguarded integer
  into a narrower integer array (or into a field bound by
  :data:`repro.sim.constants.WIDTH_CONTRACTS`), and unguarded
  accumulation (``+=``/``*=``/``<<=``) into sub-32-bit arrays. Clamped
  values (``np.minimum``/``np.clip``/``& mask``/``%``) pass.
- ``dtype-implicit-upcast`` — arithmetic mixing integer arrays of
  different widths inside hot-path/worker-reachable functions: numpy
  silently materializes the promotion, doubling large-array memory in
  exactly the functions that touch whole-graph arrays.
- ``dtype-narrowing-cast`` — ``.astype(...)`` to a narrower same-kind
  dtype when no range guard was seen on the value's path.
- ``dtype-unspecified`` — array creation in replay/prepare code relying
  on the *platform-default* integer (``np.arange`` without ``dtype``,
  ``np.full`` with an integer fill, bare ``np.bincount``): 64-bit on
  the measurement hosts, 32-bit elsewhere, so goldens silently fork.

Scope: ``dtype-c-boundary``, ``dtype-overflow`` and
``dtype-narrowing-cast`` apply everywhere (they fire only on *proved*
dtypes); the memory/portability rules (``dtype-implicit-upcast``,
``dtype-unspecified``) are confined to replay/prepare code — functions
that are worker-reachable (via the ``par`` family's call graph), on the
configured replay path, or in the ``sim``/``popt``/``graph``
subpackages.

Suppression is the standard ``# simlint: allow[dtype-...]`` pragma.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from .abi import _WRAPPER_KINDS, _constants_env, _sim_module
from .astutil import SourceModule, dotted_name, pragma_allows
from .dtypeflow import (
    DtypeFlow,
    Value,
    dtype_width,
    is_float_dtype,
    is_integer_dtype,
    parse_dtype_node,
)
from .findings import Finding
from .hotpath import DEFAULT_REPLAY_PATH
from .purity import CallGraph, FunctionInfo

__all__ = ["DTYPE_RULES", "check_dtypes", "dtype_status_lines"]

DTYPE_RULES = (
    "dtype-c-boundary",
    "dtype-implicit-upcast",
    "dtype-narrowing-cast",
    "dtype-overflow",
    "dtype-unspecified",
)

#: Pointer-wrapper kind -> numpy dtypes allowed through it. ``u8``
#: additionally admits ``bool`` (same 1-byte layout; C reads 0/1).
_WRAPPER_DTYPES: Dict[str, Tuple[str, ...]] = {
    "i64": ("int64",),
    "u8": ("uint8", "bool"),
    "f64": ("float64",),
}

#: Subpackages whose modules count as replay/prepare scope even without
#: worker reachability (the simulator core).
_PREPARE_DIRS = frozenset({"sim", "popt", "graph"})

#: Accumulating in-place ops that can saturate a narrow counter.
_ACCUMULATING_OPS = (ast.Add, ast.Sub, ast.Mult, ast.LShift, ast.Pow)


def _load_contracts(
    modules: Sequence[SourceModule],
) -> Dict[str, Dict[str, object]]:
    """Statically evaluate ``sim/constants.py:WIDTH_CONTRACTS``."""
    constants = _sim_module(modules, "constants.py")
    if constants is None:
        return {}
    env = _constants_env(constants)
    contracts = env.get("WIDTH_CONTRACTS")
    if not isinstance(contracts, dict):
        return {}
    return {
        str(name): spec
        for name, spec in contracts.items()
        if isinstance(spec, dict)
    }


def _contract_bindings(
    contracts: Dict[str, Dict[str, object]],
) -> Dict[str, Tuple[str, str]]:
    """attribute name -> (contract name, declared dtype) for every
    ``binds`` entry (``"RereferenceMatrix.entries"`` binds ``entries``)."""
    bindings: Dict[str, Tuple[str, str]] = {}
    for name, spec in contracts.items():
        binds = spec.get("binds")
        dtypes = spec.get("dtype")
        if not isinstance(binds, tuple) or not isinstance(dtypes, tuple) \
                or not dtypes:
            continue
        for bound in binds:
            if isinstance(bound, str) and "." in bound:
                attr = bound.rsplit(".", 1)[-1]
                bindings[attr] = (name, str(dtypes[0]))
    return bindings


def _module_prepare_scope(module: SourceModule) -> bool:
    parts = module.path.parts
    if "repro" not in parts:
        return False
    return bool(_PREPARE_DIRS.intersection(
        parts[parts.index("repro"):-1]
    ))


def _iter_functions(
    module: SourceModule,
) -> List[Tuple[str, Optional[str], ast.FunctionDef]]:
    """(qualname, class name, node) for every function/method."""
    out: List[Tuple[str, Optional[str], ast.FunctionDef]] = []
    for node in module.tree.body:
        if isinstance(node, ast.FunctionDef):
            out.append((node.name, None, node))
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, ast.FunctionDef):
                    out.append((f"{node.name}.{item.name}", node.name,
                                item))
    return out


def _statement_expressions(stmt: ast.stmt) -> List[ast.AST]:
    """Expression roots belonging to *this* statement alone (bodies of
    nested compound statements get their own flow callback)."""
    if isinstance(stmt, ast.Assign):
        return [*stmt.targets, stmt.value]
    if isinstance(stmt, ast.AugAssign):
        return [stmt.target, stmt.value]
    if isinstance(stmt, ast.AnnAssign):
        return [stmt.target] + ([stmt.value] if stmt.value else [])
    if isinstance(stmt, (ast.Expr, ast.Return)):
        return [stmt.value] if stmt.value is not None else []
    if isinstance(stmt, ast.If):
        return [stmt.test]
    if isinstance(stmt, ast.While):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.target, stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, ast.Assert):
        return [stmt.test] + ([stmt.msg] if stmt.msg else [])
    if isinstance(stmt, ast.Raise):
        return [n for n in (stmt.exc, stmt.cause) if n is not None]
    if isinstance(stmt, (ast.Delete,)):
        return list(stmt.targets)
    return []


def _walk_expressions(stmt: ast.stmt):
    for root in _statement_expressions(stmt):
        yield from ast.walk(root)


def _creation_trap(
    call: ast.Call, parents: Dict[int, ast.AST]
) -> Optional[str]:
    """Why this creation call yields a platform-default integer, or
    None when it is explicitly typed / not integer-valued."""
    name = dotted_name(call.func)
    if name is None:
        return None
    tail = name.rsplit(".", 1)[-1]
    if tail == "arange":
        if any(kw.arg == "dtype" for kw in call.keywords) \
                or len(call.args) >= 4:
            return None
        if any(
            isinstance(a, ast.Constant) and isinstance(a.value, float)
            for a in call.args
        ):
            return None
        return "np.arange without dtype yields the platform integer"
    if tail == "full":
        if any(kw.arg == "dtype" for kw in call.keywords) \
                or len(call.args) >= 3:
            return None
        if len(call.args) >= 2 and isinstance(call.args[1], ast.Constant) \
                and isinstance(call.args[1].value, int) \
                and not isinstance(call.args[1].value, bool):
            return "np.full with an integer fill and no dtype yields " \
                   "the platform integer"
        return None
    if tail == "bincount":
        if any(kw.arg == "weights" for kw in call.keywords) \
                or len(call.args) >= 2:
            return None  # weighted bincount is float64 on every platform
        parent = parents.get(id(call))
        if isinstance(parent, ast.Attribute) and parent.attr == "astype":
            return None  # immediately re-typed: the idiomatic guard
        return "np.bincount yields the platform integer; cast the " \
               "result (e.g. .astype(np.int64))"
    return None


class _DtypeChecker:
    """One pass over every function, all five rules in one flow walk."""

    def __init__(
        self,
        modules: Sequence[SourceModule],
        replay_path: FrozenSet[str],
        graph: Optional[CallGraph] = None,
    ) -> None:
        self.modules = list(modules)
        self.graph = graph if graph is not None else CallGraph(modules)
        self.flow = DtypeFlow(modules, self.graph)
        self.replay_path = replay_path
        self.reachable: Set[Tuple[str, str]] = set(
            self.graph.worker_reachable()
        )
        self.contracts = _load_contracts(modules)
        self.bindings = _contract_bindings(self.contracts)
        self.findings: List[Finding] = []
        self._parents: Dict[int, ast.AST] = {}

    # -- plumbing ------------------------------------------------------

    def run(self) -> List[Finding]:
        for module in self.modules:
            self._parents = {
                id(child): parent
                for parent in ast.walk(module.tree)
                for child in ast.iter_child_nodes(parent)
            }
            for qualname, class_name, func in _iter_functions(module):
                self._check_function(module, qualname, class_name, func)
        return self.findings

    def _emit(
        self, module: SourceModule, rule: str, lineno: int, message: str
    ) -> None:
        if not pragma_allows(module, rule, lineno):
            self.findings.append(Finding(
                rule=rule, path=module.display_path, line=lineno,
                message=message,
            ))

    def _hot(
        self, module: SourceModule, qualname: str,
        func: ast.FunctionDef,
    ) -> bool:
        if qualname in self.replay_path:
            return True
        key = (str(module.path), qualname)
        return key in self.reachable

    def _prepare_scope(
        self, module: SourceModule, qualname: str, func: ast.FunctionDef
    ) -> bool:
        return _module_prepare_scope(module) \
            or self._hot(module, qualname, func)

    # -- per-function driver -------------------------------------------

    def _check_function(
        self,
        module: SourceModule,
        qualname: str,
        class_name: Optional[str],
        func: ast.FunctionDef,
    ) -> None:
        hot = self._hot(module, qualname, func)
        prepare = _module_prepare_scope(module) or hot

        def callback(stmt: ast.stmt, env: Dict[str, Value]) -> None:
            infer = lambda n: self.flow.infer(  # noqa: E731
                n, env, module, class_name
            )
            self._check_stores(module, qualname, stmt, env, infer)
            for node in _walk_expressions(stmt):
                if isinstance(node, ast.Call):
                    self._check_boundary(module, qualname, node, infer)
                    self._check_narrowing(module, qualname, node, infer)
                    if prepare:
                        self._check_unspecified(module, qualname, node)
                elif isinstance(node, ast.BinOp) and hot:
                    self._check_upcast(module, qualname, node, infer)

        self.flow.scan_function(module, func, callback, class_name)

    # -- dtype-c-boundary ----------------------------------------------

    def _check_boundary(
        self, module: SourceModule, qualname: str, call: ast.Call, infer
    ) -> None:
        func = call.func
        if not (isinstance(func, ast.Name)
                and func.id in _WRAPPER_KINDS and len(call.args) == 1):
            return
        kind = _WRAPPER_KINDS[func.id]
        allowed = _WRAPPER_DTYPES.get(kind, ())
        value: Value = infer(call.args[0])
        if value.dtype is None or value.dtype in allowed:
            return
        self._emit(
            module, "dtype-c-boundary", call.lineno,
            f"{qualname} passes a {value.dtype} array through "
            f"{func.id}() (pointer kind {kind}); the kernel ABI "
            f"expects {' or '.join(allowed)} — ctypes will marshal "
            f"the wrong element width silently",
        )

    # -- dtype-narrowing-cast ------------------------------------------

    def _check_narrowing(
        self, module: SourceModule, qualname: str, call: ast.Call, infer
    ) -> None:
        func = call.func
        if not (isinstance(func, ast.Attribute) and func.attr == "astype"
                and call.args):
            return
        target = parse_dtype_node(call.args[0])
        if target is None:
            return
        source: Value = infer(func.value)
        if not source.known() or source.bounded:
            return
        src_width = dtype_width(source.dtype)
        dst_width = dtype_width(target)
        if src_width is None or dst_width is None or dst_width >= src_width:
            return
        same_kind = (
            (is_integer_dtype(source.dtype) and is_integer_dtype(target))
            or (is_float_dtype(source.dtype) and is_float_dtype(target))
        )
        if not same_kind:
            return
        self._emit(
            module, "dtype-narrowing-cast", call.lineno,
            f"{qualname} casts {source.dtype} to {target} with no range "
            f"guard on the path; clamp first (np.minimum/np.clip/mask) "
            f"or validate the maximum before narrowing",
        )

    # -- dtype-overflow ------------------------------------------------

    def _check_stores(
        self,
        module: SourceModule,
        qualname: str,
        stmt: ast.stmt,
        env: Dict[str, Value],
        infer,
    ) -> None:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                self._check_one_store(
                    module, qualname, target, stmt.value, infer
                )
        elif isinstance(stmt, ast.AugAssign):
            self._check_one_store(
                module, qualname, stmt.target, stmt.value, infer,
                op=stmt.op,
            )

    def _store_target(
        self, target: ast.AST, infer
    ) -> Tuple[Optional[str], Optional[str], Optional[str]]:
        """(target dtype, description, contract name) of a store
        destination, or (None, None, None) when untracked."""
        base = target
        if isinstance(base, ast.Subscript):
            base = base.value
        if isinstance(base, ast.Name):
            value: Value = infer(base)
            if value.known() and value.is_array:
                return value.dtype, f"array {base.id!r}", None
            return None, None, None
        if isinstance(base, ast.Attribute):
            bound = self.bindings.get(base.attr)
            if bound is not None:
                contract, declared = bound
                return declared, f"contract-bound field .{base.attr}", \
                    contract
        return None, None, None

    def _check_one_store(
        self,
        module: SourceModule,
        qualname: str,
        target: ast.AST,
        value: ast.AST,
        infer,
        op: Optional[ast.operator] = None,
    ) -> None:
        tgt_dtype, describe, contract = self._store_target(target, infer)
        if tgt_dtype is None or not is_integer_dtype(tgt_dtype):
            return
        tgt_width = dtype_width(tgt_dtype) or 64
        lineno = getattr(target, "lineno", getattr(value, "lineno", 1))
        rhs: Value = infer(value)
        contract_note = (
            f" (WIDTH_CONTRACTS[{contract!r}])" if contract else ""
        )
        if op is not None:
            # Accumulation into a narrow counter: saturation risk even
            # from same-width addends.
            if isinstance(op, _ACCUMULATING_OPS) and tgt_width <= 16 \
                    and not rhs.bounded:
                self._emit(
                    module, "dtype-overflow", lineno,
                    f"{qualname} accumulates into {tgt_width}-bit "
                    f"{describe}{contract_note} without a clamp; "
                    f"unbounded growth wraps silently in numpy",
                )
            return
        if isinstance(value, ast.Call) and isinstance(
            value.func, ast.Attribute
        ) and value.func.attr == "astype":
            return  # an explicit cast is dtype-narrowing-cast's business
        if not rhs.known() or rhs.bounded \
                or not is_integer_dtype(rhs.dtype):
            return
        rhs_width = dtype_width(rhs.dtype) or 64
        if rhs_width <= tgt_width:
            return
        self._emit(
            module, "dtype-overflow", lineno,
            f"{qualname} stores an unguarded {rhs.dtype} value into "
            f"{tgt_dtype} {describe}{contract_note}; values above "
            f"2^{tgt_width}-1 wrap silently — clamp or validate first",
        )

    # -- dtype-implicit-upcast -----------------------------------------

    def _check_upcast(
        self, module: SourceModule, qualname: str, node: ast.BinOp, infer
    ) -> None:
        left: Value = infer(node.left)
        right: Value = infer(node.right)
        if not (left.is_array and right.is_array):
            return
        if not (is_integer_dtype(left.dtype)
                and is_integer_dtype(right.dtype)):
            return
        lw = dtype_width(left.dtype) or 64
        rw = dtype_width(right.dtype) or 64
        if lw == rw:
            return
        narrow, wide = (left.dtype, right.dtype) if lw < rw \
            else (right.dtype, left.dtype)
        self._emit(
            module, "dtype-implicit-upcast", node.lineno,
            f"{qualname} mixes {narrow} and {wide} arrays in "
            f"arithmetic on a hot path; numpy materializes an upcast "
            f"copy of the {narrow} side — align dtypes explicitly",
        )

    # -- dtype-unspecified ---------------------------------------------

    def _check_unspecified(
        self, module: SourceModule, qualname: str, call: ast.Call
    ) -> None:
        reason = _creation_trap(call, self._parents)
        if reason is None:
            return
        self._emit(
            module, "dtype-unspecified", call.lineno,
            f"{qualname} (replay/prepare path): {reason}; pin an "
            f"explicit dtype so results cannot fork across platforms",
        )


def check_dtypes(
    modules: Sequence[SourceModule],
    replay_path: FrozenSet[str] = DEFAULT_REPLAY_PATH,
    graph: Optional[CallGraph] = None,
) -> List[Finding]:
    """Run the ``dtype`` family over the scanned modules."""
    return _DtypeChecker(modules, replay_path, graph).run()


def dtype_status_lines(modules: Sequence[SourceModule]) -> List[str]:
    """Context lines for the runner's report footer."""
    contracts = _load_contracts(modules)
    if not contracts:
        return [
            "dtype: no WIDTH_CONTRACTS registry in the scanned set "
            "(contract-bound checks inactive)"
        ]
    bound = sum(
        1 for spec in contracts.values()
        if isinstance(spec.get("binds"), tuple)
    )
    return [
        f"dtype: {len(contracts)} width contract(s) declared, "
        f"{bound} with static field bindings"
    ]
