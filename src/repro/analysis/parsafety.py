"""Worker-purity rules (simlint rule family ``par``).

The sweep fabric (:mod:`repro.sim.parallel`, :mod:`repro.sim.spec`)
fans tasks over ``ProcessPoolExecutor`` workers that share one
content-hash artifact store and, under ``fork``, a snapshot of the
parent's module state. Code reachable from the worker boundary
(:class:`~repro.analysis.purity.CallGraph`) must therefore be pure
apart from the documented per-process caches registered in
:mod:`repro.sim.worker_state`. Five rules enforce that contract:

- ``par-global-mutation`` — worker-reachable code mutating
  module-level or class-level state (``global``, subscript/augmented
  stores, ``append``/``update``/… calls) that is not a registered
  cache. Cross-worker, such mutations silently diverge; cross-task
  within one worker, they leak state between sweep units.
- ``par-shared-array-write`` — in-place numpy mutation of arrays that
  flow from artifact-store loads or memoized
  ``PrivateFilter``/``PreparedRun`` accessors. Those arrays can alias
  ``mmap_mode="r"`` pages or LRU-shared buffers; writing through them
  corrupts a sibling policy's replay. ``.copy()`` is the escape hatch.
- ``par-fork-unsafe`` — state captured at import time of a module that
  hosts worker-reachable code (module-scope ``os.environ`` reads, open
  file handles, RNG construction): correct under ``fork`` by accident,
  silently different under ``spawn``. Also flags ``os.environ``
  mutation inside workers (invisible to every other process).
- ``par-unseeded-rng`` — process-global RNG draws behind the pool
  boundary: per-worker RNG state makes results depend on task
  placement.
- ``par-nonatomic-write`` — writes under the artifact root (paths
  derived from ``.root`` / ``entry_dir``) that bypass the tmp+rename
  protocol; racing workers would observe torn entries. Staging through
  a ``*tmp*``-named path is the sanctioned shape.

Plus one registry-hygiene rule, mirroring ``spec-coverage``:

- ``par-allowlist-stale`` — a registered cache name whose module is
  scanned but no longer defines the binding (the allowlist and the
  code drifted apart).
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set

from .astutil import SourceModule, dotted_name, pragma_allows
from .determinism import _random_finding
from .findings import Finding
from .purity import CallGraph, FunctionInfo, module_dotted_name

__all__ = ["check_parsafety", "par_status_lines", "PAR_RULES"]

PAR_RULES = (
    "par-global-mutation",
    "par-shared-array-write",
    "par-fork-unsafe",
    "par-unseeded-rng",
    "par-nonatomic-write",
    "par-allowlist-stale",
)

#: Method calls that mutate their receiver in place.
_MUTATOR_METHODS = {
    "append", "extend", "insert", "add", "update", "setdefault", "pop",
    "popitem", "clear", "remove", "discard", "sort", "reverse",
    "move_to_end",
}

#: Calls whose result aliases store-backed or cache-shared arrays.
_TAINT_SOURCE_CALLS = {
    "cached_graph", "cached_prepared", "cached_filter",
    "rereference_matrix_for", "get_private_filter", "decode_trace",
}

#: Memoized accessor methods whose products are shared across replays.
_TAINT_ACCESSOR_ATTRS = {
    "as_lists", "compact_next_use", "set_partition_arrays",
    "set_partition", "set_index_array", "set_index_list",
    "set_partition_vertices", "stream_membership", "decoded",
}

#: ndarray methods that mutate in place.
_ARRAY_MUTATORS = {
    "sort", "fill", "put", "itemset", "partition", "resize", "byteswap",
}

#: numpy module-level functions whose first argument is written.
_NP_INPLACE_FNS = {"put", "copyto", "place", "putmask"}

#: Path-writing calls checked against the artifact-root taint.
_PATH_WRITERS = {"write_text", "write_bytes"}


def _live_allowlist() -> FrozenSet[str]:
    """The registered cache names, with every registering module loaded.

    Mirrors how ``registry`` and ``spec-coverage`` import the live
    registries: the linter's allowlist is the runtime's, never a copy.
    """
    try:
        from ..policies import registry as _registry  # noqa: F401
        from ..sim import artifacts as _artifacts  # noqa: F401
        from ..sim import ckernels as _ckernels  # noqa: F401
        from ..sim import parallel as _parallel  # noqa: F401
        from ..sim import spec as _spec  # noqa: F401
        from ..sim.worker_state import registered_cache_names
    except Exception:
        return frozenset()
    return registered_cache_names()


# ----------------------------------------------------------------------
# Per-function fact gathering
# ----------------------------------------------------------------------


def _local_names(fn: ast.AST) -> Set[str]:
    """Names bound inside the function (params + any assignment form)."""
    out: Set[str] = set()
    args = getattr(fn, "args", None)
    if args is not None:
        for arg in (
            list(args.posonlyargs) + list(args.args)
            + list(args.kwonlyargs)
            + ([args.vararg] if args.vararg else [])
            + ([args.kwarg] if args.kwarg else [])
        ):
            out.add(arg.arg)
    for node in ast.walk(fn):
        if isinstance(node, ast.Name) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            out.add(node.id)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                out.add(alias.asname or alias.name.split(".")[0])
    return out


def _call_last_name(call: ast.Call) -> str:
    name = dotted_name(call.func)
    return name.rsplit(".", 1)[-1] if name else ""


def _is_np_load_mmap(call: ast.Call) -> bool:
    name = dotted_name(call.func) or ""
    if name.rsplit(".", 1)[-1] != "load":
        return False
    return any(kw.arg == "mmap_mode" for kw in call.keywords)


def _tainted_expr(expr: ast.expr, tainted: Set[str]) -> bool:
    """Does this expression (possibly) alias a shared array?"""
    if isinstance(expr, ast.Name):
        return expr.id in tainted
    if isinstance(expr, (ast.Subscript, ast.Attribute, ast.Starred)):
        return _tainted_expr(expr.value, tainted)
    if isinstance(expr, ast.IfExp):
        return (
            _tainted_expr(expr.body, tainted)
            or _tainted_expr(expr.orelse, tainted)
        )
    if isinstance(expr, ast.Tuple):
        return any(_tainted_expr(el, tainted) for el in expr.elts)
    if isinstance(expr, ast.Call):
        func = expr.func
        if isinstance(func, ast.Attribute):
            if func.attr in ("copy", "tolist"):
                return False  # the documented escape hatch
            if func.attr in _TAINT_ACCESSOR_ATTRS:
                return True
        if _call_last_name(expr) in _TAINT_SOURCE_CALLS:
            return True
        if _is_np_load_mmap(expr):
            return True
        return False
    return False


def _array_taint(fn: ast.AST) -> Set[str]:
    """Names ever bound to a shared-array-aliasing expression."""
    tainted: Set[str] = set()
    assigns = [
        node for node in ast.walk(fn)
        if isinstance(node, (ast.Assign, ast.AnnAssign))
    ]
    assigns.sort(key=lambda node: (node.lineno, node.col_offset))
    # Two passes reach chains assigned out of source order.
    for _ in range(2):
        for node in assigns:
            value = node.value
            if value is None or not _tainted_expr(value, tainted):
                continue
            targets = (
                node.targets if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                elements = (
                    target.elts if isinstance(target, (ast.Tuple, ast.List))
                    else [target]
                )
                for element in elements:
                    if isinstance(element, ast.Name):
                        tainted.add(element.id)
    return tainted


_ROOT_CALLS = {"entry_dir"}


def _root_path_expr(expr: ast.expr, tainted: Set[str]) -> bool:
    """Does this expression denote a path under the artifact root?"""
    if isinstance(expr, ast.Name):
        return expr.id in tainted
    if isinstance(expr, ast.Attribute):
        if expr.attr == "root":
            return True
        # path-algebra attributes (.parent, .name) keep the taint
        return _root_path_expr(expr.value, tainted)
    if isinstance(expr, ast.Subscript):
        return _root_path_expr(expr.value, tainted)
    if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.Div):
        return (
            _root_path_expr(expr.left, tainted)
            or _root_path_expr(expr.right, tainted)
        )
    if isinstance(expr, ast.Call):
        if _call_last_name(expr) in _ROOT_CALLS:
            return True
        if isinstance(expr.func, ast.Attribute):
            return _root_path_expr(expr.func.value, tainted)
    return False


def _names_in(expr: ast.expr) -> Set[str]:
    return {
        node.id for node in ast.walk(expr) if isinstance(node, ast.Name)
    }


def _staged_via_tmp(expr: ast.expr) -> bool:
    """The sanctioned shape: writes staged through a ``*tmp*`` path."""
    return any("tmp" in name.lower() for name in _names_in(expr))


def _root_path_taint(fn: ast.AST) -> Set[str]:
    """Names bound to artifact-root-derived paths (minus tmp stages)."""
    tainted: Set[str] = set()
    assigns = [
        node for node in ast.walk(fn)
        if isinstance(node, (ast.Assign, ast.AnnAssign))
    ]
    assigns.sort(key=lambda node: (node.lineno, node.col_offset))
    for _ in range(2):
        for node in assigns:
            value = node.value
            if value is None or not _root_path_expr(value, tainted):
                continue
            targets = (
                node.targets if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Name) and \
                        "tmp" not in target.id.lower():
                    tainted.add(target.id)
    return tainted


# ----------------------------------------------------------------------
# The checks
# ----------------------------------------------------------------------


def _is_os_environ(expr: ast.expr) -> bool:
    return dotted_name(expr) in ("os.environ", "environ")


def check_parsafety(
    modules: Sequence[SourceModule],
    allowlist: Optional[Iterable[str]] = None,
) -> List[Finding]:
    findings: List[Finding] = []
    allowed_caches = frozenset(
        allowlist if allowlist is not None else _live_allowlist()
    )
    graph = CallGraph(modules)
    reachable = graph.worker_reachable()

    def emit(module: SourceModule, rule: str, lineno: int,
             message: str) -> None:
        if not pragma_allows(module, rule, lineno):
            findings.append(Finding(
                rule=rule, path=module.display_path, line=lineno,
                message=message,
            ))

    reachable_modules: Dict[str, SourceModule] = {}
    for info in reachable.values():
        reachable_modules.setdefault(
            str(info.module.path), info.module
        )

    for info in reachable.values():
        _check_function(info, graph, allowed_caches, emit)

    for module in reachable_modules.values():
        _check_module_scope(module, emit)

    _check_allowlist(modules, allowed_caches, emit)
    return findings


def _check_function(
    info: FunctionInfo,
    graph: CallGraph,
    allowed_caches: FrozenSet[str],
    emit,
) -> None:
    module = info.module
    scope = graph.scope_of(module)
    fn = info.node
    local = _local_names(fn)
    module_state = scope.module_level_names - set(scope.functions) - \
        set(scope.classes)
    globals_declared: Set[str] = set()

    def cache_dotted(name: str) -> str:
        imported = scope.from_imports.get(name)
        if imported is not None:
            return f"{imported[0]}.{imported[1]}"
        return f"{scope.dotted}.{name}"

    def is_module_state(name: str) -> bool:
        if name in local and name not in globals_declared:
            return False
        return name in module_state or name in scope.from_imports

    def flag_mutation(lineno: int, name: str, what: str) -> None:
        dotted = cache_dotted(name)
        if dotted in allowed_caches:
            return
        emit(
            module, "par-global-mutation", lineno,
            f"worker-reachable {info.qualname}() {what} module-level "
            f"{name!r}; workers must not mutate shared module state — "
            f"register a documented per-process cache in "
            f"repro.sim.worker_state or restructure",
        )

    array_taint = _array_taint(fn)
    path_taint = _root_path_taint(fn)

    for node in ast.walk(fn):
        # --- par-global-mutation -------------------------------------
        if isinstance(node, ast.Global):
            globals_declared.update(node.names)
            for name in node.names:
                flag_mutation(node.lineno, name, "declares global")
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Name) and \
                        target.id in globals_declared:
                    continue  # the Global node already flagged it
                base = target
                while isinstance(base, (ast.Subscript, ast.Attribute)):
                    base = base.value
                if not isinstance(base, ast.Name) or base is target:
                    # plain `x = ...` rebinding is local unless global
                    if isinstance(target, ast.Name) and isinstance(
                        node, ast.AugAssign
                    ) and is_module_state(target.id):
                        flag_mutation(
                            node.lineno, target.id, "augments"
                        )
                    continue
                if is_module_state(base.id):
                    flag_mutation(
                        node.lineno, base.id, "stores into"
                    )
                elif base.id in scope.classes or any(
                    base.id in s.classes for s in graph.scopes.values()
                ):
                    emit(
                        module, "par-global-mutation", node.lineno,
                        f"worker-reachable {info.qualname}() mutates "
                        f"class-level state on {base.id!r}; class "
                        f"attributes are process-global",
                    )
        elif isinstance(node, ast.Call) and isinstance(
            node.func, ast.Attribute
        ) and node.func.attr in _MUTATOR_METHODS:
            base = node.func.value
            while isinstance(base, (ast.Subscript, ast.Attribute)):
                base = base.value
            if isinstance(base, ast.Name) and is_module_state(base.id) \
                    and base.id not in graph.scopes[
                        str(module.path)].module_aliases:
                flag_mutation(
                    node.lineno, base.id,
                    f"calls .{node.func.attr}() on",
                )

        # --- par-shared-array-write ----------------------------------
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Subscript) and _tainted_expr(
                    target.value, array_taint
                ):
                    emit(
                        module, "par-shared-array-write", node.lineno,
                        f"{info.qualname}() writes in place through an "
                        f"array that may alias a shared artifact/cache "
                        f"buffer; take a .copy() before mutating",
                    )
        elif isinstance(node, ast.AugAssign):
            target = node.target
            base_tainted = (
                isinstance(target, ast.Name)
                and target.id in array_taint
            ) or (
                isinstance(target, (ast.Subscript, ast.Attribute))
                and _tainted_expr(target.value, array_taint)
            )
            if base_tainted:
                emit(
                    module, "par-shared-array-write", node.lineno,
                    f"{info.qualname}() augments a shared "
                    f"artifact/cache array in place; take a .copy() "
                    f"before mutating",
                )
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and _tainted_expr(
                func.value, array_taint
            ):
                if func.attr in _ARRAY_MUTATORS:
                    emit(
                        module, "par-shared-array-write", node.lineno,
                        f"{info.qualname}() calls .{func.attr}() on a "
                        f"shared artifact/cache array; take a .copy() "
                        f"first",
                    )
                elif func.attr == "setflags" and any(
                    kw.arg == "write"
                    and not (
                        isinstance(kw.value, ast.Constant)
                        and not kw.value.value
                    )
                    for kw in node.keywords
                ):
                    emit(
                        module, "par-shared-array-write", node.lineno,
                        f"{info.qualname}() re-enables writes on a "
                        f"shared read-only array; take a .copy() "
                        f"instead",
                    )
            name = dotted_name(func) or ""
            parts = name.split(".")
            if (
                len(parts) == 2
                and parts[0] in ("np", "numpy")
                and parts[1] in _NP_INPLACE_FNS
                and node.args
                and _tainted_expr(node.args[0], array_taint)
            ):
                emit(
                    module, "par-shared-array-write", node.lineno,
                    f"{name}() writes its first argument, which may "
                    f"alias a shared artifact/cache array",
                )
            for kw in node.keywords:
                if kw.arg == "out" and _tainted_expr(
                    kw.value, array_taint
                ):
                    emit(
                        module, "par-shared-array-write", node.lineno,
                        f"{info.qualname}() targets out= at a shared "
                        f"artifact/cache array",
                    )

        # --- par-fork-unsafe (environ mutation in workers) -----------
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Subscript) and _is_os_environ(
                    target.value
                ):
                    emit(
                        module, "par-fork-unsafe", node.lineno,
                        f"{info.qualname}() mutates os.environ inside "
                        f"a worker; the change is invisible to every "
                        f"sibling process",
                    )
        if isinstance(node, ast.Call) and isinstance(
            node.func, ast.Attribute
        ) and node.func.attr in ("pop", "update", "setdefault", "clear") \
                and _is_os_environ(node.func.value):
            emit(
                module, "par-fork-unsafe", node.lineno,
                f"{info.qualname}() mutates os.environ inside a worker",
            )

        # --- par-unseeded-rng ----------------------------------------
        if isinstance(node, ast.Call):
            message = _random_finding(node)
            if message is not None:
                emit(
                    module, "par-unseeded-rng", node.lineno,
                    f"worker-reachable {info.qualname}(): {message}; "
                    f"per-worker RNG state makes results depend on "
                    f"task placement",
                )

        # --- par-nonatomic-write -------------------------------------
        if isinstance(node, ast.Call):
            _check_path_write(info, node, path_taint, emit)


def _check_path_write(
    info: FunctionInfo, node: ast.Call, path_taint: Set[str], emit
) -> None:
    module = info.module
    func = node.func
    name = dotted_name(func) or ""
    last = name.rsplit(".", 1)[-1]

    def flag(target_expr: ast.expr, how: str) -> None:
        if _staged_via_tmp(target_expr):
            return
        emit(
            module, "par-nonatomic-write", node.lineno,
            f"{info.qualname}() {how} under the artifact root without "
            f"tmp+rename staging; racing workers can observe torn "
            f"entries — stage into a .tmp sibling and os.rename()",
        )

    if last == "open" and node.args and _root_path_expr(
        node.args[0] if not isinstance(func, ast.Attribute)
        else func.value,
        path_taint,
    ):
        mode = ""
        args = node.args
        target: ast.expr
        if isinstance(func, ast.Attribute):  # path.open("w")
            target = func.value
            if args and isinstance(args[0], ast.Constant):
                mode = str(args[0].value)
        else:  # open(path, "w")
            target = args[0]
            if not _root_path_expr(target, path_taint):
                return
            if len(args) > 1 and isinstance(args[1], ast.Constant):
                mode = str(args[1].value)
        for kw in node.keywords:
            if kw.arg == "mode" and isinstance(kw.value, ast.Constant):
                mode = str(kw.value.value)
        if any(flag_char in mode for flag_char in "wax+"):
            flag(target, f"open()s for writing")
    elif isinstance(func, ast.Attribute) and func.attr in _PATH_WRITERS \
            and _root_path_expr(func.value, path_taint):
        flag(func.value, f"calls .{func.attr}()")
    elif last in ("save", "savez", "savez_compressed") and node.args \
            and _root_path_expr(node.args[0], path_taint):
        flag(node.args[0], f"np.{last}()s")


def _module_scope_nodes(tree: ast.Module):
    """Nodes executed at import time (recursion stops at defs)."""
    stack = list(ast.iter_child_nodes(tree))
    while stack:
        node = stack.pop()
        if isinstance(
            node,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda,
             ast.ClassDef),
        ):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _check_module_scope(module: SourceModule, emit) -> None:
    """Fork-captured state in modules hosting worker-reachable code."""
    for node in _module_scope_nodes(module.tree):
        if not isinstance(node, ast.Call):
            continue
        name = dotted_name(node.func) or ""
        last = name.rsplit(".", 1)[-1]
        lineno = node.lineno
        if _is_os_environ(getattr(node.func, "value", None)) or \
                name in ("os.getenv", "getenv"):
            emit(
                module, "par-fork-unsafe", lineno,
                "module-scope os.environ read is captured at import "
                "time: stale under fork, silently different under "
                "spawn — read it inside the function that needs it",
            )
        elif isinstance(node.func, ast.Subscript) and _is_os_environ(
            node.func.value
        ):
            emit(
                module, "par-fork-unsafe", lineno,
                "module-scope os.environ read is captured at import "
                "time",
            )
        elif last == "open" and not isinstance(node.func, ast.Attribute):
            emit(
                module, "par-fork-unsafe", lineno,
                "module-scope open file handle is shared (offset and "
                "all) with every forked worker — open inside the "
                "worker-reachable function instead",
            )
        elif name in ("random.Random", "random.seed") or (
            name.endswith("random.default_rng")
        ):
            emit(
                module, "par-fork-unsafe", lineno,
                "module-scope RNG is cloned into every forked worker — "
                "identical streams where independence is assumed; "
                "construct it per task with an explicit seed",
            )
    # environ subscript *reads* at module scope
    for node in _module_scope_nodes(module.tree):
        if isinstance(node, ast.Subscript) and isinstance(
            node.ctx, ast.Load
        ) and _is_os_environ(node.value):
            emit(
                module, "par-fork-unsafe", node.lineno,
                "module-scope os.environ read is captured at import "
                "time: stale under fork, silently different under "
                "spawn",
            )


def _check_allowlist(
    modules: Sequence[SourceModule],
    allowed_caches: FrozenSet[str],
    emit,
) -> None:
    """Registered cache names must still resolve to a module binding."""
    by_dotted: Dict[str, SourceModule] = {}
    for module in modules:
        by_dotted.setdefault(module_dotted_name(module.path), module)
    for cache_name in sorted(allowed_caches):
        module_part, _, attr = cache_name.rpartition(".")
        module = by_dotted.get(module_part)
        if module is None:
            continue  # owning module not scanned this run
        bindings = {
            target.id
            for stmt in module.tree.body
            if isinstance(stmt, (ast.Assign, ast.AnnAssign))
            for target in (
                stmt.targets if isinstance(stmt, ast.Assign)
                else [stmt.target]
            )
            if isinstance(target, ast.Name)
        }
        if attr not in bindings:
            emit(
                module, "par-allowlist-stale", 1,
                f"worker-state registry names {cache_name!r} but "
                f"{module_part} defines no module-level {attr!r}; "
                f"remove or update the registration",
            )


# ----------------------------------------------------------------------
# Status reporting (the runner's entry-point line)
# ----------------------------------------------------------------------


def par_status_lines(modules: Sequence[SourceModule]) -> List[str]:
    """Human-readable summary of what the ``par`` family scanned."""
    graph = CallGraph(modules)
    entries = graph.entry_points()
    reachable = graph.worker_reachable()
    if not entries:
        return ["par: no worker-boundary entry points in scanned files"]
    described = ", ".join(entry.describe() for entry in entries)
    return [
        f"par: {len(entries)} worker entry point(s): {described}",
        f"par: {len(reachable)} worker-reachable function(s), "
        f"{len(_live_allowlist())} registered cache(s)",
    ]
