"""Determinism rules (simlint rule family ``determinism``).

Simulation results must be a pure function of (trace, configuration,
policy). Three classes of accidental nondeterminism are flagged:

- ``determinism-random`` — module-level ``random.*`` / legacy
  ``np.random.*`` calls and arg-less ``np.random.default_rng()``: all
  draw from unseeded (or process-global) state. Policies that need
  randomness must own a seeded ``random.Random(seed)`` /
  ``default_rng(seed)`` built in ``reset()``.
- ``determinism-time`` — any ``time.*`` / ``datetime.now`` call: wall
  clock readings feeding simulated state make runs unrepeatable.
  Instrumentation-only timing is fine — annotate the line with
  ``# simlint: allow[determinism-time]``.
- ``determinism-set-order`` — iterating a ``set`` (directly, via
  ``list(...)``/``tuple(...)``/``enumerate(...)``, or via a local name
  bound to one): CPython's set order depends on hash seeding and
  insertion history, so replay order — and therefore cache contents —
  can differ between runs. Wrap in ``sorted(...)``.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from .astutil import SourceModule, dotted_name, pragma_allows
from .findings import Finding

__all__ = ["check_determinism"]

_RANDOM_MODULE_FNS = {
    "random", "randrange", "randint", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "getrandbits", "betavariate", "seed",
}
_NP_LEGACY_FNS = {
    "rand", "randn", "randint", "random", "random_sample", "ranf",
    "choice", "shuffle", "permutation", "uniform", "normal", "seed",
    "standard_normal", "exponential", "poisson",
}
_TIME_FNS = {
    "time", "time_ns", "perf_counter", "perf_counter_ns", "monotonic",
    "monotonic_ns", "process_time", "process_time_ns", "clock",
}


def _is_setish(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        if name in ("set", "frozenset"):
            return True
    return False


def _scope_nodes(scope: ast.AST):
    """Every node belonging to ``scope`` itself — recursion stops at
    nested function/class definitions (their own scopes)."""
    stack = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        if isinstance(
            node,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef),
        ):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


class _FunctionScope(ast.NodeVisitor):
    """Tracks names bound to set values within one function body."""

    def __init__(self) -> None:
        self.set_names: Set[str] = set()

    def visit_Assign(self, node: ast.Assign) -> None:
        if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
            target = node.targets[0].id
            if _is_setish(node.value):
                self.set_names.add(target)
            else:
                self.set_names.discard(target)
        self.generic_visit(node)


def _random_finding(call: ast.Call) -> Optional[str]:
    name = dotted_name(call.func)
    if name is None:
        return None
    parts = name.split(".")
    if len(parts) == 2 and parts[0] == "random":
        if parts[1] in _RANDOM_MODULE_FNS:
            return (
                f"{name}() draws from the process-global RNG; use a "
                "seeded random.Random owned by the component"
            )
    if len(parts) == 3 and parts[1] == "random" and parts[0] in (
        "np", "numpy"
    ):
        if parts[2] in _NP_LEGACY_FNS:
            return (
                f"{name}() uses numpy's legacy global RNG; use "
                "np.random.default_rng(seed)"
            )
        if parts[2] == "default_rng" and not call.args and not call.keywords:
            return "default_rng() without a seed is nondeterministic"
    return None


def _time_finding(call: ast.Call) -> Optional[str]:
    name = dotted_name(call.func)
    if name is None:
        return None
    parts = name.split(".")
    if len(parts) == 2 and parts[0] == "time" and parts[1] in _TIME_FNS:
        return (
            f"{name}() reads the wall clock; simulated behaviour must not "
            "depend on host timing (allow[determinism-time] for "
            "instrumentation)"
        )
    if parts[-1] in ("now", "utcnow") and "datetime" in parts:
        return f"{name}() reads the wall clock"
    return None


def check_determinism(modules: List[SourceModule]) -> List[Finding]:
    findings: List[Finding] = []

    def emit(module: SourceModule, rule: str, lineno: int,
             message: str) -> None:
        if not pragma_allows(module, rule, lineno):
            findings.append(Finding(
                rule=rule, path=module.display_path, line=lineno,
                message=message,
            ))

    for module in modules:
        # --- RNG and wall-clock calls (whole module) ---
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            message = _random_finding(node)
            if message is not None:
                emit(module, "determinism-random", node.lineno, message)
            message = _time_finding(node)
            if message is not None:
                emit(module, "determinism-time", node.lineno, message)

        # --- set-iteration order (per scope; nested defs are their own
        # scope, so name bindings never leak across functions) ---
        scopes: List[ast.AST] = [module.tree]
        scopes.extend(
            node for node in ast.walk(module.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        )
        for scope in scopes:
            local_nodes = list(_scope_nodes(scope))
            tracker = _FunctionScope()
            # Bindings are collected scope-wide first: good enough for
            # the flat assign-then-loop shape this rule targets.
            for stmt in local_nodes:
                if isinstance(stmt, ast.Assign):
                    tracker.visit_Assign(stmt)

            def setish_or_tracked(expr: ast.expr,
                                  names: Set[str]) -> bool:
                if _is_setish(expr):
                    return True
                return isinstance(expr, ast.Name) and expr.id in names

            for node in local_nodes:
                if isinstance(node, ast.For) and setish_or_tracked(
                    node.iter, tracker.set_names
                ):
                    emit(
                        module, "determinism-set-order", node.lineno,
                        "iterating a set: order is not deterministic "
                        "across runs; use sorted(...)",
                    )
                elif isinstance(node, ast.Call):
                    name = dotted_name(node.func)
                    if (
                        name in ("list", "tuple", "enumerate", "iter")
                        and len(node.args) == 1
                        and setish_or_tracked(
                            node.args[0], tracker.set_names
                        )
                    ):
                        emit(
                            module, "determinism-set-order", node.lineno,
                            f"{name}() over a set freezes a "
                            "nondeterministic order; use sorted(...)",
                        )
    return findings
