"""Declarative-spec coverage of the figure harnesses (family
``spec-coverage``).

The spec layer (:mod:`repro.sim.spec`) exists so that axis sweeps are
declared once and executed by the unified parallel runner instead of
being hand-rolled per figure. That only holds if new harnesses keep
using it, so:

- ``spec-coverage-unregistered`` — every top-level ``figNN_*`` /
  ``tableN_*`` function in the real ``sim/experiments.py`` must either
  appear in ``repro.sim.spec.SPEC_HARNESSES`` (i.e. be backed by a
  registered spec factory) or carry an explicit
  ``# simlint: allow[spec-coverage]`` pragma stating why it stays
  hand-rolled (per-policy contexts, wall-clock measurement, ...).
- ``spec-coverage-registry`` — every ``SPEC_HARNESSES`` key except the
  standalone specs (``scenario_matrix``) must name a function that still
  exists in ``sim/experiments.py``; a renamed or deleted harness
  otherwise leaves a dangling registration that looks like coverage.

Like the registry and kernel rules, these import the *installed*
``repro.sim.spec`` rather than re-parsing it — the registry decorator
is the source of truth — and run only when the scanned set contains the
real ``sim/experiments.py``.
"""

from __future__ import annotations

import ast
import re
from typing import List, Optional

from .astutil import SourceModule, pragma_allows
from .findings import Finding

__all__ = ["check_spec_coverage", "experiments_module_scanned"]

#: Harness naming convention the coverage rule keys on.
_HARNESS_NAME = re.compile(r"^(fig\d+\w*|table\d+\w*)$")

#: Registry entries that are standalone specs, not harness wrappers.
_STANDALONE_SPECS = frozenset({"scenario_matrix"})


def experiments_module_scanned(
    modules: List[SourceModule],
) -> Optional[SourceModule]:
    for module in modules:
        parts = module.path.parts
        if (
            module.path.name == "experiments.py"
            and len(parts) >= 2
            and parts[-2] == "sim"
        ):
            return module
    return None


def check_spec_coverage(modules: List[SourceModule]) -> List[Finding]:
    findings: List[Finding] = []
    module = experiments_module_scanned(modules)
    if module is None:
        return findings

    from ..sim.spec import SPEC_HARNESSES

    harnesses = {
        node.name: node
        for node in module.tree.body
        if isinstance(node, ast.FunctionDef)
        and _HARNESS_NAME.match(node.name)
    }

    for name, node in sorted(harnesses.items()):
        if name in SPEC_HARNESSES:
            continue
        if pragma_allows(
            module, "spec-coverage-unregistered", node.lineno
        ):
            continue
        findings.append(Finding(
            rule="spec-coverage-unregistered",
            path=module.display_path,
            line=node.lineno,
            message=f"harness {name} is neither backed by a registered "
                    "declarative spec (repro.sim.spec.SPEC_HARNESSES) "
                    "nor marked # simlint: allow[spec-coverage]; "
                    "hand-rolled sweep loops bypass the unified runner",
        ))

    for name in sorted(SPEC_HARNESSES):
        if name in _STANDALONE_SPECS or name in harnesses:
            continue
        findings.append(Finding(
            rule="spec-coverage-registry",
            path=module.display_path,
            line=1,
            message=f"SPEC_HARNESSES registers {name!r}, but "
                    "sim/experiments.py defines no such harness — "
                    "stale registration (renamed or deleted function?)",
        ))
    return findings
