"""Flow-based numpy dtype/width inference (``dtype`` family engine).

The ``dtype`` rules (:mod:`repro.analysis.dtyperules`) need to answer one
question at many program points: *what element dtype does this expression
have, and is its value range provably bounded?* This module answers it
with a deliberately small abstract interpretation over the scanned ASTs:

- The lattice is flat: a :class:`Value` either names a concrete numpy
  dtype (``"int64"``, ``"uint8"``, ...) or is unknown (``dtype=None``,
  the top element). Joining two unequal dtypes yields unknown — the
  rules stay silent rather than guess, so every finding rests on a
  dtype the engine actually proved.
- Creation sites seed the lattice: ``np.zeros/empty/ones/full/arange/
  array/asarray/ascontiguousarray/fromiter`` (explicit ``dtype=`` or the
  numpy default), ``.astype(...)``/``.view(...)`` casts, and
  known-signature APIs (``bincount`` -> platform int, ``cumsum`` -> the
  platform-int promotion, ``argsort``/``searchsorted`` -> platform int).
- Assignments, tuple unpacking, views (``copy``/``ravel``/``reshape``/
  slicing), and arithmetic propagate dtypes forward through each
  function body in statement order; ``if`` branches are joined
  (disagreeing branches -> unknown).
- Calls to *project-local* functions resolve interprocedurally through
  the :class:`~repro.analysis.purity.CallGraph` walker the ``par``
  family already builds: the callee's return expression is inferred in
  its own environment (memoized, recursion-guarded), so a helper like
  ``_ws(n) -> np.empty(n, dtype=np.int64)`` types its callers.
- A ``bounded`` bit rides along the dtype: values that passed through a
  clamp (``np.minimum``/``np.clip``, a ``&`` mask, ``%``) are marked
  range-guarded, which is what lets ``dtype-narrowing-cast`` and
  ``dtype-overflow`` distinguish a documented quantization from an
  unchecked truncation.

The engine never imports numpy and never executes scanned code; like the
rest of simlint it is a project-local static pass.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from .astutil import SourceModule, dotted_name
from .purity import CallGraph, FunctionInfo

__all__ = [
    "Value",
    "UNKNOWN",
    "DtypeFlow",
    "dtype_width",
    "is_integer_dtype",
    "is_float_dtype",
    "parse_dtype_node",
]

#: Element width in bits per recognized dtype name. ``intp``/``uintp``
#: are numpy's platform-default integers: 64-bit on the CI/dev targets,
#: 32-bit on e.g. Windows — which is exactly why ``dtype-unspecified``
#: exists. For width comparisons they count as 64 (their widest form);
#: the *name* is preserved so messages can say "platform int".
_WIDTHS: Dict[str, int] = {
    "bool": 1,
    "int8": 8, "uint8": 8,
    "int16": 16, "uint16": 16,
    "int32": 32, "uint32": 32,
    "int64": 64, "uint64": 64,
    "intp": 64, "uintp": 64,
    "float32": 32, "float64": 64,
}

_FLOATS = {"float32", "float64"}


def dtype_width(name: Optional[str]) -> Optional[int]:
    """Bit width of a recognized dtype name (None when unknown)."""
    if name is None:
        return None
    return _WIDTHS.get(name)


def is_integer_dtype(name: Optional[str]) -> bool:
    return name is not None and name in _WIDTHS and name not in _FLOATS \
        and name != "bool"


def is_float_dtype(name: Optional[str]) -> bool:
    return name in _FLOATS


@dataclass(frozen=True)
class Value:
    """One lattice element: what the engine knows about an expression."""

    dtype: Optional[str] = None   #: numpy dtype name, or None = unknown
    is_array: bool = False        #: array-like (vs scalar / weak python)
    bounded: bool = False         #: range-guarded by a clamp on the path

    def known(self) -> bool:
        return self.dtype is not None


UNKNOWN = Value()

#: numpy calls returning the platform-default integer regardless of
#: input dtype (index-producing APIs).
_PLATFORM_INT_CALLS = {
    "bincount", "argsort", "argmin", "argmax", "searchsorted",
    "flatnonzero", "count_nonzero", "lexsort", "digitize",
}

#: numpy calls that forward their first argument's dtype.
_FORWARDING_CALLS = {
    "sort", "unique", "copy", "ravel", "repeat", "tile", "flip",
    "ascontiguousarray", "asfortranarray", "atleast_1d", "diff",
}

#: view/copy methods that preserve the receiver's dtype.
_FORWARDING_METHODS = {
    "copy", "ravel", "reshape", "flatten", "transpose", "squeeze",
    "max", "min", "sum",
}

#: clamping calls: result dtype is the promotion of the array args and
#: the result is marked range-guarded.
_CLAMP_CALLS = {"minimum", "clip"}


def _promote(a: Value, b: Value) -> Value:
    """numpy-style promotion of a binary op's operands (approximate).

    Python scalars are *weak* (NEP 50): a constant does not widen an
    array operand. Unknown poisons to unknown — the rules never act on a
    guessed dtype.
    """
    # Weak scalars: the typed side wins.
    if a.dtype is None and not a.is_array and b.known():
        return replace(b, bounded=a.bounded and b.bounded)
    if b.dtype is None and not b.is_array and a.known():
        return replace(a, bounded=a.bounded and b.bounded)
    if not a.known() or not b.known():
        return Value(is_array=a.is_array or b.is_array)
    bounded = a.bounded and b.bounded
    array = a.is_array or b.is_array
    da, db = a.dtype, b.dtype
    if da == db:
        return Value(dtype=da, is_array=array, bounded=bounded)
    if is_float_dtype(da) or is_float_dtype(db):
        if da in _FLOATS and db in _FLOATS:
            name = "float64" if "float64" in (da, db) else "float32"
        else:
            name = "float64"
        return Value(dtype=name, is_array=array, bounded=bounded)
    # Integer/bool mixing: bool behaves as the weakest integer.
    wa = _WIDTHS.get(da, 64)
    wb = _WIDTHS.get(db, 64)
    if da == "bool":
        return Value(dtype=db, is_array=array, bounded=bounded)
    if db == "bool":
        return Value(dtype=da, is_array=array, bounded=bounded)
    signed_a = not da.startswith("u")
    signed_b = not db.startswith("u")
    width = max(wa, wb)
    if signed_a == signed_b:
        prefix = "int" if signed_a else "uint"
        return Value(
            dtype=f"{prefix}{width}", is_array=array, bounded=bounded
        )
    # Mixed signedness: numpy widens to the next signed type (int32 +
    # uint32 -> int64); at 64 bits it falls off to float64.
    unsigned_width = wa if not signed_a else wb
    signed_width = wa if signed_a else wb
    if unsigned_width >= signed_width:
        if unsigned_width >= 64:
            return Value(dtype="float64", is_array=array, bounded=bounded)
        return Value(
            dtype=f"int{unsigned_width * 2}", is_array=array,
            bounded=bounded,
        )
    return Value(dtype=f"int{signed_width}", is_array=array, bounded=bounded)


def _join(a: Value, b: Value) -> Value:
    """Lattice join for control-flow merges: disagree -> unknown."""
    if a == b:
        return a
    if a.dtype == b.dtype:
        return Value(
            dtype=a.dtype,
            is_array=a.is_array or b.is_array,
            bounded=a.bounded and b.bounded,
        )
    return UNKNOWN


def parse_dtype_node(node: Optional[ast.AST]) -> Optional[str]:
    """A ``dtype=`` expression -> dtype name, or None when unresolvable.

    Recognizes ``np.int64`` (any module alias), bare ``bool/int/float``,
    and string literals. An ``IfExp`` with agreeing branches resolves;
    disagreeing branches (``np.uint16 if wide else np.uint8``) are
    *deliberately* unknown — the choice is data-dependent.
    """
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value if node.value in _WIDTHS else None
    if isinstance(node, ast.Attribute):
        return node.attr if node.attr in _WIDTHS else None
    if isinstance(node, ast.Name):
        if node.id in _WIDTHS:
            return node.id
        return {"bool": "bool", "int": "intp", "float": "float64"}.get(
            node.id
        )
    if isinstance(node, ast.IfExp):
        body = parse_dtype_node(node.body)
        orelse = parse_dtype_node(node.orelse)
        return body if body == orelse else None
    return None


def _call_keyword(call: ast.Call, name: str) -> Optional[ast.AST]:
    for kw in call.keywords:
        if kw.arg == name:
            return kw.value
    return None


def _dtype_argument(call: ast.Call, positional: int) -> Optional[ast.AST]:
    """The dtype expression of a creation call, keyword or positional."""
    kw = _call_keyword(call, "dtype")
    if kw is not None:
        return kw
    if 0 <= positional < len(call.args):
        return call.args[positional]
    return None


def _literal_element_dtype(node: ast.AST) -> Optional[str]:
    """dtype of a list/tuple literal of numeric constants, else None."""
    if not isinstance(node, (ast.List, ast.Tuple)):
        return None
    saw_float = False
    saw_int = False
    for elt in node.elts:
        if isinstance(elt, ast.UnaryOp) and isinstance(elt.op, ast.USub):
            elt = elt.operand
        if not isinstance(elt, ast.Constant):
            return None
        if isinstance(elt.value, bool):
            continue
        if isinstance(elt.value, int):
            saw_int = True
        elif isinstance(elt.value, float):
            saw_float = True
        else:
            return None
    if saw_float:
        return "float64"
    if saw_int:
        return "intp"
    return "bool" if node.elts else None


#: Per-statement pre-effect hook: (statement, environment-at-entry).
StmtCallback = Callable[[ast.stmt, Dict[str, Value]], None]


class DtypeFlow:
    """Interprocedural dtype inference over a scanned module set."""

    def __init__(
        self,
        modules: Sequence[SourceModule],
        graph: Optional[CallGraph] = None,
    ) -> None:
        self.modules = list(modules)
        self.graph = graph if graph is not None else CallGraph(modules)
        self._returns: Dict[Tuple[str, str], object] = {}
        self._in_progress: set = set()

    # -- public API ----------------------------------------------------

    def scan_function(
        self,
        module: SourceModule,
        func: ast.FunctionDef,
        callback: Optional[StmtCallback] = None,
        class_name: Optional[str] = None,
    ) -> Dict[str, Value]:
        """Forward pass over ``func``; ``callback`` fires per statement
        with the environment *before* that statement's effects apply
        (matching evaluation order: an assignment's RHS sees the old
        binding). Returns the post-body environment."""
        env: Dict[str, Value] = {}
        self._walk_body(func.body, env, module, class_name, callback)
        return env

    def infer(
        self,
        node: ast.AST,
        env: Dict[str, Value],
        module: SourceModule,
        class_name: Optional[str] = None,
    ) -> Value:
        """The lattice value of one expression under ``env``."""
        return self._infer(node, env, module, class_name)

    def return_value(self, info: FunctionInfo) -> Union[Value, tuple]:
        """What ``info`` returns: a Value, or a tuple of Values for
        functions returning a literal tuple (enables unpack typing)."""
        cached = self._returns.get(info.key)
        if cached is not None:
            return cached
        if info.key in self._in_progress:
            return UNKNOWN  # recursion: give up, stay sound
        self._in_progress.add(info.key)
        try:
            result = self._compute_return(info)
        finally:
            self._in_progress.discard(info.key)
        self._returns[info.key] = result
        return result

    # -- statement walk ------------------------------------------------

    def _walk_body(
        self,
        body: Sequence[ast.stmt],
        env: Dict[str, Value],
        module: SourceModule,
        class_name: Optional[str],
        callback: Optional[StmtCallback],
        returns: Optional[List[object]] = None,
    ) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue  # nested defs are their own scope
            if callback is not None:
                callback(stmt, env)
            self._apply(stmt, env, module, class_name, callback, returns)

    def _apply(
        self,
        stmt: ast.stmt,
        env: Dict[str, Value],
        module: SourceModule,
        class_name: Optional[str],
        callback: Optional[StmtCallback],
        returns: Optional[List[object]],
    ) -> None:
        walk = lambda body, e: self._walk_body(  # noqa: E731
            body, e, module, class_name, callback, returns
        )
        if isinstance(stmt, ast.Assign):
            value = stmt.value
            for target in stmt.targets:
                self._bind(target, value, env, module, class_name)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._bind(stmt.target, stmt.value, env, module, class_name)
        elif isinstance(stmt, ast.AugAssign):
            if isinstance(stmt.target, ast.Name):
                current = env.get(stmt.target.id, UNKNOWN)
                # In-place ops keep the target's dtype; only the bounded
                # bit can degrade.
                rhs = self._infer(stmt.value, env, module, class_name)
                env[stmt.target.id] = replace(
                    current, bounded=current.bounded and rhs.bounded
                )
        elif isinstance(stmt, ast.Return):
            if returns is not None:
                if isinstance(stmt.value, ast.Tuple):
                    returns.append(tuple(
                        self._infer(e, env, module, class_name)
                        for e in stmt.value.elts
                    ))
                elif stmt.value is not None:
                    returns.append(
                        self._infer(stmt.value, env, module, class_name)
                    )
                else:
                    returns.append(UNKNOWN)
        elif isinstance(stmt, ast.If):
            before = dict(env)
            walk(stmt.body, env)
            other = dict(before)
            walk(stmt.orelse, other)
            merged: Dict[str, Value] = {}
            for name in set(env) | set(other):
                a = env.get(name, before.get(name))
                b = other.get(name, before.get(name))
                merged[name] = UNKNOWN if a is None or b is None \
                    else _join(a, b)
            env.clear()
            env.update(merged)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_value = self._infer(stmt.iter, env, module, class_name)
            if isinstance(stmt.target, ast.Name):
                # Iterating an array yields same-dtype numpy scalars.
                env[stmt.target.id] = replace(iter_value, is_array=False) \
                    if iter_value.known() else UNKNOWN
            walk(stmt.body, env)
            walk(stmt.orelse, env)
        elif isinstance(stmt, ast.While):
            walk(stmt.body, env)
            walk(stmt.orelse, env)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            walk(stmt.body, env)
        elif isinstance(stmt, ast.Try):
            walk(stmt.body, env)
            for handler in stmt.handlers:
                walk(handler.body, env)
            walk(stmt.orelse, env)
            walk(stmt.finalbody, env)

    def _bind(
        self,
        target: ast.AST,
        value: ast.AST,
        env: Dict[str, Value],
        module: SourceModule,
        class_name: Optional[str],
    ) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = self._infer(value, env, module, class_name)
            return
        if isinstance(target, ast.Tuple) and all(
            isinstance(e, ast.Name) for e in target.elts
        ):
            unpacked = self._infer_tuple(value, env, module, class_name)
            if unpacked is not None and len(unpacked) == len(target.elts):
                for elt, val in zip(target.elts, unpacked):
                    env[elt.id] = val  # type: ignore[union-attr]
            else:
                for elt in target.elts:
                    env[elt.id] = UNKNOWN  # type: ignore[union-attr]

    def _infer_tuple(
        self,
        node: ast.AST,
        env: Dict[str, Value],
        module: SourceModule,
        class_name: Optional[str],
    ) -> Optional[Tuple[Value, ...]]:
        if isinstance(node, ast.Tuple):
            return tuple(
                self._infer(e, env, module, class_name) for e in node.elts
            )
        if isinstance(node, ast.Call):
            resolved = self._resolve_call(node, module, class_name)
            if isinstance(resolved, tuple):
                return resolved
        return None

    # -- expression inference ------------------------------------------

    def _infer(
        self,
        node: ast.AST,
        env: Dict[str, Value],
        module: SourceModule,
        class_name: Optional[str],
    ) -> Value:
        if isinstance(node, ast.Name):
            return env.get(node.id, UNKNOWN)
        if isinstance(node, ast.Constant):
            # Python scalars are weak: typed operands win promotion.
            if isinstance(node.value, bool):
                return Value(dtype="bool", bounded=True)
            if isinstance(node.value, (int, float)):
                return Value(bounded=True)
            return UNKNOWN
        if isinstance(node, ast.Subscript):
            base = self._infer(node.value, env, module, class_name)
            return base if base.known() else UNKNOWN
        if isinstance(node, ast.BinOp):
            return self._infer_binop(node, env, module, class_name)
        if isinstance(node, ast.UnaryOp):
            return self._infer(node.operand, env, module, class_name)
        if isinstance(node, ast.Compare):
            return Value(dtype="bool", is_array=True, bounded=True)
        if isinstance(node, ast.IfExp):
            return _join(
                self._infer(node.body, env, module, class_name),
                self._infer(node.orelse, env, module, class_name),
            )
        if isinstance(node, ast.Call):
            return self._infer_call(node, env, module, class_name)
        return UNKNOWN

    def _infer_binop(
        self,
        node: ast.BinOp,
        env: Dict[str, Value],
        module: SourceModule,
        class_name: Optional[str],
    ) -> Value:
        left = self._infer(node.left, env, module, class_name)
        right = self._infer(node.right, env, module, class_name)
        if isinstance(node.op, ast.Div):
            array = left.is_array or right.is_array
            return Value(dtype="float64", is_array=array)
        result = _promote(left, right)
        if isinstance(node.op, (ast.BitAnd, ast.Mod)):
            # Masking / modulo bounds the result by the RHS.
            return replace(result, bounded=True)
        if isinstance(node.op, (ast.Add, ast.Sub, ast.Mult, ast.LShift,
                                ast.Pow)):
            return replace(result, bounded=False)
        return result

    def _infer_call(
        self,
        call: ast.Call,
        env: Dict[str, Value],
        module: SourceModule,
        class_name: Optional[str],
    ) -> Value:
        func = call.func
        # Method calls on an inferable receiver.
        if isinstance(func, ast.Attribute):
            attr = func.attr
            if attr == "astype":
                target = parse_dtype_node(call.args[0]) if call.args \
                    else None
                source = self._infer(func.value, env, module, class_name)
                return Value(
                    dtype=target, is_array=True, bounded=source.bounded
                )
            if attr == "view" and call.args:
                return Value(
                    dtype=parse_dtype_node(call.args[0]), is_array=True
                )
            if attr in _FORWARDING_METHODS:
                receiver = self._infer(func.value, env, module, class_name)
                if receiver.known():
                    return replace(receiver, is_array=True) \
                        if attr not in ("max", "min", "sum") \
                        else replace(receiver, is_array=False)
                return UNKNOWN
        name = dotted_name(func)
        if name is not None:
            tail = name.rsplit(".", 1)[-1]
            numpy_value = self._numpy_call(call, tail, env, module,
                                           class_name)
            if numpy_value is not None:
                return numpy_value
        # Project-local functions: interprocedural return inference.
        resolved = self._resolve_call(call, module, class_name)
        if isinstance(resolved, Value):
            return resolved
        return UNKNOWN

    def _numpy_call(
        self,
        call: ast.Call,
        tail: str,
        env: Dict[str, Value],
        module: SourceModule,
        class_name: Optional[str],
    ) -> Optional[Value]:
        """Value of a recognized numpy-API call, else None."""
        infer = lambda n: self._infer(n, env, module, class_name)  # noqa: E731
        if tail in ("zeros", "empty", "ones"):
            dtype = parse_dtype_node(_dtype_argument(call, 1))
            return Value(dtype=dtype or "float64", is_array=True)
        if tail in ("zeros_like", "empty_like", "ones_like", "full_like"):
            dtype = parse_dtype_node(_call_keyword(call, "dtype"))
            if dtype is not None:
                return Value(dtype=dtype, is_array=True)
            return replace(infer(call.args[0]), is_array=True) \
                if call.args else UNKNOWN
        if tail == "full":
            dtype = parse_dtype_node(_dtype_argument(call, 2))
            if dtype is not None:
                return Value(dtype=dtype, is_array=True)
            if len(call.args) >= 2:
                fill = infer(call.args[1])
                if fill.known():
                    return Value(dtype=fill.dtype, is_array=True)
                if isinstance(call.args[1], ast.Constant):
                    if isinstance(call.args[1].value, bool):
                        return Value(dtype="bool", is_array=True)
                    if isinstance(call.args[1].value, int):
                        return Value(dtype="intp", is_array=True)
                    if isinstance(call.args[1].value, float):
                        return Value(dtype="float64", is_array=True)
            return Value(is_array=True)
        if tail == "arange":
            dtype = parse_dtype_node(_dtype_argument(call, 3))
            if dtype is not None:
                return Value(dtype=dtype, is_array=True)
            for arg in call.args:
                if isinstance(arg, ast.Constant) \
                        and isinstance(arg.value, float):
                    return Value(dtype="float64", is_array=True)
            return Value(dtype="intp", is_array=True)
        if tail in ("array", "asarray", "ascontiguousarray",
                    "asfortranarray"):
            dtype = parse_dtype_node(_dtype_argument(call, 1))
            if dtype is not None:
                return Value(dtype=dtype, is_array=True)
            if call.args:
                literal = _literal_element_dtype(call.args[0])
                if literal is not None:
                    return Value(dtype=literal, is_array=True)
                source = infer(call.args[0])
                if source.known():
                    return replace(source, is_array=True)
            return Value(is_array=True)
        if tail == "fromiter":
            dtype = parse_dtype_node(_dtype_argument(call, 1))
            return Value(dtype=dtype, is_array=True)
        if tail == "linspace":
            return Value(dtype="float64", is_array=True)
        if tail in _PLATFORM_INT_CALLS:
            if tail == "bincount" and (
                len(call.args) >= 2
                or any(kw.arg == "weights" for kw in call.keywords)
            ):
                return Value(dtype="float64", is_array=True)
            return Value(dtype="intp", is_array=True)
        if tail == "cumsum":
            if call.args:
                source = infer(call.args[0])
                if is_integer_dtype(source.dtype):
                    # numpy accumulates narrow ints in the platform int.
                    width = _WIDTHS[source.dtype]  # type: ignore[index]
                    if width < 64:
                        signed = not source.dtype.startswith("u")  # type: ignore[union-attr]
                        return Value(
                            dtype="intp" if signed else "uintp",
                            is_array=True,
                        )
                if source.known():
                    return replace(source, is_array=True, bounded=False)
            return UNKNOWN
        if tail in _CLAMP_CALLS:
            values = [infer(a) for a in call.args]
            result = UNKNOWN
            for value in values:
                result = _promote(result, value) if result.known() \
                    else value
            return replace(result, bounded=True, is_array=True) \
                if result.known() else Value(is_array=True, bounded=True)
        if tail == "maximum":
            values = [infer(a) for a in call.args]
            result = values[0] if values else UNKNOWN
            for value in values[1:]:
                result = _promote(result, value)
            return replace(result, is_array=True) if result.known() \
                else UNKNOWN
        if tail == "where" and len(call.args) == 3:
            return _join(infer(call.args[1]), infer(call.args[2]))
        if tail in _FORWARDING_CALLS:
            if call.args:
                source = infer(call.args[0])
                if source.known():
                    return replace(source, is_array=True)
            return UNKNOWN
        if tail in ("concatenate", "hstack", "vstack", "stack"):
            if call.args and isinstance(call.args[0], (ast.List,
                                                       ast.Tuple)):
                result: Optional[Value] = None
                for elt in call.args[0].elts:
                    value = infer(elt)
                    result = value if result is None \
                        else _promote(result, value)
                if result is not None and result.known():
                    return replace(result, is_array=True)
            return UNKNOWN
        return None

    def _resolve_call(
        self,
        call: ast.Call,
        module: SourceModule,
        class_name: Optional[str],
    ) -> Union[Value, Tuple[Value, ...], None]:
        """Interprocedural: resolve a project-local call's return."""
        func = call.func
        infos: List[FunctionInfo] = []
        if isinstance(func, ast.Name):
            infos = self.graph._resolve_in_module(module, func.id)
        elif isinstance(func, ast.Attribute) \
                and isinstance(func.value, ast.Name):
            if func.value.id == "self" and class_name:
                infos = self.graph._resolve_method(
                    module, class_name, func.attr
                )
            else:
                scope = self.graph.scope_of(module)
                alias = scope.module_aliases.get(func.value.id)
                if alias is not None:
                    target = self.graph._by_dotted.get(alias)
                    if target is not None:
                        infos = self.graph._resolve_in_module(
                            target, func.attr
                        )
        # Constructors (__init__) tell us nothing about dtypes.
        infos = [i for i in infos if not i.name.startswith("__")]
        if len(infos) != 1:
            return None
        return self.return_value(infos[0])

    def _compute_return(
        self, info: FunctionInfo
    ) -> Union[Value, Tuple[Value, ...]]:
        returns: List[object] = []
        env: Dict[str, Value] = {}
        self._walk_body(
            info.node.body, env, info.module, info.class_name,  # type: ignore[attr-defined]
            callback=None, returns=returns,
        )
        if not returns:
            return UNKNOWN
        first = returns[0]
        if isinstance(first, tuple):
            for other in returns[1:]:
                if not isinstance(other, tuple) \
                        or len(other) != len(first):
                    return UNKNOWN
                first = tuple(_join(a, b) for a, b in zip(first, other))
            return first
        result = first
        for other in returns[1:]:
            if isinstance(other, tuple):
                return UNKNOWN
            result = _join(result, other)  # type: ignore[arg-type]
        return result  # type: ignore[return-value]
