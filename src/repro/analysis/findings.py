"""Finding records produced by the simlint rules.

Every rule emits :class:`Finding` objects; the runner sorts, formats, and
turns them into a process exit code. A finding is identified by its
``rule`` id (e.g. ``determinism-time``), which is also the token that an
inline ``# simlint: allow[...]`` pragma must name to suppress it.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, List, Union

__all__ = ["Finding", "format_findings"]


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def as_dict(self) -> Dict[str, Union[str, int]]:
        """JSON-ready mapping (``--json`` output, CI annotations)."""
        return asdict(self)


def format_findings(findings: List[Finding]) -> str:
    """Stable, path-then-line ordered report body."""
    ordered = sorted(findings, key=lambda f: (f.path, f.line, f.rule))
    return "\n".join(finding.format() for finding in ordered)
