"""simlint runner: discover files, execute rules, report findings.

``python -m repro.analysis [paths...]`` is the command-line entry; the
:func:`run_simlint` API is what the tests drive. Rules are pure functions
from parsed modules to findings, so adding a rule is adding one function
to :data:`RULE_SETS`.
"""

from __future__ import annotations

import argparse
import io
import json
import os
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import FrozenSet, List, Optional, Sequence

from .abi import ABI_RULES, check_abi
from .astutil import _PRAGMA, SourceModule, iter_python_files, load_module
from .contract import check_policy_contracts
from .determinism import check_determinism
from .dtyperules import DTYPE_RULES, check_dtypes, dtype_status_lines
from .findings import Finding, format_findings
from .hotpath import DEFAULT_REPLAY_PATH, check_hot_paths
from .kernelcov import check_kernels
from .parsafety import PAR_RULES, check_parsafety, par_status_lines
from .registry_drift import check_registry
from .speccov import check_spec_coverage

__all__ = ["SimlintConfig", "run_simlint", "main", "KNOWN_RULES"]

RULE_FAMILIES = (
    "policy", "determinism", "hotpath", "registry", "kernels", "abi",
    "spec-coverage", "par", "dtype",
)

#: Every rule id a suppression pragma may legally name. Pragmas naming
#: anything else are flagged (``pragma-unknown``) rather than silently
#: ignored — a typo in a suppression is a latent re-enabled finding,
#: which is worse than noise.
KNOWN_RULES = frozenset(
    (
        "parse-error",
        "pragma-unknown",
        "policy-init-set-state",
        "policy-missing-victim",
        "policy-mutable-class-default",
        "policy-name-duplicate",
        "policy-name-missing",
        "determinism-random",
        "determinism-set-order",
        "determinism-time",
        "hotpath-append",
        "hotpath-scalar-box",
        "hotpath-tolist",
        "registry-construct",
        "registry-order",
        "registry-unreachable",
        "kernel-popt-coverage",
        "kernel-resolve",
        "spec-coverage-unregistered",
        "spec-coverage-registry",
    )
    + PAR_RULES
    + ABI_RULES
    + DTYPE_RULES
    + RULE_FAMILIES
)


@dataclass
class SimlintConfig:
    """Tunable knobs: which functions are replay-path, which rule
    families run."""

    replay_path: FrozenSet[str] = DEFAULT_REPLAY_PATH
    families: Sequence[str] = field(default_factory=lambda: RULE_FAMILIES)


def _load_modules(paths: Sequence[Path]) -> tuple:
    modules: List[SourceModule] = []
    findings: List[Finding] = []
    for path in iter_python_files(paths):
        try:
            modules.append(load_module(path))
        except SyntaxError as exc:
            findings.append(Finding(
                rule="parse-error",
                path=str(path),
                line=exc.lineno or 1,
                message=f"file does not parse: {exc.msg}",
            ))
    return modules, findings


def _pragma_comments(source: str):
    """(line, tokens) per suppression pragma found in a *real* comment.

    Validation goes through :mod:`tokenize` rather than the line map so
    docstrings and string literals that merely *mention* the pragma
    syntax (this package documents it a lot) are not validated as
    pragmas."""
    try:
        readline = io.StringIO(source).readline
        for tok in tokenize.generate_tokens(readline):
            if tok.type != tokenize.COMMENT:
                continue
            match = _PRAGMA.search(tok.string)
            if match is None:
                continue
            tokens = frozenset(
                part.strip()
                for part in match.group(1).split(",")
                if part.strip()
            )
            if tokens:
                yield tok.start[0], tokens
    except tokenize.TokenError:
        return


def _check_pragmas(
    modules: Sequence[SourceModule], findings: List[Finding]
) -> None:
    """Unknown rule tokens in allow-pragmas are findings, not no-ops."""
    for module in modules:
        for line, tokens in _pragma_comments(module.source):
            if "pragma-unknown" in tokens:
                continue
            for token in sorted(tokens):
                if token in KNOWN_RULES or token == "*":
                    continue
                findings.append(Finding(
                    rule="pragma-unknown",
                    path=module.display_path,
                    line=line,
                    message=f"allow-pragma names unknown rule "
                            f"{token!r}",
                ))


def run_simlint(
    paths: Sequence[Path],
    config: Optional[SimlintConfig] = None,
) -> List[Finding]:
    """Run every enabled rule over the given files/directories."""
    config = config if config is not None else SimlintConfig()
    modules, findings = _load_modules([Path(p) for p in paths])
    families = set(config.families)
    _check_pragmas(modules, findings)
    if "policy" in families:
        findings.extend(check_policy_contracts(modules))
    if "determinism" in families:
        findings.extend(check_determinism(modules))
    if "hotpath" in families:
        findings.extend(check_hot_paths(modules, config.replay_path))
    if "registry" in families:
        findings.extend(check_registry(modules))
    if "kernels" in families:
        findings.extend(check_kernels(modules))
    if "abi" in families:
        findings.extend(check_abi(modules, set(KNOWN_RULES)))
    if "spec-coverage" in families:
        findings.extend(check_spec_coverage(modules))
    if "par" in families:
        findings.extend(check_parsafety(modules))
    if "dtype" in families:
        findings.extend(check_dtypes(modules, config.replay_path))
    return _stable_findings(findings)


def _stable_findings(findings: Sequence[Finding]) -> List[Finding]:
    """Deterministic (file, line, rule, message) order, de-duplicated.

    Overlapping scope walks (and two families observing one site) may
    emit the same finding twice; :class:`Finding` is a frozen dataclass,
    so exact duplicates collapse through the set and the total sort
    makes multi-family output byte-stable regardless of family
    execution order — CI diffs never churn on ordering. Findings that
    differ only in message (e.g. one ``abi-signature`` per mismatched
    argument at one call line) all survive.
    """
    return sorted(
        set(findings), key=lambda f: (f.path, f.line, f.rule, f.message)
    )


def _default_target() -> Path:
    """Lint the package this tool ships in when no path is given."""
    return Path(__file__).resolve().parents[1]


def _ckernels_status() -> str:
    """One-line compiled-kernel availability report.

    The ``abi`` rules prove the three ABI layers agree *statically*;
    this line reports whether the compiled path actually engages at
    runtime — and if not, why (the recorded compiler diagnostic), so a
    broken toolchain is never a silent pure-Python fallback.
    """
    from ..sim import ckernels

    if os.environ.get(ckernels.PURE_ENV):
        return (
            f"ckernels: pure-Python kernels forced "
            f"({ckernels.PURE_ENV} set)"
        )
    if ckernels.available():
        return "ckernels: compiled kernels available"
    reason = ckernels.build_error() or "unknown failure"
    return f"ckernels: compiled kernels UNAVAILABLE ({reason})"


#: Rule-id prefix -> family (longest prefix wins; core rules own none).
_FAMILY_PREFIXES = (
    ("spec-coverage-", "spec-coverage"),
    ("determinism-", "determinism"),
    ("registry-", "registry"),
    ("hotpath-", "hotpath"),
    ("policy-", "policy"),
    ("kernel-", "kernels"),
    ("par-", "par"),
    ("abi-", "abi"),
    ("dtype-", "dtype"),
)


def _family_of(rule: str) -> str:
    for prefix, family in _FAMILY_PREFIXES:
        if rule.startswith(prefix):
            return family
    return "core"


def _count_by_family(findings: Sequence[Finding]) -> dict:
    counts: dict = {}
    for finding in findings:
        family = _family_of(finding.rule)
        counts[family] = counts.get(family, 0) + 1
    return counts


def _family_counts(findings: Sequence[Finding]) -> str:
    return ", ".join(
        f"{family}: {count}"
        for family, count in sorted(_count_by_family(findings).items())
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="simlint: simulator-specific static analysis "
                    "(policy contracts, registry drift, determinism, "
                    "hot-path hygiene, cross-language kernel ABI, "
                    "worker purity, dtype/width contracts)",
    )
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--skip", action="append", default=[], choices=RULE_FAMILIES,
        metavar="FAMILY",
        help="disable a rule family (repeatable); families: "
             + ", ".join(RULE_FAMILIES),
    )
    parser.add_argument(
        "--disable", action="append", dest="skip", default=[],
        choices=RULE_FAMILIES, metavar="FAMILY",
        help="alias for --skip",
    )
    parser.add_argument(
        "--family", action="append", default=[], choices=RULE_FAMILIES,
        metavar="FAMILY",
        help="run only the named family (repeatable; overrides --skip)",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress the all-clear summary line",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit machine-readable findings on stdout (for CI "
             "annotation tooling); the exit code is unchanged",
    )
    args = parser.parse_args(argv)

    paths = args.paths if args.paths else [_default_target()]
    if args.family:
        families = tuple(
            f for f in RULE_FAMILIES if f in set(args.family)
        )
    else:
        families = tuple(
            f for f in RULE_FAMILIES if f not in set(args.skip)
        )
    findings = run_simlint(paths, SimlintConfig(families=families))

    def status_lines() -> List[str]:
        lines: List[str] = []
        modules: Optional[List[SourceModule]] = None
        if "par" in families or "dtype" in families:
            modules, _ = _load_modules([Path(p) for p in paths])
        if "par" in families and modules is not None:
            lines.extend(par_status_lines(modules))
        if "abi" in families:
            lines.append(_ckernels_status())
        if "dtype" in families and modules is not None:
            lines.extend(dtype_status_lines(modules))
        return lines

    if args.json:
        scanned = len(iter_python_files([Path(p) for p in paths]))
        report = {
            "findings": [
                {**f.as_dict(), "family": _family_of(f.rule)}
                for f in findings
            ],
            "counts": {
                family: count
                for family, count in sorted(
                    _count_by_family(findings).items()
                )
            },
            "families": list(families),
            "scanned_files": scanned,
            "status": status_lines(),
        }
        print(json.dumps(report, indent=2, sort_keys=True))
        return 1 if findings else 0

    if findings:
        print(format_findings(findings))
        print(
            f"simlint: {len(findings)} finding(s) "
            f"[{_family_counts(findings)}]"
        )
        for line in status_lines():
            print(line)
        return 1
    if not args.quiet:
        scanned = len(iter_python_files([Path(p) for p in paths]))
        print(
            f"simlint: OK ({scanned} files, "
            f"families: {', '.join(families)})"
        )
        for line in status_lines():
            print(line)
    return 0
