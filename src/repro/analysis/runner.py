"""simlint runner: discover files, execute rules, report findings.

``python -m repro.analysis [paths...]`` is the command-line entry; the
:func:`run_simlint` API is what the tests drive. Rules are pure functions
from parsed modules to findings, so adding a rule is adding one function
to :data:`RULE_SETS`.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from pathlib import Path
from typing import FrozenSet, List, Optional, Sequence

from .astutil import SourceModule, iter_python_files, load_module
from .contract import check_policy_contracts
from .determinism import check_determinism
from .findings import Finding, format_findings
from .hotpath import DEFAULT_REPLAY_PATH, check_hot_paths
from .kernelcov import check_kernels
from .registry_drift import check_registry

__all__ = ["SimlintConfig", "run_simlint", "main"]

RULE_FAMILIES = ("policy", "determinism", "hotpath", "registry", "kernels")


@dataclass
class SimlintConfig:
    """Tunable knobs: which functions are replay-path, which rule
    families run."""

    replay_path: FrozenSet[str] = DEFAULT_REPLAY_PATH
    families: Sequence[str] = field(default_factory=lambda: RULE_FAMILIES)


def _load_modules(paths: Sequence[Path]) -> tuple:
    modules: List[SourceModule] = []
    findings: List[Finding] = []
    for path in iter_python_files(paths):
        try:
            modules.append(load_module(path))
        except SyntaxError as exc:
            findings.append(Finding(
                rule="parse-error",
                path=str(path),
                line=exc.lineno or 1,
                message=f"file does not parse: {exc.msg}",
            ))
    return modules, findings


def run_simlint(
    paths: Sequence[Path],
    config: Optional[SimlintConfig] = None,
) -> List[Finding]:
    """Run every enabled rule over the given files/directories."""
    config = config if config is not None else SimlintConfig()
    modules, findings = _load_modules([Path(p) for p in paths])
    families = set(config.families)
    if "policy" in families:
        findings.extend(check_policy_contracts(modules))
    if "determinism" in families:
        findings.extend(check_determinism(modules))
    if "hotpath" in families:
        findings.extend(check_hot_paths(modules, config.replay_path))
    if "registry" in families:
        findings.extend(check_registry(modules))
    if "kernels" in families:
        findings.extend(check_kernels(modules))
    # Overlapping scope walks may observe one site twice.
    return sorted(set(findings), key=lambda f: (f.path, f.line, f.rule))


def _default_target() -> Path:
    """Lint the package this tool ships in when no path is given."""
    return Path(__file__).resolve().parents[1]


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="simlint: simulator-specific static analysis "
                    "(policy contracts, registry drift, determinism, "
                    "hot-path hygiene)",
    )
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--skip", action="append", default=[], choices=RULE_FAMILIES,
        metavar="FAMILY",
        help="disable a rule family (repeatable); families: "
             + ", ".join(RULE_FAMILIES),
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress the all-clear summary line",
    )
    args = parser.parse_args(argv)

    paths = args.paths if args.paths else [_default_target()]
    families = tuple(f for f in RULE_FAMILIES if f not in set(args.skip))
    findings = run_simlint(paths, SimlintConfig(families=families))
    if findings:
        print(format_findings(findings))
        print(f"simlint: {len(findings)} finding(s)")
        return 1
    if not args.quiet:
        scanned = len(iter_python_files([Path(p) for p in paths]))
        print(
            f"simlint: OK ({scanned} files, "
            f"families: {', '.join(families)})"
        )
    return 0
