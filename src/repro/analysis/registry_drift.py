"""Registry drift (simlint rule family ``registry``).

The policy registry is the single source of truth for sweeps, the CLI,
and the equivalence suite — a policy class that exists but is not
registered silently drops out of every comparison, and a registered name
that cannot construct fails only at sweep time. This rule imports the
registry and cross-checks it against the classes the AST pass found:

- ``registry-construct`` — every registered name must construct a
  :class:`ReplacementPolicy` from a synthetic
  :class:`~repro.policies.registry.PolicyContext` (oracle policies get a
  one-element next-use array, GRASP a token hot range).
- ``registry-unreachable`` — every concrete policy class defined under
  ``policies/`` must be instantiable through some registered name.
- ``registry-order`` — ``policy_names()`` must be sorted and duplicate
  free (stable sweep/report ordering).

Runs only when the scanned file set contains ``policies/registry.py``
(i.e. when linting the real package, not test fixtures).
"""

from __future__ import annotations

from typing import List, Optional, Set

from .astutil import ClassIndex, SourceModule
from .contract import ROOT_CLASS
from .findings import Finding

__all__ = ["check_registry", "registry_module_scanned"]


def registry_module_scanned(modules: List[SourceModule]) -> Optional[
    SourceModule
]:
    for module in modules:
        parts = module.path.parts
        if (
            module.path.name == "registry.py"
            and len(parts) >= 2
            and parts[-2] == "policies"
        ):
            return module
    return None


def _policy_classes_in_dir(
    modules: List[SourceModule], registry: SourceModule
) -> Set[str]:
    """Concrete ReplacementPolicy subclasses defined next to registry.py."""
    policies_dir = registry.path.parent
    local = [m for m in modules if m.path.parent == policies_dir]
    index = ClassIndex(local)
    return {
        name for name in index.classes
        if name != ROOT_CLASS
        and not name.startswith("_")
        and index.is_subclass_of(name, ROOT_CLASS)
    }


def check_registry(modules: List[SourceModule]) -> List[Finding]:
    registry_mod = registry_module_scanned(modules)
    if registry_mod is None:
        return []
    path = registry_mod.display_path
    findings: List[Finding] = []

    import numpy as np

    from ..policies import registry
    from ..policies.base import ReplacementPolicy

    names = registry.policy_names()
    if names != sorted(set(names)):
        findings.append(Finding(
            rule="registry-order", path=path, line=1,
            message="policy_names() must be sorted and duplicate-free, "
                    f"got {names}",
        ))

    # A context rich enough for every registered factory: oracle policies
    # get a trivially valid next-use array, GRASP a token hot range.
    covered: Set[str] = set()
    for name in names:
        ctx = registry.PolicyContext(
            next_use=np.zeros(1, dtype=np.int64),
            hot_range=(0, 1),
            warm_range=(1, 2),
        )
        try:
            policy = registry.make_policy(name, ctx)
        except Exception as exc:  # any factory failure is drift
            findings.append(Finding(
                rule="registry-construct", path=path, line=1,
                message=f"registered policy {name!r} failed to construct: "
                        f"{exc}",
            ))
            continue
        if not isinstance(policy, ReplacementPolicy):
            findings.append(Finding(
                rule="registry-construct", path=path, line=1,
                message=f"factory for {name!r} returned "
                        f"{type(policy).__name__}, not a ReplacementPolicy",
            ))
            continue
        if not isinstance(policy.name, str) or not policy.name:
            findings.append(Finding(
                rule="registry-construct", path=path, line=1,
                message=f"policy {name!r} constructs with an empty or "
                        "non-string .name",
            ))
        for klass in type(policy).__mro__:
            covered.add(klass.__name__)

    for class_name in sorted(
        _policy_classes_in_dir(modules, registry_mod) - covered
    ):
        findings.append(Finding(
            rule="registry-unreachable", path=path, line=1,
            message=f"policy class {class_name} is not reachable from any "
                    "registered factory; register it or prefix it with _",
        ))
    return findings
