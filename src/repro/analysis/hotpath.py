"""Hot-path hygiene (simlint rule family ``hotpath``).

The replay engine (PR 1) pays decode and private-level filtering once so
that the per-policy LLC loop touches only plain Python lists. These rules
keep the regressions the refactor removed from creeping back into the
functions on that path:

- ``hotpath-tolist`` — ``.tolist()`` inside a replay-path function: the
  decode phase (:func:`repro.memory.trace.decode_trace`) already owns
  array-to-list conversion; per-replay copies undo the sharing.
- ``hotpath-scalar-box`` — per-element ``int()``/``float()``/``bool()``
  calls inside a loop: boxing numpy scalars per access was the single
  biggest pre-PR-1 cost.
- ``hotpath-append`` — ``list.append`` inside a loop: per-access list
  growth belongs in the vectorized decode/filter phases.

Which functions count as replay-path is configuration
(:data:`DEFAULT_REPLAY_PATH`): module-level functions match by name,
methods by ``Class.method``.
"""

from __future__ import annotations

import ast
from typing import FrozenSet, List, Tuple

from .astutil import SourceModule, dotted_name, pragma_allows
from .findings import Finding

__all__ = [
    "DEFAULT_REPLAY_PATH",
    "check_hot_paths",
    "scan_replay_function",
]

#: The per-access functions of the replay fast path. ``Class.method``
#: for methods, bare names for module-level functions.
DEFAULT_REPLAY_PATH: FrozenSet[str] = frozenset({
    "SetAssociativeCache.access",
    "SetAssociativeCache.access_at",
    "SetAssociativeCache._fill",
    "SetAssociativeCache.install",
    "CacheHierarchy.access_line",
    "CacheHierarchy.access",
    "MultiCoreHierarchy.access",
    "BankedLLC.access",
    "ReplayEngine.run",
    "replay",
    "replay_with_prefetcher",
    "replay_multicore",
})

_BOXING_CALLS = {"int", "float", "bool"}


def _replay_functions(
    tree: ast.Module, replay_path: FrozenSet[str]
) -> List[Tuple[str, ast.FunctionDef]]:
    """(qualname, node) for every configured function in the module."""
    out: List[Tuple[str, ast.FunctionDef]] = []
    for node in tree.body:
        if isinstance(node, ast.FunctionDef) and node.name in replay_path:
            out.append((node.name, node))
        elif isinstance(node, ast.ClassDef):
            for stmt in node.body:
                if not isinstance(stmt, ast.FunctionDef):
                    continue
                qualname = f"{node.name}.{stmt.name}"
                if qualname in replay_path:
                    out.append((qualname, stmt))
    return out


def scan_replay_function(
    module: SourceModule,
    qualname: str,
    func: ast.FunctionDef,
    findings: List[Finding],
    loops_only: bool = False,
) -> None:
    """Emit hot-path findings for one function.

    With ``loops_only`` (the replay-kernel profile), ``.tolist()`` is
    tolerated at loop depth zero — kernels legitimately unbox arrays once
    in their preamble — and only flagged when it recurs per iteration.
    """
    def emit(rule: str, lineno: int, message: str) -> None:
        if not pragma_allows(module, rule, lineno):
            findings.append(Finding(
                rule=rule, path=module.display_path, line=lineno,
                message=message,
            ))

    def walk(node: ast.AST, loop_depth: int) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # nested defs are their own (cold) scope
            child_depth = loop_depth
            if isinstance(child, (ast.For, ast.While)):
                child_depth += 1
            if isinstance(child, ast.Call):
                name = dotted_name(child.func)
                if isinstance(child.func, ast.Attribute):
                    if child.func.attr == "tolist" and (
                        loop_depth > 0 or not loops_only
                    ):
                        emit(
                            "hotpath-tolist", child.lineno,
                            f"{qualname} calls .tolist() "
                            + ("inside its replay loop; unbox once in "
                               "the kernel preamble instead"
                               if loops_only else
                               "; the decoded trace already provides "
                               "shared lists"),
                        )
                    elif child.func.attr == "append" and loop_depth > 0:
                        emit(
                            "hotpath-append", child.lineno,
                            f"{qualname} appends per iteration inside its "
                            "replay loop; build arrays in the decode/"
                            "filter phase instead",
                        )
                elif (
                    name in _BOXING_CALLS and loop_depth > 0
                ):
                    emit(
                        "hotpath-scalar-box", child.lineno,
                        f"{qualname} boxes a scalar with {name}() inside "
                        "its replay loop; convert once during decode",
                    )
            walk(child, child_depth)

    walk(func, 0)


def check_hot_paths(
    modules: List[SourceModule],
    replay_path: FrozenSet[str] = DEFAULT_REPLAY_PATH,
) -> List[Finding]:
    findings: List[Finding] = []
    for module in modules:
        for qualname, func in _replay_functions(module.tree, replay_path):
            scan_replay_function(module, qualname, func, findings)
    return findings
