"""Minimal C declaration/constant extractor for the ``abi`` rules.

``kernels.c`` is deliberately trivial C — header-free signatures over
``i64``/``u8``/``double`` scalars and pointers, object-like ``#define``
constants, no structs, no function pointers — so a dependency-free
tokenizer covers it completely. This module parses that dialect into a
small IR (:class:`CFunction` / :class:`CParam` / :class:`CDefine`) plus
the facts the hygiene rule needs (call sites, file-scope objects,
``for``-loop bounds, includes), without ever invoking a compiler: the
``abi`` family must run — and catch drift — on machines with no
toolchain at all.

Anything outside the dialect (an unrecognized construct, a ``#define``
value that is not a constant integer expression) is reported as a parse
error rather than guessed at, so extending ``kernels.c`` beyond what the
checker understands is itself a lint finding (``abi-parse``), never a
silent hole in coverage.

Suppression mirrors the Python side: a C comment containing
``simlint: allow[rule]`` applies to the lines it spans, and a comment
standing alone on its line(s) covers the following line.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

__all__ = [
    "CParam",
    "CFunction",
    "CDefine",
    "CSource",
    "parse_c_file",
    "parse_c_source",
]

#: Base-type spellings -> the normalized kind the ctypes table uses.
TYPE_KINDS = {
    "i64": "i64",
    "int64_t": "i64",
    "u8": "u8",
    "uint8_t": "u8",
    "double": "f64",
    "void": "void",
}

#: Tokens that may appear in a cast or declaration but are not names.
_QUALIFIERS = frozenset({"const", "static", "signed", "unsigned"})

_KEYWORDS = frozenset({
    "if", "else", "for", "while", "do", "switch", "case", "default",
    "return", "break", "continue", "sizeof", "goto", "typedef",
    "struct", "union", "enum", "static", "const",
})

_PRAGMA = re.compile(r"simlint:\s*allow\[([^\]]*)\]")

_TOKEN = re.compile(
    r"(?P<comment>/\*.*?\*/|//[^\n]*)"
    r"|(?P<directive>\#(?:[^\n\\]+|\\\n|\\)*)"
    r"|(?P<num>0[xX][0-9a-fA-F]+[uUlL]*|\d+\.\d+|\d+[uUlL]*)"
    r"|(?P<id>[A-Za-z_]\w*)"
    r"|(?P<str>\"(?:[^\"\\]|\\.)*\"|'(?:[^'\\]|\\.)*')"
    r"|(?P<punct><<|>>|&&|\|\||[<>!=+\-*/%&|^]=|\+\+|--|->"
    r"|[()\[\]{},;:?~<>=+\-*/%&|^.!])"
    r"|(?P<ws>\s+)",
    re.DOTALL,
)

_DEFINE = re.compile(
    r"#\s*define\s+(?P<name>[A-Za-z_]\w*)(?P<fnlike>\()?", re.ASCII
)

_INCLUDE = re.compile(r"#\s*include\s*[<\"]([^>\"]+)[>\"]")


@dataclass(frozen=True)
class CParam:
    """One normalized parameter of a C function."""

    name: str
    kind: str          # "i64" | "u8" | "f64" | "void" | "other"
    pointer: bool
    const: bool


@dataclass(frozen=True)
class CFunction:
    """One file-scope function definition (or prototype)."""

    name: str
    line: int
    static: bool
    return_kind: str
    params: Tuple[CParam, ...]
    definition: bool


@dataclass(frozen=True)
class CDefine:
    """One ``#define``; ``value`` is None for function-like macros."""

    name: str
    line: int
    value: Optional[int]
    function_like: bool


@dataclass
class CSource:
    """Everything the ``abi`` rules need to know about one C file."""

    path: str
    functions: List[CFunction] = field(default_factory=list)
    defines: List[CDefine] = field(default_factory=list)
    includes: List[Tuple[str, int]] = field(default_factory=list)
    #: (callee, line) for every call expression inside a body or macro.
    calls: List[Tuple[str, int]] = field(default_factory=list)
    #: (name, line, is_const) for every file-scope object definition.
    file_globals: List[Tuple[str, int, bool]] = field(default_factory=list)
    #: (line, literal) for every numeric literal in a for-loop condition.
    literal_loop_bounds: List[Tuple[int, str]] = field(default_factory=list)
    errors: List[Tuple[int, str]] = field(default_factory=list)
    #: line -> allow-pragma tokens active on that line.
    allowed: Dict[int, FrozenSet[str]] = field(default_factory=dict)
    #: one (line, tokens) entry per pragma *comment* (no next-line
    #: propagation) — what pragma validation iterates.
    pragma_sites: List[Tuple[int, FrozenSet[str]]] = field(
        default_factory=list
    )

    def allows(self, line: int, rule: str) -> bool:
        """Same semantics as :func:`repro.analysis.astutil.pragma_allows`:
        exact rule id, family prefix, or ``*``."""
        tokens = self.allowed.get(line)
        if not tokens:
            return False
        for token in tokens:
            if token == "*" or token == rule:
                return True
            if rule.startswith(token + "-"):
                return True
        return False

    def function(self, name: str) -> Optional[CFunction]:
        for fn in self.functions:
            if fn.name == name and fn.definition:
                return fn
        return None

    def define_map(self) -> Dict[str, CDefine]:
        return {d.name: d for d in self.defines if not d.function_like}


class _Tok:
    __slots__ = ("kind", "text", "line")

    def __init__(self, kind: str, text: str, line: int) -> None:
        self.kind = kind
        self.text = text
        self.line = line

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"_Tok({self.kind}, {self.text!r}, {self.line})"


def _scan(text: str, first_line: int = 1) -> Tuple[
    List[_Tok], List[_Tok], List[_Tok], List[Tuple[int, str]]
]:
    """Split raw C into (code tokens, comments, directives, errors)."""
    tokens: List[_Tok] = []
    comments: List[_Tok] = []
    directives: List[_Tok] = []
    errors: List[Tuple[int, str]] = []
    line = first_line
    pos = 0
    while pos < len(text):
        match = _TOKEN.match(text, pos)
        if match is None:
            errors.append((line, f"unrecognized character {text[pos]!r}"))
            pos += 1
            continue
        kind = match.lastgroup or "ws"
        value = match.group()
        if kind == "comment":
            comments.append(_Tok(kind, value, line))
        elif kind == "directive":
            directives.append(_Tok(kind, value, line))
        elif kind != "ws":
            tokens.append(_Tok(kind, value, line))
        line += value.count("\n")
        pos = match.end()
    return tokens, comments, directives, errors


# ----------------------------------------------------------------------
# #define value evaluation
# ----------------------------------------------------------------------

_INT_LITERAL = re.compile(r"(0[xX][0-9a-fA-F]+|\d+)[uUlL]*\Z")
_VALUE_OPS = frozenset(
    ["<<", ">>", "|", "&", "^", "+", "-", "*", "%", "(", ")", "~"]
)


def _eval_define(tokens: Sequence[_Tok]) -> Optional[int]:
    """Evaluate a constant integer expression, or None.

    Casts to known integer types are dropped (``((i64)1 << 40)``); the
    surviving tokens must be integer literals, arithmetic/bit operators,
    or parentheses — then the expression is evaluated after a strict
    whitelist pass (so ``eval`` only ever sees integer arithmetic).
    Division is excluded: C truncation and Python floor disagree on
    negatives, and no shared constant needs it.
    """
    texts: List[str] = []
    i = 0
    while i < len(tokens):
        if (
            tokens[i].text == "("
            and i + 2 < len(tokens)
            and tokens[i + 1].kind == "id"
            and tokens[i + 1].text in TYPE_KINDS
            and tokens[i + 2].text == ")"
        ):
            i += 3
            continue
        texts.append(tokens[i].text)
        i += 1
    if not texts:
        return None
    cleaned: List[str] = []
    for text in texts:
        literal = _INT_LITERAL.match(text)
        if literal:
            cleaned.append(literal.group(1))
        elif text in _VALUE_OPS:
            cleaned.append(text)
        else:
            return None
    try:
        value = eval(  # noqa: S307 - whitelisted integer tokens only
            " ".join(cleaned), {"__builtins__": {}}, {}
        )
    except (SyntaxError, ValueError, ZeroDivisionError, TypeError):
        return None
    return value if isinstance(value, int) else None


def _parse_directives(
    directives: Sequence[_Tok], out: CSource
) -> List[_Tok]:
    """Parse includes/defines; returns comments embedded in directive
    lines (the directive token runs to end-of-line, so a trailing
    ``/* simlint: allow[...] */`` on a ``#define`` lands here, not in
    the top-level comment stream)."""
    embedded: List[_Tok] = []
    for tok in directives:
        include = _INCLUDE.match(tok.text)
        if include:
            out.includes.append((include.group(1), tok.line))
            continue
        define = _DEFINE.match(tok.text)
        if define is None:
            continue
        name = define.group("name")
        if define.group("fnlike"):
            out.defines.append(CDefine(name, tok.line, None, True))
            # The replacement text still gets the body fact collectors:
            # a banned call or literal loop bound hiding in a macro is
            # the same hygiene violation as one in a function body.
            body = tok.text[define.end():].replace("\\\n", " \n")
            tokens, comments, _, errors = _scan(body, tok.line)
            embedded.extend(comments)
            out.errors.extend(errors)
            _collect_body_facts(tokens, out)
            continue
        value_text = tok.text[define.end():].replace("\\\n", " \n")
        value_tokens, comments, _, errors = _scan(value_text, tok.line)
        embedded.extend(comments)
        out.errors.extend(errors)
        value = _eval_define(value_tokens)
        if value is None:
            out.errors.append((
                tok.line,
                f"#define {name}: not a constant integer expression",
            ))
        out.defines.append(CDefine(name, tok.line, value, False))
    return embedded


# ----------------------------------------------------------------------
# Pragmas
# ----------------------------------------------------------------------

def _collect_pragmas(text: str, comments: Sequence[_Tok], out: CSource) -> None:
    lines = text.split("\n")

    def _is_blank(line_no: int, before: str, after: str) -> bool:
        raw = lines[line_no - 1] if 0 < line_no <= len(lines) else ""
        head = raw.split(before, 1)[0] if before in raw else ""
        tail = raw.rsplit(after, 1)[-1] if after in raw else ""
        return not head.strip() and not tail.strip()

    for comment in comments:
        match = _PRAGMA.search(comment.text)
        if not match:
            continue
        tokens = frozenset(
            token.strip()
            for token in match.group(1).split(",")
            if token.strip()
        )
        if not tokens:
            continue
        start = comment.line
        end = start + comment.text.count("\n")
        covered = set(range(start, end + 1))
        first = comment.text.split("\n", 1)[0]
        last = comment.text.rsplit("\n", 1)[-1]
        if _is_blank(start, first, "*/") and _is_blank(end, "/*", last):
            # Comment stands alone: it covers the following line.
            covered.add(end + 1)
        out.pragma_sites.append((start, tokens))
        for line in sorted(covered):
            merged = out.allowed.get(line, frozenset()) | tokens
            out.allowed[line] = merged


# ----------------------------------------------------------------------
# Declarations and body facts
# ----------------------------------------------------------------------

def _parse_param(tokens: Sequence[_Tok]) -> Optional[CParam]:
    if not tokens:
        return None
    texts = [t.text for t in tokens]
    if texts == ["void"]:
        return None
    kind = "other"
    for text in texts:
        if text in TYPE_KINDS:
            kind = TYPE_KINDS[text]
            break
    name = ""
    for tok in reversed(tokens):
        if tok.kind == "id" and tok.text not in TYPE_KINDS \
                and tok.text not in _QUALIFIERS:
            name = tok.text
            break
    return CParam(
        name=name,
        kind=kind,
        pointer="*" in texts,
        const="const" in texts,
    )


def _parse_function(header: Sequence[_Tok], definition: bool,
                    out: CSource) -> None:
    open_idx = next(
        i for i, tok in enumerate(header) if tok.text == "("
    )
    if open_idx == 0 or header[open_idx - 1].kind != "id":
        out.errors.append(
            (header[0].line, "unrecognized file-scope declaration")
        )
        return
    name_tok = header[open_idx - 1]
    head = [t.text for t in header[:open_idx - 1]]
    return_kind = "other"
    for text in head:
        if text in TYPE_KINDS:
            return_kind = TYPE_KINDS[text]
            break
    # Split the parameter list on top-level commas.
    params: List[CParam] = []
    depth = 0
    current: List[_Tok] = []
    for tok in header[open_idx:]:
        if tok.text == "(":
            depth += 1
            if depth == 1:
                continue
        elif tok.text == ")":
            depth -= 1
            if depth == 0:
                break
        if depth == 1 and tok.text == ",":
            param = _parse_param(current)
            if param:
                params.append(param)
            current = []
        else:
            current.append(tok)
    param = _parse_param(current)
    if param:
        params.append(param)
    out.functions.append(CFunction(
        name=name_tok.text,
        line=name_tok.line,
        static="static" in head,
        return_kind=return_kind,
        params=tuple(params),
        definition=definition,
    ))


def _handle_statement(stmt: Sequence[_Tok], out: CSource) -> None:
    """A top-level statement terminated by ``;`` (not a function body)."""
    if not stmt:
        return
    texts = [t.text for t in stmt]
    if texts[0] in ("typedef", "struct", "union", "enum"):
        return
    if "(" in texts:
        _parse_function(stmt, definition=False, out=out)
        return
    # File-scope object definition.
    name = ""
    for tok in stmt:
        if tok.kind == "id" and tok.text not in TYPE_KINDS \
                and tok.text not in _QUALIFIERS:
            name = tok.text
            break
    out.file_globals.append((name, stmt[0].line, "const" in texts))


def _collect_body_facts(tokens: Sequence[_Tok], out: CSource) -> None:
    """Call sites and for-loop bound literals, at any nesting depth."""
    for i, tok in enumerate(tokens):
        nxt = tokens[i + 1] if i + 1 < len(tokens) else None
        if (
            tok.kind == "id"
            and tok.text not in _KEYWORDS
            and tok.text not in TYPE_KINDS
            and nxt is not None
            and nxt.text == "("
        ):
            prev = tokens[i - 1] if i > 0 else None
            # `(i64) name(...)`-style casts never occur, but a previous
            # type token would mean a local function-pointer decl; the
            # dialect has none, so any id(… is a call or macro use.
            if prev is None or prev.text != "#":
                out.calls.append((tok.text, tok.line))
        if tok.text == "for" and nxt is not None and nxt.text == "(":
            depth = 0
            semis = 0
            for inner in tokens[i + 1:]:
                if inner.text == "(":
                    depth += 1
                elif inner.text == ")":
                    depth -= 1
                    if depth == 0:
                        break
                elif inner.text == ";" and depth == 1:
                    semis += 1
                elif semis == 1 and inner.kind == "num":
                    # Numeric literal in the loop *condition*.
                    out.literal_loop_bounds.append((inner.line, inner.text))


def _parse_top_level(tokens: Sequence[_Tok], out: CSource) -> None:
    stmt: List[_Tok] = []
    i = 0
    n = len(tokens)
    while i < n:
        tok = tokens[i]
        if tok.text == ";":
            _handle_statement(stmt, out)
            stmt = []
            i += 1
        elif tok.text == "{":
            if any(t.text == "(" for t in stmt):
                _parse_function(stmt, definition=True, out=out)
                depth = 1
                i += 1
                body_start = i
                while i < n and depth:
                    if tokens[i].text == "{":
                        depth += 1
                    elif tokens[i].text == "}":
                        depth -= 1
                    i += 1
                _collect_body_facts(tokens[body_start:i - 1], out)
                stmt = []
            else:
                # Brace initializer: swallow it into the statement.
                depth = 1
                stmt.append(tok)
                i += 1
                while i < n and depth:
                    if tokens[i].text == "{":
                        depth += 1
                    elif tokens[i].text == "}":
                        depth -= 1
                    stmt.append(tokens[i])
                    i += 1
        else:
            stmt.append(tok)
            i += 1
    if stmt:
        out.errors.append(
            (stmt[0].line, "unterminated file-scope declaration")
        )


def parse_c_source(text: str, path: str = "<string>") -> CSource:
    """Parse C source text into the :class:`CSource` IR."""
    out = CSource(path=path)
    tokens, comments, directives, errors = _scan(text)
    out.errors.extend(errors)
    embedded = _parse_directives(directives, out)
    _collect_pragmas(text, comments + embedded, out)
    _parse_top_level(tokens, out)
    return out


def parse_c_file(path: Path) -> CSource:
    """Parse a C file; I/O errors become ``abi-parse``-able errors."""
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        out = CSource(path=str(path))
        out.errors.append((1, f"cannot read {path.name}: {exc}"))
        return out
    return parse_c_source(text, str(path))
