"""Shared AST plumbing for the simlint rules.

Each scanned file is parsed once into a :class:`SourceModule` (AST plus
the per-line suppression pragmas); the rules walk the shared trees. The
class index resolves inheritance *by name across the scanned file set* —
simlint is a project-local linter, so policies subclassing each other
across ``src/repro/policies/`` modules resolve without imports.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set

__all__ = [
    "SourceModule",
    "ClassInfo",
    "ClassIndex",
    "load_module",
    "iter_python_files",
    "dotted_name",
    "pragma_allows",
]

#: A ``simlint: allow`` comment (rule names in square brackets,
#: comma-separated) suppresses the named rules on its line — or, when
#: the pragma stands alone, on the following line.
_PRAGMA = re.compile(r"#\s*simlint:\s*allow\[([^\]]*)\]")
_PRAGMA_ONLY = re.compile(r"^\s*#\s*simlint:\s*allow\[[^\]]*\]\s*$")


@dataclass
class SourceModule:
    """One parsed source file plus its suppression pragmas."""

    path: Path
    source: str
    tree: ast.Module
    #: line number -> rule tokens allowed on that line ("*" allows all).
    allowed: Dict[int, Set[str]] = field(default_factory=dict)

    @property
    def display_path(self) -> str:
        return str(self.path)


def load_module(path: Path) -> SourceModule:
    """Parse one file; raises SyntaxError on unparsable sources."""
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    allowed: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _PRAGMA.search(line)
        if not match:
            continue
        tokens = {
            token.strip() for token in match.group(1).split(",")
            if token.strip()
        }
        if not tokens:
            continue
        allowed.setdefault(lineno, set()).update(tokens)
        if _PRAGMA_ONLY.match(line):
            # A standalone pragma comment covers the next line too.
            allowed.setdefault(lineno + 1, set()).update(tokens)
    return SourceModule(path=path, source=source, tree=tree, allowed=allowed)


def pragma_allows(module: SourceModule, rule: str, lineno: int) -> bool:
    """Is ``rule`` suppressed at ``lineno``?

    A token matches the exact rule id, a rule-family prefix
    (``determinism`` covers ``determinism-time``), or ``*`` for all.
    """
    tokens = module.allowed.get(lineno)
    if not tokens:
        return False
    for token in tokens:
        if token == "*" or token == rule or rule.startswith(token + "-"):
            return True
    return False


def iter_python_files(paths: Sequence[Path]) -> List[Path]:
    """All ``.py`` files under the given files/directories, de-duplicated
    and sorted (deterministic report order)."""
    seen: Set[Path] = set()
    for path in paths:
        path = Path(path)
        if path.is_dir():
            seen.update(p for p in path.rglob("*.py"))
        elif path.suffix == ".py":
            seen.add(path)
    return sorted(seen)


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for Name/Attribute chains, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


# ----------------------------------------------------------------------
# Class indexing (policy-contract rule support)
# ----------------------------------------------------------------------


@dataclass
class ClassInfo:
    """AST facts about one class definition."""

    name: str
    module: SourceModule
    node: ast.ClassDef
    bases: List[str]
    methods: Dict[str, ast.FunctionDef]
    #: class-body ``name = value`` assignments.
    class_assigns: Dict[str, ast.expr]

    @property
    def lineno(self) -> int:
        return self.node.lineno


class ClassIndex:
    """All classes across the scanned modules, inheritance by name."""

    def __init__(self, modules: Iterable[SourceModule]) -> None:
        self.classes: Dict[str, ClassInfo] = {}
        for module in modules:
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.ClassDef):
                    continue
                bases = []
                for base in node.bases:
                    base_name = dotted_name(base)
                    if base_name is not None:
                        bases.append(base_name.rsplit(".", 1)[-1])
                methods: Dict[str, ast.FunctionDef] = {}
                class_assigns: Dict[str, ast.expr] = {}
                for stmt in node.body:
                    if isinstance(
                        stmt, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ) and isinstance(stmt, ast.FunctionDef):
                        methods[stmt.name] = stmt
                    elif isinstance(stmt, ast.Assign):
                        for target in stmt.targets:
                            if isinstance(target, ast.Name):
                                class_assigns[target.id] = stmt.value
                    elif isinstance(stmt, ast.AnnAssign):
                        if (
                            isinstance(stmt.target, ast.Name)
                            and stmt.value is not None
                        ):
                            class_assigns[stmt.target.id] = stmt.value
                # First definition wins; duplicate class names across
                # modules are rare and the contract rule reports on the
                # one it indexed.
                self.classes.setdefault(
                    node.name,
                    ClassInfo(
                        name=node.name,
                        module=module,
                        node=node,
                        bases=bases,
                        methods=methods,
                        class_assigns=class_assigns,
                    ),
                )

    def ancestors(self, name: str) -> List[ClassInfo]:
        """Known ancestors of ``name`` in MRO-ish order (no duplicates)."""
        out: List[ClassInfo] = []
        seen: Set[str] = {name}
        queue = list(self.classes[name].bases) if name in self.classes else []
        while queue:
            base = queue.pop(0)
            if base in seen:
                continue
            seen.add(base)
            info = self.classes.get(base)
            if info is None:
                continue
            out.append(info)
            queue.extend(info.bases)
        return out

    def ancestor_names(self, name: str) -> Set[str]:
        """Every base name reachable from ``name``, including bases whose
        definitions were not scanned (e.g. the imported root class)."""
        seen: Set[str] = set()
        queue = list(self.classes[name].bases) if name in self.classes else []
        while queue:
            base = queue.pop(0)
            if base in seen:
                continue
            seen.add(base)
            info = self.classes.get(base)
            if info is not None:
                queue.extend(info.bases)
        return seen

    def is_subclass_of(self, name: str, root: str) -> bool:
        return root in self.ancestor_names(name)
