"""Replay-kernel coverage and hygiene (simlint rule family ``kernels``).

The replay-kernel dispatch (PR 3) is string-keyed: policies advertise a
kernel name via ``replay_kernel()`` and :mod:`repro.sim.kernels` maps
names to implementations through ``KERNEL_TABLE``. Both halves can drift
independently — a renamed kernel or a typo'd advertisement degrades to
the generic path (or a runtime ``SimulationError``) without any import
failing. These rules catch that statically:

- ``kernel-resolve`` — every kernel name the policy registry advertises
  must resolve to a *callable* entry in ``KERNEL_TABLE``. Runs only when
  the scanned set contains the real ``sim/kernels.py`` (like the
  registry rules, it imports the package under lint).
- ``kernel-popt-coverage`` — the paper's own policies (T-OPT and P-OPT,
  ``repro.popt``) must stay kernel-covered: both classes advertised in
  the registry with names ``KERNEL_TABLE`` implements. Runs when the
  scanned set contains the real ``popt/topt.py`` or ``popt/policy.py``
  — dropping either entry would silently demote every headline sweep
  to the generic path.
- hot-path hygiene — every top-level ``kernel_*`` function in a module
  named ``kernels.py`` is scanned with the
  :mod:`~repro.analysis.hotpath` rules in *loops-only* mode: kernels may
  unbox arrays (``.tolist()``) once in their preamble, but
  per-iteration boxing, list growth, or ``.tolist()`` inside the replay
  loops gets flagged (suppress deliberate cases with
  ``# simlint: allow[hotpath-...]``). The filename scope keeps
  similarly-named helpers elsewhere (e.g. ``kernel_throughput_sweep``)
  out of the kernel profile; test fixtures opt in by using the filename.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from .astutil import SourceModule
from .findings import Finding
from .hotpath import scan_replay_function

__all__ = ["check_kernels", "kernels_module_scanned"]

KERNEL_PREFIX = "kernel_"


def kernels_module_scanned(modules: List[SourceModule]) -> Optional[
    SourceModule
]:
    for module in modules:
        parts = module.path.parts
        if (
            module.path.name == "kernels.py"
            and len(parts) >= 2
            and parts[-2] == "sim"
        ):
            return module
    return None


def popt_module_scanned(modules: List[SourceModule]) -> Optional[
    SourceModule
]:
    for module in modules:
        parts = module.path.parts
        if (
            module.path.name in ("topt.py", "policy.py")
            and len(parts) >= 2
            and parts[-2] == "popt"
        ):
            return module
    return None


def _check_popt_coverage(path: str) -> List[Finding]:
    """The next-ref policies must stay wired to their replay kernels."""
    findings: List[Finding] = []

    from ..policies.registry import replay_kernels
    from ..popt.policy import POPT
    from ..popt.topt import TOPT
    from ..sim.kernels import KERNEL_TABLE

    advertised = replay_kernels()
    for policy_type in (TOPT, POPT):
        name = advertised.get(policy_type)
        if name is None:
            findings.append(Finding(
                rule="kernel-popt-coverage", path=path, line=1,
                message=f"{policy_type.__name__} is not in the replay-kernel "
                        "registry; the headline T-OPT/P-OPT sweeps would "
                        "silently replay through the generic path",
            ))
        elif name not in KERNEL_TABLE:
            findings.append(Finding(
                rule="kernel-popt-coverage", path=path, line=1,
                message=f"{policy_type.__name__} advertises replay kernel "
                        f"{name!r}, which KERNEL_TABLE does not implement "
                        f"(has {sorted(KERNEL_TABLE)})",
            ))
    return findings


def _check_resolution(path: str) -> List[Finding]:
    """Import-and-cross-check the advertised-name -> kernel-fn mapping."""
    findings: List[Finding] = []

    from ..policies.registry import replay_kernels
    from ..sim.kernels import KERNEL_TABLE

    for name, fn in sorted(KERNEL_TABLE.items()):
        if not callable(fn):
            findings.append(Finding(
                rule="kernel-resolve", path=path, line=1,
                message=f"KERNEL_TABLE[{name!r}] is not callable "
                        f"({type(fn).__name__})",
            ))

    advertised = replay_kernels()
    for policy_type, name in sorted(
        advertised.items(), key=lambda item: item[0].__name__
    ):
        if name not in KERNEL_TABLE:
            findings.append(Finding(
                rule="kernel-resolve", path=path, line=1,
                message=f"policy class {policy_type.__name__} advertises "
                        f"replay kernel {name!r}, which KERNEL_TABLE does "
                        f"not implement (has {sorted(KERNEL_TABLE)})",
            ))
    return findings


def check_kernels(modules: List[SourceModule]) -> List[Finding]:
    findings: List[Finding] = []
    # Hygiene: top-level kernel_* functions in any kernels.py (the real
    # module or a fixture mirroring its name).
    for module in modules:
        if module.path.name != "kernels.py":
            continue
        for node in module.tree.body:
            if isinstance(node, ast.FunctionDef) and node.name.startswith(
                KERNEL_PREFIX
            ):
                scan_replay_function(
                    module, node.name, node, findings, loops_only=True
                )
    kernels_mod = kernels_module_scanned(modules)
    if kernels_mod is not None:
        findings.extend(_check_resolution(kernels_mod.display_path))
    popt_mod = popt_module_scanned(modules)
    if popt_mod is not None:
        findings.extend(_check_popt_coverage(popt_mod.display_path))
    return findings
