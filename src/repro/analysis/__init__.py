"""simlint: simulator-specific static analysis (``python -m
repro.analysis``).

The replay engine made policy sweeps fast by caching work across
policies; that sharing is only sound while every policy honors the
:class:`~repro.policies.base.ReplacementPolicy` contract and the replay
paths stay deterministic and vectorized. simlint checks those properties
*statically* — every CI run, not just when an equivalence test happens to
cover the broken combination. Rule families:

- ``policy``       — ReplacementPolicy contract conformance
- ``registry``     — policy registry drift (unreachable/broken names)
- ``determinism``  — unseeded RNGs, wall-clock reads, set-order
- ``hotpath``      — per-access work creeping back into replay loops
- ``kernels``      — replay-kernel dispatch coverage and loop hygiene
- ``abi``          — cross-language kernel ABI and constant parity
  (``kernels.c`` vs ``ckernels._SIGNATURES`` vs ``kernels.py`` call
  sites, plus the shared-constants registry and the C dialect rules)
- ``spec-coverage`` — experiment specs vs the registries they name
- ``par``          — worker purity for process-parallel sweep workers
- ``dtype``        — flow-based numpy dtype/width inference against the
  declared capacity contracts (``sim/constants.py:WIDTH_CONTRACTS``)
  and the C kernel boundary

See :mod:`repro.analysis.runner` for the CLI and
``# simlint: allow[rule]`` pragmas for intentional exceptions (the same
pragma works in C comments for ``kernels.c`` findings; pragmas naming
unknown rules are themselves flagged).
"""

from .findings import Finding, format_findings
from .hotpath import DEFAULT_REPLAY_PATH
from .runner import KNOWN_RULES, RULE_FAMILIES, SimlintConfig, main, run_simlint

__all__ = [
    "Finding",
    "format_findings",
    "run_simlint",
    "SimlintConfig",
    "DEFAULT_REPLAY_PATH",
    "RULE_FAMILIES",
    "KNOWN_RULES",
    "main",
]
