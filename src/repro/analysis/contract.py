"""Policy-contract conformance (simlint rule family ``policy``).

The :class:`~repro.policies.base.ReplacementPolicy` contract that every
policy must honor for the replay engine's caching to be sound:

- ``policy-missing-victim`` — every concrete subclass provides
  ``choose_victim`` (itself or via a scanned ancestor other than the
  root, whose implementation only raises).
- ``policy-name-missing`` / ``policy-name-duplicate`` — every concrete
  subclass carries a class-level string ``name`` and no two concrete
  policies share one (duplicate names silently merge rows in reports and
  sweeps).
- ``policy-init-set-state`` — per-set metadata must be built in
  ``reset()`` (called from ``bind``), never in ``__init__``: at
  construction time ``num_sets``/``num_ways`` are still 0, and state
  built there goes stale when the policy is re-bound to a different
  geometry.
- ``policy-mutable-class-default`` — no mutable class-level defaults
  (lists/dicts/sets): instances bound to different caches would share
  replacement metadata.

Classes whose names start with ``_`` are treated as abstract bases and
exempt from the concrete-class checks (but still checked for mutable
class-level defaults).
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Tuple

from .astutil import ClassIndex, ClassInfo, SourceModule, dotted_name, \
    pragma_allows
from .findings import Finding

__all__ = ["check_policy_contracts"]

ROOT_CLASS = "ReplacementPolicy"

_MUTABLE_CALLS = {
    "list", "dict", "set", "defaultdict", "OrderedDict", "Counter", "deque",
}
_MUTABLE_NODES = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
                  ast.SetComp)


def _is_mutable_default(value: ast.expr) -> bool:
    if isinstance(value, _MUTABLE_NODES):
        return True
    if isinstance(value, ast.Call):
        name = dotted_name(value.func)
        if name is not None and name.rsplit(".", 1)[-1] in _MUTABLE_CALLS:
            return True
    return False


def _class_name_value(
    index: ClassIndex, info: ClassInfo
) -> Optional[Tuple[str, ClassInfo]]:
    """The class-level ``name`` string, own or inherited (root excluded)."""
    chain = [info] + [
        ancestor for ancestor in index.ancestors(info.name)
        if ancestor.name != ROOT_CLASS
    ]
    for owner in chain:
        value = owner.class_assigns.get("name")
        if value is None:
            continue
        if isinstance(value, ast.Constant) and isinstance(value.value, str):
            return value.value, owner
        return None  # dynamic name expressions: treated as missing
    return None


def _self_geometry_uses(node: ast.FunctionDef) -> List[ast.Attribute]:
    """References to ``self.num_sets`` / ``self.num_ways`` inside a body."""
    uses = []
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Attribute)
            and sub.attr in ("num_sets", "num_ways")
            and isinstance(sub.value, ast.Name)
            and sub.value.id == "self"
        ):
            uses.append(sub)
    return uses


def check_policy_contracts(
    modules: List[SourceModule],
) -> List[Finding]:
    index = ClassIndex(modules)
    policy_classes = [
        info for name, info in sorted(index.classes.items())
        if name != ROOT_CLASS and index.is_subclass_of(name, ROOT_CLASS)
    ]
    findings: List[Finding] = []
    names_seen: Dict[str, ClassInfo] = {}

    for info in policy_classes:
        module = info.module
        concrete = not info.name.startswith("_")

        # Mutable class-level defaults (all policy classes).
        for attr, value in info.class_assigns.items():
            if _is_mutable_default(value):
                rule = "policy-mutable-class-default"
                if not pragma_allows(module, rule, value.lineno):
                    findings.append(Finding(
                        rule=rule,
                        path=module.display_path,
                        line=value.lineno,
                        message=(
                            f"{info.name}.{attr} is a mutable class-level "
                            "default; instances share it across bind()s — "
                            "build it in reset() instead"
                        ),
                    ))

        # Per-set state in __init__ (all policy classes: abstract bases
        # passing broken state to subclasses are just as wrong).
        init = info.methods.get("__init__")
        if init is not None:
            for use in _self_geometry_uses(init):
                rule = "policy-init-set-state"
                if pragma_allows(module, rule, use.lineno):
                    continue
                findings.append(Finding(
                    rule=rule,
                    path=module.display_path,
                    line=use.lineno,
                    message=(
                        f"{info.name}.__init__ reads self.{use.attr}, which "
                        "is 0 until bind(); build per-set state in reset()"
                    ),
                ))

        if not concrete:
            continue

        # choose_victim must exist outside the root class.
        has_victim = "choose_victim" in info.methods or any(
            "choose_victim" in ancestor.methods
            for ancestor in index.ancestors(info.name)
            if ancestor.name != ROOT_CLASS
        )
        if not has_victim:
            rule = "policy-missing-victim"
            if not pragma_allows(module, rule, info.lineno):
                findings.append(Finding(
                    rule=rule,
                    path=module.display_path,
                    line=info.lineno,
                    message=(
                        f"{info.name} never overrides choose_victim; the "
                        "root implementation raises at the first full set"
                    ),
                ))

        # Unique class-level string name.
        resolved = _class_name_value(index, info)
        if resolved is None:
            rule = "policy-name-missing"
            if not pragma_allows(module, rule, info.lineno):
                findings.append(Finding(
                    rule=rule,
                    path=module.display_path,
                    line=info.lineno,
                    message=(
                        f"{info.name} has no class-level string `name` "
                        "(reports and sweep tables key on it)"
                    ),
                ))
            continue
        value, owner = resolved
        previous = names_seen.get(value)
        if previous is not None:
            # Inheriting the parent's name without overriding it is the
            # duplicate case that silently merges results.
            rule = "policy-name-duplicate"
            if not pragma_allows(module, rule, info.lineno):
                findings.append(Finding(
                    rule=rule,
                    path=module.display_path,
                    line=info.lineno,
                    message=(
                        f"{info.name} and {previous.name} both report "
                        f"name={value!r}; policy names must be unique"
                    ),
                ))
        else:
            names_seen[value] = info
    return findings
