"""``abi`` rule family: cross-language kernel ABI and constant parity.

The compiled replay path spans three layers that must agree exactly:

1. ``kernels.c`` — the C definitions (ground truth for the compiled ABI),
2. ``ckernels.py`` — the ctypes ``_SIGNATURES`` table that types them,
3. ``kernels.py`` — the ``lib().k_*`` call sites that invoke them.

A drift between any two (a widened C argument, a reordered ctypes
parameter, a dropped call argument) does not crash: ctypes happily
marshals the wrong shape and the kernel reads garbage — often
*plausible* garbage that only skews hit counts. These rules make every
such drift a static lint failure instead:

- ``abi-parse`` — ``kernels.c`` failed the dialect parser
  (:mod:`repro.analysis.cparse`); everything the parser cannot model is
  reported rather than skipped.
- ``abi-signature`` — ``_SIGNATURES`` vs the parsed C prototypes,
  argument by argument (count, i64/u8/f64 kind, pointer vs scalar).
- ``abi-callsite`` — actual call shapes in ``kernels.py`` (both direct
  ``clib.k_*(...)`` calls and helper-dispatched
  ``getattr(clib, name)(...)`` calls paired with their ``"k_*"``
  string arguments) vs the C prototypes and ``_SIGNATURES``.
- ``abi-coverage`` — three-way set equality: exported C ``k_*``
  functions == ``_SIGNATURES`` keys == kernels referenced from
  ``kernels.py``; plus ``KERNEL_TABLE`` <-> ``kernel_*`` function
  coverage.
- ``abi-constant`` — ``#define`` constants in ``kernels.c`` vs the
  shared registry :data:`repro.sim.constants.C_PARITY`, both
  directions, by name and value.
- ``abi-c-hygiene`` — the C dialect contract: no heap allocation or
  other external calls, no mutable file-scope state, no numeric-literal
  loop bounds, no includes beyond ``stdint.h``.

Suppression: Python-side findings honor ``# simlint: allow[...]``;
C-side findings honor the same pragma written in a C comment.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .astutil import SourceModule, dotted_name, pragma_allows
from .cparse import CSource, parse_c_file
from .findings import Finding

__all__ = ["check_abi", "ABI_RULES"]

ABI_RULES = (
    "abi-parse",
    "abi-signature",
    "abi-callsite",
    "abi-coverage",
    "abi-constant",
    "abi-c-hygiene",
)

#: ctypes spellings -> normalized kind.
_CTYPE_KINDS = {
    "c_longlong": "i64",
    "c_int64": "i64",
    "c_ubyte": "u8",
    "c_uint8": "u8",
    "c_double": "f64",
}

#: kernels.py pointer-wrapper helpers -> pointed-to kind.
_WRAPPER_KINDS = {"_i64": "i64", "_u8": "u8", "_f64": "f64"}

#: The only headers the kernel dialect may include.
_ALLOWED_INCLUDES = frozenset({"stdint.h"})

#: Heap/libc calls called out by name (clearer message than the generic
#: external-call wording).
_BANNED_CALLS = frozenset({"malloc", "calloc", "realloc", "free"})

#: An argument's shape: (kind or None if unknown, is_pointer).
_Shape = Tuple[Optional[str], bool]


def _sim_module(
    modules: Iterable[SourceModule], name: str
) -> Optional[SourceModule]:
    for module in modules:
        parts = module.path.parts
        if module.path.name == name and len(parts) >= 2 \
                and parts[-2] == "sim":
            return module
    return None


# ----------------------------------------------------------------------
# ckernels.py: the ctypes _SIGNATURES table
# ----------------------------------------------------------------------

def _ctype_spec(
    node: ast.AST, aliases: Dict[str, _Shape]
) -> Optional[_Shape]:
    """(kind, pointer) for a ctypes type expression, or None."""
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        if name in ("ctypes.POINTER", "POINTER") and node.args:
            inner = _ctype_spec(node.args[0], aliases)
            if inner is not None:
                return (inner[0], True)
        return None
    if isinstance(node, ast.Attribute) and node.attr in _CTYPE_KINDS:
        return (_CTYPE_KINDS[node.attr], False)
    if isinstance(node, ast.Name):
        if node.id in aliases:
            return aliases[node.id]
        if node.id in _CTYPE_KINDS:
            return (_CTYPE_KINDS[node.id], False)
    return None


def _module_assigns(tree: ast.Module):
    for node in tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name):
            yield node.targets[0].id, node.value, node
        elif isinstance(node, ast.AnnAssign) \
                and isinstance(node.target, ast.Name) \
                and node.value is not None:
            yield node.target.id, node.value, node


def _extract_signatures(
    module: SourceModule,
) -> Dict[str, Tuple[int, List[Optional[_Shape]]]]:
    """``_SIGNATURES`` as {kernel: (line, [shape-per-arg])}."""
    aliases: Dict[str, _Shape] = {}
    table: Dict[str, Tuple[int, List[Optional[_Shape]]]] = {}
    for name, value, _node in _module_assigns(module.tree):
        spec = _ctype_spec(value, aliases)
        if spec is not None:
            aliases[name] = spec
            continue
        if name != "_SIGNATURES" or not isinstance(value, ast.Dict):
            continue
        for key, elts in zip(value.keys, value.values):
            if not isinstance(key, ast.Constant) \
                    or not isinstance(key.value, str):
                continue
            if not isinstance(elts, (ast.List, ast.Tuple)):
                continue
            shapes = [_ctype_spec(e, aliases) for e in elts.elts]
            table[key.value] = (key.lineno, shapes)
    return table


# ----------------------------------------------------------------------
# kernels.py: call sites and kernel references
# ----------------------------------------------------------------------

def _arg_shape(node: ast.AST) -> _Shape:
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
            and node.func.id in _WRAPPER_KINDS:
        return (_WRAPPER_KINDS[node.func.id], True)
    return (None, False)


class _CallSites:
    """Every compiled-kernel invocation shape found in kernels.py."""

    def __init__(self) -> None:
        #: (kernel name, call line, [arg shapes], via)
        self.sites: List[Tuple[str, int, List[_Shape], str]] = []
        #: every k_* name the module mentions (attribute or string).
        self.referenced: Dict[str, int] = {}


def _find_dispatch(
    func: ast.FunctionDef,
) -> Optional[Tuple[int, List[_Shape], int]]:
    """A ``getattr(lib, param)(...)`` dispatch inside ``func``.

    Returns (index of the name parameter, inner arg shapes, line).
    """
    params = [a.arg for a in func.args.args]
    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        inner = node.func
        if not (isinstance(inner, ast.Call)
                and isinstance(inner.func, ast.Name)
                and inner.func.id == "getattr"
                and len(inner.args) >= 2
                and isinstance(inner.args[1], ast.Name)
                and inner.args[1].id in params):
            continue
        index = params.index(inner.args[1].id)
        shapes = [_arg_shape(a) for a in node.args]
        return (index, shapes, node.lineno)
    return None


def _extract_call_sites(module: SourceModule) -> _CallSites:
    out = _CallSites()
    helpers: Dict[str, Tuple[int, List[_Shape], int]] = {}
    for node in module.tree.body:
        if isinstance(node, ast.FunctionDef):
            dispatch = _find_dispatch(node)
            if dispatch is not None:
                helpers[node.name] = dispatch
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Constant) and isinstance(node.value, str) \
                and node.value.startswith("k_"):
            out.referenced.setdefault(node.value, node.lineno)
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr.startswith("k_"):
            out.referenced.setdefault(func.attr, node.lineno)
            out.sites.append((
                func.attr, node.lineno,
                [_arg_shape(a) for a in node.args], "direct",
            ))
        elif isinstance(func, ast.Name) and func.id in helpers:
            index, shapes, _dispatch_line = helpers[func.id]
            if index < len(node.args):
                name_arg = node.args[index]
                if isinstance(name_arg, ast.Constant) \
                        and isinstance(name_arg.value, str) \
                        and name_arg.value.startswith("k_"):
                    out.sites.append((
                        name_arg.value, node.lineno, shapes,
                        f"via {func.id}()",
                    ))
    return out


# ----------------------------------------------------------------------
# constants.py: static evaluation of the C_PARITY registry
# ----------------------------------------------------------------------

_BINOPS = {
    ast.Add: lambda a, b: a + b,
    ast.Sub: lambda a, b: a - b,
    ast.Mult: lambda a, b: a * b,
    ast.FloorDiv: lambda a, b: a // b,
    ast.Mod: lambda a, b: a % b,
    ast.LShift: lambda a, b: a << b,
    ast.RShift: lambda a, b: a >> b,
    ast.BitOr: lambda a, b: a | b,
    ast.BitAnd: lambda a, b: a & b,
    ast.BitXor: lambda a, b: a ^ b,
    ast.Div: lambda a, b: a / b,
}

_MISSING = object()


def _eval_static(node: ast.AST, env: Dict[str, object]) -> object:
    """Evaluate module-level constant expressions (no names executed)."""
    if isinstance(node, ast.Constant):
        return node.value
    if isinstance(node, ast.Name):
        return env.get(node.id, _MISSING)
    if isinstance(node, ast.Tuple):
        elts = [_eval_static(e, env) for e in node.elts]
        return _MISSING if _MISSING in elts else tuple(elts)
    if isinstance(node, ast.Dict):
        out = {}
        for key, value in zip(node.keys, node.values):
            if key is None:
                return _MISSING
            k = _eval_static(key, env)
            v = _eval_static(value, env)
            if k is _MISSING or v is _MISSING:
                return _MISSING
            out[k] = v
        return out
    if isinstance(node, ast.BinOp) and type(node.op) in _BINOPS:
        left = _eval_static(node.left, env)
        right = _eval_static(node.right, env)
        if left is _MISSING or right is _MISSING:
            return _MISSING
        try:
            return _BINOPS[type(node.op)](left, right)
        except (TypeError, ValueError, ZeroDivisionError):
            return _MISSING
    if isinstance(node, ast.UnaryOp):
        operand = _eval_static(node.operand, env)
        if operand is _MISSING:
            return _MISSING
        if isinstance(node.op, ast.USub):
            return -operand  # type: ignore[operator]
        if isinstance(node.op, ast.Invert):
            return ~operand  # type: ignore[operator]
        return _MISSING
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id == "len" \
                and len(node.args) == 1:
            arg = _eval_static(node.args[0], env)
            return _MISSING if arg is _MISSING else len(arg)  # type: ignore
        if isinstance(node.func, ast.Attribute) \
                and node.func.attr == "index" and len(node.args) == 1:
            obj = _eval_static(node.func.value, env)
            arg = _eval_static(node.args[0], env)
            if obj is _MISSING or arg is _MISSING:
                return _MISSING
            try:
                return obj.index(arg)  # type: ignore[union-attr]
            except (ValueError, AttributeError):
                return _MISSING
    return _MISSING


def _constants_env(module: SourceModule) -> Dict[str, object]:
    env: Dict[str, object] = {}
    lines: Dict[str, int] = {}
    for name, value, node in _module_assigns(module.tree):
        result = _eval_static(value, env)
        if result is not _MISSING:
            env[name] = result
            lines[name] = node.lineno
    env["__lines__"] = lines
    return env


# ----------------------------------------------------------------------
# The rules
# ----------------------------------------------------------------------

def _shape_str(shape: _Shape) -> str:
    kind, pointer = shape
    base = kind or "scalar"
    return f"{base}*" if pointer else base


def _c_shape(param) -> _Shape:
    return (param.kind if param.kind != "other" else None, param.pointer)


def _compare_shapes(
    kernel: str,
    shapes: Sequence[Optional[_Shape]],
    expected: Sequence[_Shape],
    expected_names: Sequence[str],
    where: str,
) -> List[str]:
    """Human-readable mismatch descriptions (empty = agree)."""
    problems: List[str] = []
    if len(shapes) != len(expected):
        problems.append(
            f"{kernel}: {len(shapes)} argument(s) here vs "
            f"{len(expected)} in {where}"
        )
        return problems
    for pos, (got, want) in enumerate(zip(shapes, expected)):
        if got is None:
            continue  # unresolved alias reported separately
        kind, pointer = got
        want_kind, want_pointer = want
        label = expected_names[pos] if pos < len(expected_names) else ""
        label = f" ({label})" if label else ""
        if pointer != want_pointer:
            problems.append(
                f"{kernel}: argument {pos}{label} is "
                f"{_shape_str(got)} here but {_shape_str(want)} in {where}"
            )
        elif kind is not None and want_kind is not None \
                and kind != want_kind:
            problems.append(
                f"{kernel}: argument {pos}{label} is "
                f"{_shape_str(got)} here but {_shape_str(want)} in {where}"
            )
    return problems


def _check_parse(csource: CSource, findings: List[Finding]) -> None:
    for line, message in csource.errors:
        if csource.allows(line, "abi-parse"):
            continue
        findings.append(Finding(
            rule="abi-parse",
            path=csource.path,
            line=line,
            message=message,
        ))


def _check_signatures(
    ckernels: SourceModule,
    sigs: Dict[str, Tuple[int, List[Optional[_Shape]]]],
    csource: CSource,
    findings: List[Finding],
) -> None:
    for kernel in sorted(sigs):
        line, shapes = sigs[kernel]
        if pragma_allows(ckernels, "abi-signature", line):
            continue
        for pos, shape in enumerate(shapes):
            if shape is None:
                findings.append(Finding(
                    rule="abi-signature",
                    path=ckernels.display_path,
                    line=line,
                    message=f"{kernel}: argument {pos} uses a ctypes "
                            f"expression the checker cannot resolve",
                ))
        fn = csource.function(kernel)
        if fn is None:
            continue  # abi-coverage reports the missing definition
        expected = [_c_shape(p) for p in fn.params]
        names = [p.name for p in fn.params]
        for problem in _compare_shapes(
            kernel, shapes, expected, names, "kernels.c"
        ):
            findings.append(Finding(
                rule="abi-signature",
                path=ckernels.display_path,
                line=line,
                message=f"_SIGNATURES[{problem}]",
            ))


def _check_call_sites(
    kernels: SourceModule,
    sites: _CallSites,
    sigs: Dict[str, Tuple[int, List[Optional[_Shape]]]],
    csource: CSource,
    findings: List[Finding],
) -> None:
    for kernel, line, shapes, via in sites.sites:
        if pragma_allows(kernels, "abi-callsite", line):
            continue
        suffix = "" if via == "direct" else f" [{via}]"
        fn = csource.function(kernel)
        problems: List[str] = []
        if fn is not None:
            expected = [_c_shape(p) for p in fn.params]
            names = [p.name for p in fn.params]
            problems.extend(_compare_shapes(
                kernel, shapes, expected, names, "kernels.c"
            ))
        entry = sigs.get(kernel)
        if entry is not None:
            sig_shapes = [
                s if s is not None else (None, False) for s in entry[1]
            ]
            problems.extend(_compare_shapes(
                kernel, shapes, sig_shapes, (), "_SIGNATURES"
            ))
        for problem in problems:
            findings.append(Finding(
                rule="abi-callsite",
                path=kernels.display_path,
                line=line,
                message=f"call shape mismatch: {problem}{suffix}",
            ))


def _check_coverage(
    ckernels: SourceModule,
    kernels: Optional[SourceModule],
    sites: Optional[_CallSites],
    sigs: Dict[str, Tuple[int, List[Optional[_Shape]]]],
    csource: CSource,
    findings: List[Finding],
) -> None:
    exported = {
        fn.name: fn.line
        for fn in csource.functions
        if fn.definition and not fn.static and fn.name.startswith("k_")
    }
    for kernel in sorted(set(sigs) - set(exported)):
        line = sigs[kernel][0]
        if pragma_allows(ckernels, "abi-coverage", line):
            continue
        findings.append(Finding(
            rule="abi-coverage",
            path=ckernels.display_path,
            line=line,
            message=f"_SIGNATURES[{kernel!r}] has no exported "
                    f"(non-static) definition in kernels.c",
        ))
    for kernel in sorted(set(exported) - set(sigs)):
        line = exported[kernel]
        if csource.allows(line, "abi-coverage"):
            continue
        findings.append(Finding(
            rule="abi-coverage",
            path=csource.path,
            line=line,
            message=f"{kernel} is exported from kernels.c but missing "
                    f"from ckernels._SIGNATURES",
        ))
    if kernels is None or sites is None:
        return
    for kernel in sorted(set(sigs) - set(sites.referenced)):
        line = sigs[kernel][0]
        if pragma_allows(ckernels, "abi-coverage", line):
            continue
        findings.append(Finding(
            rule="abi-coverage",
            path=ckernels.display_path,
            line=line,
            message=f"_SIGNATURES[{kernel!r}] is never invoked from "
                    f"kernels.py",
        ))
    for kernel in sorted(set(sites.referenced) - set(sigs)):
        line = sites.referenced[kernel]
        if pragma_allows(kernels, "abi-coverage", line):
            continue
        findings.append(Finding(
            rule="abi-coverage",
            path=kernels.display_path,
            line=line,
            message=f"kernels.py references {kernel} which has no "
                    f"ckernels._SIGNATURES entry",
        ))
    _check_kernel_table(kernels, findings)


def _check_kernel_table(
    kernels: SourceModule, findings: List[Finding]
) -> None:
    functions = {
        node.name: node.lineno
        for node in kernels.tree.body
        if isinstance(node, ast.FunctionDef)
        and node.name.startswith("kernel_")
    }
    table_node: Optional[ast.Dict] = None
    table_line = 1
    for name, value, node in _module_assigns(kernels.tree):
        if name == "KERNEL_TABLE" and isinstance(value, ast.Dict):
            table_node = value
            table_line = node.lineno
    if table_node is None:
        return
    listed: Set[str] = set()
    for key, value in zip(table_node.keys, table_node.values):
        line = key.lineno if key is not None else table_line
        if pragma_allows(kernels, "abi-coverage", line):
            continue
        if not isinstance(value, ast.Name):
            findings.append(Finding(
                rule="abi-coverage",
                path=kernels.display_path,
                line=line,
                message="KERNEL_TABLE value is not a plain function "
                        "reference",
            ))
            continue
        listed.add(value.id)
        if value.id not in functions:
            findings.append(Finding(
                rule="abi-coverage",
                path=kernels.display_path,
                line=line,
                message=f"KERNEL_TABLE references {value.id} which is "
                        f"not a module-level kernel_* function",
            ))
    for name in sorted(set(functions) - listed):
        line = functions[name]
        if pragma_allows(kernels, "abi-coverage", line):
            continue
        findings.append(Finding(
            rule="abi-coverage",
            path=kernels.display_path,
            line=line,
            message=f"{name} is not registered in KERNEL_TABLE",
        ))


def _check_constants(
    constants: SourceModule,
    csource: CSource,
    findings: List[Finding],
) -> None:
    env = _constants_env(constants)
    lines: Dict[str, int] = env.get("__lines__", {})  # type: ignore
    parity = env.get("C_PARITY")
    parity_line = lines.get("C_PARITY", 1)
    if not isinstance(parity, dict):
        if not pragma_allows(constants, "abi-constant", parity_line):
            findings.append(Finding(
                rule="abi-constant",
                path=constants.display_path,
                line=parity_line,
                message="C_PARITY is missing or not statically "
                        "evaluable",
            ))
        return
    defines = csource.define_map()
    for name in sorted(parity):
        value = parity[name]
        define = defines.get(name)
        if define is None:
            if pragma_allows(constants, "abi-constant", parity_line):
                continue
            findings.append(Finding(
                rule="abi-constant",
                path=constants.display_path,
                line=parity_line,
                message=f"C_PARITY[{name!r}] has no #define in "
                        f"kernels.c",
            ))
        elif define.value != value:
            if csource.allows(define.line, "abi-constant"):
                continue
            findings.append(Finding(
                rule="abi-constant",
                path=csource.path,
                line=define.line,
                message=f"#define {name} is {define.value} but "
                        f"constants.C_PARITY says {value}",
            ))
    for name in sorted(set(defines) - set(parity)):
        define = defines[name]
        if csource.allows(define.line, "abi-constant"):
            continue
        findings.append(Finding(
            rule="abi-constant",
            path=csource.path,
            line=define.line,
            message=f"#define {name} is not registered in "
                    f"constants.C_PARITY",
        ))


def _check_hygiene(csource: CSource, findings: List[Finding]) -> None:
    rule = "abi-c-hygiene"
    defined = {fn.name for fn in csource.functions}
    defined.update(d.name for d in csource.defines if d.function_like)
    for callee, line in csource.calls:
        if callee in defined or csource.allows(line, rule):
            continue
        if callee in _BANNED_CALLS:
            message = f"heap allocation is banned in the kernel " \
                      f"dialect: {callee}()"
        else:
            message = f"call to external function {callee}() — kernels " \
                      f"may only call functions/macros defined in this " \
                      f"file"
        findings.append(Finding(
            rule=rule, path=csource.path, line=line, message=message,
        ))
    for name, line, is_const in csource.file_globals:
        if is_const or csource.allows(line, rule):
            continue
        findings.append(Finding(
            rule=rule, path=csource.path, line=line,
            message=f"mutable file-scope object {name!r} — kernels "
                    f"must be stateless between calls",
        ))
    for line, literal in csource.literal_loop_bounds:
        if csource.allows(line, rule):
            continue
        findings.append(Finding(
            rule=rule, path=csource.path, line=line,
            message=f"for-loop condition uses numeric literal "
                    f"{literal} — every loop bound must derive from a "
                    f"parameter",
        ))
    for include, line in csource.includes:
        if include in _ALLOWED_INCLUDES or csource.allows(line, rule):
            continue
        findings.append(Finding(
            rule=rule, path=csource.path, line=line,
            message=f"#include <{include}> is outside the kernel "
                    f"dialect (only stdint.h is allowed)",
        ))


def check_c_pragmas(
    csource: CSource, known: Set[str], findings: List[Finding]
) -> None:
    """Flag unknown rule tokens in C allow-pragmas (mirrors the
    runner's Python-side check)."""
    for line, tokens in csource.pragma_sites:
        for token in sorted(tokens):
            if token in known or token == "*":
                continue
            if "pragma-unknown" in tokens:
                continue
            findings.append(Finding(
                rule="pragma-unknown",
                path=csource.path,
                line=line,
                message=f"allow-pragma names unknown rule {token!r}",
            ))


def check_abi(
    modules: Sequence[SourceModule],
    known_rules: Optional[Set[str]] = None,
) -> List[Finding]:
    """Run the ``abi`` family over the scanned modules.

    The rules engage only when ``sim/ckernels.py`` is among the scanned
    files; ``kernels.c`` is read from disk next to it, and
    ``kernels.py`` / ``constants.py`` are matched from the same scan.
    """
    findings: List[Finding] = []
    ckernels = _sim_module(modules, "ckernels.py")
    if ckernels is None:
        return findings
    csource = parse_c_file(Path(ckernels.path).with_name("kernels.c"))
    kernels = _sim_module(modules, "kernels.py")
    constants = _sim_module(modules, "constants.py")

    _check_parse(csource, findings)
    sigs = _extract_signatures(ckernels)
    _check_signatures(ckernels, sigs, csource, findings)
    sites = None
    if kernels is not None:
        sites = _extract_call_sites(kernels)
        _check_call_sites(kernels, sites, sigs, csource, findings)
    _check_coverage(ckernels, kernels, sites, sigs, csource, findings)
    if constants is not None:
        _check_constants(constants, csource, findings)
    _check_hygiene(csource, findings)
    if known_rules is not None:
        check_c_pragmas(csource, known_rules, findings)
    return findings
