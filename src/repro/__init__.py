"""repro: reproduction of "P-OPT: Practical Optimal Cache Replacement for
Graph Analytics" (Balaji, Crago, Jaleel, Lucia — HPCA 2021).

Quickstart::

    from repro import graph, apps, sim
    from repro.cache import scaled_hierarchy

    g = graph.load("URAND", scale="small")
    prepared = sim.prepare_run(apps.PageRank(), g)
    hierarchy = scaled_hierarchy("small")
    drrip = sim.simulate_prepared(prepared, "DRRIP", hierarchy)
    popt = sim.simulate_prepared(prepared, "P-OPT", hierarchy)
    print(popt.miss_reduction_over(drrip), popt.speedup_over(drrip))

Subpackages:

- :mod:`repro.graph`    -- CSR/CSC graphs, generators, reordering, tiling
- :mod:`repro.memory`   -- address-space layout and access traces
- :mod:`repro.cache`    -- set-associative cache hierarchy simulator
- :mod:`repro.policies` -- baseline replacement policies (LRU..Hawkeye, OPT)
- :mod:`repro.popt`     -- the paper's contribution: T-OPT and P-OPT
- :mod:`repro.apps`     -- graph kernels that emit their memory access streams
- :mod:`repro.sim`      -- simulation driver, timing model, experiments
"""

from . import apps, cache, graph, memory, policies, popt, sim
from .errors import (
    CacheConfigError,
    GraphFormatError,
    LayoutError,
    PolicyError,
    ReproError,
    SimulationError,
)

__version__ = "1.0.0"

__all__ = [
    "graph",
    "memory",
    "cache",
    "policies",
    "popt",
    "apps",
    "sim",
    "ReproError",
    "GraphFormatError",
    "LayoutError",
    "CacheConfigError",
    "PolicyError",
    "SimulationError",
    "__version__",
]
