"""Multi-core hierarchy: private L1/L2 per core over one shared LLC.

The paper's machine (Table I) is 8 cores with private L1/L2 and a shared
16-way LLC. For replacement studies the single-stream model captures the
LLC behaviour (Section V-F's epoch-serial execution keeps all threads in
one epoch), but the multi-core model adds the private-cache effects of
threading: each core filters its own slice of the access stream, and the
shared LLC sees the interleaving of the cores' miss streams.

Use with :func:`replay_multicore`, which deals per-core access streams
round-robin in chunks (the memory-system view of barrier-free parallel
sections).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..errors import CacheConfigError
from ..memory.trace import decode_trace
from .cache import AccessContext, SetAssociativeCache
from .config import HierarchyConfig
from .hierarchy import LEVEL_DRAM, LEVEL_L1, LEVEL_L2, LEVEL_LLC
from .stats import CacheStats

__all__ = ["MultiCoreHierarchy", "replay_multicore"]


class MultiCoreHierarchy:
    """Private L1/L2 per core, one shared LLC."""

    def __init__(
        self,
        config: HierarchyConfig,
        llc_policy,
        num_cores: int = 8,
    ) -> None:
        from ..policies.plru import BitPLRU

        if num_cores <= 0:
            raise CacheConfigError("num_cores must be positive")
        self.config = config
        self.num_cores = num_cores
        self.line_shift = config.line_size.bit_length() - 1
        self.private_l1: List[Optional[SetAssociativeCache]] = []
        self.private_l2: List[Optional[SetAssociativeCache]] = []
        for core in range(num_cores):
            self.private_l1.append(
                SetAssociativeCache(config.l1, BitPLRU())
                if config.l1 is not None
                else None
            )
            self.private_l2.append(
                SetAssociativeCache(config.l2, BitPLRU())
                if config.l2 is not None
                else None
            )
        self.llc = SetAssociativeCache(config.llc, llc_policy)
        self.level_counts = [0, 0, 0, 0, 0]

    def access(self, core: int, addr: int, ctx: AccessContext) -> int:
        """One access from ``core``; returns the serving level."""
        line_addr = addr >> self.line_shift
        l1 = self.private_l1[core]
        if l1 is not None and l1.access(line_addr, ctx):
            self.level_counts[LEVEL_L1] += 1
            return LEVEL_L1
        l2 = self.private_l2[core]
        if l2 is not None and l2.access(line_addr, ctx):
            self.level_counts[LEVEL_L2] += 1
            return LEVEL_L2
        if self.llc.access(line_addr, ctx):
            self.level_counts[LEVEL_LLC] += 1
            return LEVEL_LLC
        self.level_counts[LEVEL_DRAM] += 1
        return LEVEL_DRAM

    def private_stats(self) -> List[CacheStats]:
        """Per-core L1 stats (diagnostics)."""
        return [
            cache.stats for cache in self.private_l1 if cache is not None
        ]


def replay_multicore(
    per_core_traces: Sequence,
    hierarchy: MultiCoreHierarchy,
    chunk: int = 64,
) -> None:
    """Interleave per-core traces round-robin in ``chunk``-access bursts.

    Each core replays its own trace through its private caches; the
    shared LLC sees the merged miss stream. Chunked round-robin
    approximates unsynchronized cores making similar forward progress.
    """
    cursors = [0] * len(per_core_traces)
    streams = [
        decode_trace(trace, hierarchy.line_shift).as_lists()
        for trace in per_core_traces
    ]
    ctx = AccessContext()
    live = set(range(len(per_core_traces)))
    index = 0
    while live:
        # Deterministic round-robin order: set iteration order is an
        # implementation detail and must not pick the interleaving.
        for core in sorted(live):
            lines, pcs, writes, vertices = streams[core]
            start = cursors[core]
            stop = min(start + chunk, len(lines))
            for position in range(start, stop):
                ctx.pc = pcs[position]
                ctx.index = index
                ctx.vertex = vertices[position]
                ctx.write = writes[position]
                index += 1
                line = lines[position]
                l1 = hierarchy.private_l1[core]
                if l1 is not None and l1.access(line, ctx):
                    hierarchy.level_counts[LEVEL_L1] += 1
                    continue
                l2 = hierarchy.private_l2[core]
                if l2 is not None and l2.access(line, ctx):
                    hierarchy.level_counts[LEVEL_L2] += 1
                    continue
                if hierarchy.llc.access(line, ctx):
                    hierarchy.level_counts[LEVEL_LLC] += 1
                else:
                    hierarchy.level_counts[LEVEL_DRAM] += 1
            cursors[core] = stop
            if stop >= len(lines):
                live.discard(core)
