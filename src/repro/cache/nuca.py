"""S-NUCA bank mapping, including P-OPT's modified irregData mapping.

Section V-E: a standard S-NUCA LLC stripes consecutive cache lines across
banks (``bank = (addr >> 6) % numBanks``). One Rereference Matrix cache
line holds the next references of 64 irregData lines, so with plain
striping a replacement in bank B would routinely need RM data from another
bank. P-OPT instead interleaves *irregData* in 64-line blocks
(``bank = (addr >> 12) % numBanks``) while keeping default striping for
everything else (Reactive-NUCA gives per-page mapping policies). The
invariant this buys — every irregData line and its RM entry live in the
same bank — is checked by :func:`rm_access_is_bank_local` and exercised in
tests and the timing model.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import CacheConfigError

__all__ = ["BankMapper"]


@dataclass(frozen=True)
class BankMapper:
    """Computes NUCA bank IDs for data and Rereference Matrix lines."""

    num_banks: int
    line_size: int = 64
    block_lines: int = 64  # irregData lines covered by one RM line (64 x 1B)

    def __post_init__(self) -> None:
        if self.num_banks <= 0:
            raise CacheConfigError("num_banks must be positive")
        if self.line_size & (self.line_size - 1):
            raise CacheConfigError("line_size must be a power of two")

    def default_bank(self, addr: int) -> int:
        """Standard S-NUCA striping: consecutive lines rotate banks."""
        return (addr // self.line_size) % self.num_banks

    def irreg_bank(self, addr: int, irreg_base: int) -> int:
        """P-OPT's modified mapping for irregData (64-line blocks).

        Computed relative to the irregData base so the mapping is stable
        regardless of where the huge page lands.
        """
        line_id = (addr - irreg_base) // self.line_size
        return (line_id // self.block_lines) % self.num_banks

    def rm_bank(self, irreg_line_id: int) -> int:
        """Bank of the RM cache line holding ``irreg_line_id``'s entry.

        RM columns are striped with the default policy; RM line ``k``
        covers irregData lines ``[64k, 64k+64)``.
        """
        rm_line_index = irreg_line_id // self.block_lines
        return rm_line_index % self.num_banks

    def rm_access_is_bank_local(self, addr: int, irreg_base: int) -> bool:
        """True iff an irregData line's RM entry lives in the line's bank.

        Under the modified mapping this holds for *every* address; under
        default striping it fails for almost all of them — the motivation
        for Section V-E.
        """
        line_id = (addr - irreg_base) // self.line_size
        return self.irreg_bank(addr, irreg_base) == self.rm_bank(line_id)

    def default_mapping_locality(self, irreg_base: int, num_lines: int) -> float:
        """Fraction of irregData lines whose RM entry would be bank-local
        if irregData used default striping (for the Section V-E ablation)."""
        local = 0
        for line_id in range(num_lines):
            addr = irreg_base + line_id * self.line_size
            if self.default_bank(addr) == self.rm_bank(line_id):
                local += 1
        return local / num_lines if num_lines else 1.0
