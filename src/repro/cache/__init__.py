"""Cache substrate: configs, set-associative caches, hierarchy, NUCA."""

from .banked import BankedLLC
from .cache import AccessContext, SetAssociativeCache
from .config import (
    CORE_FREQUENCY_GHZ,
    DRAM_LATENCY_NS,
    CacheConfig,
    HierarchyConfig,
    paper_table1,
    scaled_hierarchy,
)
from .hierarchy import (
    LEVEL_DRAM,
    LEVEL_L1,
    LEVEL_L2,
    LEVEL_LLC,
    CacheHierarchy,
)
from .multicore import MultiCoreHierarchy, replay_multicore
from .nuca import BankMapper
from .sanitizer import DEFAULT_INTERVAL, CacheSanitizer, SanitizerReport
from .stats import MPKI_INSTRUCTIONS_PER_ACCESS, CacheStats

__all__ = [
    "AccessContext",
    "SetAssociativeCache",
    "CacheConfig",
    "HierarchyConfig",
    "paper_table1",
    "scaled_hierarchy",
    "DRAM_LATENCY_NS",
    "CORE_FREQUENCY_GHZ",
    "CacheHierarchy",
    "LEVEL_L1",
    "LEVEL_L2",
    "LEVEL_LLC",
    "LEVEL_DRAM",
    "BankMapper",
    "BankedLLC",
    "MultiCoreHierarchy",
    "replay_multicore",
    "CacheStats",
    "MPKI_INSTRUCTIONS_PER_ACCESS",
    "CacheSanitizer",
    "SanitizerReport",
    "DEFAULT_INTERVAL",
]
