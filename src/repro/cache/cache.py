"""Single-level set-associative cache with pluggable replacement.

The hot path (``access``) is called once per memory reference per level, so
the implementation favors plain Python ints and lists (``list.index`` is a
C-level scan) over numpy element access.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..errors import PolicyError
from .config import CacheConfig
from .stats import CacheStats

__all__ = ["AccessContext", "SetAssociativeCache"]

INVALID_TAG = -1


class AccessContext:
    """Mutable per-access context threaded through the hierarchy.

    ``pc`` is the access-site ID (stands in for the program counter),
    ``index`` the position in the replayed trace, ``vertex`` the current
    outer-loop vertex (the paper's ``currVertex`` register, set by the
    ``update_index`` instruction), and ``write`` the store flag.
    """

    __slots__ = ("pc", "index", "vertex", "write")

    def __init__(
        self, pc: int = 0, index: int = 0, vertex: int = 0, write: bool = False
    ) -> None:
        self.pc = pc
        self.index = index
        self.vertex = vertex
        self.write = write


class SetAssociativeCache:
    """One cache level.

    The cache owns tag state; the policy owns all replacement metadata and
    is consulted on hits, fills, and evictions. Invalid ways are filled
    before the policy is asked for a victim.
    """

    def __init__(
        self,
        config: CacheConfig,
        policy,
        stats: Optional[CacheStats] = None,
    ) -> None:
        self.config = config
        self.num_sets = config.num_sets
        self.num_ways = config.num_ways
        # set_mask of -1 signals modulo indexing (non-power-of-two sets).
        self.set_mask = (
            config.num_sets - 1 if config.sets_are_power_of_two else -1
        )
        self.tags: List[List[int]] = [
            [INVALID_TAG] * config.num_ways for _ in range(config.num_sets)
        ]
        self.dirty: List[List[bool]] = [
            [False] * config.num_ways for _ in range(config.num_sets)
        ]
        self.stats = stats if stats is not None else CacheStats(config.name)
        self.policy = policy
        policy.bind(self)

    # ------------------------------------------------------------------

    def set_index(self, line_addr: int) -> int:
        """Set index of one line address (mask fast path, else modulo)."""
        mask = self.set_mask
        return line_addr & mask if mask >= 0 else line_addr % self.num_sets

    def set_indices(self, lines: np.ndarray) -> np.ndarray:
        """Vectorized set indices for an array of line addresses.

        The replay engine precomputes these once per trace; the scalar
        and vectorized paths agree for any set count (power-of-two or
        not — the paper's footnote-3 modulo indexing).
        """
        lines = np.asarray(lines, dtype=np.int64)
        if self.set_mask >= 0:
            return lines & self.set_mask
        return lines % self.num_sets

    def access(self, line_addr: int, ctx: AccessContext) -> bool:
        """Look up a line-granular address; fill on miss. Returns hit."""
        mask = self.set_mask
        set_idx = line_addr & mask if mask >= 0 else line_addr % self.num_sets
        return self.access_at(set_idx, line_addr, ctx)

    def access_at(
        self, set_idx: int, line_addr: int, ctx: AccessContext
    ) -> bool:
        """Access with a precomputed set index (banked LLCs index their
        sets by the bank-local line, so the caller owns the mapping)."""
        set_tags = self.tags[set_idx]
        try:
            way = set_tags.index(line_addr)
        except ValueError:
            way = -1
        if way >= 0:
            self.stats.record_hit()
            if ctx.write:
                self.dirty[set_idx][way] = True
            self.policy.on_hit(set_idx, way, ctx)
            return True
        self.stats.record_miss()
        self._fill(set_idx, line_addr, ctx)
        return False

    def probe(self, line_addr: int) -> bool:
        """Check residency without updating any state."""
        mask = self.set_mask
        set_idx = line_addr & mask if mask >= 0 else line_addr % self.num_sets
        return line_addr in self.tags[set_idx]

    def install(self, line_addr: int, ctx: AccessContext) -> bool:
        """Install a line without a demand access (prefetch fill).

        Returns True when the line was newly installed, False when it was
        already resident. Demand hit/miss stats are untouched; evictions
        caused by the fill are counted normally. The line always installs
        clean: a prefetch moves data, it does not write it, so it must not
        inherit a stale ``ctx.write`` flag and inflate writebacks later.
        """
        mask = self.set_mask
        set_idx = line_addr & mask if mask >= 0 else line_addr % self.num_sets
        if line_addr in self.tags[set_idx]:
            return False
        saved_write = ctx.write
        ctx.write = False
        try:
            self._fill(set_idx, line_addr, ctx)
        finally:
            ctx.write = saved_write
        return True

    def _fill(self, set_idx: int, line_addr: int, ctx: AccessContext) -> None:
        set_tags = self.tags[set_idx]
        try:
            way = set_tags.index(INVALID_TAG)
        except ValueError:
            way = self.policy.choose_victim(set_idx, ctx)
            if not 0 <= way < self.num_ways:
                raise PolicyError(
                    f"{self.policy.name} returned invalid way {way}"
                )
            self.stats.evictions += 1
            if self.dirty[set_idx][way]:
                self.stats.writebacks += 1
            self.policy.on_evict(set_idx, way, ctx)
        set_tags[way] = line_addr
        self.dirty[set_idx][way] = bool(ctx.write)
        self.policy.on_fill(set_idx, way, ctx)

    # ------------------------------------------------------------------

    def resident_lines(self) -> List[int]:
        """All valid resident line addresses (diagnostics/tests)."""
        return [
            tag
            for set_tags in self.tags
            for tag in set_tags
            if tag != INVALID_TAG
        ]

    def occupancy(self) -> float:
        """Fraction of ways holding valid lines."""
        valid = len(self.resident_lines())
        return valid / (self.num_sets * self.num_ways)

    def flush(self) -> None:
        """Invalidate everything (keeps policy metadata consistent by
        rebinding the policy)."""
        for set_tags in self.tags:
            for way in range(self.num_ways):
                set_tags[way] = INVALID_TAG
        for dirty_row in self.dirty:
            for way in range(self.num_ways):
                dirty_row[way] = False
        self.policy.bind(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SetAssociativeCache({self.config.name}, "
            f"{self.num_sets}x{self.num_ways}, policy={self.policy.name})"
        )
