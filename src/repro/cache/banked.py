"""Banked S-NUCA last-level cache (Section V-E, dynamic model).

The LLC is physically distributed over ``num_banks`` banks; an address's
bank is fixed by the mapping policy and each bank replaces independently
(per-bank next-ref engines and buffers in P-OPT's case — each bank gets
its own policy instance).

Two mapping policies coexist, as in the paper:

- everything defaults to line striping (``bank = line % numBanks``);
- with ``modified_irreg_mapping=True``, lines inside registered irregular
  spans interleave in 64-line blocks (``bank = (rel_line // 64) %
  numBanks``), the Reactive-NUCA-backed policy that makes every
  Rereference Matrix lookup bank-local.

The model counts, per replacement of an irregular line, whether the RM
entry needed by the next-ref engine lives in the evicting bank — the
quantity the modified mapping exists to drive to 100%.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from ..errors import CacheConfigError
from ..memory.layout import ArraySpan
from .cache import AccessContext, SetAssociativeCache
from .config import CacheConfig
from .nuca import BankMapper
from .stats import CacheStats

__all__ = ["BankedLLC"]


class BankedLLC:
    """An S-NUCA LLC built from independent per-bank slices."""

    def __init__(
        self,
        config: CacheConfig,
        num_banks: int,
        policy_factory: Callable[[int], object],
        irreg_spans: Sequence[ArraySpan] = (),
        modified_irreg_mapping: bool = True,
        line_size: int = 64,
    ) -> None:
        if config.num_sets % num_banks:
            raise CacheConfigError(
                "num_sets must divide evenly across banks"
            )
        self.config = config
        self.num_banks = num_banks
        self.mapper = BankMapper(num_banks=num_banks, line_size=line_size)
        bank_config = CacheConfig(
            name=f"{config.name}-bank",
            num_sets=config.num_sets // num_banks,
            num_ways=config.num_ways,
            line_size=config.line_size,
            load_to_use_cycles=config.load_to_use_cycles,
        )
        self.banks: List[SetAssociativeCache] = [
            SetAssociativeCache(bank_config, policy_factory(bank))
            for bank in range(num_banks)
        ]
        self.modified_irreg_mapping = modified_irreg_mapping
        self._irreg_ranges: List[Tuple[int, int]] = [
            (span.base // line_size,
             span.base // line_size + span.num_lines)
            for span in irreg_spans
        ]
        self.block_lines = self.mapper.block_lines
        self.local_rm_lookups = 0
        self.remote_rm_lookups = 0

    # ------------------------------------------------------------------

    def _irreg_base(self, line_addr: int) -> Optional[int]:
        for begin, end in self._irreg_ranges:
            if begin <= line_addr < end:
                return begin
        return None

    def route(self, line_addr: int) -> Tuple[int, int]:
        """(bank, bank-local line index) for a line address."""
        base = self._irreg_base(line_addr)
        if base is not None and self.modified_irreg_mapping:
            rel = line_addr - base
            block = rel // self.block_lines
            bank = block % self.num_banks
            local = (
                (block // self.num_banks) * self.block_lines
                + rel % self.block_lines
            )
            return bank, local
        return line_addr % self.num_banks, line_addr // self.num_banks

    def access(self, line_addr: int, ctx: AccessContext) -> bool:
        """Look up a line in its bank; fill on miss. Returns hit."""
        bank, local = self.route(line_addr)
        slice_ = self.banks[bank]
        # Index the bank's sets by the bank-local line, but tag with the
        # global line address so policies (base/bound checks, RM lookups)
        # see real addresses.
        set_idx = slice_.config.set_index(local)
        hit = slice_.access_at(set_idx, line_addr, ctx)
        if not hit:
            base = self._irreg_base(line_addr)
            if base is not None:
                # The next-ref engine in `bank` reads this line's RM
                # entry: bank-local only if the RM line maps here.
                rm_bank = self.mapper.rm_bank(line_addr - base)
                if rm_bank == bank:
                    self.local_rm_lookups += 1
                else:
                    self.remote_rm_lookups += 1
        return hit

    # ------------------------------------------------------------------

    def aggregate_stats(self) -> CacheStats:
        """Summed stats across banks."""
        total = CacheStats(self.config.name)
        for bank in self.banks:
            total = total.merged_with(bank.stats)
        return total

    def bank_load(self) -> List[int]:
        """Per-bank access counts (load-balance diagnostics)."""
        return [bank.stats.accesses for bank in self.banks]

    def rm_locality(self) -> float:
        """Fraction of next-ref engine RM lookups that were bank-local."""
        total = self.local_rm_lookups + self.remote_rm_lookups
        return self.local_rm_lookups / total if total else 1.0
