"""Runtime invariant checker for sanitized replays (opt-in).

``simulate_prepared(..., sanitize=True)`` threads a
:class:`CacheSanitizer` through the replay: every ``interval`` LLC
accesses and again at end-of-replay it validates the structural
invariants that the fast engine's correctness rests on. A violation
raises :class:`~repro.errors.SanitizerError` at the access where the
corruption became visible instead of skewing a headline number silently.

Checked invariants:

- **tag-array sanity** — no duplicate tags within a set, at most
  ``num_ways`` valid ways, dirty bits only on valid ways;
- **stats conservation** — ``accesses == hits + misses``, counters
  non-negative, and on the demand-only replay paths ``evictions <=
  misses`` (each demand fill evicts at most once) and ``writebacks <=
  evictions`` (only an eviction can write back);
- **policy/geometry agreement** — per-set metadata lists on the bound
  policy are sized to the cache's ``num_sets`` (stale state from a
  previous ``bind()`` is exactly the bug class the replay engine's
  policy reuse could otherwise hide);
- **private-filter/LLC-stream consistency** — the cached
  :class:`~repro.sim.engine.PrivateFilter`'s mask, subsequence channels,
  and L1/L2 stats chain together (``l2.accesses == l1.misses`` etc.) and
  the LLC observed exactly the filtered stream;
- **Belady lower bound** — once OPT has run on a (filter, LLC-geometry)
  combination, no other policy on the same combination may report fewer
  LLC misses: Belady's MIN is provably optimal, so "beating OPT" always
  means a bookkeeping bug.

The sanitizer never mutates simulation state, so a sanitized run is
bit-identical to an unsanitized one — ``tests/cache/test_sanitizer.py``
asserts it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import SanitizerError
from .cache import INVALID_TAG, SetAssociativeCache
from .stats import CacheStats

__all__ = ["CacheSanitizer", "SanitizerReport", "DEFAULT_INTERVAL"]

#: LLC accesses between periodic mid-replay checks.
DEFAULT_INTERVAL = 8192


@dataclass
class SanitizerReport:
    """How much checking a sanitized run actually did (for details/CI)."""

    cache_checks: int = 0
    stats_checks: int = 0
    policy_checks: int = 0
    filter_checks: int = 0
    chain_checks: int = 0
    bound_checks: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "cache_checks": self.cache_checks,
            "stats_checks": self.stats_checks,
            "policy_checks": self.policy_checks,
            "filter_checks": self.filter_checks,
            "chain_checks": self.chain_checks,
            "bound_checks": self.bound_checks,
        }

    @property
    def total(self) -> int:
        return sum(self.as_dict().values())


class CacheSanitizer:
    """Validates cache/stats/filter invariants during a replay."""

    def __init__(self, interval: int = DEFAULT_INTERVAL) -> None:
        if interval <= 0:
            raise SanitizerError("sanitizer interval must be positive")
        self.interval = interval
        self.report = SanitizerReport()

    # ------------------------------------------------------------------
    # Structural checks
    # ------------------------------------------------------------------

    def _fail(self, where: str, message: str) -> None:
        raise SanitizerError(f"sanitizer[{where}]: {message}")

    def check_cache(
        self, cache: SetAssociativeCache, where: str = "llc"
    ) -> None:
        """Tag-array sanity: unique valid tags, dirty implies valid."""
        self.report.cache_checks += 1
        num_ways = cache.num_ways
        for set_idx, set_tags in enumerate(cache.tags):
            if len(set_tags) != num_ways:
                self._fail(
                    where,
                    f"set {set_idx} has {len(set_tags)} ways, expected "
                    f"{num_ways}",
                )
            valid = [tag for tag in set_tags if tag != INVALID_TAG]
            if len(valid) != len(set(valid)):
                dupes = sorted(
                    tag for tag in set(valid) if valid.count(tag) > 1
                )
                self._fail(
                    where,
                    f"set {set_idx} holds duplicate tags {dupes}: the "
                    "same line is resident in two ways",
                )
            dirty_row = cache.dirty[set_idx]
            for way in range(num_ways):
                if dirty_row[way] and set_tags[way] == INVALID_TAG:
                    self._fail(
                        where,
                        f"set {set_idx} way {way} is dirty but invalid",
                    )

    def check_stats(
        self,
        stats: CacheStats,
        where: str = "llc",
        demand_only: bool = True,
    ) -> None:
        """Counter conservation. ``demand_only`` adds the bounds that
        hold when every fill comes from a demand miss (the replay paths;
        prefetch installs fill without missing and void them)."""
        self.report.stats_checks += 1
        for attr in ("accesses", "hits", "misses", "evictions",
                     "writebacks"):
            if getattr(stats, attr) < 0:
                self._fail(
                    where, f"{stats.name}: negative {attr} counter"
                )
        if stats.accesses != stats.hits + stats.misses:
            self._fail(
                where,
                f"{stats.name}: accesses ({stats.accesses}) != hits "
                f"({stats.hits}) + misses ({stats.misses})",
            )
        if demand_only and stats.evictions > stats.misses:
            self._fail(
                where,
                f"{stats.name}: evictions ({stats.evictions}) exceed "
                f"demand fills ({stats.misses})",
            )
        if stats.writebacks > stats.evictions:
            self._fail(
                where,
                f"{stats.name}: writebacks ({stats.writebacks}) exceed "
                f"evictions ({stats.evictions}); only evictions of dirty "
                "lines write back",
            )

    def check_policy_state(
        self, cache: SetAssociativeCache, where: str = "llc"
    ) -> None:
        """Per-set metadata on the bound policy matches the geometry.

        Any list-of-lists attribute on a policy is, by the
        ReplacementPolicy contract, per-set metadata — its outer length
        must equal ``num_sets``. Stale lengths mean state survived from a
        previous ``bind()`` (built in ``__init__`` instead of
        ``reset()``).
        """
        self.report.policy_checks += 1
        policy = cache.policy
        num_sets = cache.num_sets
        for attr, value in sorted(vars(policy).items()):
            if not isinstance(value, list) or not value:
                continue
            if not all(isinstance(entry, list) for entry in value):
                continue
            if len(value) != num_sets:
                self._fail(
                    where,
                    f"{policy.name}.{attr} holds per-set state for "
                    f"{len(value)} sets but the cache has {num_sets}: "
                    "stale metadata from a previous bind()",
                )

    # ------------------------------------------------------------------
    # Stream / filter checks
    # ------------------------------------------------------------------

    def check_filter(self, filt: object, where: str = "filter") -> None:
        """Internal consistency of a cached PrivateFilter."""
        self.report.filter_checks += 1
        import numpy as np

        mask = getattr(filt, "mask")
        num_accesses = getattr(filt, "num_accesses")
        lines = getattr(filt, "lines")
        indices = getattr(filt, "indices")
        if len(mask) != num_accesses:
            self._fail(
                where,
                f"mask covers {len(mask)} accesses, trace has "
                f"{num_accesses}",
            )
        visible = int(np.count_nonzero(mask))
        channels = {
            "lines": len(lines),
            "pcs": len(getattr(filt, "pcs")),
            "writes": len(getattr(filt, "writes")),
            "vertices": len(getattr(filt, "vertices")),
            "indices": len(indices),
        }
        for channel, length in channels.items():
            if length != visible:
                self._fail(
                    where,
                    f"{channel} has {length} entries but the mask marks "
                    f"{visible} LLC-visible accesses",
                )
        if any(b <= a for a, b in zip(indices, indices[1:])):
            self._fail(
                where,
                "filtered trace indices are not strictly increasing",
            )
        if visible and (indices[0] < 0 or indices[-1] >= num_accesses):
            self._fail(where, "filtered trace indices out of range")

        l1_stats = getattr(filt, "l1_stats")
        l2_stats = getattr(filt, "l2_stats")
        expected = num_accesses
        for level_stats in (l1_stats, l2_stats):
            if level_stats is None:
                continue
            self.check_stats(level_stats, where=f"{where}/private")
            if level_stats.accesses != expected:
                self._fail(
                    where,
                    f"{level_stats.name} observed {level_stats.accesses} "
                    f"accesses, expected {expected} (the level above "
                    "missed that many)",
                )
            expected = level_stats.misses
        if visible != expected:
            self._fail(
                where,
                f"LLC-visible stream has {visible} accesses but the "
                f"private levels miss {expected}",
            )

    def check_level_chain(
        self, levels: List[CacheStats], num_accesses: int,
        where: str = "levels",
    ) -> None:
        """Miss-in/access-out conservation across hierarchy levels."""
        self.report.chain_checks += 1
        expected = num_accesses
        for stats in levels:
            self.check_stats(stats, where=where)
            if stats.accesses != expected:
                self._fail(
                    where,
                    f"{stats.name} observed {stats.accesses} accesses; "
                    f"the level above misses {expected}",
                )
            expected = stats.misses

    # ------------------------------------------------------------------
    # Belady lower bound
    # ------------------------------------------------------------------

    def record_llc_misses(
        self,
        records: Dict[object, Dict[str, int]],
        key: object,
        policy_name: str,
        misses: int,
        oracle: str = "OPT",
    ) -> None:
        """Record a policy's LLC misses and enforce the Belady bound.

        ``records`` lives on the PreparedRun (policies replaying the same
        prepared trace share it); ``key`` captures everything that must
        match for the bound to apply — private geometry and exact LLC
        geometry.
        """
        self.report.bound_checks += 1
        bucket = records.setdefault(key, {})
        bucket[policy_name] = misses
        bound = bucket.get(oracle)
        if bound is None:
            return
        for name, observed in sorted(bucket.items()):
            if observed < bound:
                self._fail(
                    "belady",
                    f"{name} reports {observed} LLC misses, below "
                    f"{oracle}'s {bound} on the identical replay: "
                    "Belady's MIN is optimal, so this is a bookkeeping "
                    "bug",
                )

    # ------------------------------------------------------------------
    # End-of-replay bundle
    # ------------------------------------------------------------------

    def check_end_of_replay(
        self,
        llc: SetAssociativeCache,
        levels: List[CacheStats],
        num_accesses: int,
        filt: Optional[object] = None,
    ) -> None:
        """Everything, once, after the last access."""
        self.check_cache(llc)
        self.check_stats(llc.stats)
        self.check_policy_state(llc)
        if filt is not None:
            self.check_filter(filt)
        self.check_level_chain(levels, num_accesses)
