"""Multi-level cache hierarchy.

Non-inclusive three-level model: an access probes L1, then L2, then LLC;
every miss fills the missing levels on the way back (the common
fill-on-miss policy). The simulator returns the level that served the
access, which the timing model converts to cycles.
"""

from __future__ import annotations

from typing import List, Optional

from .cache import AccessContext, SetAssociativeCache
from .config import HierarchyConfig
from .stats import CacheStats

__all__ = ["CacheHierarchy", "LEVEL_L1", "LEVEL_L2", "LEVEL_LLC", "LEVEL_DRAM"]

LEVEL_L1 = 1
LEVEL_L2 = 2
LEVEL_LLC = 3
LEVEL_DRAM = 4


class CacheHierarchy:
    """L1 -> L2 -> LLC -> DRAM access path for a single access stream.

    The LLC's replacement policy is the experiment variable; L1/L2 always
    run Bit-PLRU per Table I. L1/L2 are optional (LLC-only runs are faster
    and match cache-only locality studies).
    """

    def __init__(
        self,
        config: HierarchyConfig,
        llc_policy,
        l1_policy=None,
        l2_policy=None,
    ) -> None:
        from ..policies.plru import BitPLRU  # local import avoids a cycle

        self.config = config
        self.line_shift = config.line_size.bit_length() - 1
        self.l1: Optional[SetAssociativeCache] = None
        self.l2: Optional[SetAssociativeCache] = None
        if config.l1 is not None:
            self.l1 = SetAssociativeCache(
                config.l1, l1_policy if l1_policy is not None else BitPLRU()
            )
        if config.l2 is not None:
            self.l2 = SetAssociativeCache(
                config.l2, l2_policy if l2_policy is not None else BitPLRU()
            )
        self.llc = SetAssociativeCache(config.llc, llc_policy)
        self.level_counts = [0, 0, 0, 0, 0]  # index by LEVEL_* constants

    def access(self, addr: int, ctx: AccessContext) -> int:
        """Access a byte address; returns the level that supplied the data."""
        line_addr = addr >> self.line_shift
        level = self.access_line(line_addr, ctx)
        return level

    def access_line(self, line_addr: int, ctx: AccessContext) -> int:
        """Access an already line-granular address."""
        if self.l1 is not None and self.l1.access(line_addr, ctx):
            self.level_counts[LEVEL_L1] += 1
            return LEVEL_L1
        if self.l2 is not None and self.l2.access(line_addr, ctx):
            self.level_counts[LEVEL_L2] += 1
            return LEVEL_L2
        if self.llc.access(line_addr, ctx):
            self.level_counts[LEVEL_LLC] += 1
            return LEVEL_LLC
        self.level_counts[LEVEL_DRAM] += 1
        return LEVEL_DRAM

    # ------------------------------------------------------------------

    @property
    def llc_stats(self) -> CacheStats:
        return self.llc.stats

    def all_stats(self) -> List[CacheStats]:
        stats = []
        if self.l1 is not None:
            stats.append(self.l1.stats)
        if self.l2 is not None:
            stats.append(self.l2.stats)
        stats.append(self.llc.stats)
        return stats

    def stats_snapshot(self) -> List[CacheStats]:
        """Independent copies of every level's stats (result records)."""
        return [stats.copy() for stats in self.all_stats()]

    def dram_accesses(self) -> int:
        """Accesses that went all the way to memory."""
        return self.level_counts[LEVEL_DRAM]
