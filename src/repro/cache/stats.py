"""Hit/miss accounting for caches and whole simulations."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["CacheStats", "MPKI_INSTRUCTIONS_PER_ACCESS"]

#: Instructions retired per memory access, used to convert miss counts into
#: the paper's Misses-Per-Kilo-Instruction metric. Graph kernels execute a
#: few ALU/branch instructions per load; GAP-style kernels measure ~3-4.
MPKI_INSTRUCTIONS_PER_ACCESS = 3.5


@dataclass
class CacheStats:
    """Counters for a single cache level."""

    name: str = "cache"
    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    def record_hit(self) -> None:
        self.accesses += 1
        self.hits += 1

    def record_miss(self) -> None:
        self.accesses += 1
        self.misses += 1

    @property
    def miss_rate(self) -> float:
        """Fraction of accesses that miss (0 when never accessed)."""
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def hit_rate(self) -> float:
        return 1.0 - self.miss_rate if self.accesses else 0.0

    def mpki(self, instructions: int) -> float:
        """Misses per kilo-instruction."""
        return 1000.0 * self.misses / instructions if instructions else 0.0

    def copy(self) -> "CacheStats":
        """Independent snapshot of all counters.

        ``SimResult`` and the replay-engine filter cache hold snapshots
        rather than live stat blocks; copying here (instead of
        field-by-field at every call site) means a new counter can't be
        silently dropped from results.
        """
        return CacheStats(
            name=self.name,
            accesses=self.accesses,
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
            writebacks=self.writebacks,
        )

    def merged_with(self, other: "CacheStats") -> "CacheStats":
        """Sum of two stat blocks (multi-iteration aggregation)."""
        return CacheStats(
            name=self.name,
            accesses=self.accesses + other.accesses,
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            evictions=self.evictions + other.evictions,
            writebacks=self.writebacks + other.writebacks,
        )

    def as_dict(self) -> Dict[str, float]:
        return {
            "accesses": self.accesses,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "miss_rate": round(self.miss_rate, 4),
        }
