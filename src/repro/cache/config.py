"""Cache geometry and hierarchy configuration (paper Table I)."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from ..errors import CacheConfigError

__all__ = [
    "CacheConfig",
    "HierarchyConfig",
    "paper_table1",
    "scaled_hierarchy",
    "DRAM_LATENCY_NS",
    "CORE_FREQUENCY_GHZ",
]

#: Table I: DRAM base access latency and core clock.
DRAM_LATENCY_NS = 173.0
CORE_FREQUENCY_GHZ = 2.266


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and access latency of one cache level."""

    name: str
    num_sets: int
    num_ways: int
    line_size: int = 64
    load_to_use_cycles: int = 3

    def __post_init__(self) -> None:
        # Non-power-of-two set counts are allowed (the paper's 24 MiB LLC
        # has 24576 sets; its footnote 3 gives the modulo indexing).
        if self.num_sets <= 0:
            raise CacheConfigError(
                f"{self.name}: num_sets must be positive"
            )
        if self.num_ways <= 0:
            raise CacheConfigError(f"{self.name}: num_ways must be positive")
        if self.line_size <= 0 or self.line_size & (self.line_size - 1):
            raise CacheConfigError(
                f"{self.name}: line_size must be a positive power of two"
            )

    @property
    def capacity_bytes(self) -> int:
        """Total data capacity."""
        return self.num_sets * self.num_ways * self.line_size

    @property
    def way_bytes(self) -> int:
        """Bytes held by a single way across all sets (one P-OPT
        reservation unit)."""
        return self.num_sets * self.line_size

    def with_ways(self, num_ways: int) -> "CacheConfig":
        """Same geometry with a different associativity (way partitioning)."""
        return replace(self, num_ways=num_ways)

    @property
    def sets_are_power_of_two(self) -> bool:
        return self.num_sets & (self.num_sets - 1) == 0

    def set_index(self, line_addr: int) -> int:
        """Set index for a line-granular address (mask when possible,
        modulo otherwise — the paper's footnote 3)."""
        if self.sets_are_power_of_two:
            return line_addr & (self.num_sets - 1)
        return line_addr % self.num_sets


@dataclass(frozen=True)
class HierarchyConfig:
    """A (up to) three-level hierarchy plus memory timing.

    ``l1`` and ``l2`` may be ``None`` for an LLC-only simulation (faster;
    matches locality-only studies where private caches barely filter the
    irregular stream).
    """

    llc: CacheConfig
    l1: Optional[CacheConfig] = None
    l2: Optional[CacheConfig] = None
    dram_latency_ns: float = DRAM_LATENCY_NS
    frequency_ghz: float = CORE_FREQUENCY_GHZ
    num_nuca_banks: int = 8

    def __post_init__(self) -> None:
        line = self.llc.line_size
        for level in (self.l1, self.l2):
            if level is not None and level.line_size != line:
                raise CacheConfigError("all levels must share one line size")
        if self.num_nuca_banks <= 0:
            raise CacheConfigError("num_nuca_banks must be positive")

    @property
    def line_size(self) -> int:
        return self.llc.line_size

    @property
    def dram_latency_cycles(self) -> int:
        """DRAM latency in core cycles (Table I: 173 ns at 2.266 GHz)."""
        return int(round(self.dram_latency_ns * self.frequency_ghz))


def paper_table1(num_cores: int = 8) -> HierarchyConfig:
    """The paper's simulated machine (Table I), full size.

    L1D 32 KiB 8-way, L2 256 KiB 8-way, LLC 3 MiB/core 16-way. The LLC's
    load-to-use is 21 cycles (local NUCA bank).
    """
    llc_bytes = 3 * 1024 * 1024 * num_cores
    llc_sets = llc_bytes // (16 * 64)
    return HierarchyConfig(
        l1=CacheConfig("L1", num_sets=64, num_ways=8, load_to_use_cycles=3),
        l2=CacheConfig("L2", num_sets=512, num_ways=8, load_to_use_cycles=8),
        llc=CacheConfig(
            "LLC", num_sets=llc_sets, num_ways=16, load_to_use_cycles=21
        ),
        num_nuca_banks=num_cores,
    )


def scaled_hierarchy(
    scale: str = "small", llc_ways: int = 16
) -> HierarchyConfig:
    """A hierarchy scaled to match the scaled-down graph datasets.

    Keeps Table I's structure (8-way L1/L2, 16-way LLC, same latencies)
    while shrinking capacities so that the Table III stand-in graphs at
    the same scale still dwarf the LLC. The governing ratio is the
    paper's: per-vertex irregular data spans roughly 3-5x the LLC's line
    capacity (18-33 M vertices x 4 B against a 24 MiB LLC), so every
    experiment stays in the working-set >> LLC regime.
    """
    llc_sets_by_scale = {
        "tiny": 8,        # 8 KiB LLC for 1 K-vertex unit-test graphs
        "small": 16,      # 16 KiB LLC vs 64 KiB srcData at 16 K vertices
        "medium": 64,     # 64 KiB LLC vs 256 KiB srcData at 64 K vertices
        "large": 256,     # 256 KiB LLC vs 1 MiB srcData at 256 K vertices
    }
    if scale not in llc_sets_by_scale:
        raise CacheConfigError(
            f"unknown scale {scale!r}; choose from {sorted(llc_sets_by_scale)}"
        )
    llc_sets = llc_sets_by_scale[scale]
    l1_sets = max(2, llc_sets // 8)
    l2_sets = max(4, llc_sets // 2)
    return HierarchyConfig(
        l1=CacheConfig("L1", num_sets=l1_sets, num_ways=8,
                       load_to_use_cycles=3),
        l2=CacheConfig("L2", num_sets=l2_sets, num_ways=8,
                       load_to_use_cycles=8),
        llc=CacheConfig("LLC", num_sets=llc_sets, num_ways=llc_ways,
                        load_to_use_cycles=21),
    )
