"""Structural measurements over graphs (degree statistics, skew, components).

Used by dataset registration (Table III reporting) and by tests that assert
each synthetic generator lands in its intended structural class.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .csr import CSRGraph

__all__ = ["DegreeStats", "degree_stats", "degree_skew", "num_weakly_connected"]


@dataclass(frozen=True)
class DegreeStats:
    """Summary of a graph's out-degree distribution."""

    num_vertices: int
    num_edges: int
    avg_degree: float
    max_degree: int
    median_degree: float
    skew: float

    def as_row(self) -> dict:
        """Table-friendly dict (used when printing Table III)."""
        return {
            "vertices": self.num_vertices,
            "edges": self.num_edges,
            "avg_deg": round(self.avg_degree, 2),
            "max_deg": self.max_degree,
            "median_deg": self.median_degree,
            "skew": round(self.skew, 2),
        }


def degree_skew(graph: CSRGraph) -> float:
    """Ratio of max out-degree to average out-degree.

    Power-law / Kronecker graphs have skew in the hundreds-to-thousands;
    uniform and mesh graphs have skew close to 1.
    """
    degrees = graph.degrees()
    if graph.num_edges == 0:
        return 0.0
    return float(degrees.max() / degrees.mean())


def degree_stats(graph: CSRGraph) -> DegreeStats:
    """Compute :class:`DegreeStats` for ``graph``."""
    degrees = graph.degrees()
    if graph.num_vertices == 0:
        return DegreeStats(0, 0, 0.0, 0, 0.0, 0.0)
    return DegreeStats(
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        avg_degree=float(degrees.mean()) if len(degrees) else 0.0,
        max_degree=int(degrees.max()) if len(degrees) else 0,
        median_degree=float(np.median(degrees)) if len(degrees) else 0.0,
        skew=degree_skew(graph),
    )


def num_weakly_connected(graph: CSRGraph) -> int:
    """Number of weakly connected components (union-find over edges)."""
    parent = np.arange(graph.num_vertices, dtype=np.int64)

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    for src, dst in graph.edges():
        root_src, root_dst = find(src), find(dst)
        if root_src != root_dst:
            parent[root_src] = root_dst
    roots = {find(v) for v in range(graph.num_vertices)}
    return len(roots)
