"""Graph serialization: text edge lists (.el) and binary CSR (.npz)."""

from __future__ import annotations

import os
from typing import Union

import numpy as np

from ..errors import GraphFormatError
from .builders import from_edges
from .csr import CSRGraph

__all__ = [
    "save_edge_list",
    "load_edge_list",
    "save_weighted_edge_list",
    "load_weighted_edge_list",
    "save_csr",
    "load_csr",
]

PathLike = Union[str, "os.PathLike[str]"]


def save_edge_list(graph: CSRGraph, path: PathLike) -> None:
    """Write ``graph`` as a whitespace-separated ``src dst`` text file.

    The format matches the GAP benchmark suite's ``.el`` files.
    """
    edges = graph.edge_array()
    with open(path, "w", encoding="ascii") as handle:
        handle.write(f"# vertices {graph.num_vertices}\n")
        for src, dst in edges:
            handle.write(f"{src} {dst}\n")


def load_edge_list(path: PathLike, num_vertices: int = None) -> CSRGraph:
    """Read a ``src dst`` text file written by :func:`save_edge_list`.

    A leading ``# vertices N`` comment pins the vertex count; otherwise it
    is inferred from the maximum ID. Blank lines and ``#`` comments are
    skipped.
    """
    edges = []
    with open(path, "r", encoding="ascii") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                parts = line[1:].split()
                if len(parts) == 2 and parts[0] == "vertices":
                    num_vertices = int(parts[1])
                continue
            parts = line.split()
            if len(parts) < 2:
                raise GraphFormatError(
                    f"{path}:{line_number}: expected 'src dst', got {line!r}"
                )
            edges.append((int(parts[0]), int(parts[1])))
    return from_edges(edges, num_vertices=num_vertices)


def save_csr(graph: CSRGraph, path: PathLike) -> None:
    """Write ``graph`` in binary CSR form (numpy ``.npz``)."""
    np.savez_compressed(
        path, offsets=graph.offsets, neighbors=graph.neighbors
    )


def load_csr(path: PathLike) -> CSRGraph:
    """Read a graph saved by :func:`save_csr`."""
    with np.load(path) as data:
        if "offsets" not in data or "neighbors" not in data:
            raise GraphFormatError(f"{path}: not a CSR archive")
        return CSRGraph(
            offsets=data["offsets"], neighbors=data["neighbors"]
        )


def save_weighted_edge_list(graph: CSRGraph, weights, path: PathLike) -> None:
    """Write ``src dst weight`` lines (the GAP suite's ``.wel`` format).

    ``weights`` holds one integer weight per CSR edge, in edge order.
    """
    weights = np.asarray(weights)
    if len(weights) != graph.num_edges:
        raise GraphFormatError(
            f"expected {graph.num_edges} weights, got {len(weights)}"
        )
    edges = graph.edge_array()
    with open(path, "w", encoding="ascii") as handle:
        handle.write(f"# vertices {graph.num_vertices}\n")
        for (src, dst), weight in zip(edges, weights):
            handle.write(f"{src} {dst} {weight}\n")


def load_weighted_edge_list(path: PathLike, num_vertices: int = None):
    """Read a ``.wel`` file; returns ``(graph, weights)``.

    Weights are returned in the graph's edge order (edges are re-sorted
    by (src, dst) during CSR construction).
    """
    records = []
    with open(path, "r", encoding="ascii") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                parts = line[1:].split()
                if len(parts) == 2 and parts[0] == "vertices":
                    num_vertices = int(parts[1])
                continue
            parts = line.split()
            if len(parts) < 3:
                raise GraphFormatError(
                    f"{path}:{line_number}: expected 'src dst weight', "
                    f"got {line!r}"
                )
            records.append((int(parts[0]), int(parts[1]), int(parts[2])))
    if not records:
        graph = from_edges([], num_vertices=num_vertices or 0)
        return graph, np.empty(0, dtype=np.int64)
    array = np.asarray(records, dtype=np.int64)
    graph = from_edges(array[:, :2], num_vertices=num_vertices)
    # Reorder weights to match the CSR's (src, dst)-sorted edge order.
    order = np.lexsort((array[:, 1], array[:, 0]))
    return graph, array[order, 2]
