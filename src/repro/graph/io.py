"""Graph serialization and real-graph ingestion.

Formats:

- ``.el``  — SNAP/GAP-style text edge list (``src dst`` per line).
- ``.wel`` — weighted text edge list (``src dst weight`` per line).
- ``.mtx`` — MatrixMarket coordinate files (pattern/integer/real,
  general or symmetric) as published by SuiteSparse and many archives.
- ``.sg``  — the GAP benchmark suite's serialized binary CSR.
- ``.npz`` — this library's own binary CSR archive.

Text loaders parse in fixed-size byte blocks: each block is normalized
(CRLF and lone ``\\r`` endings, tab or space separators), comment lines
are filtered, and the surviving tokens are converted with one vectorized
``np.array(block.split(), dtype=...)`` call — no per-line Python loop.
The trailing partial line of every block carries into the next, so
blocks always cover whole lines. CSR construction streams the chunks
through :func:`repro.graph.builders.from_edges_chunked` (two passes over
the file), so edge files much larger than the resident trace working
set ingest without ever materializing a full ``(E, 2)`` edge array.

All loaders funnel malformed input into :class:`GraphFormatError` with
the offending path (and line, where known) — never a downstream
``IndexError``. Binary CSR payloads (``.npz``, ``.sg``) pass through
:func:`validate_csr_arrays` before a :class:`CSRGraph` is built.
"""

from __future__ import annotations

import os
import zipfile
from typing import (
    BinaryIO,
    Callable,
    Dict,
    Iterable,
    Iterator,
    Optional,
    Tuple,
    Union,
)

import numpy as np

from ..errors import GraphFormatError
from .builders import from_edges_chunked
from .csr import CSRGraph

__all__ = [
    "GRAPH_FORMATS",
    "save_edge_list",
    "load_edge_list",
    "save_weighted_edge_list",
    "load_weighted_edge_list",
    "save_csr",
    "load_csr",
    "save_matrix_market",
    "load_matrix_market",
    "save_gap_binary",
    "load_gap_binary",
    "load_graph",
    "validate_csr_arrays",
]

PathLike = Union[str, "os.PathLike[str]"]

#: Bytes of text parsed per block by the chunked loaders. Small enough
#: to keep one block cache-resident, large enough to amortize the numpy
#: conversion call.
DEFAULT_CHUNK_BYTES = 1 << 22

#: Edges per ``np.savetxt`` block in the text writers.
_WRITE_BLOCK_EDGES = 1 << 16

#: Comment prefixes tolerated in text edge lists (SNAP uses ``#``,
#: MatrixMarket and some converters use ``%``).
_COMMENT_PREFIXES = (b"#", b"%")

# GAP .sg serialization: <flag:u8> <num_edges:i64> <num_vertices:i64>
# <offsets:i64[n+1]> <neighbors:i32[m]> and, when the flag marks the
# graph directed, the same pair again for the inverse (in-neighbor)
# direction. Explicit little-endian dtypes keep files portable.
_SG_OFFSET_DTYPE = np.dtype("<i8")
_SG_NEIGHBOR_DTYPE = np.dtype("<i4")


# ----------------------------------------------------------------------
# Shared validation
# ----------------------------------------------------------------------


def _coerce_integral(
    array: np.ndarray, dtype: np.dtype, what: str, where: str
) -> np.ndarray:
    """Coerce ``array`` to an integral dtype, rejecting lossy casts."""
    array = np.asarray(array)
    if array.dtype == dtype:
        return array
    if np.issubdtype(array.dtype, np.floating):
        if array.size and not np.all(np.isfinite(array)):
            raise GraphFormatError(f"{where}: non-finite {what}")
        if array.size and not np.array_equal(array, np.trunc(array)):
            raise GraphFormatError(f"{where}: fractional {what}")
    elif not (
        np.issubdtype(array.dtype, np.integer)
        or np.issubdtype(array.dtype, np.bool_)
    ):
        raise GraphFormatError(
            f"{where}: {what} has non-numeric dtype {array.dtype}"
        )
    return array.astype(dtype)


def validate_csr_arrays(
    offsets: np.ndarray, neighbors: np.ndarray, where: str = "CSR arrays"
) -> Tuple[np.ndarray, np.ndarray]:
    """Validate and coerce raw CSR arrays before building a graph.

    Checks everything a corrupt archive can violate — offsets present,
    1-D, starting at 0, monotonically non-decreasing, ending exactly at
    ``len(neighbors)``, and neighbor IDs non-negative and in range —
    raising :class:`GraphFormatError` tagged with ``where`` (typically
    the file path) instead of letting a later traversal hit a raw
    ``IndexError``. Returns ``(offsets, neighbors)`` coerced to the
    library's canonical int64/int32 dtypes.
    """
    offsets = np.asarray(offsets)
    neighbors = np.asarray(neighbors)
    if offsets.ndim != 1 or neighbors.ndim != 1:
        raise GraphFormatError(
            f"{where}: offsets and neighbors must be 1-D arrays"
        )
    offsets = _coerce_integral(offsets, np.dtype(np.int64), "offsets", where)
    neighbors = _coerce_integral(
        neighbors, np.dtype(np.int32), "neighbor IDs", where
    )
    if len(offsets) == 0:
        raise GraphFormatError(f"{where}: offsets array is empty")
    if offsets[0] != 0:
        raise GraphFormatError(
            f"{where}: offsets must start at 0, got {int(offsets[0])}"
        )
    if len(offsets) > 1 and bool(np.any(np.diff(offsets) < 0)):
        raise GraphFormatError(f"{where}: offsets are not monotonic")
    if int(offsets[-1]) != len(neighbors):
        raise GraphFormatError(
            f"{where}: offsets end at {int(offsets[-1])} but there are "
            f"{len(neighbors)} neighbors"
        )
    num_vertices = len(offsets) - 1
    if len(neighbors):
        low = int(neighbors.min())
        high = int(neighbors.max())
        if low < 0:
            raise GraphFormatError(f"{where}: negative neighbor ID {low}")
        if high >= num_vertices:
            raise GraphFormatError(
                f"{where}: neighbor ID {high} out of range for "
                f"{num_vertices} vertices"
            )
    return offsets, neighbors


def _sorted_segments(offsets: np.ndarray, neighbors: np.ndarray) -> bool:
    """True if every CSR segment's neighbor list is ascending."""
    if len(neighbors) < 2:
        return True
    diffs = np.diff(neighbors.astype(np.int64))
    within = np.ones(len(diffs), dtype=bool)
    boundaries = offsets[1:-1] - 1
    boundaries = boundaries[(boundaries >= 0) & (boundaries < len(diffs))]
    within[boundaries] = False
    return not bool(np.any(diffs[within] < 0))


def _csr_from_validated(
    offsets: np.ndarray, neighbors: np.ndarray
) -> CSRGraph:
    """Build a graph, restoring the sorted-neighbor invariant if the
    external file stored unsorted adjacency lists (T-OPT's transpose
    walks binary-search them)."""
    if not _sorted_segments(offsets, neighbors):
        num_vertices = len(offsets) - 1
        sources = np.repeat(
            np.arange(num_vertices, dtype=np.int64), np.diff(offsets)
        )
        neighbors = neighbors[np.lexsort((neighbors, sources))]
    return CSRGraph(offsets=offsets, neighbors=neighbors)


# ----------------------------------------------------------------------
# Chunked text tokenization
# ----------------------------------------------------------------------


def _scan_directive(comment: bytes, directives: Dict[str, int]) -> None:
    """Record ``# vertices N`` style metadata found in a comment line."""
    parts = comment.lstrip(b"#%").split()
    if len(parts) == 2 and parts[0] == b"vertices":
        try:
            directives["vertices"] = int(parts[1])
        except ValueError:
            pass


def _block_tokens(
    block: bytes,
    path: PathLike,
    directives: Dict[str, int],
    dtype: np.dtype,
) -> Optional[np.ndarray]:
    """Tokenize one block of whole lines into a flat numeric array."""
    block = block.replace(b"\r", b"\n")  # CRLF / bare-CR dumps
    if any(prefix in block for prefix in _COMMENT_PREFIXES):
        kept = []
        for line in block.split(b"\n"):
            stripped = line.strip()
            if not stripped:
                continue
            if stripped[:1] in _COMMENT_PREFIXES:
                _scan_directive(stripped, directives)
                continue
            kept.append(line)
        if not kept:
            return None
        block = b"\n".join(kept)
    tokens = block.split()
    if not tokens:
        return None
    try:
        return np.array(tokens, dtype=dtype)
    except (ValueError, OverflowError):
        raise GraphFormatError(
            f"{path}: non-numeric token in edge data"
        ) from None


def _iter_token_blocks(
    handle: BinaryIO,
    path: PathLike,
    directives: Dict[str, int],
    chunk_bytes: int,
    dtype: np.dtype,
) -> Iterator[np.ndarray]:
    """Yield token arrays from fixed-size blocks covering whole lines."""
    carry = b""
    while True:
        block = handle.read(chunk_bytes)
        if not block:
            break
        block = carry + block
        cut = block.rfind(b"\n")
        if cut < 0:
            carry = block
            continue
        carry = block[cut + 1:]
        tokens = _block_tokens(block[:cut + 1], path, directives, dtype)
        if tokens is not None:
            yield tokens
    if carry:
        tokens = _block_tokens(carry, path, directives, dtype)
        if tokens is not None:
            yield tokens


def _raise_misaligned(path: PathLike, columns: int, label: str) -> None:
    """Re-read ``path`` line-by-line to pinpoint the malformed line.

    Only runs on the error path: the fast block tokenizer detects a
    column-count mismatch without line numbers, then this slow pass
    recovers the diagnostic the block parse gave up.
    """
    with open(path, "rb") as handle:
        for line_number, raw in enumerate(handle, start=1):
            stripped = raw.strip()
            if not stripped or stripped[:1] in _COMMENT_PREFIXES:
                continue
            if len(stripped.split()) != columns:
                raise GraphFormatError(
                    f"{path}:{line_number}: expected {label!r}, got "
                    f"{stripped.decode('ascii', 'replace')!r}"
                )
    raise GraphFormatError(f"{path}: token count is not a multiple of "
                           f"{columns} ({label!r} lines expected)")


def _edge_token_chunks(
    path: PathLike,
    directives: Dict[str, int],
    chunk_bytes: int,
    columns: int,
    label: str,
) -> Iterator[np.ndarray]:
    """Yield ``(E_i, columns)`` int64 arrays from a text edge file."""
    with open(path, "rb") as handle:
        for tokens in _iter_token_blocks(
            handle, path, directives, chunk_bytes, np.dtype(np.int64)
        ):
            if tokens.size % columns:
                _raise_misaligned(path, columns, label)
            yield tokens.reshape(-1, columns)


def _directive_resolver(
    directives: Dict[str, int], fallback: Optional[int]
) -> Callable[[], Optional[int]]:
    """A ``# vertices N`` directive wins over the caller's argument,
    matching the historical loader semantics."""

    def resolve() -> Optional[int]:
        return directives.get("vertices", fallback)

    return resolve


# ----------------------------------------------------------------------
# Text edge lists (.el / .wel)
# ----------------------------------------------------------------------


def save_edge_list(graph: CSRGraph, path: PathLike) -> None:
    """Write ``graph`` as a whitespace-separated ``src dst`` text file.

    The format matches the GAP benchmark suite's ``.el`` files. Rows go
    out in buffered ``np.savetxt`` blocks rather than one Python-level
    ``write`` per edge.
    """
    edges = graph.edge_array()
    with open(path, "w", encoding="ascii") as handle:
        handle.write(f"# vertices {graph.num_vertices}\n")
        for start in range(0, len(edges), _WRITE_BLOCK_EDGES):
            np.savetxt(
                handle, edges[start:start + _WRITE_BLOCK_EDGES], fmt="%d"
            )


def load_edge_list(
    path: PathLike,
    num_vertices: Optional[int] = None,
    chunk_bytes: int = DEFAULT_CHUNK_BYTES,
) -> CSRGraph:
    """Read a ``src dst`` text file (SNAP / GAP ``.el`` style).

    A ``# vertices N`` comment pins the vertex count; otherwise it is
    inferred from the maximum ID. Blank lines and ``#``/``%`` comments
    are skipped; tabs and CRLF line endings (both appear in real SNAP
    dumps) are tolerated. Parsing is block-wise — see the module
    docstring — so multi-gigabyte edge lists stream.
    """
    directives: Dict[str, int] = {}

    def chunks() -> Iterator[np.ndarray]:
        return _edge_token_chunks(
            path, directives, chunk_bytes, 2, "src dst"
        )

    graph = from_edges_chunked(
        chunks,
        resolve_num_vertices=_directive_resolver(directives, num_vertices),
    )
    assert isinstance(graph, CSRGraph)
    return graph


def save_weighted_edge_list(
    graph: CSRGraph, weights: Iterable[int], path: PathLike
) -> None:
    """Write ``src dst weight`` lines (the GAP suite's ``.wel`` format).

    ``weights`` holds one integer weight per CSR edge, in edge order.
    """
    weight_array = np.asarray(weights)
    if len(weight_array) != graph.num_edges:
        raise GraphFormatError(
            f"expected {graph.num_edges} weights, got {len(weight_array)}"
        )
    edges = graph.edge_array()
    with open(path, "w", encoding="ascii") as handle:
        handle.write(f"# vertices {graph.num_vertices}\n")
        for start in range(0, len(edges), _WRITE_BLOCK_EDGES):
            stop = start + _WRITE_BLOCK_EDGES
            np.savetxt(
                handle,
                np.column_stack(
                    [edges[start:stop], weight_array[start:stop]]
                ),
                fmt="%d",
            )


def load_weighted_edge_list(
    path: PathLike,
    num_vertices: Optional[int] = None,
    chunk_bytes: int = DEFAULT_CHUNK_BYTES,
) -> Tuple[CSRGraph, np.ndarray]:
    """Read a ``.wel`` file; returns ``(graph, weights)``.

    Weights come back in the graph's edge order: edges are re-sorted by
    ``(src, dst)`` during CSR construction and each weight follows its
    edge (parallel edges keep file order). Separator/comment/line-ending
    tolerance matches :func:`load_edge_list`.
    """
    directives: Dict[str, int] = {}

    def chunks() -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        for block in _edge_token_chunks(
            path, directives, chunk_bytes, 3, "src dst weight"
        ):
            yield block[:, :2], block[:, 2]

    result = from_edges_chunked(
        chunks,
        resolve_num_vertices=_directive_resolver(directives, num_vertices),
        with_payload=True,
    )
    assert isinstance(result, tuple)
    return result


# ----------------------------------------------------------------------
# Binary CSR archives (.npz)
# ----------------------------------------------------------------------


def save_csr(graph: CSRGraph, path: PathLike) -> None:
    """Write ``graph`` in binary CSR form (numpy ``.npz``)."""
    np.savez_compressed(
        path, offsets=graph.offsets, neighbors=graph.neighbors
    )


def load_csr(path: PathLike) -> CSRGraph:
    """Read a graph saved by :func:`save_csr`.

    Corrupt archives — truncated zip members, missing arrays, wrong
    dtypes, non-monotonic offsets, out-of-range neighbor IDs — raise
    :class:`GraphFormatError` naming the path, instead of surfacing
    later as a raw ``IndexError`` mid-simulation.
    """
    try:
        with np.load(path) as data:
            if "offsets" not in data or "neighbors" not in data:
                raise GraphFormatError(
                    f"{path}: not a CSR archive (offsets/neighbors missing)"
                )
            offsets = np.array(data["offsets"])
            neighbors = np.array(data["neighbors"])
    except (OSError, ValueError, EOFError, zipfile.BadZipFile) as exc:
        raise GraphFormatError(f"{path}: unreadable CSR archive ({exc})")
    offsets, neighbors = validate_csr_arrays(offsets, neighbors, str(path))
    return _csr_from_validated(offsets, neighbors)


# ----------------------------------------------------------------------
# MatrixMarket coordinate files (.mtx)
# ----------------------------------------------------------------------

_MTX_FIELDS = ("pattern", "integer", "real")
_MTX_SYMMETRIES = ("general", "symmetric")


def _read_mtx_header(
    handle: BinaryIO, path: PathLike
) -> Tuple[str, str, int, int, int, int]:
    """Parse the banner + size line; returns
    ``(field, symmetry, rows, cols, nnz, data_offset)``."""
    banner = handle.readline().split()
    if len(banner) != 5 or banner[0].lower() != b"%%matrixmarket":
        raise GraphFormatError(f"{path}: missing MatrixMarket banner")
    kind, layout, field, symmetry = (
        token.decode("ascii", "replace").lower() for token in banner[1:]
    )
    if kind != "matrix" or layout != "coordinate":
        raise GraphFormatError(
            f"{path}: only 'matrix coordinate' MatrixMarket files are "
            f"supported, got '{kind} {layout}'"
        )
    if field not in _MTX_FIELDS:
        raise GraphFormatError(
            f"{path}: unsupported MatrixMarket field {field!r} "
            f"(supported: {', '.join(_MTX_FIELDS)})"
        )
    if symmetry not in _MTX_SYMMETRIES:
        raise GraphFormatError(
            f"{path}: unsupported MatrixMarket symmetry {symmetry!r} "
            f"(supported: {', '.join(_MTX_SYMMETRIES)})"
        )
    while True:
        line = handle.readline()
        if not line:
            raise GraphFormatError(f"{path}: missing MatrixMarket size line")
        stripped = line.strip()
        if not stripped or stripped.startswith(b"%"):
            continue
        parts = stripped.split()
        if len(parts) != 3:
            raise GraphFormatError(
                f"{path}: malformed size line "
                f"{stripped.decode('ascii', 'replace')!r}"
            )
        try:
            rows, cols, nnz = (int(part) for part in parts)
        except ValueError:
            raise GraphFormatError(
                f"{path}: non-integer MatrixMarket size line"
            ) from None
        if rows < 0 or cols < 0 or nnz < 0:
            raise GraphFormatError(f"{path}: negative MatrixMarket sizes")
        return field, symmetry, rows, cols, nnz, handle.tell()


def load_matrix_market(
    path: PathLike, chunk_bytes: int = DEFAULT_CHUNK_BYTES
) -> CSRGraph:
    """Read a MatrixMarket coordinate file as a directed graph.

    Entry ``i j [value]`` becomes edge ``i-1 -> j-1`` (values are
    dropped; ``real`` and ``integer`` fields are accepted so weighted
    matrices ingest as topology). ``symmetric`` files mirror every
    off-diagonal entry, matching the usual adjacency interpretation.
    Entries stream through the same chunked tokenizer as the edge-list
    loaders.
    """
    with open(path, "rb") as handle:
        field, symmetry, rows, cols, nnz, data_offset = _read_mtx_header(
            handle, path
        )
    columns = 2 if field == "pattern" else 3
    token_dtype = np.dtype(
        np.float64 if field == "real" else np.int64
    )
    num_vertices = max(rows, cols)
    seen = {"entries": 0}

    def chunks() -> Iterator[np.ndarray]:
        seen["entries"] = 0
        directives: Dict[str, int] = {}
        with open(path, "rb") as handle:
            handle.seek(data_offset)
            for tokens in _iter_token_blocks(
                handle, path, directives, chunk_bytes, token_dtype
            ):
                if tokens.size % columns:
                    _raise_misaligned(
                        path, columns,
                        "i j" if columns == 2 else "i j value",
                    )
                pairs = tokens.reshape(-1, columns)[:, :2]
                pairs = pairs.astype(np.int64) - 1  # 1-indexed entries
                seen["entries"] += len(pairs)
                if symmetry == "symmetric":
                    mirrored = pairs[pairs[:, 0] != pairs[:, 1]]
                    pairs = np.vstack([pairs, mirrored[:, ::-1]])
                yield pairs

    graph = from_edges_chunked(chunks, num_vertices=num_vertices)
    if seen["entries"] != nnz:
        raise GraphFormatError(
            f"{path}: size line declares {nnz} entries but file holds "
            f"{seen['entries']}"
        )
    assert isinstance(graph, CSRGraph)
    return graph


def save_matrix_market(
    graph: CSRGraph, path: PathLike, comment: str = ""
) -> None:
    """Write ``graph`` as a ``pattern general`` MatrixMarket file."""
    edges = graph.edge_array()
    with open(path, "w", encoding="ascii") as handle:
        handle.write("%%MatrixMarket matrix coordinate pattern general\n")
        if comment:
            handle.write(f"% {comment}\n")
        handle.write(
            f"{graph.num_vertices} {graph.num_vertices} "
            f"{graph.num_edges}\n"
        )
        for start in range(0, len(edges), _WRITE_BLOCK_EDGES):
            np.savetxt(
                handle,
                edges[start:start + _WRITE_BLOCK_EDGES] + 1,
                fmt="%d",
            )


# ----------------------------------------------------------------------
# GAP serialized binary graphs (.sg)
# ----------------------------------------------------------------------


def _read_exact(
    handle: BinaryIO, dtype: np.dtype, count: int, path: PathLike,
    what: str,
) -> np.ndarray:
    array = np.fromfile(handle, dtype=dtype, count=count)
    if len(array) != count:
        raise GraphFormatError(
            f"{path}: truncated .sg file while reading {what} "
            f"({len(array)}/{count} values)"
        )
    return array


def _read_sg_direction(
    handle: BinaryIO, num_vertices: int, num_edges: int, path: PathLike,
    what: str,
) -> Tuple[np.ndarray, np.ndarray]:
    offsets = _read_exact(
        handle, _SG_OFFSET_DTYPE, num_vertices + 1, path, f"{what} offsets"
    )
    neighbors = _read_exact(
        handle, _SG_NEIGHBOR_DTYPE, num_edges, path, f"{what} neighbors"
    )
    return validate_csr_arrays(offsets, neighbors, str(path))


def load_gap_binary(path: PathLike) -> CSRGraph:
    """Read a GAP-style serialized binary CSR (``.sg``).

    Layout: a directed flag byte, ``int64`` edge and vertex counts, the
    out-direction ``(offsets, neighbors)`` arrays, and — when the flag
    is set — the in-direction pair as well. Both directions pass the
    full CSR validation, and the stored inverse must agree with the out
    direction's degree profile; the returned graph is the out direction
    (its transpose is recomputed on demand rather than trusted).
    """
    with open(path, "rb") as handle:
        flag = handle.read(1)
        if flag not in (b"\x00", b"\x01"):
            raise GraphFormatError(
                f"{path}: not a .sg file (bad directed flag)"
            )
        header = _read_exact(handle, _SG_OFFSET_DTYPE, 2, path, "header")
        num_edges, num_vertices = int(header[0]), int(header[1])
        if num_edges < 0 or num_vertices < 0:
            raise GraphFormatError(f"{path}: negative .sg header counts")
        offsets, neighbors = _read_sg_direction(
            handle, num_vertices, num_edges, path, "out"
        )
        if flag == b"\x01":
            in_offsets, in_neighbors = _read_sg_direction(
                handle, num_vertices, num_edges, path, "in"
            )
            out_degrees = np.diff(offsets)
            in_degrees = np.diff(in_offsets)
            consistent = np.array_equal(
                np.bincount(neighbors, minlength=num_vertices).astype(
                    np.int64, copy=False
                ),
                in_degrees,
            ) and np.array_equal(
                np.bincount(in_neighbors, minlength=num_vertices).astype(
                    np.int64, copy=False
                ),
                out_degrees,
            )
            if not consistent:
                raise GraphFormatError(
                    f"{path}: stored in-direction is not the transpose "
                    f"of the out-direction"
                )
    return _csr_from_validated(offsets, neighbors)


def save_gap_binary(
    graph: CSRGraph, path: PathLike, include_transpose: bool = True
) -> None:
    """Write ``graph`` in GAP-style serialized binary CSR form."""
    with open(path, "wb") as handle:
        handle.write(b"\x01" if include_transpose else b"\x00")
        np.array(
            [graph.num_edges, graph.num_vertices], dtype=_SG_OFFSET_DTYPE
        ).tofile(handle)
        graph.offsets.astype(_SG_OFFSET_DTYPE).tofile(handle)
        graph.neighbors.astype(_SG_NEIGHBOR_DTYPE).tofile(handle)
        if include_transpose:
            transpose = graph.transpose()
            transpose.offsets.astype(_SG_OFFSET_DTYPE).tofile(handle)
            transpose.neighbors.astype(_SG_NEIGHBOR_DTYPE).tofile(handle)


# ----------------------------------------------------------------------
# Auto-dispatch
# ----------------------------------------------------------------------

#: Extension -> loader for :func:`load_graph` (``file:`` dataset specs).
GRAPH_FORMATS: Dict[str, Callable[[PathLike], CSRGraph]] = {
    ".el": load_edge_list,
    ".wel": lambda path: load_weighted_edge_list(path)[0],
    ".mtx": load_matrix_market,
    ".sg": load_gap_binary,
    ".npz": load_csr,
}


def load_graph(path: PathLike) -> CSRGraph:
    """Load a graph file, dispatching on its extension.

    Supports every format in :data:`GRAPH_FORMATS`; this is the loader
    behind ``file:<path>`` dataset specs (see
    :mod:`repro.graph.datasets`).
    """
    text = os.fspath(path)
    if not os.path.exists(text):
        raise GraphFormatError(f"{text}: graph file does not exist")
    suffix = os.path.splitext(text)[1].lower()
    loader = GRAPH_FORMATS.get(suffix)
    if loader is None:
        raise GraphFormatError(
            f"{text}: unsupported graph format {suffix!r} "
            f"(supported: {', '.join(sorted(GRAPH_FORMATS))})"
        )
    return loader(path)
