"""Construct :class:`~repro.graph.csr.CSRGraph` instances from edge data.

Two build paths exist:

- :func:`from_edges` materializes the whole ``(E, 2)`` edge array and
  sorts it once — the right call for in-memory edges.
- :func:`from_edges_chunked` is a two-pass streamed build over an
  *iterable of edge chunks*: pass 1 accumulates per-source degree
  counts, pass 2 scatters each chunk's neighbors directly into its
  final CSR segment. Peak memory is one chunk plus the output arrays,
  never the full ``(E, 2)`` int64 edge list — which is what lets the
  chunked text/binary loaders in :mod:`repro.graph.io` ingest edge
  files ~10x larger than the resident trace working set.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import GraphFormatError
from .csr import CSRGraph

__all__ = [
    "from_edges",
    "from_edges_chunked",
    "from_adjacency",
    "empty_graph",
    "symmetrize",
    "remove_self_loops",
    "deduplicate_edges",
]


def _as_edge_array(edges) -> np.ndarray:
    array = np.asarray(edges, dtype=np.int64)
    if array.size == 0:
        return array.reshape(0, 2)
    if array.ndim != 2 or array.shape[1] != 2:
        raise GraphFormatError("edges must be an (E, 2) array of (src, dst)")
    return array


def from_edges(
    edges,
    num_vertices: Optional[int] = None,
    *,
    dedup: bool = False,
    drop_self_loops: bool = False,
) -> CSRGraph:
    """Build a directed graph from ``(src, dst)`` pairs.

    Neighbor lists in the result are sorted, as the rest of the library
    (notably T-OPT's binary-searched transpose walks) requires.
    """
    array = _as_edge_array(edges)
    if drop_self_loops and len(array):
        array = array[array[:, 0] != array[:, 1]]
    if num_vertices is None:
        num_vertices = int(array.max()) + 1 if len(array) else 0
    if len(array):
        if array.min() < 0:
            raise GraphFormatError("negative vertex ID in edge list")
        if array.max() >= num_vertices:
            raise GraphFormatError(
                f"vertex ID {int(array.max())} exceeds num_vertices={num_vertices}"
            )
    if dedup and len(array):
        array = np.unique(array, axis=0)
    sources = array[:, 0]
    destinations = array[:, 1]
    counts = np.bincount(sources, minlength=num_vertices).astype(
        np.int64, copy=False
    )
    offsets = np.zeros(num_vertices + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    # Sort edges by (src, dst) so neighbor lists come out sorted.
    order = np.lexsort((destinations, sources))
    # IDs were validated < num_vertices above, and num_vertices fits the
    # WIDTH_CONTRACTS["csr.neighbors"] int32 range by construction.
    neighbors = destinations[order].astype(np.int32)  # simlint: allow[dtype-narrowing-cast]
    return CSRGraph(offsets=offsets, neighbors=neighbors)


#: A chunk source is a zero-argument callable returning a fresh iterator
#: of ``(E_i, 2)`` int64 edge arrays — or ``(edges, payload)`` pairs when
#: ``with_payload`` is set. It is called twice (counting pass + placement
#: pass), so generators must be wrapped in a factory, not passed raw.
ChunkSource = Callable[[], Iterable[Any]]


def _chunk_parts(
    item: Any, with_payload: bool
) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    if with_payload:
        edges, payload = item
        edges = np.asarray(edges, dtype=np.int64)
        payload = np.asarray(payload, dtype=np.int64)
        if len(payload) != len(edges):
            raise GraphFormatError(
                f"payload chunk has {len(payload)} entries for "
                f"{len(edges)} edges"
            )
    else:
        edges = np.asarray(item, dtype=np.int64)
        payload = None
    if edges.size == 0:
        return edges.reshape(0, 2), payload
    if edges.ndim != 2 or edges.shape[1] != 2:
        raise GraphFormatError("edges must be an (E, 2) array of (src, dst)")
    return edges, payload


def from_edges_chunked(
    chunks: ChunkSource,
    num_vertices: Optional[int] = None,
    *,
    resolve_num_vertices: Optional[Callable[[], Optional[int]]] = None,
    with_payload: bool = False,
) -> Union[CSRGraph, Tuple[CSRGraph, np.ndarray]]:
    """Two-pass streamed CSR build from an iterable of edge chunks.

    ``chunks()`` is invoked twice and must yield the same edge stream
    both times (loaders re-read the file). Pass 1 accumulates degree
    counts; pass 2 scatters each chunk's destinations straight into the
    output neighbor array, so only one chunk is resident at a time.
    The result is bit-identical to ``from_edges`` over the concatenated
    stream: neighbor lists come out sorted, and parallel edges keep
    their input order (which is what preserves weight attachment).

    ``resolve_num_vertices`` is consulted after the counting pass when
    ``num_vertices`` is ``None`` — the hook that lets a text loader
    honor a ``# vertices N`` directive discovered mid-stream. With
    ``with_payload=True`` each chunk is an ``(edges, payload)`` pair and
    the return value is ``(graph, payload)`` with the payload permuted
    into the graph's final edge order.
    """
    # Pass 1: count edges per source, growing the histogram as larger
    # vertex IDs stream past.
    counts = np.zeros(0, dtype=np.int64)
    max_id = -1
    total = 0
    for item in chunks():
        edges, _ = _chunk_parts(item, with_payload)
        if not len(edges):
            continue
        if int(edges.min()) < 0:
            raise GraphFormatError("negative vertex ID in edge list")
        max_id = max(max_id, int(edges.max()))
        sources = edges[:, 0]
        top = int(sources.max())
        if top >= len(counts):
            grown = np.zeros(max(top + 1, 2 * len(counts)), dtype=np.int64)
            grown[: len(counts)] = counts
            counts = grown
        counts += np.bincount(sources, minlength=len(counts)).astype(
            np.int64, copy=False
        )
        total += len(edges)

    if num_vertices is None and resolve_num_vertices is not None:
        num_vertices = resolve_num_vertices()
    if num_vertices is None:
        num_vertices = max_id + 1 if max_id >= 0 else 0
    if max_id >= num_vertices:
        raise GraphFormatError(
            f"vertex ID {max_id} exceeds num_vertices={num_vertices}"
        )

    full_counts = np.zeros(num_vertices, dtype=np.int64)
    full_counts[: min(len(counts), num_vertices)] = counts[:num_vertices]
    offsets = np.zeros(num_vertices + 1, dtype=np.int64)
    np.cumsum(full_counts, out=offsets[1:])

    # Pass 2: stable scatter. Within a chunk, edges are stably grouped
    # by source so same-source edges land in consecutive slots; across
    # chunks the per-source cursor preserves stream order.
    neighbors = np.empty(total, dtype=np.int32)
    payload_out = np.empty(total, dtype=np.int64) if with_payload else None
    next_free = offsets[:-1].copy()
    placed = 0
    for item in chunks():
        edges, payload = _chunk_parts(item, with_payload)
        if not len(edges):
            continue
        placed += len(edges)
        if placed > total or int(edges.max()) >= num_vertices:
            raise GraphFormatError(
                "edge stream changed between the counting and placement "
                "passes"
            )
        order = np.argsort(edges[:, 0], kind="stable")
        sources = edges[order, 0]
        uniq, group_start, group_count = np.unique(
            sources, return_index=True, return_counts=True
        )
        ranks = np.arange(len(sources), dtype=np.int64) - np.repeat(
            group_start, group_count
        )
        positions = next_free[sources] + ranks
        # Destination IDs were validated < num_vertices above (both
        # passes), so they fit the int32 neighbors contract.
        neighbors[positions] = edges[order, 1]  # simlint: allow[dtype-overflow]
        if payload_out is not None and payload is not None:
            payload_out[positions] = payload[order]
        next_free[uniq] += group_count
    if placed != total or not np.array_equal(next_free, offsets[1:]):
        raise GraphFormatError(
            "edge stream changed between the counting and placement passes"
        )

    # Final in-segment sort: sources are already non-decreasing, so a
    # stable lexsort keyed (source, neighbor) only reorders within each
    # neighbor list — parallel edges keep stream order, matching
    # ``from_edges``'s global lexsort exactly.
    if total:
        sources_all = np.repeat(
            np.arange(num_vertices, dtype=np.int32), full_counts
        )
        order_all = np.lexsort((neighbors, sources_all))
        neighbors = neighbors[order_all]
        if payload_out is not None:
            payload_out = payload_out[order_all]
    graph = CSRGraph(offsets=offsets, neighbors=neighbors)
    if with_payload:
        assert payload_out is not None
        return graph, payload_out
    return graph


def from_adjacency(adjacency: Sequence[Iterable[int]]) -> CSRGraph:
    """Build a graph from a per-vertex adjacency list (list of iterables)."""
    edges = [
        (src, dst) for src, neighbors in enumerate(adjacency) for dst in neighbors
    ]
    return from_edges(edges, num_vertices=len(adjacency))


def empty_graph(num_vertices: int) -> CSRGraph:
    """A graph with ``num_vertices`` vertices and no edges."""
    if num_vertices < 0:
        raise GraphFormatError("num_vertices must be non-negative")
    return CSRGraph(
        offsets=np.zeros(num_vertices + 1, dtype=np.int64),
        neighbors=np.empty(0, dtype=np.int32),
    )


def symmetrize(graph: CSRGraph) -> CSRGraph:
    """Return the undirected closure: every edge gains its reverse."""
    edges = graph.edge_array()
    both = np.vstack([edges, edges[:, ::-1]])
    return from_edges(both, num_vertices=graph.num_vertices, dedup=True)


def remove_self_loops(graph: CSRGraph) -> CSRGraph:
    """Return a copy of ``graph`` without self-loop edges."""
    edges = graph.edge_array()
    return from_edges(
        edges, num_vertices=graph.num_vertices, drop_self_loops=True
    )


def deduplicate_edges(graph: CSRGraph) -> CSRGraph:
    """Return a copy of ``graph`` with duplicate edges removed."""
    return from_edges(
        graph.edge_array(), num_vertices=graph.num_vertices, dedup=True
    )
