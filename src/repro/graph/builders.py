"""Construct :class:`~repro.graph.csr.CSRGraph` instances from edge data."""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from ..errors import GraphFormatError
from .csr import CSRGraph

__all__ = [
    "from_edges",
    "from_adjacency",
    "empty_graph",
    "symmetrize",
    "remove_self_loops",
    "deduplicate_edges",
]


def _as_edge_array(edges) -> np.ndarray:
    array = np.asarray(edges, dtype=np.int64)
    if array.size == 0:
        return array.reshape(0, 2)
    if array.ndim != 2 or array.shape[1] != 2:
        raise GraphFormatError("edges must be an (E, 2) array of (src, dst)")
    return array


def from_edges(
    edges,
    num_vertices: Optional[int] = None,
    *,
    dedup: bool = False,
    drop_self_loops: bool = False,
) -> CSRGraph:
    """Build a directed graph from ``(src, dst)`` pairs.

    Neighbor lists in the result are sorted, as the rest of the library
    (notably T-OPT's binary-searched transpose walks) requires.
    """
    array = _as_edge_array(edges)
    if drop_self_loops and len(array):
        array = array[array[:, 0] != array[:, 1]]
    if num_vertices is None:
        num_vertices = int(array.max()) + 1 if len(array) else 0
    if len(array):
        if array.min() < 0:
            raise GraphFormatError("negative vertex ID in edge list")
        if array.max() >= num_vertices:
            raise GraphFormatError(
                f"vertex ID {int(array.max())} exceeds num_vertices={num_vertices}"
            )
    if dedup and len(array):
        array = np.unique(array, axis=0)
    sources = array[:, 0]
    destinations = array[:, 1]
    counts = np.bincount(sources, minlength=num_vertices)
    offsets = np.zeros(num_vertices + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    # Sort edges by (src, dst) so neighbor lists come out sorted.
    order = np.lexsort((destinations, sources))
    neighbors = destinations[order].astype(np.int32)
    return CSRGraph(offsets=offsets, neighbors=neighbors)


def from_adjacency(adjacency: Sequence[Iterable[int]]) -> CSRGraph:
    """Build a graph from a per-vertex adjacency list (list of iterables)."""
    edges = [
        (src, dst) for src, neighbors in enumerate(adjacency) for dst in neighbors
    ]
    return from_edges(edges, num_vertices=len(adjacency))


def empty_graph(num_vertices: int) -> CSRGraph:
    """A graph with ``num_vertices`` vertices and no edges."""
    if num_vertices < 0:
        raise GraphFormatError("num_vertices must be non-negative")
    return CSRGraph(
        offsets=np.zeros(num_vertices + 1, dtype=np.int64),
        neighbors=np.empty(0, dtype=np.int32),
    )


def symmetrize(graph: CSRGraph) -> CSRGraph:
    """Return the undirected closure: every edge gains its reverse."""
    edges = graph.edge_array()
    both = np.vstack([edges, edges[:, ::-1]])
    return from_edges(both, num_vertices=graph.num_vertices, dedup=True)


def remove_self_loops(graph: CSRGraph) -> CSRGraph:
    """Return a copy of ``graph`` without self-loop edges."""
    edges = graph.edge_array()
    return from_edges(
        edges, num_vertices=graph.num_vertices, drop_self_loops=True
    )


def deduplicate_edges(graph: CSRGraph) -> CSRGraph:
    """Return a copy of ``graph`` with duplicate edges removed."""
    return from_edges(
        graph.edge_array(), num_vertices=graph.num_vertices, dedup=True
    )
