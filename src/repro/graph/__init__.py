"""Graph substrate: CSR/CSC graphs, generators, reordering, tiling, I/O."""

from .builders import (
    deduplicate_edges,
    empty_graph,
    from_adjacency,
    from_edges,
    remove_self_loops,
    symmetrize,
)
from .csr import CSRGraph
from .datasets import (
    EXTENDED_GRAPHS,
    PAPER_GRAPHS,
    SCALES,
    GraphSpec,
    graph_names,
    load,
)
from .generators import (
    bounded_degree_mesh,
    community,
    kronecker,
    power_law,
    rmat,
    uniform_random,
)
from .io import (
    load_csr,
    load_edge_list,
    load_weighted_edge_list,
    save_csr,
    save_edge_list,
    save_weighted_edge_list,
)
from .properties import DegreeStats, degree_skew, degree_stats
from .reorder import (
    DbgLayout,
    apply_order,
    dbg_order,
    identity_order,
    random_order,
    sort_by_degree,
)
from .tiling import GraphTile, segment_csr

__all__ = [
    "CSRGraph",
    "from_edges",
    "from_adjacency",
    "empty_graph",
    "symmetrize",
    "remove_self_loops",
    "deduplicate_edges",
    "uniform_random",
    "rmat",
    "kronecker",
    "power_law",
    "community",
    "bounded_degree_mesh",
    "GraphSpec",
    "PAPER_GRAPHS",
    "EXTENDED_GRAPHS",
    "SCALES",
    "graph_names",
    "load",
    "DegreeStats",
    "degree_stats",
    "degree_skew",
    "DbgLayout",
    "dbg_order",
    "sort_by_degree",
    "random_order",
    "identity_order",
    "apply_order",
    "GraphTile",
    "segment_csr",
    "load_edge_list",
    "save_weighted_edge_list",
    "load_weighted_edge_list",
    "save_edge_list",
    "load_csr",
    "save_csr",
]
