"""Named input graphs: scaled-down stand-ins for the paper's Table III.

The paper evaluates on five large graphs (18-34 M vertices). Running a
trace-driven cache simulator in Python at that scale is infeasible, so each
name maps to a synthetic generator from the same *structural class* at a
configurable scale, paired with a proportionally scaled cache (see
``repro.cache.config.scaled_hierarchy``). The working-set >> LLC regime —
the property every experiment depends on — is preserved at all scales.

Real graphs enter through ``file:<path>`` specs: any spec string with
the ``file:`` prefix loads the file via :func:`repro.graph.io.load_graph`
(format chosen by extension — ``.el``/``.wel``/``.mtx``/``.sg``/``.npz``)
instead of a generator. ``file:`` specs are accepted everywhere a graph
name is — :func:`load`, experiment specs, and the CLI — with scale and
seed ignored (a file's topology is fixed).

==========  =======================  ==========================================
Paper name  Structural class         Stand-in generator
==========  =======================  ==========================================
DBP         power-law (knowledge     :func:`repro.graph.generators.power_law`
            graph, hubs)
UK-02       community structure      :func:`repro.graph.generators.community`
            (web crawl)
KRON        extreme skew             :func:`repro.graph.generators.rmat`
            (synthetic Kronecker)
URAND       uniform random           :func:`repro.graph.generators.uniform_random`
HBUBL       bounded degree, high     :func:`repro.graph.generators.bounded_degree_mesh`
            diameter
==========  =======================  ==========================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from ..errors import GraphFormatError
from . import generators
from .csr import CSRGraph

__all__ = [
    "GraphSpec",
    "SCALES",
    "PAPER_GRAPHS",
    "EXTENDED_GRAPHS",
    "FILE_PREFIX",
    "is_file_spec",
    "file_spec_path",
    "graph_names",
    "load",
    "paper_table3",
]

#: Prefix marking a graph spec as file-backed rather than generated.
FILE_PREFIX = "file:"


def is_file_spec(name: str) -> bool:
    """True if ``name`` is a ``file:<path>`` graph spec."""
    return name.startswith(FILE_PREFIX)


def file_spec_path(name: str) -> str:
    """The filesystem path inside a ``file:<path>`` spec."""
    if not is_file_spec(name):
        raise GraphFormatError(f"{name!r} is not a file: graph spec")
    path = name[len(FILE_PREFIX):]
    if not path:
        raise GraphFormatError("empty path in file: graph spec")
    return path

#: Vertex counts per scale profile. "small" is the default used by tests
#: and benchmarks; "tiny" is for unit tests; larger profiles trade runtime
#: for fidelity.
SCALES: Dict[str, int] = {
    "tiny": 1024,
    "small": 16384,
    "medium": 65536,
    "large": 262144,
}


@dataclass(frozen=True)
class GraphSpec:
    """A named graph: structural class + generator + paper-scale metadata."""

    name: str
    structural_class: str
    paper_vertices_m: float
    paper_edges_m: float
    build: Callable[[int, int], CSRGraph]

    def generate(self, scale: str = "small", seed: int = 42) -> CSRGraph:
        """Build the stand-in graph at the given scale profile."""
        if scale not in SCALES:
            raise GraphFormatError(
                f"unknown scale {scale!r}; choose from {sorted(SCALES)}"
            )
        return self.build(SCALES[scale], seed)


def _build_dbp(n: int, seed: int) -> CSRGraph:
    return generators.power_law(n, avg_degree=8.0, exponent=2.1, seed=seed)


def _build_uk02(n: int, seed: int) -> CSRGraph:
    return generators.community(
        n,
        num_communities=max(4, n // 256),
        avg_degree=16.0,
        internal_fraction=0.9,
        seed=seed,
    )


def _build_kron(n: int, seed: int) -> CSRGraph:
    scale = max(1, (n - 1).bit_length())
    return generators.rmat(scale, avg_degree=4.0, seed=seed)


def _build_urand(n: int, seed: int) -> CSRGraph:
    return generators.uniform_random(n, avg_degree=4.0, seed=seed)


def _build_hbubl(n: int, seed: int) -> CSRGraph:
    return generators.bounded_degree_mesh(n, degree=6, seed=seed)


PAPER_GRAPHS: Tuple[GraphSpec, ...] = (
    GraphSpec("DBP", "power-law", 18.27, 136.53, _build_dbp),
    GraphSpec("UK-02", "community", 18.52, 292.24, _build_uk02),
    GraphSpec("KRON", "skewed-kronecker", 33.55, 133.51, _build_kron),
    GraphSpec("URAND", "uniform-random", 33.55, 134.22, _build_urand),
    GraphSpec("HBUBL", "bounded-degree", 21.20, 63.58, _build_hbubl),
)


def _build_gpl(n: int, seed: int) -> CSRGraph:
    # GPL: the most skewed input in Fig. 12(a) — a steeper power law.
    return generators.power_law(n, avg_degree=8.0, exponent=1.9, seed=seed)


def _build_arab(n: int, seed: int) -> CSRGraph:
    # ARAB: the second community-structured crawl of Fig. 12(b). Unlike
    # the UK-02 stand-in (ID-contiguous communities, i.e. crawl-ordered),
    # ARAB's vertex IDs are scrambled: community structure exists in the
    # topology but not in the ID space, so identity-order traversals see
    # none of it — the case where HATS-BDFS's dynamic scheduling shines.
    import numpy as np

    contiguous = generators.community(
        n,
        num_communities=max(4, n // 128),
        avg_degree=16.0,
        internal_fraction=0.95,
        seed=seed,
    )
    rng = np.random.default_rng(seed + 1)
    return contiguous.relabel(
        rng.permutation(contiguous.num_vertices).astype(np.int32)
    )


def _build_urand64(n: int, seed: int) -> CSRGraph:
    # URAND64: Fig. 13's larger uniform graph (2x URAND's vertices).
    return generators.uniform_random(2 * n, avg_degree=4.0, seed=seed)


#: Additional inputs used by individual experiments (Figs. 12-13).
EXTENDED_GRAPHS: Tuple[GraphSpec, ...] = (
    GraphSpec("GPL", "power-law-steep", 0.0, 0.0, _build_gpl),
    GraphSpec("ARAB", "community-strong", 0.0, 0.0, _build_arab),
    GraphSpec("URAND64", "uniform-random-2x", 0.0, 0.0, _build_urand64),
)

_BY_NAME = {
    spec.name: spec for spec in PAPER_GRAPHS + EXTENDED_GRAPHS
}


def graph_names() -> List[str]:
    """The paper's graph names, in Table III order."""
    return [spec.name for spec in PAPER_GRAPHS]


def load(name: str, scale: str = "small", seed: int = 42) -> CSRGraph:
    """Load the graph for a spec: a paper name or a ``file:<path>``.

    For ``file:`` specs the file's topology is what it is — ``scale``
    and ``seed`` are ignored.
    """
    if is_file_spec(name):
        from . import io

        return io.load_graph(file_spec_path(name))
    try:
        spec = _BY_NAME[name]
    except KeyError:
        raise GraphFormatError(
            f"unknown graph {name!r}; choose from {graph_names()} "
            f"or a {FILE_PREFIX}<path> spec"
        ) from None
    return spec.generate(scale=scale, seed=seed)


def paper_table3() -> List[dict]:
    """Table III of the paper as data (paper-scale vertex/edge counts)."""
    return [
        {
            "graph": spec.name,
            "class": spec.structural_class,
            "paper_vertices_M": spec.paper_vertices_m,
            "paper_edges_M": spec.paper_edges_m,
        }
        for spec in PAPER_GRAPHS
    ]
