"""Synthetic graph generators.

The paper evaluates on five graph classes (Table III): a power-law web-like
graph (DBP), a community-structured web crawl (UK-02), a highly skewed
synthetic Kronecker graph (KRON), a uniform random graph (URAND), and a
bounded-degree mesh-like graph (HBUBL). Each generator here produces a
scaled-down member of one of those classes; :mod:`repro.graph.datasets`
binds them to the paper's graph names.

All generators are deterministic given ``seed`` and return graphs with
sorted neighbor lists and no self loops.
"""

from __future__ import annotations

import numpy as np

from ..errors import GraphFormatError
from .builders import from_edges
from .csr import CSRGraph

__all__ = [
    "uniform_random",
    "rmat",
    "kronecker",
    "power_law",
    "community",
    "bounded_degree_mesh",
]


def _rng(seed) -> np.random.Generator:
    return np.random.default_rng(seed)


def uniform_random(
    num_vertices: int, avg_degree: float = 16.0, seed: int = 0
) -> CSRGraph:
    """Erdos-Renyi-style uniform random graph (the paper's URAND class).

    Every (src, dst) pair is equally likely; degree distribution is
    binomial (approximately normal), with no hubs and no community
    structure.
    """
    if num_vertices <= 0:
        raise GraphFormatError("num_vertices must be positive")
    rng = _rng(seed)
    num_edges = int(round(num_vertices * avg_degree))
    src = rng.integers(0, num_vertices, size=num_edges, dtype=np.int64)
    dst = rng.integers(0, num_vertices, size=num_edges, dtype=np.int64)
    return from_edges(
        np.column_stack([src, dst]),
        num_vertices=num_vertices,
        dedup=True,
        drop_self_loops=True,
    )


def rmat(
    scale: int,
    avg_degree: float = 16.0,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
) -> CSRGraph:
    """R-MAT / Kronecker-style generator (the paper's KRON class).

    Recursively subdivides the adjacency matrix with probabilities
    ``(a, b, c, d)``; the Graph500 defaults (0.57, 0.19, 0.19, 0.05) give
    the highly skewed degree distribution the paper calls out for KRON
    ("the more skewed the distribution, the more likely it is for hub
    vertices to hit by chance in cache").
    """
    d = 1.0 - a - b - c
    if d < 0:
        raise GraphFormatError("R-MAT probabilities must sum to at most 1")
    num_vertices = 1 << scale
    num_edges = int(round(num_vertices * avg_degree))
    rng = _rng(seed)
    src = np.zeros(num_edges, dtype=np.int64)
    dst = np.zeros(num_edges, dtype=np.int64)
    for level in range(scale):
        draw = rng.random(num_edges)
        right = ((draw >= a) & (draw < a + b)) | (draw >= a + b + c)
        down = draw >= a + b
        src = (src << 1) | down.astype(np.int64)
        dst = (dst << 1) | right.astype(np.int64)
    return from_edges(
        np.column_stack([src, dst]),
        num_vertices=num_vertices,
        dedup=True,
        drop_self_loops=True,
    )


def kronecker(scale: int, avg_degree: float = 16.0, seed: int = 0) -> CSRGraph:
    """Graph500-parameter Kronecker graph: ``rmat`` with default skew."""
    return rmat(scale, avg_degree=avg_degree, seed=seed)


def power_law(
    num_vertices: int,
    avg_degree: float = 8.0,
    exponent: float = 2.1,
    seed: int = 0,
) -> CSRGraph:
    """Power-law graph via a Chung-Lu style model (the paper's DBP class).

    Per-vertex weights ``w_v ~ v^(-1/(exponent-1))`` give a degree
    distribution with heavy-tailed hubs but (unlike R-MAT) without R-MAT's
    extreme self-similarity, matching web/knowledge-graph inputs like
    DBpedia.
    """
    if num_vertices <= 0:
        raise GraphFormatError("num_vertices must be positive")
    rng = _rng(seed)
    ranks = np.arange(1, num_vertices + 1, dtype=np.float64)
    weights = ranks ** (-1.0 / (exponent - 1.0))
    probabilities = weights / weights.sum()
    num_edges = int(round(num_vertices * avg_degree))
    src = rng.choice(num_vertices, size=num_edges, p=probabilities)
    dst = rng.choice(num_vertices, size=num_edges, p=probabilities)
    # Shuffle hub IDs so hubs are not all clustered at low vertex IDs,
    # matching real inputs where vertex order is arbitrary.
    permutation = rng.permutation(num_vertices)
    src = permutation[src]
    dst = permutation[dst]
    return from_edges(
        np.column_stack([src, dst]),
        num_vertices=num_vertices,
        dedup=True,
        drop_self_loops=True,
    )


def community(
    num_vertices: int,
    num_communities: int = 32,
    avg_degree: float = 16.0,
    internal_fraction: float = 0.9,
    seed: int = 0,
) -> CSRGraph:
    """Planted-partition graph (the paper's UK-02 / web-crawl class).

    Vertices are split into contiguous communities; ``internal_fraction``
    of each vertex's edges stay inside its own community. Contiguous
    community ranges mirror web crawls, where URL ordering clusters pages
    from one host — the structure HATS-BDFS exploits (Fig. 12b).
    """
    if not 0.0 <= internal_fraction <= 1.0:
        raise GraphFormatError("internal_fraction must be within [0, 1]")
    if num_communities <= 0 or num_communities > num_vertices:
        raise GraphFormatError("num_communities must be in [1, num_vertices]")
    rng = _rng(seed)
    num_edges = int(round(num_vertices * avg_degree))
    community_size = num_vertices // num_communities
    src = rng.integers(0, num_vertices, size=num_edges, dtype=np.int64)
    internal = rng.random(num_edges) < internal_fraction
    src_community = np.minimum(src // community_size, num_communities - 1)
    community_start = src_community * community_size
    local = rng.integers(0, community_size, size=num_edges, dtype=np.int64)
    dst_internal = community_start + local
    dst_external = rng.integers(0, num_vertices, size=num_edges, dtype=np.int64)
    dst = np.where(internal, dst_internal, dst_external)
    return from_edges(
        np.column_stack([src, dst]),
        num_vertices=num_vertices,
        dedup=True,
        drop_self_loops=True,
    )


def bounded_degree_mesh(
    num_vertices: int, degree: int = 6, seed: int = 0
) -> CSRGraph:
    """Bounded-degree, high-diameter mesh (the paper's HBUBL class).

    Each vertex connects to ``degree`` near neighbors in a latent ring
    (a band-matrix topology: nearly constant degree, high diameter — the
    paper notes HBUBL's high diameter prevents Radii from ever switching
    to pull iterations). Vertex IDs are then randomly permuted: real
    bounded-degree datasets carry no ID locality, so the per-vertex data
    accesses stay irregular even though the topology is mesh-like.
    """
    if degree <= 0:
        raise GraphFormatError("degree must be positive")
    rng = _rng(seed)
    half = max(1, degree // 2)
    src = np.repeat(np.arange(num_vertices, dtype=np.int64), 2 * half)
    offsets = np.tile(
        np.concatenate([
            np.arange(1, half + 1, dtype=np.int64),
            -np.arange(1, half + 1, dtype=np.int64),
        ]),
        num_vertices,
    )
    jitter_mask = rng.random(len(src)) < 0.05
    jitter = rng.integers(-3 * half, 3 * half + 1, size=len(src))
    offsets = np.where(jitter_mask, jitter, offsets)
    dst = (src + offsets) % num_vertices
    relabel = rng.permutation(num_vertices)
    return from_edges(
        np.column_stack([relabel[src], relabel[dst]]),
        num_vertices=num_vertices,
        dedup=True,
        drop_self_loops=True,
    )
