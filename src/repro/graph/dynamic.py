"""Dynamic graphs: batched edge deltas applied between simulation epochs.

P-OPT's preprocessing tax (Table IV of the paper) is the transpose /
Rereference-Matrix build. On a static graph that cost amortizes over
the whole run; on a *mutating* graph it recurs every time the topology
changes. This module supplies the mutation driver: an
:class:`EdgeDelta` (a batch of insertions and deletions), a vectorized
:func:`apply_delta` that produces the post-delta :class:`CSRGraph`, and
a :class:`DynamicGraph` iterator yielding one :class:`DynamicEpoch` per
applied batch. Each epoch records which sources and destinations the
delta touched — exactly the rows an incremental Rereference-Matrix
update (:func:`repro.popt.rereference.update_rereference_matrix`) needs
to avoid the full rebuild; ``benchmarks/bench_dynamic.py`` measures the
batch size where incremental stops winning.

Deltas are *multiset-undirected-agnostic*: the graph is directed, an
edge is a ``(src, dst)`` pair, and deleting a pair removes **all**
parallel copies of it. Insertions may introduce parallel edges and
self loops — real update streams contain both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

import numpy as np

from ..errors import GraphFormatError
from .builders import from_edges
from .csr import CSRGraph

__all__ = [
    "EdgeDelta",
    "DynamicEpoch",
    "DynamicGraph",
    "apply_delta",
    "random_delta",
]


def _delta_edges(edges, what: str) -> np.ndarray:
    array = np.asarray(edges, dtype=np.int64)
    if array.size == 0:
        return array.reshape(0, 2)
    if array.ndim != 2 or array.shape[1] != 2:
        raise GraphFormatError(
            f"{what} must be a (K, 2) array of (src, dst) pairs"
        )
    if int(array.min()) < 0:
        raise GraphFormatError(f"negative vertex ID in {what}")
    return array


@dataclass(frozen=True)
class EdgeDelta:
    """One batch of topology mutations: edges to insert and to delete."""

    insertions: np.ndarray = field(
        default_factory=lambda: np.empty((0, 2), dtype=np.int64)
    )
    deletions: np.ndarray = field(
        default_factory=lambda: np.empty((0, 2), dtype=np.int64)
    )

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "insertions", _delta_edges(self.insertions, "insertions")
        )
        object.__setattr__(
            self, "deletions", _delta_edges(self.deletions, "deletions")
        )

    @property
    def size(self) -> int:
        """Total number of mutation entries in the batch."""
        return len(self.insertions) + len(self.deletions)

    def touched_sources(self) -> np.ndarray:
        """Sorted unique source vertices any mutation touches."""
        return np.unique(
            np.concatenate([self.insertions[:, 0], self.deletions[:, 0]])
        )

    def touched_destinations(self) -> np.ndarray:
        """Sorted unique destination vertices any mutation touches."""
        return np.unique(
            np.concatenate([self.insertions[:, 1], self.deletions[:, 1]])
        )


def apply_delta(
    graph: CSRGraph, delta: EdgeDelta, strict: bool = True
) -> CSRGraph:
    """Apply one delta to ``graph``, returning the new graph.

    Deletions are matched as ``(src, dst)`` pairs and remove **every**
    parallel occurrence; under ``strict`` a deletion that matches no
    edge raises :class:`GraphFormatError` (silently dropped otherwise).
    Deletions apply before insertions, so a delta may delete an edge
    and re-insert it. The vertex set is fixed: inserting an edge whose
    endpoint is outside the graph raises.
    """
    num_vertices = graph.num_vertices
    for edges, what in (
        (delta.insertions, "insertion"),
        (delta.deletions, "deletion"),
    ):
        if len(edges) and int(edges.max()) >= num_vertices:
            raise GraphFormatError(
                f"{what} endpoint {int(edges.max())} outside graph with "
                f"{num_vertices} vertices"
            )
    edges = graph.edge_array().astype(np.int64)
    keys = edges[:, 0] * num_vertices + edges[:, 1]
    if len(delta.deletions):
        del_keys = (
            delta.deletions[:, 0] * num_vertices + delta.deletions[:, 1]
        )
        if strict:
            present = np.isin(del_keys, keys)
            if not bool(present.all()):
                missing = delta.deletions[~present][0]
                raise GraphFormatError(
                    f"cannot delete edge ({int(missing[0])}, "
                    f"{int(missing[1])}): not in graph"
                )
        survivors = edges[~np.isin(keys, del_keys)]
    else:
        survivors = edges
    if len(delta.insertions):
        survivors = np.vstack([survivors, delta.insertions])
    return from_edges(survivors, num_vertices=num_vertices)


@dataclass(frozen=True)
class DynamicEpoch:
    """The state of a dynamic graph after one applied delta.

    ``changed_sources`` / ``changed_destinations`` name the vertices
    whose out- / in-neighbor lists may differ from the previous epoch —
    the row sets an incremental Rereference-Matrix update recomputes
    (sources when the RM was built over the graph itself, destinations
    when it was built over the transpose).
    """

    index: int
    graph: CSRGraph
    delta: EdgeDelta
    changed_sources: np.ndarray
    changed_destinations: np.ndarray


class DynamicGraph:
    """An epoch driver: a graph plus a sequence of applied deltas."""

    def __init__(self, graph: CSRGraph, strict: bool = True) -> None:
        self.graph = graph
        self.strict = strict
        self.epoch_index = 0

    def apply(self, delta: EdgeDelta) -> DynamicEpoch:
        """Apply one delta, advancing to (and returning) the next epoch."""
        self.graph = apply_delta(self.graph, delta, strict=self.strict)
        self.epoch_index += 1
        return DynamicEpoch(
            index=self.epoch_index,
            graph=self.graph,
            delta=delta,
            changed_sources=delta.touched_sources(),
            changed_destinations=delta.touched_destinations(),
        )

    def epochs(self, deltas: Iterable[EdgeDelta]) -> Iterator[DynamicEpoch]:
        """Apply each delta in turn, yielding the epoch after each."""
        for delta in deltas:
            yield self.apply(delta)


def random_delta(
    graph: CSRGraph,
    num_insertions: int,
    num_deletions: int,
    seed: int,
    allow_self_loops: bool = False,
) -> EdgeDelta:
    """A seed-deterministic random delta over ``graph``.

    Deletions sample distinct existing edges without replacement (so
    strict application always succeeds); insertions are uniform random
    pairs, avoiding self loops unless allowed. Edge case: a graph with
    fewer distinct edges than ``num_deletions`` gets them all deleted.
    """
    if graph.num_vertices < 2 and num_insertions and not allow_self_loops:
        raise GraphFormatError(
            "cannot insert non-self-loop edges into a <2-vertex graph"
        )
    rng = np.random.default_rng(seed)
    distinct = np.unique(graph.edge_array().astype(np.int64), axis=0)
    take = min(num_deletions, len(distinct))
    chosen = rng.choice(len(distinct), size=take, replace=False)
    deletions = distinct[chosen]
    insertions = rng.integers(
        0, graph.num_vertices, size=(num_insertions, 2), dtype=np.int64
    )
    if not allow_self_loops and len(insertions):
        loops = insertions[:, 0] == insertions[:, 1]
        while bool(loops.any()):
            insertions[loops] = rng.integers(
                0, graph.num_vertices,
                size=(int(loops.sum()), 2), dtype=np.int64,
            )
            loops = insertions[:, 0] == insertions[:, 1]
    return EdgeDelta(insertions=insertions, deletions=deletions)
