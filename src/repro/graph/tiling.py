"""CSR-segmenting: 1-D tiling of a graph (Zhang et al. [57], Fig. 13).

CSR-segmenting splits the *source* vertex range into ``num_tiles``
contiguous segments and builds one sub-CSC per segment. A pull kernel then
runs once per tile, touching only the ``srcData`` elements inside that
tile's segment — shrinking the irregular working set per pass. The paper
shows tiling and P-OPT are mutually enabling: tiling shrinks the
Rereference Matrix column P-OPT must pin, and P-OPT reaches a given miss
rate with far fewer tiles than DRRIP (cutting tiling's preprocessing cost,
which scales with tile count).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..errors import GraphFormatError
from .builders import from_edges
from .csr import CSRGraph

__all__ = ["GraphTile", "segment_csr"]


@dataclass(frozen=True)
class GraphTile:
    """One segment of a CSR-segmented graph.

    ``graph`` keeps the full vertex ID space (so per-vertex data arrays are
    shared across tiles) but contains only edges whose *source* vertex
    falls within ``[src_begin, src_end)``.
    """

    graph: CSRGraph
    src_begin: int
    src_end: int

    @property
    def segment_size(self) -> int:
        return self.src_end - self.src_begin

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GraphTile(src=[{self.src_begin}, {self.src_end}), "
            f"edges={self.graph.num_edges})"
        )


def segment_csr(graph: CSRGraph, num_tiles: int) -> List[GraphTile]:
    """Split ``graph`` into ``num_tiles`` tiles by source-vertex range.

    For a pull execution, pass the graph whose *neighbor lists are the
    sources* (the CSC): each tile then restricts the irregularly accessed
    source range. Tiles partition the edges exactly: concatenating all
    tiles' edges reproduces the input graph.
    """
    if num_tiles <= 0:
        raise GraphFormatError("num_tiles must be positive")
    if num_tiles > max(graph.num_vertices, 1):
        raise GraphFormatError("more tiles than vertices")
    edges = graph.edge_array()
    bounds = _tile_bounds(graph.num_vertices, num_tiles)
    tiles = []
    for begin, end in bounds:
        if len(edges):
            mask = (edges[:, 1] >= begin) & (edges[:, 1] < end)
            tile_edges = edges[mask]
        else:
            tile_edges = edges
        tile_graph = from_edges(tile_edges, num_vertices=graph.num_vertices)
        tiles.append(GraphTile(graph=tile_graph, src_begin=begin, src_end=end))
    return tiles


def _tile_bounds(num_vertices: int, num_tiles: int) -> List[Tuple[int, int]]:
    edges = np.linspace(0, num_vertices, num_tiles + 1).astype(np.int64)
    return [(int(edges[i]), int(edges[i + 1])) for i in range(num_tiles)]
