"""Vertex reordering transformations.

GRASP (Fig. 12a) expects inputs preprocessed with Degree-Based Grouping
(DBG, Faldu et al. [19]): vertices are partitioned into groups by degree so
that hot (high-degree) vertices occupy a contiguous low range of the vertex
ID space. P-OPT itself is reordering-agnostic; these utilities exist to
reproduce the GRASP comparison and for ablations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..errors import GraphFormatError
from .csr import CSRGraph

__all__ = [
    "DbgLayout",
    "dbg_order",
    "sort_by_degree",
    "random_order",
    "identity_order",
    "apply_order",
]


@dataclass(frozen=True)
class DbgLayout:
    """Result of Degree-Based Grouping.

    ``new_ids[v]`` is vertex ``v``'s ID after reordering. ``group_bounds``
    holds the start of each group in the new ID space, hottest group first;
    GRASP uses these boundaries to classify addresses as hot/warm/cold.
    """

    new_ids: np.ndarray
    group_bounds: Tuple[int, ...]

    @property
    def num_groups(self) -> int:
        return len(self.group_bounds) - 1

    def hot_range(self) -> Tuple[int, int]:
        """New-ID range of the hottest (highest-degree) group."""
        return int(self.group_bounds[0]), int(self.group_bounds[1])


def dbg_order(graph: CSRGraph, num_groups: int = 8) -> DbgLayout:
    """Degree-Based Grouping order.

    Vertices are bucketed into ``num_groups`` groups by descending degree,
    using power-of-two degree thresholds relative to the average degree
    (the scheme of Faldu et al.): group 0 holds vertices with degree >=
    avg * 2^(num_groups-2), the last group holds degree-0..below-average
    vertices. Within each group the original relative order is preserved
    (DBG is "lightweight": it avoids destroying intra-group locality).
    """
    if num_groups < 2:
        raise GraphFormatError("DBG needs at least 2 groups")
    degrees = graph.transpose().degrees() + graph.degrees()
    avg = max(degrees.mean(), 1e-9)
    # Thresholds: avg*2^(k) for k = num_groups-2 .. 0, then 0.
    thresholds = [avg * (2.0 ** k) for k in range(num_groups - 2, -1, -1)]
    group_of = np.full(graph.num_vertices, num_groups - 1, dtype=np.int64)
    for group_index, threshold in enumerate(thresholds):
        mask = (group_of == num_groups - 1) & (degrees >= threshold)
        group_of[mask] = group_index
    order = np.argsort(group_of, kind="stable")
    new_ids = np.empty(graph.num_vertices, dtype=np.int32)
    new_ids[order] = np.arange(graph.num_vertices, dtype=np.int32)
    counts = np.bincount(group_of, minlength=num_groups).astype(
        np.int64, copy=False
    )
    bounds = np.zeros(num_groups + 1, dtype=np.int64)
    np.cumsum(counts, out=bounds[1:])
    return DbgLayout(new_ids=new_ids, group_bounds=tuple(int(b) for b in bounds))


def sort_by_degree(graph: CSRGraph, descending: bool = True) -> np.ndarray:
    """Full sort by total degree; returns a ``new_ids`` permutation."""
    degrees = graph.transpose().degrees() + graph.degrees()
    key = -degrees if descending else degrees
    order = np.argsort(key, kind="stable")
    new_ids = np.empty(graph.num_vertices, dtype=np.int32)
    new_ids[order] = np.arange(graph.num_vertices, dtype=np.int32)
    return new_ids


def random_order(graph: CSRGraph, seed: int = 0) -> np.ndarray:
    """Uniform random permutation (destroys any incidental locality)."""
    rng = np.random.default_rng(seed)
    return rng.permutation(graph.num_vertices).astype(np.int32)


def identity_order(graph: CSRGraph) -> np.ndarray:
    """The do-nothing permutation."""
    return np.arange(graph.num_vertices, dtype=np.int32)


def apply_order(graph: CSRGraph, new_ids: np.ndarray) -> CSRGraph:
    """Relabel ``graph`` with the permutation ``new_ids``."""
    return graph.relabel(new_ids)
