"""Compressed sparse graph representation (CSR/CSC).

The paper's framing (Section II-A): a directed graph is an adjacency matrix;
the *Compressed Sparse Row* (CSR) stores each source vertex's outgoing
neighbors and the *Compressed Sparse Column* (CSC) stores each destination
vertex's incoming neighbors. Both use an Offsets Array (``offsets``, the
paper's OA) and a Neighbor Array (``neighbors``, the paper's NA).

A single :class:`CSRGraph` instance stores one direction. ``transpose()``
produces the other direction; graph frameworks (and P-OPT) keep both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Tuple

import numpy as np

from ..errors import GraphFormatError

__all__ = ["CSRGraph"]


@dataclass(frozen=True)
class CSRGraph:
    """A directed graph in compressed sparse (CSR-style) form.

    ``offsets`` has ``num_vertices + 1`` entries; vertex ``v``'s neighbors
    occupy ``neighbors[offsets[v]:offsets[v + 1]]``. Neighbor lists are kept
    sorted in ascending order, which the transpose-walk oracle (T-OPT)
    relies on for binary-searching the next reference.

    Whether the instance represents out-neighbors (a CSR proper) or
    in-neighbors (a CSC) is up to the caller; ``transpose()`` flips between
    the two views.
    """

    offsets: np.ndarray
    neighbors: np.ndarray
    _transpose_cache: list = field(
        default=None, repr=False, compare=False, hash=False
    )

    def __post_init__(self) -> None:
        offsets = np.ascontiguousarray(self.offsets, dtype=np.int64)
        neighbors = np.ascontiguousarray(self.neighbors, dtype=np.int32)
        object.__setattr__(self, "offsets", offsets)
        object.__setattr__(self, "neighbors", neighbors)
        if self._transpose_cache is None:
            object.__setattr__(self, "_transpose_cache", [])
        self._validate()

    def _validate(self) -> None:
        if self.offsets.ndim != 1 or self.neighbors.ndim != 1:
            raise GraphFormatError("offsets and neighbors must be 1-D arrays")
        if len(self.offsets) == 0:
            raise GraphFormatError("offsets must have at least one entry")
        if self.offsets[0] != 0:
            raise GraphFormatError("offsets must start at 0")
        if self.offsets[-1] != len(self.neighbors):
            raise GraphFormatError(
                "offsets must end at len(neighbors) "
                f"({self.offsets[-1]} != {len(self.neighbors)})"
            )
        if np.any(np.diff(self.offsets) < 0):
            raise GraphFormatError("offsets must be non-decreasing")
        if len(self.neighbors) > 0:
            if self.neighbors.min() < 0 or self.neighbors.max() >= self.num_vertices:
                raise GraphFormatError("neighbor IDs out of range")

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        """Number of vertices (both endpoint spaces share one ID range)."""
        return len(self.offsets) - 1

    @property
    def num_edges(self) -> int:
        """Number of directed edges."""
        return len(self.neighbors)

    def degree(self, v: int) -> int:
        """Number of neighbors of vertex ``v`` in this direction."""
        return int(self.offsets[v + 1] - self.offsets[v])

    def degrees(self) -> np.ndarray:
        """Vector of per-vertex degrees in this direction."""
        return np.diff(self.offsets)

    def out_neighbors(self, v: int) -> np.ndarray:
        """Neighbor list of vertex ``v`` (a read-only view, sorted)."""
        return self.neighbors[self.offsets[v]:self.offsets[v + 1]]

    # Alias matching CSC terminology used by pull kernels.
    in_neighbors = out_neighbors

    def iter_vertices(self) -> Iterator[int]:
        """Iterate vertex IDs in ascending order."""
        return iter(range(self.num_vertices))

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Yield ``(vertex, neighbor)`` pairs in traversal order."""
        for v in range(self.num_vertices):
            for u in self.out_neighbors(v):
                yield v, int(u)

    def edge_array(self) -> np.ndarray:
        """All edges as an ``(num_edges, 2)`` array of (vertex, neighbor)."""
        sources = np.repeat(np.arange(self.num_vertices, dtype=np.int32),
                            self.degrees())
        return np.column_stack([sources, self.neighbors])

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------

    def transpose(self) -> "CSRGraph":
        """Return the reversed-edge graph (CSR <-> CSC).

        The result is cached: graph frameworks store both directions once
        (Section II-A), and P-OPT's Rereference Matrix construction and
        T-OPT's oracle both walk the transpose repeatedly.
        """
        if not self._transpose_cache:
            self._transpose_cache.append(self._build_transpose())
        return self._transpose_cache[0]

    def _build_transpose(self) -> "CSRGraph":
        n = self.num_vertices
        counts = np.bincount(self.neighbors, minlength=n).astype(
            np.int64, copy=False
        )
        offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        # Stable sort of edges by destination groups reversed edges in
        # offset order; stability keeps each group's sources ascending, so
        # the transpose's neighbor lists come out sorted without extra work.
        sources = np.repeat(np.arange(n, dtype=np.int32), self.degrees())
        order = np.argsort(self.neighbors, kind="stable")
        neighbors = sources[order]
        transposed = CSRGraph(offsets=offsets, neighbors=neighbors)
        transposed._transpose_cache.append(self)
        return transposed

    def with_sorted_neighbors(self) -> "CSRGraph":
        """Return an equivalent graph whose neighbor lists are sorted."""
        if self.has_sorted_neighbors():
            return self
        neighbors = self.neighbors.copy()
        for v in range(self.num_vertices):
            lo, hi = self.offsets[v], self.offsets[v + 1]
            neighbors[lo:hi] = np.sort(neighbors[lo:hi])
        return CSRGraph(offsets=self.offsets, neighbors=neighbors)

    def has_sorted_neighbors(self) -> bool:
        """True if every neighbor list is in ascending order."""
        for v in range(self.num_vertices):
            segment = self.out_neighbors(v)
            if len(segment) > 1 and np.any(np.diff(segment) < 0):
                return False
        return True

    def relabel(self, new_ids: np.ndarray) -> "CSRGraph":
        """Renumber vertices: old vertex ``v`` becomes ``new_ids[v]``.

        ``new_ids`` must be a permutation of ``0..num_vertices-1``. Used by
        vertex-reordering optimizations such as DBG (Section VII-C1).
        """
        new_ids = np.asarray(new_ids, dtype=np.int32)
        if len(new_ids) != self.num_vertices:
            raise GraphFormatError("relabel permutation has wrong length")
        check = np.zeros(self.num_vertices, dtype=bool)
        check[new_ids] = True
        if not check.all():
            raise GraphFormatError("relabel mapping is not a permutation")
        edges = self.edge_array()
        new_src = new_ids[edges[:, 0]]
        new_dst = new_ids[edges[:, 1]]
        from .builders import from_edges  # local import to avoid a cycle

        return from_edges(
            np.column_stack([new_src, new_dst]), num_vertices=self.num_vertices
        )

    # ------------------------------------------------------------------
    # T-OPT support
    # ------------------------------------------------------------------

    def next_reference_after(self, vertex: int, current: int) -> Optional[int]:
        """Smallest neighbor of ``vertex`` strictly greater than ``current``.

        This is the transpose-walk primitive at the heart of T-OPT
        (Section III-A): in a pull execution over destinations, the
        out-neighbor list of source ``vertex`` (read from the transpose)
        lists exactly the destination iterations that will touch
        ``srcData[vertex]``. Returns ``None`` when the vertex is never
        referenced again.
        """
        neighbors = self.out_neighbors(vertex)
        idx = int(np.searchsorted(neighbors, current, side="right"))
        if idx >= len(neighbors):
            return None
        return int(neighbors[idx])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CSRGraph(num_vertices={self.num_vertices}, "
            f"num_edges={self.num_edges})"
        )
