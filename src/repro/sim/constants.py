"""Shared bit-layout and policy constants (the cross-language registry).

Algorithm 2's entry encodings (Fig. 5/6), the next-ref sentinels, and
the RRIP insertion parameters exist in *three* places: the reference
policies (``repro.popt``, ``repro.policies``), the pure-Python replay
kernels (``repro.sim.kernels``), and the compiled transliterations
(``kernels.c``). PR 4 caught one fork at runtime (a fixed 7-bit
``inter_only`` sentinel mask applied to 8-bit raw entries); this module
is the fix-forever: every Python site imports its numbers from here, and
``kernels.c`` names the same numbers as ``#define`` constants that
simlint's ``abi-constant`` rule cross-checks against :data:`C_PARITY`
— so the literals cannot silently fork again.

Nothing here imports anything from the package (no cycles): it is a
leaf module of plain integers, tuples, and arithmetic helpers.
"""

from __future__ import annotations

from typing import Dict, Tuple

__all__ = [
    "saturating_max",
    "DEFAULT_RRPV_BITS",
    "DEFAULT_PSEL_BITS",
    "BRRIP_TRICKLE",
    "RM_VARIANTS",
    "RM_VARIANT_CODES",
    "RM_VARIANT_INTER_ONLY",
    "RM_VARIANT_INTER_INTRA",
    "RM_VARIANT_SINGLE_EPOCH",
    "rm_field_bits",
    "rm_msb",
    "rm_next_bit",
    "rm_low_mask",
    "rm_sentinel",
    "TOPT_NEVER",
    "TOPT_STREAMING",
    "POPT_STREAMING_NEXT_REF",
    "POPT_SPARAM_LAYOUT",
    "POPT_SPARAM_SLOTS",
    "KERNEL_SIG_SPACE",
    "SHIP_SHCT_MAX",
    "SHIP_SHCT_INITIAL",
    "HAWKEYE_RRPV_MAX",
    "HAWKEYE_COUNTER_MAX",
    "HAWKEYE_COUNTER_INITIAL",
    "C_PARITY",
    "WIDTH_CONTRACTS",
]


# ----------------------------------------------------------------------
# RRIP family (SRRIP / BRRIP / DRRIP and P-OPT's tie-break)
# ----------------------------------------------------------------------

#: Default RRPV width (2-bit RRIP, the paper's Table I baseline).
DEFAULT_RRPV_BITS = 2

#: Default set-dueling PSEL width (DRRIP).
DEFAULT_PSEL_BITS = 10

#: BRRIP's epsilon: probability that a fill inserts at the "long"
#: interval (``max - 1``) instead of the "distant" interval (``max``).
BRRIP_TRICKLE = 1.0 / 32.0


def saturating_max(bits: int) -> int:
    """Maximum value of a ``bits``-wide saturating counter (RRPV, PSEL)."""
    return (1 << bits) - 1


# ----------------------------------------------------------------------
# Rereference Matrix entry encodings (Fig. 5/6, Section IV)
# ----------------------------------------------------------------------

#: The three entry encodings, in variant-code order.
RM_VARIANTS: Tuple[str, str, str] = (
    "inter_only", "inter_intra", "single_epoch"
)

#: Integer codes the kernels (Python and C) use for the variants.
RM_VARIANT_INTER_ONLY = 0
RM_VARIANT_INTER_INTRA = 1
RM_VARIANT_SINGLE_EPOCH = 2

RM_VARIANT_CODES: Dict[str, int] = {
    "inter_only": RM_VARIANT_INTER_ONLY,
    "inter_intra": RM_VARIANT_INTER_INTRA,
    "single_epoch": RM_VARIANT_SINGLE_EPOCH,
}


def rm_field_bits(entry_bits: int, variant: str) -> int:
    """Bits of a ``variant`` entry that hold the distance / sub-epoch
    field: ``inter_only`` spends every bit on the distance,
    ``inter_intra`` loses one to the MSB flag, ``single_epoch`` loses
    two (MSB flag + next-epoch bit)."""
    if variant == "single_epoch":
        return entry_bits - 2
    if variant == "inter_only":
        return entry_bits
    return entry_bits - 1


def rm_msb(entry_bits: int) -> int:
    """The MSB flag of an entry (set = "not referenced this epoch")."""
    return 1 << (entry_bits - 1)


def rm_next_bit(entry_bits: int, variant: str) -> int:
    """``single_epoch``'s referenced-next-epoch bit (0 elsewhere)."""
    if variant == "single_epoch":
        return 1 << (entry_bits - 2)
    return 0


def rm_low_mask(entry_bits: int, variant: str) -> int:
    """Mask selecting the distance / sub-epoch field of an entry."""
    return (1 << rm_field_bits(entry_bits, variant)) - 1


def rm_sentinel(entry_bits: int, variant: str) -> int:
    """All-field-bits-set: "no known reference" / past-the-end epochs.

    This equals :func:`rm_low_mask` *by construction* — the PR 4 bug was
    exactly a decode mask narrower than the stored sentinel, which made
    past-the-end epochs look nearer than known-far in-matrix lines.
    """
    return rm_low_mask(entry_bits, variant)


# ----------------------------------------------------------------------
# Next-ref sentinels (T-OPT / P-OPT victim search)
# ----------------------------------------------------------------------

#: T-OPT next-ref for lines never referenced again (beyond any vertex id).
TOPT_NEVER = 1 << 40

#: T-OPT next-ref for streaming (non-irregular) lines: beyond
#: :data:`TOPT_NEVER` so the first streaming way always wins.
TOPT_STREAMING = 1 << 41

#: P-OPT's rank for streaming ways when ``prefer_streaming_victims`` is
#: off: beyond any Algorithm 2 distance (a 16-bit entry's sentinel is
#: 2^16 - 1) but below nothing else — matches ``POPT.choose_victim``.
POPT_STREAMING_NEXT_REF = 1 << 30

#: Layout of the per-stream parameter block ``k_popt`` decodes with
#: (one 7-slot block per irregular stream, flattened int64).
POPT_SPARAM_LAYOUT: Tuple[str, ...] = (
    "variant",
    "msb",
    "low_mask",
    "next_bit",
    "epoch_size",
    "sub_epoch_size",
    "num_epochs",
)

POPT_SPARAM_SLOTS = len(POPT_SPARAM_LAYOUT)


# ----------------------------------------------------------------------
# PC-predictor policies (SHiP / Hawkeye replay kernels)
# ----------------------------------------------------------------------

#: Signature space of the PC-indexed predictor tables (SHiP's SHCT,
#: Hawkeye's OPTgen predictor).  Trace PCs are uint8 region tags, so
#: both kernels use dense 256-entry counter arrays where the reference
#: policies use defaultdicts.
KERNEL_SIG_SPACE = 256

#: SHiP signature-history counter bounds (``policies/ship.py``).
SHIP_SHCT_MAX = 3
SHIP_SHCT_INITIAL = 1

#: Hawkeye RRIP depth and predictor counter bounds
#: (``policies/hawkeye.py``).
HAWKEYE_RRPV_MAX = 7
HAWKEYE_COUNTER_MAX = 7
HAWKEYE_COUNTER_INITIAL = 4


# ----------------------------------------------------------------------
# C parity table (simlint ``abi-constant``)
# ----------------------------------------------------------------------

#: Every ``#define`` in ``kernels.c`` must appear here with the same
#: value, and every entry here must be ``#define``d there — simlint's
#: ``abi-constant`` rule enforces both directions, so a fork of any
#: bit-layout constant across the language boundary is a lint error.
#: (Float-valued constants like :data:`BRRIP_TRICKLE` are passed to C
#: as arguments, never re-declared there, so they are not listed.)
# ----------------------------------------------------------------------
# Declared capacity contracts (simlint ``dtype`` + check_width_contracts)
# ----------------------------------------------------------------------

#: Every quantized field the simulator stores in a deliberately narrow
#: dtype, with its declared storage and the width its values must fit.
#:
#: Schema (all values statically evaluable — simlint's ``dtype`` family
#: reads this table without importing the package):
#:
#: - ``dtype``   — admissible numpy storage dtypes, narrowest first;
#: - ``max_bits``— hard ceiling on the *value* width (``check_width_
#:   contracts`` asserts actual maxima fit; for RM entries the live
#:   bound is ``entry_bits``, this is its admissible range's top);
#: - ``binds``   — ``Class.attr`` fields carrying the contract (the
#:   static ``dtype-overflow`` rule flags unguarded wide stores into
#:   them by name);
#: - ``guard``   — where the clamp/validation documented for the field
#:   lives (the "documented guard" the lint accepts).
#:
#: :func:`repro.sim.widthcontracts.check_width_contracts` gives this
#: table runtime teeth on sanitized runs.
WIDTH_CONTRACTS: Dict[str, Dict[str, object]] = {
    "rm.entries": {
        "dtype": ("uint8", "uint16"),
        "max_bits": 16,
        "binds": ("RereferenceMatrix.entries",),
        "holds": "Algorithm 2 entries: MSB flag | distance/sub-epoch "
                 "field, entry_bits in [3, 16]",
        "guard": "np.minimum clamp to rm_sentinel in "
                 "rereference._encode_entries",
    },
    "rm.epoch_index": {
        "dtype": ("int64",),
        "max_bits": 16,
        "holds": "epoch column index: num_epochs <= 2^entry_bits by "
                 "epoch_geometry construction",
        "guard": "ceil-division geometry in rereference.epoch_geometry",
    },
    "trace.next_use": {
        "dtype": ("int64",),
        "max_bits": 30,
        "holds": "LLC-visible next-use index; must stay below "
                 "POPT_STREAMING_NEXT_REF so the streaming rank "
                 "outranks every real distance",
        "guard": "trace length checked against the sentinel in "
                 "widthcontracts.check_width_contracts",
    },
    "trace.vertex": {
        "dtype": ("int64",),
        "max_bits": 40,
        "holds": "outer-loop vertex ids; must stay below TOPT_NEVER "
                 "so the never-again sentinel outranks every vertex",
        "guard": "vertex range checked at graph build "
                 "(builders.from_edges) and in check_width_contracts",
    },
    "csr.offsets": {
        "dtype": ("int64",),
        "max_bits": 62,
        "binds": ("CSRGraph.offsets",),
        "holds": "CSR row offsets (edge counts)",
        "guard": "monotonicity asserted in CSRGraph validation",
    },
    "csr.neighbors": {
        "dtype": ("int32",),
        "max_bits": 31,
        "binds": ("CSRGraph.neighbors",),
        "holds": "neighbor vertex ids; vertex count must fit int32",
        "guard": "vertex-range validation in builders.from_edges / "
                 "from_edges_chunked before the int32 cast",
    },
}


C_PARITY: Dict[str, int] = {
    "TOPT_NEVER": TOPT_NEVER,
    "POPT_STREAMING_NEXT_REF": POPT_STREAMING_NEXT_REF,
    "POPT_SPARAM_SLOTS": POPT_SPARAM_SLOTS,
    "POPT_SP_VARIANT": POPT_SPARAM_LAYOUT.index("variant"),
    "POPT_SP_MSB": POPT_SPARAM_LAYOUT.index("msb"),
    "POPT_SP_LOW_MASK": POPT_SPARAM_LAYOUT.index("low_mask"),
    "POPT_SP_NEXT_BIT": POPT_SPARAM_LAYOUT.index("next_bit"),
    "POPT_SP_EPOCH_SIZE": POPT_SPARAM_LAYOUT.index("epoch_size"),
    "POPT_SP_SUB_EPOCH_SIZE": POPT_SPARAM_LAYOUT.index("sub_epoch_size"),
    "POPT_SP_NUM_EPOCHS": POPT_SPARAM_LAYOUT.index("num_epochs"),
    "RM_VARIANT_INTER_ONLY": RM_VARIANT_INTER_ONLY,
    "RM_VARIANT_INTER_INTRA": RM_VARIANT_INTER_INTRA,
    "RM_VARIANT_SINGLE_EPOCH": RM_VARIANT_SINGLE_EPOCH,
    "KERNEL_SIG_SPACE": KERNEL_SIG_SPACE,
    "SHIP_SHCT_MAX": SHIP_SHCT_MAX,
    "SHIP_SHCT_INITIAL": SHIP_SHCT_INITIAL,
    "HAWKEYE_RRPV_MAX": HAWKEYE_RRPV_MAX,
    "HAWKEYE_COUNTER_MAX": HAWKEYE_COUNTER_MAX,
    "HAWKEYE_COUNTER_INITIAL": HAWKEYE_COUNTER_INITIAL,
}
