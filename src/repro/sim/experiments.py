"""Canned experiment harnesses: one function per paper figure/table.

Every function returns a list of plain-dict rows (printable with
:func:`repro.sim.tables.format_table`) so that benchmarks, examples, and
EXPERIMENTS.md all consume the same code path. Graph/cache scale defaults
to the ``small`` profile; pass ``scale="medium"``/``"large"`` for
higher-fidelity runs.
"""

from __future__ import annotations

import statistics
import time
from typing import Dict, Iterable, List, Optional, Sequence

from ..apps import (
    ConnectedComponents,
    MaximalIndependentSet,
    PageRank,
    PageRankDelta,
    PropagationBlockingBinning,
    Radii,
    bdfs_order,
)
from ..apps.pagerank import pagerank_reference
from ..apps.tiled_pagerank import TiledPageRank
from ..cache.config import CacheConfig, HierarchyConfig, scaled_hierarchy
from ..graph import datasets
from ..policies.registry import PolicyContext
from ..popt.rereference import build_rereference_matrix
from .driver import (
    grasp_ranges_for,
    prepare_dbg_run,
    prepare_run,
    simulate_prepared,
)
from .parallel import sweep_rows

__all__ = [
    "engine_throughput_sweep",
    "kernel_throughput_sweep",
    "popt_kernel_throughput_sweep",
    "fig02_sota_mpki",
    "fig04_topt_mpki",
    "fig07_rereference_designs",
    "fig10_main_result",
    "fig11_popt_se_scaling",
    "fig12a_grasp",
    "fig12b_hats",
    "fig13_tiling",
    "fig14_pb_phi",
    "fig15_quantization",
    "fig16_llc_sensitivity",
    "table4_preprocessing",
    "geomean",
]

DEFAULT_GRAPHS = tuple(datasets.graph_names())

FIG2_POLICIES = ("LRU", "DRRIP", "SHiP-PC", "SHiP-Mem", "Hawkeye")


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (the paper's aggregation for speedups/ratios)."""
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return statistics.geometric_mean(values)


def _mpki_rows(
    policies: Sequence[str],
    graphs: Sequence[str],
    scale: str,
    seed: int,
    jobs: int = 1,
) -> List[Dict[str, object]]:
    flat = sweep_rows(
        graphs, policies, apps=("PR",), scale=scale, seed=seed, jobs=jobs
    )
    by_graph: Dict[str, Dict[str, object]] = {}
    rows = []
    for graph_name in graphs:
        row: Dict[str, object] = {"graph": graph_name}
        by_graph[graph_name] = row
        rows.append(row)
    for item in flat:
        row = by_graph[item["graph"]]
        policy = item["policy"]
        row[policy] = round(float(item["llc_mpki"]), 2)
        row[f"{policy}_missrate"] = round(float(item["llc_miss_rate"]), 3)
    return rows


ENGINE_SWEEP_POLICIES = ("LRU", "DRRIP", "SHiP-PC", "Hawkeye")


def engine_throughput_sweep(
    scale: str = "small",
    graphs: Sequence[str] = ("DBP",),
    policies: Sequence[str] = ENGINE_SWEEP_POLICIES,
    seed: int = 42,
    engines: Sequence[str] = ("reference", "fast"),
) -> List[Dict[str, object]]:
    """Replay-engine throughput: one policy sweep under each engine.

    Replays the same PageRank trace under every policy with both the
    reference per-access path and the three-phase fast engine, recording
    wall-time, accesses/sec, filter build/reuse counters, and the fast
    engine's speedup. Each engine gets a fresh :class:`PreparedRun` so
    neither inherits the other's caches; per-policy LLC miss columns let
    callers verify the engines agree.
    """
    hierarchy = scaled_hierarchy(scale)
    rows = []
    for graph_name in graphs:
        graph = datasets.load(graph_name, scale=scale, seed=seed)
        reference_seconds: Optional[float] = None
        for engine in engines:
            prepared = prepare_run(PageRank(), graph)
            start = time.perf_counter()  # simlint: allow[determinism-time]
            misses: Dict[str, int] = {}
            for policy in policies:
                result = simulate_prepared(
                    prepared, policy, hierarchy, engine=engine
                )
                misses[policy] = result.llc.misses
            seconds = time.perf_counter() - start  # simlint: allow[determinism-time]
            if engine == "reference":
                reference_seconds = seconds
            replayed = len(prepared.trace) * len(policies)
            row: Dict[str, object] = {
                "graph": graph_name,
                "engine": engine,
                "policies": len(policies),
                "accesses_replayed": replayed,
                "seconds": round(seconds, 4),
                "accesses_per_s": (
                    round(replayed / seconds) if seconds > 0 else 0
                ),
                "speedup_vs_reference": (
                    round(reference_seconds / seconds, 3)
                    if reference_seconds and seconds > 0
                    else 1.0
                ),
                "filters_built": prepared.filter_counters["built"],
                "filters_reused": prepared.filter_counters["reused"],
            }
            for policy in policies:
                row[f"misses_{policy}"] = misses[policy]
            rows.append(row)
    return rows


KERNEL_SWEEP_POLICIES = ("LRU", "SRRIP", "DRRIP", "OPT")


def kernel_throughput_sweep(
    scale: str = "small",
    graphs: Sequence[str] = ("DBP",),
    policies: Sequence[str] = KERNEL_SWEEP_POLICIES,
    seed: int = 42,
) -> List[Dict[str, object]]:
    """Replay-kernel throughput: kernel vs generic replay per policy.

    For every kernel-covered policy, replays the same LLC-visible stream
    with the generic per-access engine and with the policy's replay
    kernel (:mod:`repro.sim.kernels`), recording phase-3 replay seconds
    and the kernel's speedup. A warm-up pass per engine builds the
    private filter, next-use, and set-partition caches first, so the
    measured numbers isolate the replay loop. The miss columns come from
    both paths and let callers assert bit-identity.
    """
    from . import ckernels  # local: report which kernel form ran

    hierarchy = scaled_hierarchy(scale)
    rows = []
    for graph_name in graphs:
        graph = datasets.load(graph_name, scale=scale, seed=seed)
        prepared = prepare_run(PageRank(), graph)
        for policy in policies:
            for engine in ("generic", "fast"):
                simulate_prepared(
                    prepared, policy, hierarchy, engine=engine
                )  # warm caches
            timings: Dict[str, float] = {}
            misses: Dict[str, int] = {}
            for engine in ("generic", "fast"):
                result = simulate_prepared(
                    prepared, policy, hierarchy, engine=engine
                )
                engine_details = result.details["engine"]
                timings[engine] = engine_details["replay_seconds"]
                misses[engine] = result.llc.misses
            rows.append(
                {
                    "graph": graph_name,
                    "policy": policy,
                    "compiled": ckernels.available(),
                    "generic_seconds": round(timings["generic"], 5),
                    "kernel_seconds": round(timings["fast"], 5),
                    "kernel_speedup": round(
                        timings["generic"] / timings["fast"], 2
                    )
                    if timings["fast"] > 0
                    else float("inf"),
                    "misses_generic": misses["generic"],
                    "misses_kernel": misses["fast"],
                }
            )
    return rows


POPT_KERNEL_SWEEP_POLICIES = ("T-OPT", "P-OPT", "P-OPT-Inter", "P-OPT-SE")


def popt_kernel_throughput_sweep(
    scale: str = "small",
    graphs: Sequence[str] = ("DBP",),
    policies: Sequence[str] = POPT_KERNEL_SWEEP_POLICIES,
    seed: int = 42,
) -> List[Dict[str, object]]:
    """Next-ref kernel throughput: T-OPT/P-OPT kernel vs generic replay.

    Same measurement protocol as :func:`kernel_throughput_sweep` (warm-up
    pass per engine, phase-3 replay seconds from the engine details), but
    over the paper's own policies and with two extra columns: ``kernel``
    (the dispatched kernel name — ``None`` would mean the registry lost
    coverage) and ``counters_match`` (the engine-cost counters the timing
    model consumes agree between paths; trivially True for T-OPT, whose
    counters live on the policy and are checked by the equivalence
    suite).
    """
    from . import ckernels  # local: report which kernel form ran

    hierarchy = scaled_hierarchy(scale)
    rows = []
    for graph_name in graphs:
        graph = datasets.load(graph_name, scale=scale, seed=seed)
        prepared = prepare_run(PageRank(), graph)
        for policy in policies:
            for engine in ("generic", "fast"):
                simulate_prepared(
                    prepared, policy, hierarchy, engine=engine
                )  # warm caches
            timings: Dict[str, float] = {}
            misses: Dict[str, int] = {}
            counters: Dict[str, object] = {}
            kernel_name: Optional[str] = None
            for engine in ("generic", "fast"):
                result = simulate_prepared(
                    prepared, policy, hierarchy, engine=engine
                )
                engine_details = result.details["engine"]
                timings[engine] = engine_details["replay_seconds"]
                misses[engine] = result.llc.misses
                counters[engine] = result.popt_counters
                if engine == "fast":
                    kernel_name = engine_details["kernel"]
            rows.append(
                {
                    "graph": graph_name,
                    "policy": policy,
                    "kernel": kernel_name,
                    "compiled": ckernels.available(),
                    "generic_seconds": round(timings["generic"], 5),
                    "kernel_seconds": round(timings["fast"], 5),
                    "kernel_speedup": round(
                        timings["generic"] / timings["fast"], 2
                    )
                    if timings["fast"] > 0
                    else float("inf"),
                    "misses_generic": misses["generic"],
                    "misses_kernel": misses["fast"],
                    "counters_match": counters["generic"] == counters["fast"],
                }
            )
    return rows


def fig02_sota_mpki(
    scale: str = "small",
    graphs: Sequence[str] = DEFAULT_GRAPHS,
    seed: int = 42,
    jobs: int = 1,
) -> List[Dict[str, object]]:
    """Fig. 2: PageRank LLC MPKI under state-of-the-art policies.

    Paper shape: all five policies land within a narrow band (60-70% miss
    rates); none substantially beats LRU. ``jobs`` fans the sweep over a
    process pool (see :mod:`repro.sim.parallel`); output is identical
    for any value.
    """
    return _mpki_rows(FIG2_POLICIES, graphs, scale, seed, jobs=jobs)


def fig04_topt_mpki(
    scale: str = "small",
    graphs: Sequence[str] = DEFAULT_GRAPHS,
    seed: int = 42,
    jobs: int = 1,
) -> List[Dict[str, object]]:
    """Fig. 4: T-OPT against the Fig. 2 policies.

    Paper shape: T-OPT reduces misses ~1.67x vs LRU (41% vs 60-70% miss
    rate).
    """
    return _mpki_rows(
        FIG2_POLICIES + ("T-OPT",), graphs, scale, seed, jobs=jobs
    )


def fig07_rereference_designs(
    scale: str = "small",
    graphs: Sequence[str] = DEFAULT_GRAPHS,
    seed: int = 42,
) -> List[Dict[str, object]]:
    """Fig. 7: Rereference Matrix designs, miss reduction vs DRRIP.

    Paper shape: INTER+INTRA ~= T-OPT > INTER-ONLY > DRRIP; both P-OPT
    designs pay their reserved-way cost and still win.
    """
    hierarchy = scaled_hierarchy(scale)
    rows = []
    for graph_name in graphs:
        graph = datasets.load(graph_name, scale=scale, seed=seed)
        prepared = prepare_run(PageRank(), graph)
        baseline = simulate_prepared(prepared, "DRRIP", hierarchy)
        row: Dict[str, object] = {"graph": graph_name}
        for policy, label in (
            ("P-OPT-Inter", "P-OPT-INTER-ONLY"),
            ("P-OPT", "P-OPT-INTER+INTRA"),
            ("T-OPT", "T-OPT"),
        ):
            result = simulate_prepared(prepared, policy, hierarchy)
            row[label] = round(result.miss_reduction_over(baseline), 3)
        rows.append(row)
    return rows


def _paper_apps() -> List[object]:
    return [
        PageRank(),
        ConnectedComponents(),
        PageRankDelta(),
        Radii(),
        MaximalIndependentSet(),
    ]


def fig10_main_result(
    scale: str = "small",
    graphs: Sequence[str] = DEFAULT_GRAPHS,
    seed: int = 42,
    apps: Optional[Sequence[object]] = None,
) -> List[Dict[str, object]]:
    """Fig. 10: speedups and LLC miss reductions for P-OPT and T-OPT.

    Rows hold speedups over both LRU and DRRIP plus miss reductions vs
    DRRIP, one row per (app, graph). Radii skips HBUBL like the paper
    (its diameter keeps Radii push-only there). Paper shape: P-OPT ~22%
    mean speedup and ~24% miss cut vs DRRIP, within ~12% of T-OPT; gains
    smallest on KRON.
    """
    hierarchy = scaled_hierarchy(scale)
    rows = []
    for app in apps if apps is not None else _paper_apps():
        for graph_name in graphs:
            if app.info.name == "Radii" and graph_name == "HBUBL":
                continue
            graph = datasets.load(graph_name, scale=scale, seed=seed)
            prepared = prepare_run(app, graph)
            if len(prepared.trace) == 0:
                continue
            lru = simulate_prepared(prepared, "LRU", hierarchy)
            drrip = simulate_prepared(prepared, "DRRIP", hierarchy)
            row: Dict[str, object] = {
                "app": app.info.name,
                "graph": graph_name,
                "DRRIP_speedup_vs_LRU": round(drrip.speedup_over(lru), 3),
            }
            for policy in ("P-OPT", "T-OPT"):
                result = simulate_prepared(prepared, policy, hierarchy)
                row[f"{policy}_speedup_vs_LRU"] = round(
                    result.speedup_over(lru), 3
                )
                row[f"{policy}_speedup_vs_DRRIP"] = round(
                    result.speedup_over(drrip), 3
                )
                row[f"{policy}_missred_vs_DRRIP"] = round(
                    result.miss_reduction_over(drrip), 3
                )
                row[f"{policy}_missred_vs_LRU"] = round(
                    result.miss_reduction_over(lru), 3
                )
            rows.append(row)
    return rows


def fig11_popt_se_scaling(
    vertex_counts: Sequence[int] = (4096, 16384, 65536, 131072),
    scale: str = "small",
    seed: int = 42,
) -> List[Dict[str, object]]:
    """Fig. 11: P-OPT vs P-OPT-SE as graph size grows, LLC fixed.

    Paper shape: below the capacity knee P-OPT (two resident columns)
    wins; for the largest graphs its doubled reservation costs more than
    the better metadata buys, and P-OPT-SE takes over. The row records the
    reserved way counts (the boxes atop Fig. 11's bars).
    """
    hierarchy = scaled_hierarchy(scale)
    rows = []
    for n in vertex_counts:
        graph = datasets.PAPER_GRAPHS[3].build(n, seed)  # URAND class
        prepared = prepare_run(PageRank(), graph)
        baseline = simulate_prepared(prepared, "DRRIP", hierarchy)
        row: Dict[str, object] = {"vertices": n}
        for policy in ("P-OPT", "P-OPT-SE"):
            try:
                result = simulate_prepared(prepared, policy, hierarchy)
                row[f"{policy}_missred"] = round(
                    result.miss_reduction_over(baseline), 3
                )
                row[f"{policy}_ways"] = result.reserved_llc_ways
            except Exception as error:  # reservation exceeds the LLC
                row[f"{policy}_missred"] = None
                row[f"{policy}_ways"] = str(error)[:40]
        rows.append(row)
    return rows


def fig12a_grasp(
    scale: str = "small",
    graphs: Sequence[str] = DEFAULT_GRAPHS + ("GPL",),
    seed: int = 42,
) -> List[Dict[str, object]]:
    """Fig. 12(a): GRASP vs P-OPT on DBG-ordered graphs.

    Paper shape: GRASP helps only on skewed graphs; P-OPT wins everywhere
    and by more.
    """
    hierarchy = scaled_hierarchy(scale)
    rows = []
    for graph_name in graphs:
        graph = datasets.load(graph_name, scale=scale, seed=seed)
        prepared, dbg_layout = prepare_dbg_run(PageRank(), graph)
        hot, warm = grasp_ranges_for(
            prepared,
            dbg_layout,
            llc_data_lines=hierarchy.llc.num_sets * hierarchy.llc.num_ways,
        )
        baseline = simulate_prepared(prepared, "DRRIP", hierarchy)
        grasp = simulate_prepared(
            prepared,
            "GRASP",
            hierarchy,
            policy_context=PolicyContext(hot_range=hot, warm_range=warm),
        )
        popt = simulate_prepared(prepared, "P-OPT", hierarchy)
        rows.append(
            {
                "graph": graph_name,
                "GRASP_missred": round(grasp.miss_reduction_over(baseline), 3),
                "P-OPT_missred": round(popt.miss_reduction_over(baseline), 3),
            }
        )
    return rows


def fig12b_hats(
    scale: str = "small",
    graphs: Sequence[str] = DEFAULT_GRAPHS + ("ARAB",),
    seed: int = 42,
) -> List[Dict[str, object]]:
    """Fig. 12(b): HATS-BDFS vs P-OPT (vertex-ordered).

    Paper shape: BDFS helps community graphs (UK-02 class, where it can
    even beat T-OPT) but *increases* misses on graphs without community
    structure; P-OPT is consistent.
    """
    hierarchy = scaled_hierarchy(scale)
    rows = []
    for graph_name in graphs:
        graph = datasets.load(graph_name, scale=scale, seed=seed)
        prepared = prepare_run(PageRank(), graph)
        baseline = simulate_prepared(prepared, "DRRIP", hierarchy)
        popt = simulate_prepared(prepared, "P-OPT", hierarchy)
        # HATS: same kernel, BDFS outer-loop order, baseline replacement.
        order = bdfs_order(graph.transpose())
        prepared_bdfs = prepare_run(PageRank(), graph, order=order)
        hats = simulate_prepared(prepared_bdfs, "DRRIP", hierarchy)
        rows.append(
            {
                "graph": graph_name,
                "HATS-BDFS_missred": round(
                    hats.miss_reduction_over(baseline), 3
                ),
                "P-OPT_missred": round(popt.miss_reduction_over(baseline), 3),
            }
        )
    return rows


def fig13_tiling(
    scale: str = "small",
    graphs: Sequence[str] = ("URAND64", "KRON"),
    tile_counts: Sequence[int] = (1, 2, 4, 8),
    seed: int = 42,
) -> List[Dict[str, object]]:
    """Fig. 13: CSR-segmenting x {DRRIP, P-OPT}, misses normalized to
    untiled DRRIP.

    Paper shape: tiling improves both; P-OPT reaches a given miss level
    with ~5x fewer tiles (P-OPT at 2 tiles ~= DRRIP at 10 on URAND).
    """
    hierarchy = scaled_hierarchy(scale)
    rows = []
    for graph_name in graphs:
        graph = datasets.load(graph_name, scale=scale, seed=seed)
        untiled = prepare_run(PageRank(), graph)
        reference = simulate_prepared(untiled, "DRRIP", hierarchy)
        for tiles in tile_counts:
            app = PageRank() if tiles == 1 else TiledPageRank(tiles)
            prepared = untiled if tiles == 1 else prepare_run(app, graph)
            row: Dict[str, object] = {"graph": graph_name, "tiles": tiles}
            for policy in ("DRRIP", "P-OPT"):
                result = simulate_prepared(prepared, policy, hierarchy)
                row[f"{policy}_norm_misses"] = round(
                    result.llc.misses / max(reference.llc.misses, 1), 3
                )
            rows.append(row)
    return rows


PHI_CACHE_SCALE = {
    "tiny": "small",
    "small": "medium",
    "medium": "large",
    "large": "large",
}


def fig14_pb_phi(
    scale: str = "small",
    graphs: Sequence[str] = DEFAULT_GRAPHS,
    seed: int = 42,
) -> List[Dict[str, object]]:
    """Fig. 14: PB and PHI under DRRIP and P-OPT (binning phase).

    DRAM traffic (LLC misses) normalized to PB+DRRIP. Paper shape: PHI
    beats PB on power-law graphs and improves further with better
    replacement; on URAND/HBUBL PHI's aggregation finds little reuse while
    P-OPT still helps.

    PHI's regime requires the destination accumulators to be comparable
    to the LLC (the paper holds ~8 MB of accumulators against a 24 MiB
    LLC), so this experiment pairs the graphs with the cache profile that
    restores that ratio: in-cache aggregation is meaningless when the
    accumulator dwarfs the cache.
    """
    hierarchy = scaled_hierarchy(PHI_CACHE_SCALE.get(scale, scale))
    rows = []
    for graph_name in graphs:
        graph = datasets.load(graph_name, scale=scale, seed=seed)
        pb = prepare_run(PropagationBlockingBinning(phi=False), graph)
        phi = prepare_run(PropagationBlockingBinning(phi=True), graph)
        reference = simulate_prepared(pb, "DRRIP", hierarchy)
        row: Dict[str, object] = {"graph": graph_name}
        for prepared, mechanism in ((pb, "PB"), (phi, "PHI")):
            for policy in ("DRRIP", "P-OPT"):
                result = simulate_prepared(prepared, policy, hierarchy)
                row[f"{mechanism}+{policy}"] = round(
                    result.llc.misses / max(reference.llc.misses, 1), 3
                )
        rows.append(row)
    return rows


def fig15_quantization(
    scale: str = "small",
    graphs: Sequence[str] = DEFAULT_GRAPHS,
    entry_bit_choices: Sequence[int] = (4, 8, 16),
    seed: int = 42,
) -> List[Dict[str, object]]:
    """Fig. 15: quantization sensitivity (limit study, no capacity cost).

    Paper shape: 8-bit ~= 16-bit ~= T-OPT, 4-bit worse; tie rates fall
    from ~41% (4b) to ~12% (8b) to ~0% (16b).
    """
    hierarchy = scaled_hierarchy(scale)
    rows = []
    for graph_name in graphs:
        graph = datasets.load(graph_name, scale=scale, seed=seed)
        prepared = prepare_run(PageRank(), graph)
        baseline = simulate_prepared(prepared, "DRRIP", hierarchy)
        topt = simulate_prepared(prepared, "T-OPT", hierarchy)
        row: Dict[str, object] = {
            "graph": graph_name,
            "T-OPT_missred": round(topt.miss_reduction_over(baseline), 3),
        }
        for bits in entry_bit_choices:
            result = simulate_prepared(
                prepared,
                "P-OPT",
                hierarchy,
                entry_bits=bits,
                account_capacity=False,
            )
            row[f"{bits}b_missred"] = round(
                result.miss_reduction_over(baseline), 3
            )
            row[f"{bits}b_tie_rate"] = round(
                result.popt_counters["tie_rate"], 3
            )
        rows.append(row)
    return rows


def fig16_llc_sensitivity(
    graphs: Sequence[str] = DEFAULT_GRAPHS,
    scale: str = "small",
    set_counts: Sequence[int] = (8, 16, 32, 64),
    way_counts: Sequence[int] = (8, 16, 32),
    seed: int = 42,
) -> List[Dict[str, object]]:
    """Fig. 16: sensitivity to LLC capacity and associativity.

    Paper shape: P-OPT's miss reduction over DRRIP grows with capacity
    (the RM reservation amortizes) and with associativity (more eviction
    candidates to choose among).
    """
    base = scaled_hierarchy(scale)
    rows = []

    def hierarchy_with(llc_sets: int, llc_ways: int) -> HierarchyConfig:
        return HierarchyConfig(
            l1=base.l1,
            l2=base.l2,
            llc=CacheConfig(
                "LLC",
                num_sets=llc_sets,
                num_ways=llc_ways,
                load_to_use_cycles=base.llc.load_to_use_cycles,
            ),
        )

    for graph_name in graphs:
        graph = datasets.load(graph_name, scale=scale, seed=seed)
        prepared = prepare_run(PageRank(), graph)
        for llc_sets in set_counts:
            hierarchy = hierarchy_with(llc_sets, base.llc.num_ways)
            drrip = simulate_prepared(prepared, "DRRIP", hierarchy)
            popt = simulate_prepared(prepared, "P-OPT", hierarchy)
            rows.append(
                {
                    "graph": graph_name,
                    "sweep": "capacity",
                    "llc_kib": llc_sets * base.llc.num_ways * 64 // 1024,
                    "ways": base.llc.num_ways,
                    "P-OPT_missred": round(
                        popt.miss_reduction_over(drrip), 3
                    ),
                }
            )
        for llc_ways in way_counts:
            hierarchy = hierarchy_with(base.llc.num_sets, llc_ways)
            drrip = simulate_prepared(prepared, "DRRIP", hierarchy)
            popt = simulate_prepared(prepared, "P-OPT", hierarchy)
            rows.append(
                {
                    "graph": graph_name,
                    "sweep": "associativity",
                    "llc_kib": base.llc.num_sets * llc_ways * 64 // 1024,
                    "ways": llc_ways,
                    "P-OPT_missred": round(
                        popt.miss_reduction_over(drrip), 3
                    ),
                }
            )
    return rows


def table4_preprocessing(
    scale: str = "small",
    graphs: Sequence[str] = DEFAULT_GRAPHS,
    seed: int = 42,
    entry_bits: int = 8,
) -> List[Dict[str, object]]:
    """Table IV: Rereference Matrix build time vs PageRank runtime.

    Both measured as wall-clock on this host over the same graph. Paper
    shape: preprocessing ~= 20% of one PageRank execution on average
    (HBUBL excepted — its PR converges unusually fast).
    """
    rows = []
    for graph_name in graphs:
        graph = datasets.load(graph_name, scale=scale, seed=seed)
        elems_per_line = 16  # 4 B srcData elements
        start = time.perf_counter()  # simlint: allow[determinism-time]
        build_rereference_matrix(
            graph, elems_per_line=elems_per_line, entry_bits=entry_bits
        )
        rm_seconds = time.perf_counter() - start  # simlint: allow[determinism-time]
        start = time.perf_counter()  # simlint: allow[determinism-time]
        pagerank_reference(graph)
        pr_seconds = time.perf_counter() - start  # simlint: allow[determinism-time]
        rows.append(
            {
                "graph": graph_name,
                "popt_preprocessing_s": round(rm_seconds, 5),
                "pagerank_execution_s": round(pr_seconds, 5),
                "ratio": round(rm_seconds / max(pr_seconds, 1e-12), 3),
            }
        )
    return rows
